#!/usr/bin/env python3
"""Regenerate LEADERBOARD.md: the adversary-protocol tournament rankings.

Usage::

    PYTHONPATH=src python tools/generate_leaderboard_md.py \
        [--n 96] [--trials 2] [--jobs 4] [--cache-dir .repro-cache] [--skip-search]

Runs the full round-robin tournament grid of ``repro.tournament`` — every
roster adversary × every compatible protocol variant × the sub-/near-/
super-threshold topology grid — at matched budget fractions, fits every
cell's resource-competitiveness exponent, and renders per-protocol rankings
plus the deterministic worst-case parameter search for the spatial family.

The document is **byte-identical across runs at fixed settings**: every
quantity in it derives from seeded trials and deterministic fits (no dates,
no wall-clock, no bootstrap RNG).  Timing and cache statistics go to stderr
only.  ``--jobs`` / ``--cache-dir`` (or ``REPRO_JOBS`` / ``REPRO_CACHE_DIR``)
parallelise and memoise the sweep without changing a byte of the output.
"""

from __future__ import annotations

import argparse
import sys
import time

from contextlib import nullcontext

from repro.experiments import ExperimentSettings
from repro.experiments.reporting import render_table
from repro.experiments.runner import progress_scope, track_stats
from repro.observability import CliProgressRenderer
from repro.tournament import (
    SPEND_FRACTIONS,
    TournamentCell,
    optimise_cell,
    protocol_roster,
    run_tournament,
    topology_grid,
    tournament_cells,
)

SEARCH_CELLS = (
    TournamentCell("static_disk", "mh-sequential", "gilbert-near"),
    TournamentCell("mobile_disk", "mh-sequential", "gilbert-near"),
    TournamentCell("multi_disk", "mh-sequential", "gilbert-near"),
    TournamentCell("reactive_disk", "mh-sequential", "gilbert-near"),
    TournamentCell("bursty", "eps-broadcast", "single-hop"),
    TournamentCell("budget_blocker", "eps-broadcast", "single-hop"),
)
"""Cells the worst-case search runs on: the E12 spatial family on the
sequential multi-hop schedule (their hand-picked experiment regime, where
the budget binds) plus two channel attackers on the paper's protocol."""

PREAMBLE = """\
# LEADERBOARD — adversary-protocol tournament

Regenerate with `PYTHONPATH=src python tools/generate_leaderboard_md.py`
(output is byte-identical across runs at fixed settings; `--jobs`/`--cache-dir`
only change how fast it happens).

Every cell of the round-robin grid — adversary × protocol variant ×
topology — runs a sweep of Carol's self-imposed spend cap at matched
fractions of her aggregate budget, then fits `max node cost ≈ c·T^ρ` in
log-log space.  The fitted exponent ρ is the cell's empirical
resource-competitiveness: Theorem 1 bounds ρ by `1/(k+1) = 1/3` (up to
polylog factors) for ε-Broadcast on the shared channel, while a naive
protocol pays ρ ≈ 1.  Ranking adversaries by ρ per protocol answers *which
attack shape drives each protocol's cost growth hardest* — not just which
spends the most.

Degenerate cells carry a flagged sentinel instead of a spurious slope:
`flat-cost` (the protocol's cost demonstrably does not scale with Carol's
spend, reported as ρ = 0), `degenerate-spend-range` (Carol could not realise
enough spend spread, e.g. the run ends before her cap binds),
`insufficient-points` / `zero-cost` (not enough usable sweep points).
Confidence intervals are large-sample 95% bands from the log-log slope's
standard error — deterministic by construction.
"""


def _fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"


def _cell_row(rank: int, result) -> dict:
    fit = result.node_fit
    return {
        "rank": rank,
        "adversary": result.cell.adversary,
        "topology": result.cell.topology,
        "rho (node)": _fmt(fit.exponent) if fit.ok or fit.reason == "flat-cost" else "—",
        "95% CI": f"[{_fmt(fit.ci_low, 2)}, {_fmt(fit.ci_high, 2)}]" if fit.ok else "—",
        "R^2": _fmt(fit.r_squared, 2) if fit.ok else "—",
        "flag": "ok" if fit.ok else fit.reason,
        "max node cost": _fmt(max(result.node_max_costs), 1),
        "delivery min": _fmt(result.delivery_min, 2),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=96)
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument("--output", default="LEADERBOARD.md")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the sweep (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed trial store to reuse (default: REPRO_CACHE_DIR or off)",
    )
    parser.add_argument(
        "--skip-search",
        action="store_true",
        help="omit the worst-case parameter search section (faster)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render a live progress line on stderr (off by default; the "
        "generated document is byte-identical either way)",
    )
    args = parser.parse_args()

    settings = ExperimentSettings(
        n=args.n,
        trials=args.trials,
        seed=args.seed,
        quick=True,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )

    renderer = CliProgressRenderer(label="tournament") if args.progress else None
    follower = progress_scope(renderer) if renderer is not None else nullcontext()
    start = time.perf_counter()
    try:
        with follower:
            with track_stats() as stats:
                tournament = run_tournament(settings, cells=tournament_cells())
    except KeyboardInterrupt:
        # run_sweep has already shut its pool down and printed the trial-level
        # partial-progress line; add the stage context and exit 130.
        print(
            "leaderboard generation interrupted during the tournament grid; "
            "finished trials are in the trial cache — rerun to resume warm",
            file=sys.stderr,
        )
        sys.exit(130)
    if renderer is not None:
        renderer.finish()
    print(
        f"tournament: {len(tournament.cells)} cells in {time.perf_counter() - start:.1f}s "
        f"({stats.executed} trials executed, {stats.cache_hits} cache hits)",
        file=sys.stderr,
    )

    lines = [PREAMBLE]
    lines.append(
        f"Profile: n = {settings.n}, trials = {settings.trials}, seed = {settings.seed}, "
        f"k = 2, spend fractions = {', '.join(f'{f:g}' for f in SPEND_FRACTIONS)} "
        f"of Carol's aggregate budget; {len(tournament.cells)} cells.\n"
    )

    protocols = protocol_roster()
    grouped = tournament.by_protocol()
    lines.append("## Rankings per protocol\n")
    lines.append(
        "Worst adversary first (descending fitted ρ; flagged cells sink to the "
        "bottom, tie-broken by observed damage).\n"
    )
    for name in sorted(grouped):
        entry = protocols[name]
        lines.append(f"### {name} — {entry.description}\n")
        rows = [_cell_row(rank, result) for rank, result in enumerate(grouped[name], start=1)]
        lines.append("```text")
        lines.append(
            render_table(
                [
                    "rank",
                    "adversary",
                    "topology",
                    "rho (node)",
                    "95% CI",
                    "R^2",
                    "flag",
                    "max node cost",
                    "delivery min",
                ],
                rows,
            )
        )
        lines.append("```\n")

    lines.append("## Worst observed adversary per protocol\n")
    worst_rows = []
    for name in sorted(grouped):
        worst = grouped[name][0]
        fit = worst.node_fit
        worst_rows.append(
            {
                "protocol": name,
                "worst adversary": worst.cell.adversary,
                "topology": worst.cell.topology,
                "rho (node)": _fmt(fit.exponent) if fit.ok else f"— ({fit.reason})",
                "max node cost": _fmt(max(worst.node_max_costs), 1),
                "delivery min": _fmt(worst.delivery_min, 2),
            }
        )
    lines.append("```text")
    lines.append(
        render_table(
            ["protocol", "worst adversary", "topology", "rho (node)", "max node cost", "delivery min"],
            worst_rows,
        )
    )
    lines.append("```\n")

    if not args.skip_search:
        renderer = CliProgressRenderer(label="search") if args.progress else None
        follower = progress_scope(renderer) if renderer is not None else nullcontext()
        start = time.perf_counter()
        try:
            with follower:
                with track_stats() as stats:
                    searches = [optimise_cell(cell, settings) for cell in SEARCH_CELLS]
        except KeyboardInterrupt:
            print(
                "leaderboard generation interrupted during the worst-case search "
                "(the tournament grid had completed); finished trials are in the "
                "trial cache — rerun to resume warm",
                file=sys.stderr,
            )
            sys.exit(130)
        if renderer is not None:
            renderer.finish()
        print(
            f"search: {len(searches)} cells in {time.perf_counter() - start:.1f}s "
            f"({stats.executed} trials executed, {stats.cache_hits} cache hits)",
            file=sys.stderr,
        )
        lines.append("## Worst-case parameter search\n")
        lines.append(
            "Deterministic coordinate grid refinement over each adversary's declared "
            "parameter bounds, seeded by (and therefore never worse than) the "
            "hand-picked E-numbered configuration; scores are mean per-node cost at a "
            f"matched {searches[0].spend_fraction:g}-fraction budget.  A ratio of 1.00 "
            "means the hand-picked settings already sit at the searched optimum.\n"
        )
        search_rows = []
        for result in searches:
            moved = [
                f"{name}={value:g}"
                for (name, value), (_, default) in zip(result.best_params, result.baseline_params)
                if value != default
            ]
            search_rows.append(
                {
                    "cell": result.cell.key,
                    "hand-picked": _fmt(result.baseline_score, 1),
                    "optimised": _fmt(result.best_score, 1),
                    "ratio": _fmt(result.improvement, 2),
                    "evals": result.evaluations,
                    "moved parameters": "; ".join(moved) if moved else "(none)",
                }
            )
        lines.append("```text")
        lines.append(
            render_table(
                ["cell", "hand-picked", "optimised", "ratio", "evals", "moved parameters"],
                search_rows,
            )
        )
        lines.append("```\n")

    # Topology footnote keeps the grid's regime choices explicit.
    grid = topology_grid()
    lines.append("## Topology grid\n")
    lines.append("```text")
    lines.append(
        render_table(
            ["topology", "kind", "radius multiplier", "description"],
            [
                {
                    "topology": entry.name,
                    "kind": entry.kind,
                    "radius multiplier": (
                        f"{entry.radius_multiplier:g} x r_c"
                        if entry.radius_multiplier is not None
                        else "—"
                    ),
                    "description": entry.description,
                }
                for entry in (grid[name] for name in sorted(grid))
            ],
        )
    )
    lines.append("```\n")

    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines))
    print(f"wrote {args.output}", file=sys.stderr)


if __name__ == "__main__":
    main()
