#!/usr/bin/env python3
"""Assert the trial store is warm for the current benchmark profile.

CI runs the experiment benchmark smoke cold (filling ``REPRO_CACHE_DIR``),
then runs this script: it re-executes the given experiments with the **same**
settings source the smoke used (``benchmarks/conftest.bench_settings``, so
the two steps cannot drift apart) and fails unless every trial was served
from the content-addressed store — zero recomputation, checked through the
runner's execution counters.  A cache-key regression (settings drift, label
or params change, broken key derivation) therefore fails this step loudly
instead of silently recomputing behind a green check.

Usage::

    REPRO_CACHE_DIR=... PYTHONPATH=src python tools/assert_warm_cache.py E2 E11
"""

from __future__ import annotations

import sys
from pathlib import Path

# The benchmark profile lives in benchmarks/conftest.py; import it from there
# rather than duplicating the settings (duplication is exactly the drift this
# script exists to catch).
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))
from conftest import bench_settings  # noqa: E402

from repro.experiments.registry import run_experiment  # noqa: E402
from repro.experiments.runner import EXECUTION_STATS  # noqa: E402


def main() -> int:
    experiment_ids = sys.argv[1:] or ["E2", "E11"]
    settings = bench_settings()
    if settings.resolved_cache_dir is None:
        print("FAIL: no trial cache configured (set REPRO_CACHE_DIR)")
        return 1

    before = EXECUTION_STATS.snapshot()
    for eid in experiment_ids:
        run_experiment(eid, settings)
    delta = EXECUTION_STATS.since(before)

    print(
        f"warm re-run of {', '.join(experiment_ids)} against "
        f"{settings.resolved_cache_dir}: executed={delta.executed} "
        f"hits={delta.cache_hits} misses={delta.cache_misses}"
    )
    if delta.executed:
        print(
            f"FAIL: {delta.executed} trial(s) were recomputed — the store the "
            "cold smoke filled did not serve them (cache-key drift?)"
        )
        return 1
    if delta.cache_hits == 0:
        print("FAIL: no cache hits recorded — nothing was actually exercised")
        return 1
    print("warm-cache assertion passed: every trial served from the store")
    return 0


if __name__ == "__main__":
    sys.exit(main())
