#!/usr/bin/env python3
"""Extract and execute the ``python`` code blocks of markdown documents.

The doctest-style smoke behind the CI docs job: every fenced ``python``
block in README.md / docs/*.md is executed, top to bottom, in one namespace
per file (so later blocks may reuse earlier imports, mirroring how a reader
would paste them into a REPL).  A crashing or asserting snippet fails the
run, which is what keeps the quickstart from rotting.

Usage::

    PYTHONPATH=src python tools/run_doc_snippets.py README.md docs/architecture.md

Blocks can opt out by tagging the fence ``python no-run`` (for illustrative
fragments that need unavailable context).  Shell blocks (````bash````) are
never executed.
"""

from __future__ import annotations

import argparse
import re
import sys
import time
from pathlib import Path
from typing import List, Tuple

FENCE_RE = re.compile(
    r"^```python[ \t]*(?P<tag>no-run)?[ \t]*\n(?P<body>.*?)^```[ \t]*$",
    re.MULTILINE | re.DOTALL,
)


def extract_blocks(text: str) -> List[Tuple[bool, str]]:
    """All fenced python blocks as ``(runnable, source)`` pairs, in order."""

    return [
        (match.group("tag") is None, match.group("body"))
        for match in FENCE_RE.finditer(text)
    ]


def run_file(path: Path) -> int:
    """Execute a document's runnable blocks; return the number executed."""

    blocks = extract_blocks(path.read_text(encoding="utf-8"))
    namespace: dict = {"__name__": f"docsnippet:{path.name}"}
    executed = 0
    for index, (runnable, source) in enumerate(blocks, start=1):
        label = f"{path}: python block {index}/{len(blocks)}"
        if not runnable:
            print(f"-- {label}: skipped (no-run)")
            continue
        start = time.perf_counter()
        try:
            code = compile(source, f"{path}#block{index}", "exec")
            exec(code, namespace)  # noqa: S102 - executing our own docs is the point
        except Exception:
            print(f"FAIL {label}")
            print("----- snippet -----")
            print(source.rstrip())
            print("-------------------")
            raise
        executed += 1
        print(f"ok {label} ({time.perf_counter() - start:.1f}s)")
    return executed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("documents", nargs="+", type=Path, help="markdown files to check")
    args = parser.parse_args()

    total = 0
    for path in args.documents:
        if not path.exists():
            print(f"FAIL missing document: {path}")
            return 1
        try:
            total += run_file(path)
        except Exception as exc:  # noqa: BLE001 - report and fail the job
            print(f"docs snippet failure in {path}: {type(exc).__name__}: {exc}")
            return 1
    print(f"all doc snippets passed ({total} executed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
