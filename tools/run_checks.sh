#!/usr/bin/env bash
# Tier-1 verification: the full unit/property/integration suite plus a
# quick-mode benchmark smoke over a representative experiment subset.
#
# Usage:
#   tools/run_checks.sh            # tests + benchmark smoke
#   tools/run_checks.sh --no-bench # tests only (fast pre-commit check)
#
# Environment knobs (forwarded to benchmarks/conftest.py):
#   REPRO_BENCH_N       network size for the smoke benchmarks (default 96 here)
#   REPRO_BENCH_TRIALS  trials per sweep point (default 1 here)

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

if [[ "${1:-}" != "--no-bench" ]]; then
    echo "== quick-mode benchmark smoke (E2 delivery + E11 multihop) =="
    REPRO_BENCH_N="${REPRO_BENCH_N:-96}" REPRO_BENCH_TRIALS="${REPRO_BENCH_TRIALS:-1}" \
        python -m pytest benchmarks/bench_delivery.py benchmarks/bench_multihop.py \
        --benchmark-only --benchmark-disable-gc -q
fi

echo "all checks passed"
