#!/usr/bin/env bash
# Tier-1 verification: the full unit/property/integration suite, the
# repro-lint determinism gate (plus mypy when installed), a quick-mode
# benchmark smoke over a representative experiment subset, the mobile-jammer
# benchmark smoke, and the docs code-snippet smoke (README / docs quickstarts
# must stay runnable).
#
# Usage:
#   tools/run_checks.sh            # tests + benchmark smoke + docs snippets
#   tools/run_checks.sh --no-bench # tests + docs snippets (fast pre-commit check)
#
# Every step runs even if an earlier one fails; the script exits non-zero if
# ANY step failed, and lists the failures at the end — so CI cannot "pass"
# on the strength of the first step alone.
#
# Environment knobs (forwarded to benchmarks/conftest.py):
#   REPRO_BENCH_N       network size for the smoke benchmarks (default 96 here)
#   REPRO_BENCH_TRIALS  trials per sweep point (default 1 here)

set -uo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

failures=()

run_step() {
    local name="$1"
    shift
    echo "== ${name} =="
    if "$@"; then
        echo "-- ${name}: ok"
    else
        local status=$?
        echo "-- ${name}: FAILED (exit ${status})" >&2
        failures+=("${name}")
    fi
}

# The test suite must behave identically everywhere, so the runner's env
# knobs (REPRO_JOBS / REPRO_CACHE_DIR / REPRO_TRIAL_* — which CI sets for the
# benchmark smokes below) are stripped here: tests choose jobs/cache/fault
# policy explicitly.
run_step "tier-1 test suite" env -u REPRO_JOBS -u REPRO_CACHE_DIR \
    -u REPRO_TRIAL_TIMEOUT_S -u REPRO_TRIAL_RETRIES -u REPRO_STRICT_FAULTS \
    python -m pytest -x -q

# The determinism & invariant linter (repro.lint) gates the whole library
# tree: zero unsuppressed violations, every suppression with a reason.
run_step "repro-lint (determinism & invariant linter)" \
    python tools/repro_lint.py src/repro

# mypy is a CI-installed dev dependency; locally it may be absent (this repo
# pins no dev venv), so the step gates on availability rather than failing
# a machine that cannot install it.
if python -c "import mypy" >/dev/null 2>&1; then
    run_step "mypy (strict-ish typing gate, config in setup.cfg)" \
        python -m mypy --config-file setup.cfg
else
    echo "== mypy (strict-ish typing gate) =="
    echo "-- mypy: SKIPPED (mypy not installed; CI runs it in the lint job)"
fi

if [[ "${1:-}" != "--no-bench" ]]; then
    REPRO_BENCH_N="${REPRO_BENCH_N:-96}" REPRO_BENCH_TRIALS="${REPRO_BENCH_TRIALS:-1}" \
        run_step "quick-mode benchmark smoke (E2 delivery + E11 multihop + E13 quiet rule)" \
        python -m pytest benchmarks/bench_delivery.py benchmarks/bench_multihop.py \
        benchmarks/bench_quiet_rule.py \
        --benchmark-only --benchmark-disable-gc -q

    run_step "mobile-jammer benchmark smoke" python benchmarks/bench_mobile_jammer.py --smoke

    run_step "parallel-harness benchmark smoke (jobs fan-out + trial cache)" \
        python benchmarks/bench_parallel_harness.py --smoke

    run_step "million-device pipelined benchmark smoke" \
        python benchmarks/bench_million_device.py --smoke

    REPRO_BENCH_N="${REPRO_BENCH_N:-96}" REPRO_BENCH_TRIALS="${REPRO_BENCH_TRIALS:-1}" \
        run_step "tournament benchmark smoke (E14 grid + parallel identity + worst-case search)" \
        python benchmarks/bench_tournament.py --smoke --jobs 2

    run_step "trace-overhead benchmark smoke (null-recorder neutrality)" \
        python benchmarks/bench_trace_overhead.py --smoke

    run_step "fault-tolerance benchmark smoke (chaos-injected sweep bit-identity)" \
        python benchmarks/bench_fault_tolerance.py --smoke
fi

run_step "docs code snippets" python tools/run_doc_snippets.py README.md docs/architecture.md

if ((${#failures[@]})); then
    echo
    echo "FAILED steps: ${failures[*]}" >&2
    exit 1
fi
echo "all checks passed"
