#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: run every experiment and record paper-vs-measured.

Usage::

    python tools/generate_experiments_md.py [--n 256] [--trials 2] [--full] \
        [--jobs 4] [--cache-dir .repro-cache] \
        [--prune-cache] [--prune-cache-bytes N] [--prune-cache-days D]

The commentary blocks below interpret each experiment's measured shape against
the paper's claim; the tables themselves are regenerated from the current code
on every invocation so the document never drifts from the implementation.

``--jobs`` fans the trials of each experiment across worker processes and
``--cache-dir`` re-uses a content-addressed trial store, so regeneration after
a docs-only change costs seconds instead of minutes; both leave the tables
bit-identical to a serial cold run.  The generation-profile footer records the
per-experiment wall-clock and cache-hit counts of the run that produced the
document, keeping the perf trajectory visible in-repo.

``--prune-cache`` evicts old/excess trial-store entries after generation
(LRU by mtime — cache hits refresh an entry's mtime), so a long-lived store
stops growing without bound; ``--prune-cache-bytes`` / ``--prune-cache-days``
override the default budget (512 MiB / 30 days).
"""

from __future__ import annotations

import argparse
import sys
import time
from datetime import date

from contextlib import nullcontext

from repro.experiments import ExperimentSettings, render_result, render_table
from repro.experiments.faults import fault_scope, quarantine_note
from repro.experiments.registry import experiment_ids, run_experiment
from repro.experiments.runner import progress_scope, track_stats
from repro.observability import CliProgressRenderer

COMMENTARY = {
    "E1": (
        "Paper: Theorem 1 / Lemma 11 — Alice and each node pay Õ(T^(1/3) + 1) for k = 2.  "
        "Measured: costs rise strongly sublinearly in Carol's spend; the fitted node exponent sits "
        "above the asymptotic 1/3 (the 1/ε′ constants keep early rounds saturated at this n, and the "
        "discrete round structure makes the last sweep point jumpy) but far below the baselines' ≈ 1, "
        "and Alice's exponent is comparable — the load-balanced, resource-competitive shape the "
        "theorem predicts.  The gap to 1/3 closes as n (and hence the reachable T range) grows."
    ),
    "E2": (
        "Paper: at least (1-ε)n nodes are informed w.h.p.; an n-uniform Carol can strand a bounded "
        "fraction only by paying for it (§2.3).  Measured: with no attack or blanket blocking every "
        "node is informed; the splitter strands exactly its victim set, but doing so consumes "
        "essentially Carol's entire aggregate budget regardless of how few victims she picks.  With "
        "the laptop-scale ε′ = 1/64 the strandable fraction is larger than the paper's asymptotic ε "
        "(the threshold constants scale with ε′), which is the documented constant-level deviation."
    ),
    "E3": (
        "Paper: termination within O(n^{1+1/k}) slots, asymptotically optimal (Corollary 1).  "
        "Measured: against a full-budget jammer the slots-to-termination fit n^1.50 almost exactly "
        "(Carol's aggregate budget is Θ(n^{3/2}) and she can silence the channel no longer than "
        "that); unjammed runs finish in the fixed warm-up rounds, orders of magnitude sooner."
    ),
    "E4": (
        "Paper: the protocol is load balanced — Alice and each node pay asymptotically equal costs "
        "(§1, Lemma 11).  Measured: under jamming Alice pays a small fraction of a node's cost "
        "(nodes shoulder the listening), i.e. well within any polylog envelope, while the KSY-style "
        "baseline shows the pathology the paper criticises: receivers pay ~50× the sender."
    ),
    "E5": (
        "Paper: ε-Broadcast improves on the naive Θ(T) strategy and on KSY's receiver cost Θ(T) / "
        "sender cost T^0.62 (§1, §1.2).  Measured: node-cost exponents order as predicted "
        "(naive ≈ ksy ≈ 0.94 > balanced-backoff ≈ 0.53 > ε-broadcast ≈ 0.7 at this n, trending to "
        "1/3 with scale), and at the largest spend ε-Broadcast's receivers pay roughly half of "
        "naive's while its sender pays an order of magnitude less.  The balanced-backoff strawman "
        "wins on absolute constants at small n — the paper's advantage is asymptotic in T."
    ),
    "E6": (
        "Paper: general k trades a Θ(k) latency/cost factor for a better exponent 1/(k+1) (§3, "
        "§3.2).  Measured: every k delivers and every node pays less than Carol at the top of its "
        "sweep; the Figure-2 constants (∝ 1/ε′) keep benchmark-scale sweeps largely saturated, so "
        "the per-k exponents are noisy (k = 3 fits ≈ 0.48, k = 2's small reachable range fits high); "
        "the Θ(k) overhead is directly visible in the extra propagation steps per round."
    ),
    "E7": (
        "Paper: a reactive jammer defeats the plain protocol at cost comparable to Alice's, and the "
        "§4.1 decoy traffic restores resource competitiveness for f < 1/24 (Lemma 19).  Measured: "
        "against the plain protocol the reactive jammer suppresses delivery outright whenever her "
        "budget outlasts Alice's sends, while spending less than Alice; with decoys she must jam "
        "cover traffic too, her spend-per-round multiplies (carol/alice ≈ 2–5×), and delivery "
        "returns to 100%."
    ),
    "E8": (
        "Paper: a polynomial overestimate ν of n costs only an O(lg ν) factor (§4.2).  Measured: "
        "delivery is preserved for ν = 2n and ν = n², and the latency inflation matches the "
        "predicted (2 + lg ν)/3 factor exactly (4.0× and 6.7× at n = 256/512)."
    ),
    "E9": (
        "Paper: the protocol's per-slot independent randomness gives an adaptive scheduler no edge "
        "(§2).  Measured: at equal spend, targeted phase blocking is the most slot-efficient way to "
        "buy delay, oblivious strategies waste energy, spoofing only delays termination, and no "
        "non-reactive strategy dents delivery; only the reactive jammer (handled by E7's decoys) "
        "changes the picture."
    ),
    "E10": (
        "Paper: delaying termination past round i costs Carol Ω(2^{(b/2+1)i}) while Alice's extra "
        "cost grows as Õ(T^{a/(b/2+1)}) = Õ(T^{1/3}) (§2.2, Lemmas 4–7).  Measured: Alice's "
        "termination round grows by one per geometric increase in the spoofer's spend, her cost fits "
        "T^0.34 (prediction 1/3), and delivery is never affected — spoofing cannot forge silence."
    ),
    "E11": (
        "Paper: the motivating scenario is a dense sensor network over an area (§1), though the "
        "game itself is analysed on one shared channel.  This experiment extends the model: "
        "hop-by-hop relaying of ε-Broadcast over Gilbert random geometric graphs, swept across the "
        "connectivity radius r_c = √(ln n / (π n)) (arXiv:1312.4861), plus a scale-free "
        "heavy-tailed-radius variant (arXiv:1411.6824).  Measured: below r_c the graph fragments "
        "and delivery collapses to the Alice-component fraction (delivery_vs_reachable stays ≈ 1 — "
        "the protocol informs essentially everyone a radio path reaches); above r_c delivery "
        "saturates at 1; the scale-free topology's hubs keep it connected without a radius sweep; "
        "and a disk-jamming Carol — the geometric analogue of §2.3's n-uniform splitter — only "
        "delays her disk while her budget lasts.  The former quiet-rule misfires (near-threshold "
        "delivery_vs_reachable dipped to ~0.9 while the sub-threshold mean_node_cost blew up "
        "~6x) are fixed by the default degree-aware termination rule — per-node budgets from the "
        "three-hop neighbourhood size, E13 is the ablation.  Pipelined relays plus cap-aware "
        "schedule truncation (PR 6) removed the rule's former wall-clock price: sub-threshold "
        "runs now end as soon as every component has delivered or provably stalled, so the slots "
        "column stays orders of magnitude below the round cap while per-node energy stays "
        "collapsed."
    ),
    "E12": (
        "Paper: Carol is adaptive — she \"possesses full information on how nodes have behaved in "
        "the past\" (§1.1) — but the model is aspatial; this experiment extends PR 1's static disk "
        "jammer into a mobility subsystem (repro.adversary.mobility) where the victim set is a "
        "function of time, re-resolved against the topology every phase.  Measured, at equal spend "
        "caps and equal total disk area under a constant quiet-retry horizon (runs end while jamming "
        "still binds): oblivious mobility (patrol/orbit/random walk) trades denial depth for "
        "coverage — 2-4x more nodes covered than the static disk, but victims mostly catch up "
        "after the disk passes (high victim_delivery) — while the adaptive reactive disk, "
        "re-centring each phase on the densest cluster of active uninformed listeners, strands "
        "more victims per unit budget than the blind static disk and drives the network's "
        "delivery per unit adversary budget strictly below it: the knowledge-of-state pursuit "
        "adversary that no bind-once strategy can express."
    ),
    "E13": (
        "Paper: §2.2's termination rule equates a quiet request phase with global satisfaction — "
        "exact on one shared channel, wrong on a radio graph, where it misfires in both "
        "directions (the former E11 open item).  This ablation runs identical near- and "
        "sub-threshold Gilbert graphs under every termination policy: the paper rule pays the "
        "sub-threshold blowup (~15000 mean node cost, Alice-less components sustaining each "
        "other's nacks to the round cap — the one policy still exempt from PR 6's cap-aware "
        "truncation, because that blowup is the measured protocol behaviour) and still dips near the threshold (mass give-up at the "
        "earliest reliable round, ahead of the relay frontier); a uniform retry cap fixes the "
        "cost but leaves near-threshold delivery short of 1 (it used to destroy it outright; "
        "with pipelined relay rounds far fewer request phases elapse before the frontier "
        "arrives, so the budget rarely binds — yet the degree-aware rule still dominates it "
        "on every profile); a "
        "plain-degree (hops=1) budget fails both ways because sub- and super-critical degree "
        "distributions overlap; the default degree-aware rule — budgets from the three-hop "
        "neighbourhood size, unlimited patience where the ball clears the Gilbert connectivity "
        "scale ~ln n (arXiv:1312.4861) or contains Alice — lands sub-threshold cost within ~2x "
        "of the uniform cap while returning delivery_vs_reachable to ~1.  The residual sub-1 "
        "sliver is the locally-undecidable class (giant-component pendant chains vs large "
        "sub-critical fragments present identical local views), and scale-free graphs "
        "(arXiv:1411.6824) are why budgets must be per-node: hub and fringe neighbourhoods "
        "coexist in one graph."
    ),
    "E14": (
        "Paper: Theorem 1 is a *worst-case* statement — cost stays O(T^{1/(k+1)} + poly-log) "
        "against **every** adversary spending T — but the E-numbered experiments only sample "
        "hand-picked attacks.  The tournament closes the quantifier gap empirically: a "
        "round-robin grid of every roster adversary x every protocol variant x a topology "
        "grid straddling the Gilbert connectivity threshold, at matched fractions of Carol's "
        "aggregate budget, each cell fitted for its cost exponent rho (or a flagged sentinel "
        "where no slope exists: flat-cost attacks the protocol simply absorbs, "
        "degenerate-spend-range cells where the run ends before her cap binds).  On the "
        "shared channel the budget blocker is the only attack that moves eps-Broadcast's "
        "cost at all (rho ~ 0.4 over this profile's narrow spend window — three fractions "
        "of one budget, not E1's decade sweep; the full LEADERBOARD.md grid is the "
        "calibrated read), while sybil payloads and request spoofing land flat: the "
        "k-lottery and back-to-back verification neutralise them at every budget, which is "
        "the resource-competitive claim in its contrapositive form.  On the spatial graphs "
        "the ranking inverts — geometry-aware disks (the reactive chaser above all) dominate "
        "channel-wide attacks, and the worst observed adversary per protocol is identified "
        "by fitted exponent rather than by choosing it in advance.  A deterministic "
        "coordinate search over each adversary's declared parameter bounds (seeded by the "
        "hand-picked configuration, so never worse) closes the remaining within-family gap; "
        "its results and the per-protocol rankings are LEADERBOARD.md."
    ),
}

PREAMBLE = """# EXPERIMENTS — paper claims versus measured results

The paper is a theory paper with no numeric tables; every \"experiment\" below
regenerates one of its quantitative claims on the simulated network substrate
described in DESIGN.md.  Absolute numbers are not comparable to the paper
(there is nothing to compare against — the paper proves asymptotic bounds);
the reproduced quantities are the *shapes*: exponents, orderings, thresholds,
and crossovers.  Every table below is regenerated by
`pytest benchmarks/ --benchmark-only` (one benchmark per experiment) or by
rerunning `python tools/generate_experiments_md.py`.

Known, deliberate deviations at laptop scale (all discussed in DESIGN.md):

* ε′ defaults to 1/64 instead of the asymptotically tiny values the proofs
  renormalise away; this inflates constant factors, saturates probabilities in
  early rounds, and widens the strandable fraction in E2.
* Measured cost exponents therefore sit above the asymptotic 1/(k+1) while
  remaining far below every baseline; the trend toward the predicted value is
  visible as n (and the reachable adversary spend) grows.
"""


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=256)
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--output", default="EXPERIMENTS.md")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes per experiment sweep (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed trial store to reuse (default: REPRO_CACHE_DIR or off)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render a live per-experiment progress line on stderr (off by "
        "default; rendering goes to stderr only, so the generated document "
        "is byte-identical either way)",
    )
    parser.add_argument(
        "--prune-cache",
        action="store_true",
        help="after generation, evict trial-store entries beyond the byte/age "
        "budget (LRU by mtime; the store only grows otherwise)",
    )
    parser.add_argument(
        "--prune-cache-bytes",
        type=int,
        default=512 * 1024 * 1024,
        help="byte budget for --prune-cache (default: 512 MiB)",
    )
    parser.add_argument(
        "--prune-cache-days",
        type=float,
        default=30.0,
        help="age horizon in days for --prune-cache (default: 30)",
    )
    args = parser.parse_args()

    settings = ExperimentSettings(
        n=args.n,
        trials=args.trials,
        quick=not args.full,
        seed=2012,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )

    results = []
    profile_rows = []
    fault_notes = []
    all_ids = experiment_ids()
    try:
        for eid in all_ids:
            # Per-experiment counters are scoped, not derived from the process
            # global: registry experiments may themselves run nested sweeps, and
            # snapshot arithmetic against the mutable global cross-contaminated
            # back-to-back experiments in one process.
            renderer = CliProgressRenderer(label=eid) if args.progress else None
            follower = progress_scope(renderer) if renderer is not None else nullcontext()
            start = time.perf_counter()
            with follower:
                with track_stats() as stats, fault_scope() as faults:
                    result = run_experiment(eid, settings)
            elapsed = time.perf_counter() - start
            if renderer is not None:
                renderer.finish()
            results.append(result)
            note = quarantine_note(faults)
            if note is not None:
                fault_notes.append((eid, note))
            trials_total = stats.executed + stats.cache_hits
            profile_rows.append(
                {
                    "experiment": eid,
                    "seconds": elapsed,
                    "trials_executed": stats.executed,
                    "cache_hits": stats.cache_hits,
                    "trials_per_sec": trials_total / elapsed if elapsed > 0 else 0.0,
                    "hit_rate": stats.cache_hits / trials_total if trials_total else 0.0,
                }
            )
            print(
                f"{eid}: {elapsed:.2f}s ({stats.executed} trials executed, "
                f"{stats.cache_hits} cache hits)",
                file=sys.stderr,
            )
    except KeyboardInterrupt:
        # run_sweep has already torn its pool down and flushed every finished
        # trial to the cache; report where generation stopped and exit with
        # the conventional SIGINT status instead of a traceback.
        done = [str(row["experiment"]) for row in profile_rows]
        print(
            f"generation interrupted: {len(done)}/{len(all_ids)} experiments "
            f"complete ({', '.join(done) if done else 'none'}); finished trials "
            "are in the trial cache — rerun to resume warm",
            file=sys.stderr,
        )
        sys.exit(130)

    lines = [PREAMBLE]
    lines.append(
        f"Profile used for the tables below: n = {settings.n}, trials = {settings.trials}, "
        f"quick = {settings.quick}, generated on {date.today().isoformat()}.\n"
    )
    for result in results:
        lines.append(f"## {result.experiment_id} — {result.title}\n")
        commentary = COMMENTARY.get(result.experiment_id)
        if commentary:
            lines.append(commentary + "\n")
        lines.append("```text")
        lines.append(render_result(result))
        lines.append("```\n")

    # Generation profile: the perf trajectory of the harness itself, kept
    # in-repo so a regression in experiment wall-clock shows up in the diff.
    cache_state = settings.resolved_cache_dir or "disabled"
    total_seconds = sum(row["seconds"] for row in profile_rows)
    lines.append("## Generation profile\n")
    lines.append(
        f"Runner: jobs = {settings.resolved_jobs}, trial cache = {cache_state}; "
        f"total wall-clock {total_seconds:.2f}s.  `trials_executed` counts trials "
        "actually computed by this run; `cache_hits` counts trials served from the "
        "content-addressed store (a fully warm regeneration executes zero).  "
        "`trials_per_sec` is the experiment's completed work units (computed + "
        "served) per second of its wall-clock; `hit_rate` is the served "
        "fraction.\n"
    )
    lines.append("```text")
    lines.append(
        render_table(
            [
                "experiment",
                "seconds",
                "trials_executed",
                "cache_hits",
                "trials_per_sec",
                "hit_rate",
            ],
            profile_rows,
        )
    )
    lines.append("```\n")

    # Quarantined trials (lenient fault policy) are surfaced explicitly rather
    # than silently thinning the aggregates; with no failures this section is
    # absent and the document stays byte-identical to a fault-free run.
    if fault_notes:
        lines.append("### Fault report\n")
        lines.append(
            "Trials quarantined by the fault policy during this generation; the "
            "affected sweep points aggregate their surviving trials only.\n"
        )
        for eid, note in fault_notes:
            lines.append(f"* {eid}: {note}")
        lines.append("")

    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines))
    print(f"wrote {args.output}", file=sys.stderr)

    if args.prune_cache:
        store = settings.resolved_cache_dir
        if store is None:
            print("--prune-cache: no trial store configured, nothing to prune", file=sys.stderr)
        else:
            from repro.experiments.cache import TrialCache

            stats = TrialCache(store).prune(
                max_bytes=args.prune_cache_bytes, max_age_days=args.prune_cache_days
            )
            print(f"--prune-cache: {stats.describe()}", file=sys.stderr)


if __name__ == "__main__":
    main()
