#!/usr/bin/env python3
"""Summarise one JSONL run trace, or diff two.

Usage::

    # One trace: run header, per-round aggregates, totals, runner stages,
    # and — when the sweep hit faults — the runner's fault-handling log
    # (retries with backoff, timeouts, worker deaths, quarantines).
    PYTHONPATH=src python tools/trace_report.py trace.jsonl

    # Two traces: positional phase-by-phase diff — where do the runs diverge?
    PYTHONPATH=src python tools/trace_report.py left.jsonl right.jsonl \
        [--fields num_slots,newly_informed,...] [--max-rows 40]

Traces are produced by running any orchestrator with a
:class:`repro.observability.TraceCollector` recorder and exporting with
:func:`repro.observability.write_jsonl`::

    from repro.observability import TraceCollector, write_jsonl
    recorder = TraceCollector()
    MultiHopBroadcast(config, recorder=recorder).run()
    write_jsonl(recorder.events, "trace.jsonl")

The diff aligns ``"phase"`` events by execution order (two runs of the same
configuration execute the same schedule until something diverges), so it
pinpoints the first round/phase where e.g. ``pipeline=True`` and
``pipeline=False`` stop agreeing, and which measured field moved.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.observability import read_jsonl
from repro.observability.report import DEFAULT_DIFF_FIELDS, diff_traces, summarise_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="JSONL trace to summarise (or the diff's left side)")
    parser.add_argument("other", nargs="?", default=None, help="optional right side: diff mode")
    parser.add_argument(
        "--fields",
        default=None,
        help="comma-separated phase-event fields to compare in diff mode "
        f"(default: {','.join(DEFAULT_DIFF_FIELDS)})",
    )
    parser.add_argument(
        "--max-rows",
        type=int,
        default=40,
        help="maximum divergence rows to print in diff mode (default: 40)",
    )
    args = parser.parse_args()

    left = read_jsonl(args.trace)
    if args.other is None:
        print(summarise_trace(left))
        return
    right = read_jsonl(args.other)
    fields = (
        tuple(name.strip() for name in args.fields.split(",") if name.strip())
        if args.fields
        else None
    )
    print(diff_traces(left, right, fields=fields, max_rows=args.max_rows))


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly, devnull'ing
        # stdout so the interpreter's shutdown flush cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
