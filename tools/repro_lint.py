#!/usr/bin/env python3
"""CLI front-end for :mod:`repro.lint` — the determinism & invariant linter.

Usage::

    PYTHONPATH=src python tools/repro_lint.py src/repro          # lint a tree
    PYTHONPATH=src python tools/repro_lint.py --changed          # diff-aware
    PYTHONPATH=src python tools/repro_lint.py --json src/repro   # machine output
    PYTHONPATH=src python tools/repro_lint.py --list-rules       # the catalogue

Exit status: 0 when every violation is suppressed (with a reason), 1 when
unsuppressed violations remain, 2 on usage/configuration errors.  Human
output goes to stdout one finding per line (``path:line:col: RULE message``)
so editors and CI annotators can jump to it; ``--json`` emits the stable
schema from :func:`repro.lint.report_json` instead.

``--changed`` lints only Python files that differ from ``--base`` (default
``main``): the merge-base diff plus staged, unstaged, and untracked files,
intersected with the requested paths.  That keeps the gate O(diff) as the
tree grows; CI still runs the full-tree form.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint import (  # noqa: E402  - path bootstrap above
    LintConfig,
    lint_paths,
    registered_rules,
    report_json,
)
from repro.lint.framework import iter_python_files  # noqa: E402


def changed_files(base: str, repo_root: Path) -> Optional[Set[Path]]:
    """Python files differing from ``base``: merge-base diff + working tree.

    Returns None when git is unavailable or ``base`` cannot be resolved, in
    which case the caller falls back to linting everything (failing open on
    coverage, not on determinism).
    """

    def git_lines(*args: str) -> Optional[List[str]]:
        try:
            proc = subprocess.run(
                ["git", *args],
                cwd=repo_root,
                capture_output=True,
                text=True,
                timeout=30,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        return [line.strip() for line in proc.stdout.splitlines() if line.strip()]

    merge_base = git_lines("merge-base", base, "HEAD")
    if merge_base is None:
        return None
    listed: Set[str] = set()
    for args in (
        ("diff", "--name-only", merge_base[0], "HEAD"),
        ("diff", "--name-only"),
        ("diff", "--name-only", "--cached"),
        ("ls-files", "--others", "--exclude-standard"),
    ):
        lines = git_lines(*args)
        if lines is None:
            return None
        listed.update(lines)
    return {
        (repo_root / name).resolve()
        for name in listed
        if name.endswith(".py")
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument("--json", action="store_true", help="emit the machine-readable report")
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed vs --base (merge-base diff + working tree)",
    )
    parser.add_argument("--base", default="main", help="diff base for --changed (default: main)")
    parser.add_argument("--config", type=Path, default=None, help="explicit ini config path")
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalogue")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, cls in registered_rules().items():
            print(f"{rule_id}: {cls.title}")
            print(f"    {cls.rationale}")
        return 0

    paths = [Path(p) for p in (args.paths or [REPO_ROOT / "src" / "repro"])]
    for path in paths:
        if not path.exists():
            print(f"repro-lint: no such path: {path}", file=sys.stderr)
            return 2

    if args.config is not None:
        try:
            config = LintConfig.from_ini(args.config)
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
    else:
        config = LintConfig.discover(paths[0])

    if args.changed:
        changed = changed_files(args.base, REPO_ROOT)
        if changed is None:
            print(
                f"repro-lint: cannot diff against {args.base!r}; linting everything",
                file=sys.stderr,
            )
        else:
            requested = list(iter_python_files(paths))
            paths = [p for p in requested if p.resolve() in changed]
            if not paths:
                if args.json:
                    print(json.dumps(report_json([], 0), indent=2))
                else:
                    print(f"repro-lint: no python files changed vs {args.base}; nothing to do")
                return 0

    violations, files_checked = lint_paths(paths, config)
    unsuppressed = [v for v in violations if not v.suppressed]
    suppressed = [v for v in violations if v.suppressed]

    if args.json:
        print(json.dumps(report_json(violations, files_checked), indent=2))
    else:
        for violation in unsuppressed:
            print(violation.format())
        summary = (
            f"repro-lint: {files_checked} file(s), "
            f"{len(unsuppressed)} violation(s), {len(suppressed)} suppressed"
        )
        print(summary, file=sys.stderr)
    return 1 if unsuppressed else 0


if __name__ == "__main__":
    raise SystemExit(main())
