"""Setuptools entry point.

Kept explicit (rather than delegating to pyproject metadata) so that
``pip install -e .`` works in offline environments whose setuptools/pip
combination lacks PEP 660 editable-install support (it falls back to the
legacy ``setup.py develop`` code path).

The ``py.typed`` marker ships with the package so downstream type-checkers
(PEP 561) consume the annotations the mypy gate in ``setup.cfg`` enforces.
"""

from setuptools import find_packages, setup

setup(
    name="repro-gilberty12",
    description=(
        "Reproduction of Gilbert & Young, '(Near) Optimal Resource-Competitive "
        "Broadcast with Jamming' (PODC 2012)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy"],
)
