"""Setuptools entry point.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works in offline environments whose setuptools/pip
combination lacks PEP 660 editable-install support (it falls back to the
legacy ``setup.py develop`` code path).
"""

from setuptools import setup

setup()
