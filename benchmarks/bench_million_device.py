#!/usr/bin/env python3
"""Benchmark — one honest million-device multi-hop run.

The acceptance row for the pipelined-relay/cap-aware-truncation work: a
complete ``MultiHopBroadcast`` execution at ``n = 10⁶`` over a sparse-CSR
Gilbert graph, on one machine.  Three things make the row honest:

* **Pipelining** — the round keeps appending propagation steps while the
  frontier advances, so the message crosses the component inside a few
  rounds instead of needing ``~diameter`` rounds of geometrically growing
  length.
* **Cap-aware truncation** — infinite-budget stragglers the message can no
  longer reach are retired after each request phase, so the schedule ends
  when the run is decided instead of stalling to the round cap.
* **Sparse CSR adjacency** — the dense boolean matrix would need ~1 TiB at
  this size; the run asserts the realised adjacency stays under the
  ``--memory-ceiling`` (default 1 GiB).

Usage::

    PYTHONPATH=src python benchmarks/bench_million_device.py            # full row, n = 10⁶ (~8 min)
    PYTHONPATH=src python benchmarks/bench_million_device.py --smoke    # CI-sized, n = 5·10⁴ (~4 s)

Reference row (one machine, single process): n = 10⁶ informs all 1,000,000 nodes in
17 rounds / 9.1·10⁸ slots (the static cap schedule is 3.2·10¹¹ slots) with
217.7 MiB of CSR adjacency — 85 s build + 352 s run.
"""

from __future__ import annotations

import argparse
import time

from repro.core.broadcast import MultiHopBroadcast
from repro.simulation import Network, SimulationConfig, TopologySpec
from repro.simulation.topology import gilbert_connectivity_radius

GIB = float(1024 ** 3)

FULL_N = 1_000_000
SMOKE_N = 50_000


def fmt_bytes(num: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if num < 1024 or unit == "GiB":
            return f"{num:.1f} {unit}"
        num /= 1024
    return f"{num:.1f} GiB"


def cap_slots(protocol: MultiHopBroadcast) -> int:
    """Slots of the full static schedule up to the round cap."""

    start = protocol.params.start_round
    stop = protocol.params.resolved_max_round(protocol.config.n)
    return sum(protocol.schedule.round_length(i) for i in range(start, stop + 1))


def run(n: int, seed: int, memory_ceiling: float) -> None:
    radius = 2.0 * gilbert_connectivity_radius(n)
    print(f"== pipelined MultiHopBroadcast over a Gilbert graph at n = {n:,} ==")
    print(f"radius               : {radius:.5f} (2x connectivity threshold)")

    # Force the CSR backend so the smoke size exercises the same engine path
    # as the full-scale row (above the crossover the automatic choice picks
    # sparse anyway).
    config = SimulationConfig(
        n=n, seed=seed, topology=TopologySpec.gilbert(radius=radius, sparse=True)
    )
    build_start = time.perf_counter()
    network = Network(config)
    build_elapsed = time.perf_counter() - build_start
    adjacency_memory = network.topology_memory_bytes()
    dense_would_need = (n + 1) * (n + 1)

    protocol = MultiHopBroadcast(
        config, engine="fast", network=network, record_events=False
    )
    budget = cap_slots(protocol)
    run_start = time.perf_counter()
    outcome = protocol.run()
    run_elapsed = time.perf_counter() - run_start

    delivery = outcome.delivery
    print(f"backend              : {network.topology.backend}")
    print(f"build time           : {build_elapsed:.1f}s")
    print(f"run time             : {run_elapsed:.1f}s (full protocol, PhaseEngine)")
    print(f"rounds executed      : {delivery.rounds_executed}")
    print(f"slots simulated      : {delivery.slots_elapsed:,} "
          f"(cap schedule: {budget:,})")
    print(f"nodes informed       : {delivery.informed:,}")
    print(f"terminated uninformed: {delivery.terminated_uninformed:,}")
    print(f"mean node cost       : {outcome.mean_node_cost:.0f} slots")
    print(f"adjacency memory     : {fmt_bytes(adjacency_memory)} "
          f"(dense would need {fmt_bytes(dense_would_need)})")

    failures = []
    if adjacency_memory >= memory_ceiling:
        failures.append(
            f"adjacency memory {fmt_bytes(adjacency_memory)} exceeds the "
            f"{fmt_bytes(memory_ceiling)} ceiling"
        )
    if outcome.terminated_by_cap:
        failures.append("run stalled to the round cap — truncation regressed")
    if delivery.slots_elapsed >= budget:
        failures.append("schedule did not truncate below the static cap total")
    if delivery.informed == 0:
        failures.append("nobody informed — the relay pipeline went nowhere")
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        raise SystemExit(1)
    print("PASS: completed below the cap within the adjacency-memory ceiling")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"CI-sized run at n = {SMOKE_N:,} instead of the full {FULL_N:,}",
    )
    parser.add_argument("--n", type=int, default=None, help="explicit device count")
    parser.add_argument("--seed", type=int, default=20120717)
    parser.add_argument(
        "--memory-ceiling", type=float, default=GIB,
        help="adjacency-memory assertion threshold in bytes (default 1 GiB)",
    )
    args = parser.parse_args()
    n = args.n if args.n is not None else (SMOKE_N if args.smoke else FULL_N)
    run(n, args.seed, args.memory_ceiling)


if __name__ == "__main__":
    main()
