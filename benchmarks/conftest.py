"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one experiment (E1 … E10) from the
per-experiment index in DESIGN.md, prints the resulting table in the
EXPERIMENTS.md format, and reports its wall-clock cost through
pytest-benchmark.  Experiments are executed once per benchmark run (pedantic
mode) because a single execution already aggregates repeated protocol trials
internally.

Environment knobs:

* ``REPRO_BENCH_N`` — network size used by the benchmarks (default 256).
* ``REPRO_BENCH_TRIALS`` — repeated protocol trials per sweep point (default 2).
* ``REPRO_BENCH_FULL`` — set to ``1`` to disable the quick-mode sweep reduction.
* ``REPRO_JOBS`` — worker processes for each experiment's trial fan-out
  (default 1, i.e. serial; results are bit-identical either way).
* ``REPRO_CACHE_DIR`` — content-addressed trial store; re-running the same
  benchmark profile against a warm store skips every completed trial.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentSettings, render_result
from repro.experiments.registry import run_experiment


def bench_settings() -> ExperimentSettings:
    """Benchmark-profile experiment settings (overridable via environment).

    ``jobs``/``cache_dir`` are left at ``None`` so the runner resolves them
    from ``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` — the same env-threading the CI
    smoke uses to exercise the parallel and cache-warm paths.
    """

    return ExperimentSettings(
        n=int(os.environ.get("REPRO_BENCH_N", "256")),
        trials=int(os.environ.get("REPRO_BENCH_TRIALS", "2")),
        seed=2012,
        quick=os.environ.get("REPRO_BENCH_FULL", "0") != "1",
        engine="fast",
    )


def run_and_report(benchmark, experiment_id: str):
    """Run one registered experiment under pytest-benchmark and print its table."""

    settings = bench_settings()
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id, settings), rounds=1, iterations=1
    )
    print()
    print(render_result(result))
    benchmark.extra_info["experiment"] = experiment_id
    benchmark.extra_info["n"] = settings.n
    for key, value in result.summaries.items():
        benchmark.extra_info[key] = value
    return result


@pytest.fixture
def settings() -> ExperimentSettings:
    return bench_settings()
