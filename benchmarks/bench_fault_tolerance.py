#!/usr/bin/env python3
"""Benchmark — chaos-injected sweep execution recovering bit-identically.

Where ``bench_parallel_harness.py`` proves the runner's *happy* path (parallel
≡ serial, warm cache executes zero trials), this benchmark proves the fault
path: a sweep under deterministic chaos — worker crashes, a hung chunk, torn
cache entries — must **complete** and reproduce the fault-free serial tables
byte for byte.

The chaos mix, injected by a seeded
:class:`repro.experiments.faults.FaultInjector` at fixed (labels, trial)
coordinates:

* **two worker crashes** (``os._exit`` mid-chunk → ``BrokenProcessPool`` →
  pool respawn): one in E1's sweep, one in E3's — separate sweeps, so each
  crash deterministically fires on its unit's first dispatch;
* **one hung chunk** (a worker sleeping far past ``FaultPolicy.timeout_s``)
  in E2's sweep → watchdog kill + re-dispatch;
* **two torn cache entries** (E2's split scenarios, truncated after the
  parent's write) → the warm re-run must degrade them to misses and recompute
  exactly those trials.

Acceptance (the script exits non-zero on any failure):

1. every chaos-run experiment renders byte-identical to the fault-free
   ``jobs=1`` reference;
2. the runner's counters confirm the faults actually happened and were
   absorbed: ``worker_deaths ≥ 2``, ``timeouts ≥ 1``, ``quarantined == 0``;
3. a warm re-run against the chaos run's cache recomputes exactly the
   corrupted entries (and nothing else) and stays byte-identical.

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py           # full (n = 256)
    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py --smoke   # CI-sized (n = 64)
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time

from repro.experiments import ExperimentSettings, FaultInjector, FaultPolicy, render_result
from repro.experiments.faults import fault_scope
from repro.experiments.registry import run_experiment
from repro.experiments.runner import track_stats

EXPERIMENTS = ("E1", "E2", "E3")

# (labels, trial) coordinates; labels may be a prefix of a spec's label tuple.
# E1 and E3 each carry exactly one crash: a crash's pool breakage bumps the
# attempt counter of every in-flight unit, so two crash coordinates sharing
# one sweep could shadow each other — one per sweep keeps both deterministic.
CRASHES = ((("E1",), 0), (("E3", 128), 0))
HANGS = ((("E2", "no attack"), 0),)
CORRUPTIONS = ((("E2", "split 2% of n"), 0), (("E2", "split 10% of n"), 0))


def run_experiments(settings: ExperimentSettings) -> dict:
    return {eid: run_experiment(eid, settings) for eid in EXPERIMENTS}


def compare(label: str, reference: dict, candidate: dict) -> int:
    """Byte-identity over the rendered tables; returns diverging experiments."""

    failures = 0
    for eid in EXPERIMENTS:
        if render_result(candidate[eid]) != render_result(reference[eid]):
            print(f"FAIL {label}: {eid} diverges from the fault-free serial reference")
            failures += 1
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--n", type=int, default=None, help="network size per experiment")
    parser.add_argument("--trials", type=int, default=None, help="trials per sweep point")
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="chunk watchdog budget in seconds (default: 30, or 8 with --smoke)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run: n = 64, 1 trial"
    )
    args = parser.parse_args()

    n = args.n if args.n is not None else (64 if args.smoke else 256)
    trials = args.trials if args.trials is not None else (1 if args.smoke else 2)
    timeout_s = args.timeout if args.timeout is not None else (8.0 if args.smoke else 30.0)
    base = dict(n=n, trials=trials, quick=True, seed=2012)
    failures = 0

    print(f"== fault-free serial reference (n = {n}, trials = {trials}) ==")
    start = time.perf_counter()
    reference = run_experiments(ExperimentSettings(**base, jobs=1, cache_dir=""))
    print(f"reference: {time.perf_counter() - start:6.2f}s")

    injector = FaultInjector(
        seed=7,
        crashes=CRASHES,
        hangs=HANGS,
        corruptions=CORRUPTIONS,
        hang_s=600.0,
    )
    policy = FaultPolicy(timeout_s=timeout_s, max_retries=3, backoff_base_s=0.01)

    print(
        f"== chaos run: jobs = 2, {len(CRASHES)} crashes, {len(HANGS)} hang "
        f"(timeout_s = {timeout_s:g}), {len(CORRUPTIONS)} torn cache entries =="
    )
    cache_dir = tempfile.mkdtemp(prefix="repro-fault-cache-")
    try:
        chaos_settings = ExperimentSettings(
            **base,
            jobs=2,
            cache_dir=cache_dir,
            fault_policy=policy,
            fault_injector=injector,
        )
        start = time.perf_counter()
        with track_stats() as stats, fault_scope() as events:
            chaos = run_experiments(chaos_settings)
        elapsed = time.perf_counter() - start
        kinds = sorted({event.kind for event in events})
        print(
            f"chaos: {elapsed:6.2f}s   worker_deaths={stats.worker_deaths} "
            f"timeouts={stats.timeouts} retries={stats.retries} "
            f"quarantined={stats.quarantined}   events: {', '.join(kinds)}"
        )

        failures += compare("chaos", reference, chaos)
        if stats.worker_deaths < 2:
            print(f"FAIL chaos: worker_deaths={stats.worker_deaths} (expected >= 2)")
            failures += 1
        if stats.timeouts < 1:
            print(f"FAIL chaos: timeouts={stats.timeouts} (expected >= 1)")
            failures += 1
        if stats.quarantined != 0:
            print(f"FAIL chaos: quarantined={stats.quarantined} (expected 0)")
            failures += 1

        # -- warm re-run: only the torn entries may recompute ----------------
        print("== warm re-run against the chaos run's (partly torn) cache ==")
        warm_settings = ExperimentSettings(**base, jobs=2, cache_dir=cache_dir)
        start = time.perf_counter()
        with track_stats() as warm_stats:
            warm = run_experiments(warm_settings)
        print(
            f"warm: {time.perf_counter() - start:6.2f}s   "
            f"executed={warm_stats.executed} hits={warm_stats.cache_hits}"
        )
        failures += compare("warm", reference, warm)
        if warm_stats.executed != len(CORRUPTIONS):
            print(
                f"FAIL warm: executed {warm_stats.executed} trials "
                f"(expected exactly the {len(CORRUPTIONS)} torn entries)"
            )
            failures += 1
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    if failures:
        print(f"{failures} acceptance check(s) FAILED")
        return 1
    print("fault-tolerance benchmark: all acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
