"""Benchmark E6 — the general-k protocol: exponent 1/(k+1) and Θ(k) overhead (§3)."""

from __future__ import annotations

from conftest import run_and_report


def test_e6_general_k(benchmark):
    result = run_and_report(benchmark, "E6")
    # Every (k, T) row still delivers the message.
    assert all(row["delivery_fraction"] >= 0.9 for row in result.rows)
    # Resource competitiveness in absolute form, per k: at the largest spend
    # in its sweep a node pays less than Carol's total.  The per-k fitted
    # exponents are reported in the summary but not gated on: the Figure-2
    # constants (which scale with 1/ε') keep benchmark-scale sweeps largely in
    # the saturated regime, so the k-dependence of the exponent only emerges
    # as a trend at larger n (see EXPERIMENTS.md).
    ks = sorted({row["k"] for row in result.rows})
    for k in ks:
        rows = sorted((r for r in result.rows if r["k"] == k), key=lambda r: r["T_spent"])
        largest = rows[-1]
        assert largest["node_max_cost"] < largest["T_spent"]
