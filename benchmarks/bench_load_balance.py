"""Benchmark E4 — load balance between Alice and the correct nodes (§1, Lemma 11)."""

from __future__ import annotations

from conftest import run_and_report


def test_e4_load_balance(benchmark):
    result = run_and_report(benchmark, "E4")
    epsilon_rows = [row for row in result.rows if row["protocol"] == "epsilon-broadcast"]
    jammed = [row for row in epsilon_rows if row["scenario"] != "no jamming"]
    # Under jamming Alice never pays more than a small polylog multiple of a
    # node's cost (in practice she pays less: nodes shoulder the listening).
    assert all(row["alice_over_max"] < 50 for row in jammed)
    # The KSY-style baseline shows the imbalance the paper criticises.
    ksy = [row for row in result.rows if row["protocol"] == "ksy-style baseline"]
    assert all(row["alice_over_max"] < 0.2 for row in ksy)
