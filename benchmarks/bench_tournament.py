#!/usr/bin/env python3
"""Benchmark — the adversary-protocol tournament (E14) with acceptance checks.

Measures the tournament harness end to end and gates the properties the
leaderboard depends on:

1. **E14 smoke** — run the registered experiment at the benchmark profile
   (``REPRO_BENCH_N`` / ``REPRO_BENCH_TRIALS`` / ``REPRO_JOBS`` /
   ``REPRO_CACHE_DIR``, exactly as ``tools/assert_warm_cache.py`` will
   re-resolve them), printing the per-cell exponent table.
2. **Cell contract** — every cell carries a fitted exponent (finite, with a
   finite confidence interval) or one of the known flagged sentinels; an
   unknown flag or a NaN exponent on an unflagged cell fails the run.
3. **Parallel bit-identity** — a small tournament grid at ``jobs = J`` must
   equal the ``jobs = 1`` grid field-for-field (cache off), mirroring the
   registry-wide guarantee of ``bench_parallel_harness.py``.
4. **Worst-case search acceptance** — the deterministic parameter search,
   seeded by the hand-picked roster configuration, must report a
   configuration at least as costly for the protocol as that hand-picked
   cell, with every proposed parameter inside its declared bounds.

Usage::

    PYTHONPATH=src python benchmarks/bench_tournament.py            # bench profile
    PYTHONPATH=src python benchmarks/bench_tournament.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_tournament.py --smoke --jobs 2
"""

from __future__ import annotations

import argparse
import dataclasses
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from conftest import bench_settings  # noqa: E402

from contextlib import nullcontext  # noqa: E402

from repro.experiments import ExperimentSettings, render_result  # noqa: E402
from repro.experiments.registry import run_experiment  # noqa: E402
from repro.experiments.runner import progress_scope, track_stats  # noqa: E402
from repro.observability import CliProgressRenderer  # noqa: E402
from repro.tournament import (  # noqa: E402
    TournamentCell,
    adversary_roster,
    optimise_cell,
    run_tournament,
    tournament_cells,
)

KNOWN_FLAGS = {"ok", "flat-cost", "degenerate-spend-range", "insufficient-points", "zero-cost"}

SEARCH_CELL = TournamentCell("static_disk", "mh-sequential", "gilbert-near")
"""The acceptance cell: E12's hand-picked static disk on the sequential
multi-hop schedule, where the spend cap binds."""


def check_cell_contract(result) -> int:
    """Every E14 row: a usable exponent or a known sentinel.  Returns failures."""

    failures = 0
    for row in result.rows:
        flag = row["flag"]
        if flag not in KNOWN_FLAGS:
            print(f"FAIL cell contract: unknown flag {flag!r} in {row['adversary']}")
            failures += 1
        elif flag == "ok" and not (
            math.isfinite(row["node_exponent"])
            and math.isfinite(row["ci_low"])
            and math.isfinite(row["ci_high"])
        ):
            print(
                f"FAIL cell contract: unflagged cell without a finite fit: "
                f"{row['adversary']} x {row['protocol']} x {row['topology']}"
            )
            failures += 1
    return failures


def check_parallel_identity(n: int, trials: int, jobs: int) -> int:
    """Small-grid tournament: jobs = J must equal jobs = 1 bit-for-bit."""

    grid = tournament_cells(
        adversaries=["budget_blocker", "bursty", "reactive_disk"],
        protocols=["eps-broadcast", "mh-degree-aware"],
        topologies=["single-hop", "gilbert-near"],
    )
    base = dict(n=n, trials=trials, quick=True, seed=7, cache_dir="")
    serial = run_tournament(ExperimentSettings(**base, jobs=1), cells=grid)
    parallel = run_tournament(ExperimentSettings(**base, jobs=jobs), cells=grid)
    # repr round-trips floats exactly and renders NaN (flagged fits) as a
    # comparable token, unlike ==, where nan != nan would flag identical runs.
    if repr(serial) != repr(parallel):
        print(f"FAIL parallel identity: jobs={jobs} tournament diverges from jobs=1")
        return 1
    print(f"parallel identity: jobs={jobs} grid of {len(grid)} cells matches jobs=1")
    return 0


def check_search_acceptance(n: int, trials: int) -> int:
    """The optimiser must match/beat the hand-picked cell, inside bounds."""

    failures = 0
    settings = ExperimentSettings(n=n, trials=trials, quick=True, seed=2012, cache_dir="")
    result = optimise_cell(SEARCH_CELL, settings)
    print(
        f"search {result.cell.key}: hand-picked {result.baseline_score:.1f} -> "
        f"optimised {result.best_score:.1f} ({result.evaluations} evaluations, "
        f"ratio {result.improvement:.2f})"
    )
    if not result.beats_hand_picked():
        print("FAIL search acceptance: optimised configuration scores below hand-picked")
        failures += 1
    specs = adversary_roster()[SEARCH_CELL.adversary](None).tunable_parameters()
    for params, _score in result.history:
        for name, value in params:
            if not specs[name].contains(value):
                print(f"FAIL search acceptance: proposed {name}={value} outside bounds")
                failures += 1
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized acceptance run")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the E14 run and the identity check (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render a live progress line on stderr during the E14 grid "
        "(off by default; acceptance output is unchanged either way)",
    )
    args = parser.parse_args()

    failures = 0

    # -- 1: E14 at the benchmark profile (fills REPRO_CACHE_DIR when set) ---
    settings = bench_settings()
    if args.jobs is not None:
        settings = dataclasses.replace(settings, jobs=args.jobs)
    renderer = CliProgressRenderer(label="E14") if args.progress else None
    follower = progress_scope(renderer) if renderer is not None else nullcontext()
    start = time.perf_counter()
    with follower:
        with track_stats() as stats:
            result = run_experiment("E14", settings)
    if renderer is not None:
        renderer.finish()
    elapsed = time.perf_counter() - start
    print(render_result(result))
    print(
        f"E14 (n={settings.n}, trials={settings.trials}, jobs={settings.resolved_jobs}): "
        f"{elapsed:.2f}s, {stats.executed} trials executed, {stats.cache_hits} cache hits"
    )

    # -- 2: cell contract ----------------------------------------------------
    failures += check_cell_contract(result)

    # -- 3 & 4: identity + search at a fixed small profile -------------------
    ident_n, ident_trials = (64, 1) if args.smoke else (96, 2)
    failures += check_parallel_identity(ident_n, ident_trials, jobs=args.jobs or 2)
    failures += check_search_acceptance(ident_n, ident_trials)

    if failures:
        print(f"bench_tournament: {failures} acceptance check(s) FAILED")
        return 1
    print("bench_tournament: all acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
