#!/usr/bin/env python3
"""Benchmark — sparse (CSR) topology scaling versus the dense adjacency path.

Two measurements, matching the large-n acceptance criteria of the sparse
reachability refactor:

1. **Construction sweep**: build Gilbert (and scale-free) graphs at sizes up
   to ``--max-n`` with the grid-indexed CSR backend, reporting wall time,
   edge count, and resident adjacency memory, against the Θ(n²) bytes the
   dense boolean matrix would need (built for real up to ``--dense-limit``,
   extrapolated above it).
2. **Engine run**: one complete ``MultiHopBroadcast`` execution on a Gilbert
   graph at ``--engine-n`` (default 10⁵) under the vectorised
   :class:`~repro.simulation.fastengine.PhaseEngine`, verifying that peak
   adjacency memory stays under 1 GiB — the dense matrix alone would need
   ~10 GiB at that size, before the engine's own Θ(n·slots) indicator
   matrices are even allocated.

Usage::

    PYTHONPATH=src python benchmarks/bench_sparse_topology.py            # full sweep (~3 min)
    PYTHONPATH=src python benchmarks/bench_sparse_topology.py --quick    # CI-sized smoke

Delivery note: with pipelined relay rounds (the `MultiHopBroadcast` default)
the frontier crosses the whole giant component within a round, so the run
delivers to essentially every node; `benchmarks/bench_million_device.py`
is the dedicated large-`n` delivery row, this benchmark's engine run is
primarily the adjacency-memory assertion.
"""

from __future__ import annotations

import argparse
import time
import tracemalloc

import numpy as np

from repro.simulation.topology import (
    GilbertGraph,
    ScaleFreeGilbert,
    gilbert_connectivity_radius,
)

GIB = float(1024 ** 3)


def fmt_bytes(num: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if num < 1024 or unit == "GiB":
            return f"{num:.1f} {unit}"
        num /= 1024
    return f"{num:.1f} GiB"


def dense_bytes(n: int) -> int:
    """Bytes of the (n+1)² boolean adjacency the dense backend would hold."""

    return (n + 1) * (n + 1)


def build_once(kind: str, n: int, sparse: bool, seed: int):
    rng = np.random.default_rng(seed)
    tracemalloc.start()
    start = time.perf_counter()
    if kind == "gilbert":
        topo = GilbertGraph.sample(
            n, 2.0 * gilbert_connectivity_radius(n), rng, sparse=sparse
        )
    else:
        topo = ScaleFreeGilbert.sample(
            n, 2.5, gilbert_connectivity_radius(n), rng, sparse=sparse
        )
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return topo, elapsed, peak


def construction_sweep(sizes, dense_limit: int, seed: int) -> None:
    print("== construction sweep: grid-indexed CSR vs dense all-pairs ==")
    header = (
        f"{'kind':<11} {'n':>8} {'backend':<7} {'build':>8} {'mean deg':>9} "
        f"{'adjacency':>11} {'build peak':>11} {'dense would need':>17}"
    )
    print(header)
    print("-" * len(header))
    for kind in ("gilbert", "scale_free"):
        for n in sizes:
            rows = [("sparse", True)]
            if n <= dense_limit:
                rows.append(("dense", False))
            for label, sparse in rows:
                topo, elapsed, peak = build_once(kind, n, sparse, seed)
                mean_deg = float(topo.degrees().mean())
                print(
                    f"{kind:<11} {n:>8} {label:<7} {elapsed:>7.2f}s {mean_deg:>9.1f} "
                    f"{fmt_bytes(topo.memory_bytes()):>11} {fmt_bytes(peak):>11} "
                    f"{fmt_bytes(dense_bytes(n)):>17}"
                )
    print()


def engine_run(n: int, seed: int) -> None:
    from repro.core.broadcast import MultiHopBroadcast
    from repro.simulation import Network, SimulationConfig, TopologySpec

    print(f"== PhaseEngine multi-hop run over a GilbertGraph at n = {n:,} ==")
    radius = 2.0 * gilbert_connectivity_radius(n)
    # Force the CSR backend so small smoke sizes exercise the same engine
    # path as the full-scale run (above the crossover `sparse=True` is what
    # the automatic choice picks anyway).
    config = SimulationConfig(
        n=n, seed=seed, topology=TopologySpec.gilbert(radius=radius, sparse=True)
    )
    build_start = time.perf_counter()
    network = Network(config)
    build_elapsed = time.perf_counter() - build_start
    adjacency_memory = network.topology_memory_bytes()

    run_start = time.perf_counter()
    outcome = MultiHopBroadcast(
        config, engine="fast", network=network, record_events=False
    ).run()
    run_elapsed = time.perf_counter() - run_start

    print(f"backend              : {network.topology.backend}")
    print(f"build time           : {build_elapsed:.1f}s")
    print(f"run time             : {run_elapsed:.1f}s (full protocol, PhaseEngine)")
    print(f"rounds executed      : {outcome.delivery.rounds_executed}")
    print(f"slots simulated      : {outcome.delivery.slots_elapsed:,}")
    print(f"nodes informed       : {outcome.delivery.informed:,}")
    print(f"mean node cost       : {outcome.mean_node_cost:.0f} slots")
    print(f"adjacency memory     : {fmt_bytes(adjacency_memory)}")
    print(f"dense would need     : {fmt_bytes(dense_bytes(n))} "
          f"(x{dense_bytes(n) / max(adjacency_memory, 1):.0f})")
    ok = adjacency_memory < GIB
    print(f"peak adjacency < 1 GiB: {'PASS' if ok else 'FAIL'}")
    if not ok:
        raise SystemExit(1)
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--max-n", type=int, default=200_000,
                        help="largest network size in the construction sweep")
    parser.add_argument("--engine-n", type=int, default=100_000,
                        help="network size for the full PhaseEngine run")
    parser.add_argument("--dense-limit", type=int, default=4_000,
                        help="build the dense backend for comparison up to this n")
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized smoke (max-n 20k, engine-n 20k)")
    args = parser.parse_args()
    if args.quick:
        args.max_n = min(args.max_n, 20_000)
        args.engine_n = min(args.engine_n, 20_000)

    sizes = [2_000, 10_000, 50_000, 100_000, 200_000]
    sizes = sorted({min(s, args.max_n) for s in sizes if s <= args.max_n} | {args.max_n})
    construction_sweep(sizes, dense_limit=args.dense_limit, seed=args.seed)
    engine_run(args.engine_n, seed=args.seed)
    print("bench_sparse_topology: all checks passed")


if __name__ == "__main__":
    main()
