"""Benchmark E9 — jamming-strategy ablation at equal spend (§2 discussion)."""

from __future__ import annotations

from conftest import run_and_report


def test_e9_adversary_ablation(benchmark):
    result = run_and_report(benchmark, "E9")
    rows = {row["strategy"]: row for row in result.rows}
    # No non-reactive strategy defeats delivery.
    for name, row in rows.items():
        if name != "reactive":
            assert row["delivery_fraction"] >= 0.9
    # Oblivious jamming (random) buys less delay than targeted phase blocking.
    assert rows["phase_blocker"]["slots"] >= rows["random"]["slots"]
