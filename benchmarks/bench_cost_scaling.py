"""Benchmark E1 — per-device cost versus adversary spend T (Theorem 1, k = 2).

Regenerates the cost-versus-T sweep with the reference phase-blocking attacker
and reports the fitted Alice/node cost exponents against the predicted
``1/(k+1) = 1/3``.
"""

from __future__ import annotations

from conftest import run_and_report


def test_e1_cost_scaling(benchmark):
    result = run_and_report(benchmark, "E1")
    # Costs must respond strongly sublinearly to the adversary's spend.
    node_exponent = result.summaries.get("node_exponent")
    assert node_exponent is None or node_exponent < 0.9
    # Delivery holds at every spend level in the sweep.
    assert all(row["delivery_fraction"] >= 0.9 for row in result.rows)
