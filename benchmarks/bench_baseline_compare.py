"""Benchmark E5 — ε-Broadcast vs naive, KSY-style, and balanced-backoff baselines (§1, §1.2)."""

from __future__ import annotations

from conftest import run_and_report


def test_e5_baseline_compare(benchmark):
    result = run_and_report(benchmark, "E5")
    summaries = result.summaries
    # The naive strategy's node cost tracks T (exponent ≈ 1); ε-Broadcast's is
    # much smaller; the prior art (KSY) protects only the sender.
    assert summaries["naive_node_exponent"] > 0.85
    assert summaries["ksy_node_exponent"] > 0.85
    assert summaries["epsilon-broadcast_node_exponent"] < summaries["naive_node_exponent"] - 0.2
    # At the largest adversary spend ε-Broadcast beats the naive strategy on
    # both sides of the load: its receivers pay a fraction of naive's, and its
    # sender pays no more than naive's sender.
    largest_T = max(row["T_spent"] for row in result.rows)
    at_largest = {row["protocol"]: row for row in result.rows if row["T_spent"] == largest_T}
    assert at_largest["epsilon-broadcast"]["node_max_cost"] < 0.8 * at_largest["naive"]["node_max_cost"]
    assert at_largest["epsilon-broadcast"]["alice_cost"] < at_largest["naive"]["alice_cost"]
