"""Benchmark E8 — running with only a polynomial overestimate of n (§4.2)."""

from __future__ import annotations

from conftest import run_and_report


def test_e8_size_estimate(benchmark):
    result = run_and_report(benchmark, "E8")
    # Delivery is preserved under every estimate.
    assert all(row["delivery_fraction"] >= 0.99 for row in result.rows)
    # The measured latency inflation tracks the predicted O(lg ν) factor.
    for row in result.rows:
        assert row["latency_inflation"] <= 2.0 * row["predicted_factor"] + 0.5
