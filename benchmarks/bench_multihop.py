"""Benchmark E11 — multi-hop delivery over Gilbert graphs (connectivity threshold)."""

from __future__ import annotations

from conftest import run_and_report


def test_e11_multihop(benchmark):
    result = run_and_report(benchmark, "E11")
    rows = {row["scenario"]: row for row in result.rows}

    sub = [row for name, row in rows.items() if "0.6·r_c" in name]
    near = [row for name, row in rows.items() if "1.3·r_c" in name and "jam" not in name]
    sup = [row for name, row in rows.items() if ("2.5·r_c" in name or "3·r_c" in name) and "jam" not in name]
    assert sub and near and sup

    # Below the connectivity threshold the graph fragments: only a small
    # fraction of the network is even reachable from Alice.
    assert all(row["reachable_fraction"] < 0.8 for row in sub)
    # Well above it the giant component spans (essentially) everyone and
    # multi-hop relaying reaches most of it.
    assert all(row["reachable_fraction"] > 0.9 for row in sup)
    assert all(row["delivery_vs_reachable"] > 0.7 for row in sup)
    # Delivery can never exceed what the radio graph reaches.
    assert all(row["delivery_fraction"] <= row["reachable_fraction"] + 1e-9 for row in result.rows)

    # Quiet-rule acceptance, both misfire directions (see E13 for the full
    # ablation).  Direction 1: near the threshold the degree-aware default
    # must not give up ahead of the relay frontier — delivery-vs-reachable
    # stays ~1 where the paper rule dipped to ~0.9.
    assert all(row["delivery_vs_reachable"] >= 0.9 for row in near)
    # Direction 2: sub-threshold Alice-less components stop on their budgets
    # instead of running to the round cap (the paper rule's mean_node_cost
    # here was ~15000).
    assert all(row["mean_node_cost"] <= 5000 for row in sub)
