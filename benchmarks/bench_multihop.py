"""Benchmark E11 — multi-hop delivery over Gilbert graphs (connectivity threshold)."""

from __future__ import annotations

from conftest import run_and_report


def test_e11_multihop(benchmark):
    result = run_and_report(benchmark, "E11")
    rows = {row["scenario"]: row for row in result.rows}

    sub = [row for name, row in rows.items() if "0.6·r_c" in name]
    sup = [row for name, row in rows.items() if ("2.5·r_c" in name or "3·r_c" in name) and "jam" not in name]
    assert sub and sup

    # Below the connectivity threshold the graph fragments: only a small
    # fraction of the network is even reachable from Alice.
    assert all(row["reachable_fraction"] < 0.8 for row in sub)
    # Well above it the giant component spans (essentially) everyone and
    # multi-hop relaying reaches most of it.
    assert all(row["reachable_fraction"] > 0.9 for row in sup)
    assert all(row["delivery_vs_reachable"] > 0.7 for row in sup)
    # Delivery can never exceed what the radio graph reaches.
    assert all(row["delivery_fraction"] <= row["reachable_fraction"] + 1e-9 for row in result.rows)
