"""Benchmark E7 — reactive jamming and the decoy-traffic countermeasure (§4.1, Lemma 19)."""

from __future__ import annotations

from conftest import run_and_report


def test_e7_reactive(benchmark):
    result = run_and_report(benchmark, "E7")
    plain = [row for row in result.rows if row["scenario"].startswith("plain")]
    decoy = [row for row in result.rows if row["scenario"].startswith("decoy + reactive")]
    # Without decoys the reactive jammer suppresses delivery whenever her
    # budget suffices (the f = 1/24 row; at benchmark scale the f = 1/48
    # budget is too small to outlast Alice, which is itself on-message).
    assert any(row["delivery_fraction"] < 0.5 for row in plain)
    # With decoys delivery recovers and Carol pays a multiple of Alice's cost,
    # whereas against the plain protocol she pays less than Alice does.
    assert all(row["delivery_fraction"] >= 0.9 for row in decoy)
    assert all(row["carol_over_alice"] > 1.0 for row in decoy)
    assert max(row["carol_over_alice"] for row in plain) < min(
        row["carol_over_alice"] for row in decoy
    )
