"""Benchmark E10 — request-phase spoofing / termination-delay attacks (§2.2, Lemmas 4-7)."""

from __future__ import annotations

from conftest import run_and_report


def test_e10_spoofing(benchmark):
    result = run_and_report(benchmark, "E10")
    # Spoofing can delay termination but never prevents delivery.
    assert all(row["delivery_fraction"] >= 0.99 for row in result.rows)
    # Alice's cost grows only sublinearly in the spoofer's spend.
    exponent = result.summaries.get("alice_exponent_vs_spoof_spend")
    assert exponent is None or exponent < 0.8
    # Delay (in rounds) grows with spend.
    rounds = [row["alice_terminated_round"] for row in result.rows]
    assert rounds == sorted(rounds)
