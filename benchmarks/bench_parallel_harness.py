#!/usr/bin/env python3
"""Benchmark — parallel, cache-aware experiment execution (the runner itself).

Where every other ``bench_*.py`` measures one experiment, this one measures
the machinery that runs them all: the process-pool trial fan-out and the
content-addressed trial store of :mod:`repro.experiments.runner` /
:mod:`repro.experiments.cache`.

Three measurements over the **full quick registry** (E1 … E12):

1. **Speedup vs jobs** — total registry wall-clock at each worker count,
   with the trial cache off.  The workload is embarrassingly parallel
   (sweep point × trial grids of independent seeds), so wall-clock should
   fall roughly linearly until the sweep widths run out.
2. **Bit-identity** — every jobs level must reproduce the serial rows,
   summaries, and notes field-for-field; the script exits non-zero on any
   divergence (this is the acceptance criterion that makes the parallel
   path trustworthy).
3. **Cold vs warm cache** — one registry run against an empty store, then
   the same run again: the warm pass must execute **zero** trials (checked
   via the runner's execution counters) and beat the cold pass by a wide
   margin (≥ 5× on the full profile, ≥ 2× in ``--smoke``, where fixed
   per-experiment overhead dominates the tiny trial grid).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_harness.py            # full (n = 256)
    PYTHONPATH=src python benchmarks/bench_parallel_harness.py --smoke    # CI-sized (n = 64)
    PYTHONPATH=src python benchmarks/bench_parallel_harness.py --jobs 1,2,4,8
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time

from contextlib import nullcontext

from repro.experiments import ExperimentSettings
from repro.experiments.registry import experiment_ids, run_experiment
from repro.experiments.runner import EXECUTION_STATS, progress_scope
from repro.observability import CliProgressRenderer


def run_registry(settings: ExperimentSettings) -> dict:
    """Run every registered experiment; results keyed by experiment id."""

    return {eid: run_experiment(eid, settings) for eid in experiment_ids()}


def compare_registries(label: str, reference: dict, candidate: dict) -> int:
    """Field-for-field comparison; returns the number of diverging experiments."""

    failures = 0
    for eid in experiment_ids():
        ref, cand = reference[eid], candidate[eid]
        if (
            cand.rows != ref.rows
            or cand.summaries != ref.summaries
            or cand.notes != ref.notes
        ):
            print(f"FAIL {label}: {eid} diverges from the serial reference")
            failures += 1
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--n", type=int, default=None, help="network size per experiment")
    parser.add_argument("--trials", type=int, default=None, help="trials per sweep point")
    parser.add_argument(
        "--jobs",
        default=None,
        help="comma-separated worker counts for the speedup sweep (default 1,2,4)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run: n = 64, 1 trial, jobs 1,2"
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render a live progress line on stderr per registry pass "
        "(off by default; measurements and acceptance output are unchanged)",
    )
    args = parser.parse_args()

    n = args.n if args.n is not None else (64 if args.smoke else 256)
    trials = args.trials if args.trials is not None else (1 if args.smoke else 2)
    if args.jobs is not None:
        jobs_sweep = [int(j) for j in str(args.jobs).split(",")]
    else:
        jobs_sweep = [1, 2] if args.smoke else [1, 2, 4]
    min_warm_speedup = 2.0 if args.smoke else 5.0

    base = dict(n=n, trials=trials, quick=True, seed=2012)
    failures = 0

    def registry_pass(label: str, settings: ExperimentSettings) -> dict:
        """One full-registry run, optionally followed by a live progress line."""

        renderer = CliProgressRenderer(label=label) if args.progress else None
        follower = progress_scope(renderer) if renderer is not None else nullcontext()
        with follower:
            results = run_registry(settings)
        if renderer is not None:
            renderer.finish()
        return results

    # -- 1 & 2: speedup vs jobs, with bit-identity against the serial rows --
    print(f"== registry speedup vs jobs (n = {n}, trials = {trials}, cache off) ==")
    reference = None
    serial_seconds = None
    for jobs in jobs_sweep:
        settings = ExperimentSettings(**base, jobs=jobs, cache_dir="")
        start = time.perf_counter()
        results = registry_pass(f"jobs={jobs}", settings)
        elapsed = time.perf_counter() - start
        if reference is None:
            reference, serial_seconds = results, elapsed
            print(f"jobs={jobs}: {elapsed:6.2f}s (serial reference)")
        else:
            failures += compare_registries(f"jobs={jobs}", reference, results)
            print(f"jobs={jobs}: {elapsed:6.2f}s (speedup {serial_seconds / elapsed:.2f}x)")

    # -- 3: cold vs warm trial cache ----------------------------------------
    print("== content-addressed trial cache, cold vs warm ==")
    cache_dir = tempfile.mkdtemp(prefix="repro-trial-cache-")
    try:
        settings = ExperimentSettings(**base, jobs=jobs_sweep[-1], cache_dir=cache_dir)
        start = time.perf_counter()
        cold = registry_pass("cache-cold", settings)
        cold_seconds = time.perf_counter() - start

        before = EXECUTION_STATS.snapshot()
        start = time.perf_counter()
        warm = registry_pass("cache-warm", settings)
        warm_seconds = time.perf_counter() - start
        delta = EXECUTION_STATS.since(before)

        speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
        print(
            f"cold: {cold_seconds:6.2f}s   warm: {warm_seconds:6.2f}s   "
            f"speedup {speedup:.1f}x   warm executed={delta.executed} "
            f"hits={delta.cache_hits}"
        )
        failures += compare_registries("cache-warm", cold, warm)
        if reference is not None:
            failures += compare_registries("cache-cold", reference, cold)
        if delta.executed != 0:
            print(f"FAIL cache-warm: re-run executed {delta.executed} trials (expected 0)")
            failures += 1
        if speedup < min_warm_speedup:
            print(
                f"FAIL cache-warm: speedup {speedup:.1f}x below the "
                f"{min_warm_speedup:.0f}x acceptance threshold"
            )
            failures += 1
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    if failures:
        print(f"{failures} acceptance check(s) FAILED")
        return 1
    print("parallel-harness benchmark: all acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
