"""Benchmark E13 — quiet-rule ablation (termination policies on sparse graphs).

The acceptance checks guard both quiet-rule misfire directions at once:
sub-threshold cost must stay within 2× of the uniform retry-cap reference
(and far below the paper rule's run-to-the-cap blowup), while near-threshold
delivery-vs-reachable must stay ≈ 1 — which the uniform cap destroys.
"""

from __future__ import annotations

from conftest import run_and_report


def test_e13_quiet_rule_ablation(benchmark):
    result = run_and_report(benchmark, "E13")
    summaries = result.summaries

    # Direction 2 (sub-threshold blowup): no retry cap configured, yet the
    # degree-aware default lands within 2x of the constant-R reference and
    # multiples below the paper rule.
    assert summaries["sub_cost_degree_vs_constant"] <= 2.0
    assert summaries["sub_cost_paper_vs_degree"] >= 4.0

    # Direction 1 (near-threshold early give-up): delivery-vs-reachable stays
    # high under the degree-aware rule, never below the uniform cap, and
    # within a hair of the paper rule wherever the paper rule does not dip
    # itself.  Pipelined relay rounds closed most of the constant rule's old
    # near-threshold deficit (delivery now needs far fewer request phases,
    # so a uniform budget rarely binds before the frontier arrives), which
    # is why the degree-vs-constant gate is dominance rather than the former
    # +0.2 margin; the degree rule's remaining edge is the profile-dependent
    # tail the absolute floor below guards.
    assert summaries["near_dvr_degree"] >= 0.85
    assert summaries["near_dvr_degree"] >= summaries["near_dvr_constant"]
    assert summaries["near_dvr_degree"] >= summaries["near_dvr_paper"] - 0.03

    # Sub-threshold reachable nodes (Alice's own small components) are never
    # starved: the source-neighbourhood protection keeps them patient.
    sub_degree = [
        row
        for row in result.rows
        if row["scenario"].startswith("sub") and "default" in row["rule"]
    ]
    assert sub_degree and all(row["delivery_vs_reachable"] >= 0.99 for row in sub_degree)
