"""Benchmark E2 — delivery fraction under worst-case n-uniform attacks (Lemma 8, §2.3)."""

from __future__ import annotations

from conftest import run_and_report


def test_e2_delivery(benchmark):
    result = run_and_report(benchmark, "E2")
    rows = {row["scenario"]: row for row in result.rows}
    # Without a stranding attack everyone is informed.
    assert rows["no attack"]["delivery_fraction"] == 1.0
    assert rows["blocker (full budget)"]["delivery_fraction"] >= 0.99
    # Stranding anyone costs Carol a large fraction of her total budget.
    split_rows = [row for name, row in rows.items() if name.startswith("split")]
    assert all(row["carol_budget_fraction"] > 0.5 for row in split_rows)
