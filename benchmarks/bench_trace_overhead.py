#!/usr/bin/env python3
"""Benchmark — the cost of the run-trace telemetry layer, with acceptance gates.

The observability layer's contract is "near-zero when off, cheap when on":
every producer guards event construction behind one ``recorder.enabled``
attribute read, so an untraced run pays essentially nothing, and a traced run
pays only per-phase event construction (phases number in the tens to
hundreds, against millions of sampled slot outcomes).

This benchmark measures both claims on two representative workloads —
a single-hop run and a sparse multi-hop Gilbert run — and **fails** if either
is violated:

1. **Null-recorder overhead < 5%** — running with the default
   :data:`~repro.observability.trace.NULL_RECORDER` (or an explicitly passed
   :class:`~repro.observability.trace.NullRecorder`) must cost within 5% of
   the pre-telemetry baseline.  Baseline and null-recorder runs execute the
   *identical* code path, so this bound is a pure noise ceiling; variants are
   interleaved per repetition and compared on min-of-reps to keep scheduler
   jitter out of the ratio.
2. **Recording overhead bounded** — running with a live
   :class:`~repro.observability.trace.TraceCollector` must stay within 50% of
   baseline (in practice it is a few percent; the generous bound keeps the
   gate meaningful without flaking on loaded CI runners).

Usage::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py            # full
    PYTHONPATH=src python benchmarks/bench_trace_overhead.py --smoke    # CI-sized
"""

from __future__ import annotations

import argparse
import gc
import statistics
import sys
import time

from repro.core.broadcast import EpsilonBroadcast, MultiHopBroadcast
from repro.observability import NullRecorder, TraceCollector
from repro.simulation.config import SimulationConfig
from repro.simulation.topology import TopologySpec

NULL_OVERHEAD_LIMIT = 0.05
RECORD_OVERHEAD_LIMIT = 0.50
MAX_ATTEMPTS = 3


def _workloads(smoke: bool):
    """(name, factory, batch) triples; each factory call builds one fresh run.

    ``batch`` runs are timed as one sample: single runs finish in a few
    milliseconds, far too short for a stable 5% gate, so each sample times a
    batch of seed-varied runs (construction excluded) to amortise timer and
    scheduler noise.
    """

    n_single = 1024 if smoke else 2048
    n_multi = 500 if smoke else 900
    batch_single = 8 if smoke else 12
    batch_multi = 3 if smoke else 5

    def single_hop(recorder, seed):
        kwargs = {"recorder": recorder} if recorder is not None else {}
        return EpsilonBroadcast(SimulationConfig(n=n_single, seed=seed), **kwargs)

    def multi_hop(recorder, seed):
        kwargs = {"recorder": recorder} if recorder is not None else {}
        spec = TopologySpec.gilbert(radius=0.12, sparse=True)
        return MultiHopBroadcast(
            SimulationConfig(n=n_multi, seed=seed, topology=spec), **kwargs
        )

    return [
        ("single-hop", single_hop, batch_single),
        ("multi-hop-sparse", multi_hop, batch_multi),
    ]


VARIANTS = (
    ("baseline", lambda: None),  # no recorder argument at all
    ("null-recorder", NullRecorder),  # explicitly passed no-op sink
    ("recording", TraceCollector),  # live in-memory collection
)


def measure(factory, batch: int, reps: int) -> dict:
    """Paired overhead ratios vs baseline, median across reps.

    Each rep times all three variants back to back on identical work, then
    compares *within the rep* — pairing cancels the slow drift (CPU scaling,
    noisy neighbours) that makes absolute min-of-reps timings unstable on
    shared runners.  GC is paused around each timed batch so collection of a
    previous variant's garbage is not billed to the next one.  Only ``run()``
    is timed — construction (topology sampling, budget tables) is identical
    across variants and would only dilute the measured ratio.
    """

    per_rep = []
    for _ in range(reps):
        rep = {}
        for name, make_recorder in VARIANTS:
            orchestrators = [
                factory(make_recorder(), seed=2012 + i) for i in range(batch)
            ]
            gc.collect()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                start = time.perf_counter()
                for orchestrator in orchestrators:
                    orchestrator.run()
                rep[name] = time.perf_counter() - start
            finally:
                if gc_was_enabled:
                    gc.enable()
        per_rep.append(rep)
    return {
        "baseline": min(rep["baseline"] for rep in per_rep),
        "null-ratio": statistics.median(
            rep["null-recorder"] / rep["baseline"] - 1.0 for rep in per_rep
        ),
        "record-ratio": statistics.median(
            rep["recording"] / rep["baseline"] - 1.0 for rep in per_rep
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized acceptance run")
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        help="repetitions per (workload, variant); min is reported (default 7, 5 in --smoke)",
    )
    args = parser.parse_args()
    reps = args.reps if args.reps is not None else (5 if args.smoke else 7)

    failures = 0
    for name, factory, batch in _workloads(args.smoke):
        # Shared runners spike; a gate this tight gets up to three attempts
        # before a violation counts (a real regression fails all three).
        for attempt in range(1, MAX_ATTEMPTS + 1):
            timings = measure(factory, batch, reps)
            null_ratio = timings["null-ratio"]
            record_ratio = timings["record-ratio"]
            print(
                f"{name}: baseline {timings['baseline'] * 1000:.1f}ms  "
                f"null {null_ratio:+.1%}  recording {record_ratio:+.1%}  "
                f"[batch of {batch}, median-ratio of {reps}, attempt {attempt}]"
            )
            if null_ratio <= NULL_OVERHEAD_LIMIT and record_ratio <= RECORD_OVERHEAD_LIMIT:
                break
        if null_ratio > NULL_OVERHEAD_LIMIT:
            print(
                f"FAIL {name}: null-recorder overhead {null_ratio:.1%} exceeds "
                f"{NULL_OVERHEAD_LIMIT:.0%} in {MAX_ATTEMPTS} attempts"
            )
            failures += 1
        if record_ratio > RECORD_OVERHEAD_LIMIT:
            print(
                f"FAIL {name}: recording overhead {record_ratio:.1%} exceeds "
                f"{RECORD_OVERHEAD_LIMIT:.0%} in {MAX_ATTEMPTS} attempts"
            )
            failures += 1

    if failures:
        print(f"bench_trace_overhead: {failures} acceptance check(s) FAILED")
        return 1
    print("bench_trace_overhead: all acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
