#!/usr/bin/env python3
"""Benchmark — mobile & adaptive spatial jamming sweeps (E12 companion).

Three measurements over `MultiHopBroadcast` on a CSR-backed Gilbert graph,
all at equal adversary spend caps:

1. **Speed sweep**: a `MobileJammer` patrolling the four corners at
   increasing speed — coverage grows with speed while per-victim denial
   (stranding) thins out.  Speed 0 is the static-disk baseline.
2. **Disk-count sweep**: a `MultiDiskJammer` splitting one budget (and one
   total disk area) across k disks.
3. **Adaptive head-to-head** (the E12 acceptance check): the
   `ReactiveDiskJammer` must achieve *strictly lower* delivery per unit
   budget for the victimised network than the static `SpatialJammer` at
   equal budget — it chases the densest active uninformed cluster, so its
   jamming always lands where delivery was about to happen.  The script
   exits non-zero if the ordering fails.

A small slot-engine leg cross-checks that the mobile adversary stack runs
end-to-end on the reference engine too.

Usage::

    PYTHONPATH=src python benchmarks/bench_mobile_jammer.py           # full (n = 10^4, ~1 min)
    PYTHONPATH=src python benchmarks/bench_mobile_jammer.py --smoke   # CI-sized (n = 256)

Runs use ``max_quiet_retries`` so the protocol ends while jamming still
binds; without it every run ends at full delivery once the budget dies and
the sweeps cannot discriminate (see ``repro.experiments.exp_mobile_jammer``).
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.adversary import (
    MobileJammer,
    MultiDiskJammer,
    ReactiveDiskJammer,
    SpatialJammer,
    WaypointPatrol,
)
from repro.core.broadcast import MultiHopBroadcast
from repro.core.quietrule import ConstantQuietRule
from repro.experiments.exp_mobile_jammer import JAM_RADIUS, victim_metrics
from repro.simulation import SimulationConfig, TopologySpec
from repro.simulation.topology import gilbert_connectivity_radius

CORNERS = [(0.25, 0.25), (0.75, 0.25), (0.75, 0.75), (0.25, 0.75)]


def run_one(n: int, seed: int, adversary, retries: int, engine: str = "fast") -> dict:
    spec = TopologySpec.gilbert(radius=2.0 * gilbert_connectivity_radius(n), sparse=True)
    config = SimulationConfig(n=n, seed=seed, topology=spec)
    adversary.max_total_spend = 0.5 * config.adversary_total_budget
    # pipeline=False: like exp_mobile_jammer, the sweeps compare adversaries
    # at equal (binding) spend caps, which needs the fixed-length schedule.
    protocol = MultiHopBroadcast(
        config,
        adversary=adversary,
        engine=engine,
        quiet_rule=ConstantQuietRule(retries=retries),
        pipeline=False,
    )
    start = time.perf_counter()
    outcome = protocol.run()
    record = {
        "delivery": outcome.delivery_fraction,
        "spend": outcome.adversary_spend,
        "slots": outcome.delivery.slots_elapsed,
        "seconds": time.perf_counter() - start,
    }
    record.update(victim_metrics(protocol, outcome, adversary, n))
    return record


def averaged(n, seeds, factory, retries, engine="fast"):
    rows = [run_one(n, seed, factory(), retries, engine) for seed in seeds]
    return {key: float(np.mean([row[key] for row in rows])) for key in rows[0]}


def print_row(label: str, row: dict) -> None:
    print(
        f"{label:<18} delivery={row['delivery']:.3f} "
        f"dlv/kspend={row['delivery_per_mspend']:.4f} "
        f"coverage={row['coverage_fraction']:.3f} "
        f"victim_dlv={row['victim_delivery']:.3f} "
        f"stranded/kspend={row['stranded_per_mspend']:.1f} "
        f"spend={row['spend']:.0f} ({row['seconds']:.1f}s)"
    )


def speed_sweep(n, seeds, retries) -> None:
    print(f"== patrol speed sweep (n = {n:,}, equal budget) ==")
    for speed in (0.0, 0.02, 0.05, 0.1):
        factory = lambda speed=speed: MobileJammer(
            WaypointPatrol(CORNERS, speed=speed), radius=JAM_RADIUS
        )
        print_row(f"speed={speed:g}", averaged(n, seeds, factory, retries))
    print()


def disk_count_sweep(n, seeds, retries) -> None:
    print(f"== disk-count sweep (n = {n:,}, equal budget, equal total area) ==")
    for k in (1, 2, 3, 4):
        centers = CORNERS[:k] if k > 1 else [(0.25, 0.25)]
        factory = lambda centers=centers, k=k: MultiDiskJammer(
            centers=centers, radius=JAM_RADIUS / (k ** 0.5)
        )
        print_row(f"k={k}", averaged(n, seeds, factory, retries))
    print()


def adaptive_head_to_head(n, seeds, retries) -> bool:
    print(f"== adaptive head-to-head (n = {n:,}, equal budget) ==")
    static = averaged(
        n, seeds, lambda: SpatialJammer(center=(0.25, 0.25), radius=JAM_RADIUS), retries
    )
    reactive = averaged(n, seeds, lambda: ReactiveDiskJammer(radius=JAM_RADIUS), retries)
    print_row("static disk", static)
    print_row("reactive disk", reactive)
    ok = reactive["delivery_per_mspend"] < static["delivery_per_mspend"]
    print(
        f"reactive delivery-per-unit-budget strictly below static: "
        f"{reactive['delivery_per_mspend']:.4f} < {static['delivery_per_mspend']:.4f} "
        f"-> {'PASS' if ok else 'FAIL'}"
    )
    print()
    return ok


def slot_engine_leg(retries) -> None:
    print("== slot-engine cross-check (n = 64) ==")
    row = run_one(
        64,
        seed=5,
        adversary=MobileJammer(WaypointPatrol(CORNERS, speed=0.05), radius=JAM_RADIUS),
        retries=retries,
        engine="slot",
    )
    print_row("slot/patrol", row)
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--n", type=int, default=10_000, help="network size for the sweeps")
    parser.add_argument("--trials", type=int, default=2, help="seeds per sweep point")
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        help="max_quiet_retries horizon (default: 8 at n >= 4096, 6 below)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized smoke (n=256, 2 trials)"
    )
    args = parser.parse_args()
    if args.smoke:
        args.n = min(args.n, 256)
    retries = args.retries
    if retries is None:
        # Larger networks need more rounds before the relay frontier carries
        # meaningful delivery; too small a horizon makes every sweep point 0.
        retries = 8 if args.n >= 4096 else 6
    seeds = [args.seed + index for index in range(args.trials)]

    speed_sweep(args.n, seeds, retries)
    disk_count_sweep(args.n, seeds, retries)
    ok = adaptive_head_to_head(args.n, seeds, retries)
    slot_engine_leg(retries=6)
    if not ok:
        raise SystemExit(1)
    print("bench_mobile_jammer: all checks passed")


if __name__ == "__main__":
    main()
