"""Benchmark E3 — latency O(n^{1+1/k}) under maximal jamming (Corollary 1)."""

from __future__ import annotations

from conftest import run_and_report


def test_e3_latency(benchmark):
    result = run_and_report(benchmark, "E3")
    exponent = result.summaries["latency_exponent"]
    # The fitted latency exponent should straddle the predicted 1 + 1/k = 1.5.
    assert 1.3 <= exponent <= 1.7
    assert all(row["delivery_fraction"] >= 0.9 for row in result.rows)
