"""Unit tests for protocol state, round schedules, and termination rules."""

from __future__ import annotations

import pytest

from repro.core import ProtocolParameters, ScheduleBuilder
from repro.core.alice import AlicePolicy
from repro.core.receiver import ReceiverPolicy
from repro.core.state import NodeStatus, ProtocolState
from repro.core.termination import apply_request_phase
from repro.simulation import PhaseKind, PhasePlan, PhaseResult, ProtocolViolationError


class TestProtocolState:
    def test_initial_state_all_uninformed(self):
        state = ProtocolState(5)
        assert state.active_uninformed() == frozenset(range(5))
        assert state.informed_count() == 0
        assert not state.everyone_done()

    def test_mark_informed_transitions(self):
        state = ProtocolState(5)
        changed = state.mark_informed([1, 3], slot=10)
        assert changed == {1, 3}
        assert state.status(1) is NodeStatus.INFORMED
        assert state.active_informed() == frozenset({1, 3})
        assert state.informed_at_slot[1] == 10

    def test_duplicate_inform_is_harmless(self):
        state = ProtocolState(5)
        state.mark_informed([1], slot=1)
        assert state.mark_informed([1], slot=2) == set()

    def test_unknown_node_rejected(self):
        state = ProtocolState(3)
        with pytest.raises(ProtocolViolationError):
            state.mark_informed([9], slot=1)

    def test_terminate_informed_lifecycle(self):
        state = ProtocolState(4)
        state.mark_informed([0, 1], slot=1)
        state.terminate_informed([0, 1], round_index=3)
        assert state.terminated_informed_count() == 2
        assert state.status(0).is_terminated
        assert state.status(0).is_informed

    def test_terminate_uninformed_lifecycle(self):
        state = ProtocolState(4)
        state.terminate_uninformed([2], round_index=5)
        assert state.terminated_uninformed_count() == 1
        assert not state.status(2).is_informed

    def test_informed_node_cannot_terminate_uninformed(self):
        state = ProtocolState(3)
        state.mark_informed([0], slot=1)
        with pytest.raises(ProtocolViolationError):
            state.terminate_uninformed([0], round_index=1)

    def test_uninformed_node_cannot_terminate_informed(self):
        state = ProtocolState(3)
        with pytest.raises(ProtocolViolationError):
            state.terminate_informed([0], round_index=1)

    def test_terminated_node_cannot_receive_message(self):
        state = ProtocolState(3)
        state.terminate_uninformed([0], round_index=1)
        with pytest.raises(ProtocolViolationError):
            state.mark_informed([0], slot=5)

    def test_everyone_done_requires_alice(self):
        state = ProtocolState(2)
        state.mark_informed([0, 1], slot=1)
        state.terminate_informed([0, 1], round_index=1)
        assert state.all_nodes_terminated()
        assert not state.everyone_done()
        state.terminate_alice(round_index=2)
        assert state.everyone_done()
        assert state.alice_terminated_at_round == 2


def build_schedule(n=1024, k=2, figure=1):
    params = ProtocolParameters(k=k)
    alice = AlicePolicy(params, n, figure=figure)
    receiver = ReceiverPolicy(params, n, figure=figure)
    return ScheduleBuilder(params, alice, receiver, figure=figure)


class TestScheduleBuilder:
    def test_round_has_inform_propagation_request(self):
        phases = build_schedule().round_phases(6)
        kinds = [plan.kind for plan in phases]
        assert kinds[0] is PhaseKind.INFORM
        assert kinds[-1] is PhaseKind.REQUEST
        assert kinds.count(PhaseKind.PROPAGATION) == 1

    def test_general_k_has_k_minus_1_propagation_steps(self):
        phases = build_schedule(k=4, figure=2).round_phases(6)
        steps = [plan for plan in phases if plan.kind is PhaseKind.PROPAGATION]
        assert len(steps) == 3
        assert [plan.step for plan in steps] == [1, 2, 3]

    def test_phase_lengths_match_parameters(self):
        schedule = build_schedule()
        plan = schedule.inform_phase(8)
        assert plan.num_slots == schedule.params.phase_length(8)
        request = schedule.request_phase(8)
        assert request.num_slots == schedule.params.request_phase_length(8)

    def test_figure2_request_length_uses_phase_length(self):
        schedule = build_schedule(k=3, figure=2)
        request = schedule.request_phase(9)
        assert request.num_slots == schedule.params.phase_length(9)

    def test_round_length_sums_phases(self):
        schedule = build_schedule()
        assert schedule.round_length(7) == sum(p.num_slots for p in schedule.round_phases(7))

    def test_probabilities_wired_from_policies(self):
        schedule = build_schedule()
        inform = schedule.inform_phase(9)
        assert inform.alice_send_prob == pytest.approx(schedule.alice.inform_send_probability(9))
        assert inform.uninformed_listen_prob == pytest.approx(
            schedule.receiver.inform_listen_probability(9)
        )
        request = schedule.request_phase(9)
        assert request.nack_send_prob == pytest.approx(1 / 1024)

    def test_invalid_figure_rejected(self):
        params = ProtocolParameters()
        with pytest.raises(ValueError):
            ScheduleBuilder(params, AlicePolicy(params, 64), ReceiverPolicy(params, 64), figure=5)


class TestRequestPhaseTermination:
    def make_policies(self, n=256):
        params = ProtocolParameters(k=2)
        return AlicePolicy(params, n), ReceiverPolicy(params, n)

    def make_result(self, n, node_noise, alice_noise, round_index):
        plan = PhasePlan(
            name="request", kind=PhaseKind.REQUEST, round_index=round_index, num_slots=1024
        )
        return PhaseResult(
            plan=plan,
            newly_informed=frozenset(),
            jammed_slots=0,
            adversary_spend=0.0,
            alice_noisy_heard=alice_noise,
            node_noisy_heard=node_noise,
        )

    def test_quiet_phase_terminates_everyone(self):
        n = 256
        alice_policy, receiver_policy = self.make_policies(n)
        state = ProtocolState(n)
        round_index = max(
            alice_policy.earliest_termination_round(), receiver_policy.earliest_termination_round()
        )
        result = self.make_result(n, {i: 0 for i in range(n)}, 0, round_index)
        decision = apply_request_phase(state, result, alice_policy, receiver_policy, round_index)
        assert decision.alice_terminated
        assert len(decision.terminated_nodes) == n
        assert state.alice_terminated

    def test_noisy_phase_keeps_everyone_running(self):
        n = 256
        alice_policy, receiver_policy = self.make_policies(n)
        state = ProtocolState(n)
        round_index = receiver_policy.earliest_termination_round() + 1
        noisy = {i: 10_000 for i in range(n)}
        result = self.make_result(n, noisy, 10_000, round_index)
        decision = apply_request_phase(state, result, alice_policy, receiver_policy, round_index)
        assert not decision.alice_terminated
        assert decision.terminated_nodes == frozenset()

    def test_termination_blocked_before_earliest_round(self):
        n = 256
        alice_policy, receiver_policy = self.make_policies(n)
        state = ProtocolState(n)
        result = self.make_result(n, {i: 0 for i in range(n)}, 0, round_index=1)
        decision = apply_request_phase(state, result, alice_policy, receiver_policy, 1)
        assert not decision.any_terminated

    def test_mixed_noise_terminates_only_quiet_nodes(self):
        n = 256
        alice_policy, receiver_policy = self.make_policies(n)
        state = ProtocolState(n)
        round_index = receiver_policy.earliest_termination_round()
        noise = {i: (0 if i < 10 else 10_000) for i in range(n)}
        result = self.make_result(n, noise, 10_000, round_index)
        decision = apply_request_phase(state, result, alice_policy, receiver_policy, round_index)
        assert decision.terminated_nodes == frozenset(range(10))
        assert state.terminated_uninformed_count() == 10

    def test_informed_nodes_are_not_evaluated(self):
        n = 64
        alice_policy, receiver_policy = self.make_policies(n)
        state = ProtocolState(n)
        state.mark_informed(range(32), slot=1)
        round_index = receiver_policy.earliest_termination_round()
        result = self.make_result(n, {i: 0 for i in range(n)}, 10_000, round_index)
        decision = apply_request_phase(state, result, alice_policy, receiver_policy, round_index)
        assert decision.nodes_evaluated == 32
        assert all(node >= 32 for node in decision.terminated_nodes)
