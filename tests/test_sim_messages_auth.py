"""Unit tests for the message model and the authentication layer."""

from __future__ import annotations

import pytest

from repro.simulation import (
    ALICE_ID,
    AuthenticationError,
    Authenticator,
    Message,
    MessageKind,
    make_decoy,
    make_nack,
    make_payload,
    make_spoof,
)


class TestMessageKinds:
    def test_payload_is_payload_like(self):
        assert make_payload(ALICE_ID, "m", "sig").is_payload_like

    def test_spoofed_payload_is_payload_like(self):
        assert make_spoof(-2).is_payload_like

    def test_nack_is_nack_like(self):
        assert make_nack(3).is_nack_like

    def test_spoofed_nack_is_nack_like(self):
        assert make_spoof(-2, nack=True).is_nack_like

    def test_decoy_is_neither(self):
        decoy = make_decoy(4)
        assert not decoy.is_payload_like
        assert not decoy.is_nack_like

    def test_message_is_frozen(self):
        message = make_nack(1)
        with pytest.raises(AttributeError):
            message.sender_id = 2  # type: ignore[misc]

    def test_kind_values_are_distinct(self):
        values = [kind.value for kind in MessageKind]
        assert len(values) == len(set(values))

    def test_signature_not_part_of_equality(self):
        a = Message(MessageKind.PAYLOAD, ALICE_ID, "m", signature="x")
        b = Message(MessageKind.PAYLOAD, ALICE_ID, "m", signature="y")
        assert a == b


class TestAuthenticator:
    def test_sign_and_verify_roundtrip(self):
        auth = Authenticator()
        signature = auth.sign("hello")
        assert auth.verify(make_payload(ALICE_ID, "hello", signature))

    def test_relayed_copy_still_verifies(self):
        auth = Authenticator()
        signature = auth.sign("m")
        relayed = make_payload(17, "m", signature)
        assert auth.verify(relayed)

    def test_wrong_payload_fails_verification(self):
        auth = Authenticator()
        signature = auth.sign("m")
        assert not auth.verify(make_payload(ALICE_ID, "tampered", signature))

    def test_missing_signature_fails(self):
        auth = Authenticator()
        assert not auth.verify(make_payload(ALICE_ID, "m", None))

    def test_spoofed_payload_fails(self):
        auth = Authenticator()
        auth.sign("m")
        assert not auth.verify(make_spoof(-2))

    def test_nack_never_verifies_as_payload(self):
        auth = Authenticator()
        assert not auth.verify(make_nack(5))

    def test_only_alice_can_sign(self):
        auth = Authenticator()
        with pytest.raises(AuthenticationError):
            auth.sign("m", sender_id=12)

    def test_different_secrets_do_not_cross_verify(self):
        auth_a = Authenticator("secret-a")
        auth_b = Authenticator("secret-b")
        signature = auth_a.sign("m")
        assert not auth_b.verify(make_payload(ALICE_ID, "m", signature))

    def test_empty_secret_rejected(self):
        with pytest.raises(AuthenticationError):
            Authenticator("")
