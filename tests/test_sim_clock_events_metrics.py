"""Unit tests for the slot clock, event log, and shared metrics helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation import (
    CostBreakdown,
    DeliveryStats,
    EventLog,
    PhaseRecord,
    SimulationError,
    SlotClock,
    SlotEvent,
    resource_competitive_ratio,
)


def make_record(round_index=1, name="inform", slots=8, jammed=2, informed=3):
    return PhaseRecord(
        round_index=round_index,
        phase_name=name,
        num_slots=slots,
        start_slot=0,
        jammed_slots=jammed,
        adversary_spend=float(jammed),
        newly_informed=informed,
        alice_cost=1.0,
        nodes_cost=4.0,
        active_uninformed_after=10,
        terminated_after=0,
    )


class TestSlotClock:
    def test_initial_time(self):
        assert SlotClock().now == 0

    def test_advance(self):
        clock = SlotClock()
        clock.advance(5)
        clock.advance(3)
        assert clock.now == 8

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            SlotClock().advance(-1)

    def test_phase_window_recording(self):
        clock = SlotClock()
        clock.begin_phase(1, "inform")
        clock.advance(10)
        window = clock.end_phase()
        assert window.start == 0 and window.end == 10
        assert window.num_slots == 10
        assert clock.phase_of(5) == window
        assert clock.phase_of(10) is None

    def test_nested_phase_rejected(self):
        clock = SlotClock()
        clock.begin_phase(1, "inform")
        with pytest.raises(SimulationError):
            clock.begin_phase(1, "request")

    def test_end_without_begin_rejected(self):
        with pytest.raises(SimulationError):
            SlotClock().end_phase()


class TestEventLog:
    def test_phase_records_accumulate(self):
        log = EventLog()
        log.record_phase(make_record(round_index=1))
        log.record_phase(make_record(round_index=2))
        assert len(log) == 2
        assert log.rounds_executed() == 2
        assert log.total_slots() == 16
        assert log.total_jammed_slots() == 4

    def test_phases_in_round(self):
        log = EventLog()
        log.record_phase(make_record(round_index=1, name="inform"))
        log.record_phase(make_record(round_index=1, name="request"))
        log.record_phase(make_record(round_index=2, name="inform"))
        assert len(log.phases_in_round(1)) == 2
        assert log.last_phase().round_index == 2

    def test_jammed_fraction(self):
        record = make_record(slots=10, jammed=5)
        assert record.jammed_fraction == 0.5

    def test_slot_events_disabled_by_default(self):
        log = EventLog()
        log.record_slot(SlotEvent(0, 1, "inform", 1, False, 0))
        assert log.slot_events == ()

    def test_slot_events_capped(self):
        log = EventLog(record_slots=True, max_slot_events=2)
        for slot in range(5):
            log.record_slot(SlotEvent(slot, 1, "inform", 1, False, 0))
        assert len(log.slot_events) == 2
        assert log.dropped_slot_events == 3

    def test_empty_log(self):
        log = EventLog()
        assert log.last_phase() is None
        assert log.rounds_executed() == 0


class TestMetrics:
    def test_cost_breakdown_from_snapshot(self):
        snapshot = {"alice": 5.0, "adversary": 100.0, "node_mean": 2.0, "node_max": 4.0, "node_total": 20.0}
        costs = CostBreakdown.from_snapshot(snapshot, per_node=np.array([1.0, 3.0]))
        assert costs.alice == 5.0
        assert costs.correct_total == 25.0
        assert costs.as_dict()["adversary"] == 100.0

    def test_delivery_stats_fractions(self):
        stats = DeliveryStats(
            n=100,
            informed=93,
            terminated_informed=93,
            terminated_uninformed=7,
            slots_elapsed=1000,
            rounds_executed=5,
            alice_terminated=True,
        )
        assert stats.delivery_fraction == pytest.approx(0.93)
        assert stats.uninformed == 7
        assert stats.all_terminated
        assert stats.as_dict()["delivery_fraction"] == pytest.approx(0.93)

    def test_delivery_stats_not_all_terminated(self):
        stats = DeliveryStats(100, 50, 40, 10, 10, 1, False)
        assert not stats.all_terminated

    def test_competitive_ratio(self):
        assert resource_competitive_ratio(10, 100) == pytest.approx(0.1)
        assert resource_competitive_ratio(0, 0) == 0.0
        assert resource_competitive_ratio(5, 0) == float("inf")
