"""Tests for the analysis utilities (bounds, concentration, fitting, stats)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import (
    CompetitivenessReport,
    TrialSummary,
    aggregate_records,
    analyze_outcomes,
    binomial_confidence_radius,
    blocking_round,
    bounded_difference_tail,
    chernoff_lower_tail,
    chernoff_upper_tail,
    cost_exponent,
    expected_unique_successes,
    fact1_lower_bound,
    fit_power_law,
    fit_power_law_with_offset,
    fraction_meeting,
    latency_bound,
    no_jamming_alice_cost_bound,
    no_jamming_node_cost_bound,
    predict,
    predicted_alice_cost,
    predicted_node_cost,
    reactive_f_threshold,
    summarize,
    summarize_ratios,
)
from repro.core.api import run_broadcast
from repro.simulation import SimulationConfig


class TestBounds:
    def test_cost_exponent(self):
        assert cost_exponent(2) == pytest.approx(1 / 3)
        assert cost_exponent(4) == pytest.approx(1 / 5)
        with pytest.raises(ValueError):
            cost_exponent(1)

    def test_predicted_costs_monotone_in_T(self):
        assert predicted_node_cost(1000, 256) > predicted_node_cost(100, 256)
        assert predicted_alice_cost(1000, 256) > predicted_alice_cost(100, 256)

    def test_no_jamming_bounds_are_polylog(self):
        assert no_jamming_alice_cost_bound(10**6) < 10**6
        assert no_jamming_node_cost_bound(10**6) < 10**3

    def test_latency_bound(self):
        assert latency_bound(100, 2) == pytest.approx(1000.0)

    def test_blocking_round_grows_with_n_and_f(self):
        small = blocking_round(SimulationConfig(n=256, f=1.0))
        large_n = blocking_round(SimulationConfig(n=1024, f=1.0))
        large_f = blocking_round(SimulationConfig(n=256, f=4.0))
        assert large_n > small
        assert large_f > small
        with pytest.raises(ValueError):
            blocking_round(SimulationConfig(n=256), beta=0.0)

    def test_reactive_threshold(self):
        assert reactive_f_threshold() == pytest.approx(1 / 24)

    def test_predict_bundle(self):
        config = SimulationConfig(n=256, epsilon=0.2)
        prediction = predict(config, T=1000.0)
        assert prediction.delivery_fraction_bound == pytest.approx(0.8)
        assert prediction.scaled(2.0).node_cost_bound == pytest.approx(2 * prediction.node_cost_bound)


class TestConcentration:
    def test_chernoff_tails_decrease_with_mean(self):
        assert chernoff_upper_tail(100, 0.5) < chernoff_upper_tail(10, 0.5)
        assert chernoff_lower_tail(100, 0.5) < chernoff_lower_tail(10, 0.5)

    def test_chernoff_validation(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail(-1, 0.5)
        with pytest.raises(ValueError):
            chernoff_lower_tail(10, 2.0)

    def test_bounded_difference_matches_paper_form(self):
        # With all c_i = 1 the bound is exp(-λ² / 2ℓ).
        tail = bounded_difference_tail(10.0, [1.0] * 50)
        assert tail == pytest.approx(math.exp(-100.0 / 100.0))

    def test_bounded_difference_degenerate(self):
        assert bounded_difference_tail(1.0, []) == 0.0
        assert bounded_difference_tail(0.0, []) == 1.0

    def test_fact1(self):
        for y in (0.0, 0.1, 0.5):
            assert 1 - y >= fact1_lower_bound(y)
        with pytest.raises(ValueError):
            fact1_lower_bound(0.6)

    def test_binomial_radius(self):
        assert binomial_confidence_radius(100, 0.5) == pytest.approx(4 * 5.0)
        assert binomial_confidence_radius(0, 0.5) == 0.0

    def test_expected_unique_successes(self):
        assert expected_unique_successes(100, 0.0, 10) == 0.0
        assert expected_unique_successes(100, 1.0, 1) == 100.0
        mid = expected_unique_successes(100, 0.01, 100)
        assert 60 < mid < 67  # 100 * (1 - 0.99^100) ≈ 63.4


class TestFitting:
    def test_exact_power_law_recovered(self):
        xs = [10, 100, 1000, 10_000]
        ys = [3 * x ** 0.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5, abs=1e-6)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_offset_power_law_recovered(self):
        xs = [100, 400, 1600, 6400, 25_600]
        ys = [500 + 2 * x ** (1 / 3) for x in xs]
        fit = fit_power_law_with_offset(xs, ys)
        assert fit.exponent == pytest.approx(1 / 3, abs=0.08)
        assert fit.offset > 0

    def test_prediction_roundtrip(self):
        fit = fit_power_law([1, 10, 100], [2, 20, 200])
        assert fit.predict(1000) == pytest.approx(2000, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [2])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 0])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1, 2, 3])

    def test_noisy_fit_reports_r_squared_below_one(self):
        rng = np.random.default_rng(0)
        xs = np.logspace(1, 4, 12)
        ys = 5 * xs ** 0.4 * rng.uniform(0.8, 1.2, size=xs.size)
        fit = fit_power_law(xs, ys)
        assert 0.3 < fit.exponent < 0.5
        assert fit.r_squared < 1.0


class TestStats:
    def test_summarize(self):
        summary = summarize("x", [1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.minimum == 1.0 and summary.maximum == 3.0
        low, high = summary.confidence_interval()
        assert low < 2.0 < high

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize("x", [])

    def test_single_value_has_zero_stderr(self):
        assert summarize("x", [5.0]).stderr == 0.0

    def test_aggregate_records_skips_non_finite(self):
        records = [{"a": 1.0, "b": float("inf")}, {"a": 3.0, "b": 2.0}]
        summaries = aggregate_records(records)
        assert summaries["a"].mean == 2.0
        assert summaries["b"].count == 1

    def test_aggregate_records_empty(self):
        assert aggregate_records([]) == {}

    def test_fraction_meeting(self):
        assert fraction_meeting([0.9, 0.95, 0.5], lambda v: v >= 0.9) == pytest.approx(2 / 3)
        assert fraction_meeting([], lambda v: True) == 0.0


class TestCompetitivenessReport:
    @pytest.fixture(scope="class")
    def outcomes(self):
        from repro.adversary import PhaseBlockingAdversary

        results = []
        for cap in (500, 4_000, 16_000, 60_000):
            results.append(
                run_broadcast(
                    n=128, seed=31, adversary=PhaseBlockingAdversary(max_total_spend=cap)
                )
            )
        return results

    def test_report_structure(self, outcomes):
        report = analyze_outcomes(outcomes)
        assert report.protocol == "epsilon-broadcast"
        assert report.predicted_exponent == pytest.approx(1 / 3)
        assert len(report.adversary_spends) == 4
        assert report.alice_fit is not None and report.node_fit is not None
        assert len(report.lines()) >= 2

    def test_measured_exponent_is_strongly_sublinear(self, outcomes):
        report = analyze_outcomes(outcomes)
        assert report.node_exponent is not None
        assert report.node_exponent < 0.85
        assert report.exponent_gap() is not None

    def test_empty_outcomes_rejected(self):
        with pytest.raises(ValueError):
            analyze_outcomes([])

    def test_summarize_ratios(self, outcomes):
        summary = summarize_ratios(outcomes)
        assert summary["runs"] == 4
        assert summary["delivery_fraction_min"] >= 0.9
        assert summary["node_ratio_max"] < 5.0

    def test_summarize_ratios_empty(self):
        assert summarize_ratios([]) == {}
