"""Tests for the baseline protocols (naive, KSY-style, balanced backoff)."""

from __future__ import annotations

import pytest

from repro.adversary import NullAdversary, PhaseBlockingAdversary
from repro.baselines import (
    GOLDEN_RATIO,
    BalancedBackoffBroadcast,
    EpochBaseline,
    KSYStyleBroadcast,
    NaiveBroadcast,
)
from repro.simulation import ConfigurationError, PhaseKind, SimulationConfig


def config(n=64, seed=1, **kwargs):
    return SimulationConfig(n=n, seed=seed, **kwargs)


class TestEpochPlans:
    def test_naive_probabilities(self):
        baseline = NaiveBroadcast(config())
        assert baseline.alice_send_probability(5) == 1.0
        assert baseline.node_listen_probability(5) == 1.0
        assert baseline.epoch_length(5) == 32

    def test_ksy_sender_exponent(self):
        baseline = KSYStyleBroadcast(config())
        epoch = 10
        expected = 2.0 ** (-(2.0 - GOLDEN_RATIO) * epoch)
        assert baseline.alice_send_probability(epoch) == pytest.approx(expected)
        assert baseline.node_listen_probability(epoch) == 1.0

    def test_backoff_is_symmetric(self):
        baseline = BalancedBackoffBroadcast(config())
        assert baseline.alice_send_probability(8) == baseline.node_listen_probability(8)

    def test_backoff_oversample_validation(self):
        with pytest.raises(ValueError):
            BalancedBackoffBroadcast(config(), oversample=0)

    def test_epoch_plan_is_inform_kind(self):
        plan = NaiveBroadcast(config()).epoch_plan(4)
        assert plan.kind is PhaseKind.INFORM
        assert plan.num_slots == 16

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            NaiveBroadcast(config(), engine="bogus")

    def test_max_epoch_outlasts_adversary_budget(self):
        baseline = NaiveBroadcast(config(n=64, f=1.0))
        assert 2 ** baseline.max_epoch > baseline.config.adversary_total_budget

    def test_base_class_is_abstract(self):
        with pytest.raises(TypeError):
            EpochBaseline(config())  # type: ignore[abstract]


class TestBaselineRuns:
    @pytest.mark.parametrize("cls", [NaiveBroadcast, KSYStyleBroadcast, BalancedBackoffBroadcast])
    def test_unjammed_run_delivers_everything(self, cls):
        outcome = cls(config(), adversary=NullAdversary()).run()
        assert outcome.delivery_fraction == 1.0
        assert not outcome.terminated_by_cap
        assert outcome.protocol == cls.protocol_name

    @pytest.mark.parametrize("cls", [NaiveBroadcast, KSYStyleBroadcast, BalancedBackoffBroadcast])
    def test_blocked_run_still_delivers_after_budget_dies(self, cls):
        adversary = PhaseBlockingAdversary(max_total_spend=2_000)
        outcome = cls(config(seed=2), adversary=adversary).run()
        assert outcome.delivery_fraction == 1.0
        assert outcome.adversary_spend > 0

    def test_naive_costs_track_adversary_spend(self):
        small = NaiveBroadcast(config(seed=3), adversary=PhaseBlockingAdversary(max_total_spend=1_000)).run()
        large = NaiveBroadcast(config(seed=3), adversary=PhaseBlockingAdversary(max_total_spend=8_000)).run()
        ratio = large.mean_node_cost / small.mean_node_cost
        spend_ratio = large.adversary_spend / small.adversary_spend
        # Θ(T): cost ratio should be comparable to the spend ratio.
        assert ratio > spend_ratio * 0.4

    def test_ksy_receivers_pay_much_more_than_sender(self):
        outcome = KSYStyleBroadcast(
            config(seed=4), adversary=PhaseBlockingAdversary(max_total_spend=8_000)
        ).run()
        assert outcome.max_node_cost > 5 * outcome.alice_cost

    def test_backoff_is_load_balanced(self):
        outcome = BalancedBackoffBroadcast(
            config(seed=5), adversary=PhaseBlockingAdversary(max_total_spend=8_000)
        ).run()
        assert 0.2 < outcome.load_balance_ratio < 5.0

    def test_backoff_cheaper_than_naive_under_jamming(self):
        adversary_budget = 8_000
        naive = NaiveBroadcast(
            config(seed=6), adversary=PhaseBlockingAdversary(max_total_spend=adversary_budget)
        ).run()
        backoff = BalancedBackoffBroadcast(
            config(seed=6), adversary=PhaseBlockingAdversary(max_total_spend=adversary_budget)
        ).run()
        assert backoff.mean_node_cost < naive.mean_node_cost

    def test_slot_engine_supported(self):
        outcome = NaiveBroadcast(config(n=24, seed=7), engine="slot").run()
        assert outcome.delivery_fraction == 1.0

    def test_event_log_records_epochs(self):
        outcome = NaiveBroadcast(config(seed=8)).run()
        assert outcome.events is not None
        assert len(outcome.events.phases) == outcome.delivery.rounds_executed
