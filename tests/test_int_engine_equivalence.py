"""Integration tests: the vectorised engine is statistically equivalent to the
slot-faithful engine.

The PhaseEngine documents two second-order approximations; these tests check
that on identical scenarios the two engines agree on the protocol-visible
outcomes (delivery, termination) and that their cost figures agree within
statistical tolerances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import run_broadcast
from repro.adversary import PhaseBlockingAdversary
from repro.simulation import (
    JamPlan,
    JamTargeting,
    Network,
    PhaseEngine,
    PhaseKind,
    PhasePlan,
    PhaseRoles,
    SimulationConfig,
    SlotEngine,
)


def run_phase_on_both(plan, roles_builder, jam_builder, n=48, trials=6):
    """Run the same phase on both engines across seeds; return per-engine stats."""

    stats = {"slot": [], "fast": []}
    for trial in range(trials):
        for name, engine_cls in (("slot", SlotEngine), ("fast", PhaseEngine)):
            network = Network(SimulationConfig(n=n, seed=100 + trial))
            engine = engine_cls(network)
            result = engine.run_phase(plan, roles_builder(network), jam_builder())
            stats[name].append(
                {
                    "informed": len(result.newly_informed),
                    "alice_cost": network.alice_cost,
                    "node_total": float(network.node_costs().sum()),
                    "adversary": network.adversary_cost,
                    "alice_noisy": result.alice_noisy_heard,
                }
            )
    return {
        name: {key: float(np.mean([r[key] for r in rows])) for key in rows[0]}
        for name, rows in stats.items()
    }


class TestPhaseLevelEquivalence:
    def test_inform_phase_statistics_match(self):
        plan = PhasePlan(
            name="inform",
            kind=PhaseKind.INFORM,
            round_index=5,
            num_slots=300,
            alice_send_prob=0.2,
            uninformed_listen_prob=0.3,
        )
        stats = run_phase_on_both(plan, lambda net: PhaseRoles.of(range(net.n)), JamPlan.idle)
        assert stats["fast"]["informed"] == pytest.approx(stats["slot"]["informed"], rel=0.25)
        assert stats["fast"]["alice_cost"] == pytest.approx(stats["slot"]["alice_cost"], rel=0.25)
        # Listening cost carries the documented stop-when-informed
        # approximation, so its tolerance is a little looser.
        assert stats["fast"]["node_total"] == pytest.approx(stats["slot"]["node_total"], rel=0.4)

    def test_jammed_inform_phase_statistics_match(self):
        plan = PhasePlan(
            name="inform",
            kind=PhaseKind.INFORM,
            round_index=5,
            num_slots=300,
            alice_send_prob=0.3,
            uninformed_listen_prob=0.3,
        )
        jam = lambda: JamPlan(num_jam_slots=150, targeting=JamTargeting.everyone())
        stats = run_phase_on_both(plan, lambda net: PhaseRoles.of(range(net.n)), jam)
        assert stats["fast"]["adversary"] == stats["slot"]["adversary"] == 150
        assert stats["fast"]["informed"] == pytest.approx(stats["slot"]["informed"], rel=0.3, abs=4)

    def test_request_phase_noise_statistics_match(self):
        plan = PhasePlan(
            name="request",
            kind=PhaseKind.REQUEST,
            round_index=5,
            num_slots=400,
            nack_send_prob=0.02,
            uninformed_listen_prob=0.2,
            alice_listen_prob=0.2,
        )
        stats = run_phase_on_both(plan, lambda net: PhaseRoles.of(range(net.n)), JamPlan.idle)
        assert stats["fast"]["alice_noisy"] == pytest.approx(stats["slot"]["alice_noisy"], rel=0.3, abs=5)


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("adversary_factory", [
        lambda: "none",
        lambda: PhaseBlockingAdversary(max_total_spend=4_000),
    ])
    def test_full_runs_agree_on_protocol_outcomes(self, adversary_factory):
        fast = run_broadcast(n=64, seed=21, adversary=adversary_factory(), engine="fast")
        slot = run_broadcast(n=64, seed=21, adversary=adversary_factory(), engine="slot")
        assert fast.delivery_fraction == slot.delivery_fraction == 1.0
        assert fast.delivery.alice_terminated and slot.delivery.alice_terminated
        assert fast.delivery.rounds_executed == pytest.approx(slot.delivery.rounds_executed, abs=1)

    def test_full_run_costs_within_tolerance(self):
        fast = run_broadcast(n=64, seed=22, adversary=PhaseBlockingAdversary(max_total_spend=4_000), engine="fast")
        slot = run_broadcast(n=64, seed=22, adversary=PhaseBlockingAdversary(max_total_spend=4_000), engine="slot")
        assert fast.adversary_spend == pytest.approx(slot.adversary_spend, rel=0.15)
        assert fast.mean_node_cost == pytest.approx(slot.mean_node_cost, rel=0.35)
        assert fast.alice_cost == pytest.approx(slot.alice_cost, rel=0.35)
