"""Integration tests: the vectorised engine is statistically equivalent to the
slot-faithful engine.

The PhaseEngine documents second-order approximations (marginal cost draws,
sampled stop-when-informed truncation, and the multi-hop caveats listed in its
module docstring); these tests check that on identical scenarios the two
engines agree on the protocol-visible outcomes (delivery, termination) and
that their cost figures agree within statistical tolerances — both on the
seed single-hop model and over spatial multi-hop topologies.

All machinery lives in the reusable :mod:`tests.equivalence` harness (KS and
moment checks over seeded trials).
"""

from __future__ import annotations

import pytest

from equivalence import (
    assert_means_close,
    assert_same_distribution,
    column,
    mean_by_engine,
    paired_phase_records,
)
from repro import run_broadcast
from repro.adversary import (
    MobileJammer,
    PhaseBlockingAdversary,
    ReactiveDiskJammer,
    SpatialJammer,
    WaypointPatrol,
)
from repro.simulation import (
    JamPlan,
    JamTargeting,
    PhaseKind,
    PhasePlan,
    PhaseRoles,
    TopologySpec,
)

GILBERT = {"topology": TopologySpec.gilbert(radius=0.3)}


def all_listening_roles(network) -> PhaseRoles:
    return PhaseRoles.of(range(network.n))


def split_roles(network) -> PhaseRoles:
    half = network.n // 2
    return PhaseRoles.of(range(half, network.n), relays=range(half))


class TestPhaseLevelEquivalence:
    def test_inform_phase_statistics_match(self):
        plan = PhasePlan(
            name="inform",
            kind=PhaseKind.INFORM,
            round_index=5,
            num_slots=300,
            alice_send_prob=0.2,
            uninformed_listen_prob=0.3,
        )
        records = paired_phase_records(plan, all_listening_roles)
        stats = mean_by_engine(records)
        assert stats["fast"]["informed"] == pytest.approx(stats["slot"]["informed"], rel=0.25)
        assert stats["fast"]["alice_cost"] == pytest.approx(stats["slot"]["alice_cost"], rel=0.25)
        # Listening cost carries the documented stop-when-informed
        # approximation, so its tolerance is a little looser.
        assert stats["fast"]["node_total"] == pytest.approx(stats["slot"]["node_total"], rel=0.4)

    def test_inform_phase_informed_distribution_matches(self):
        plan = PhasePlan(
            name="inform",
            kind=PhaseKind.INFORM,
            round_index=6,
            num_slots=200,
            alice_send_prob=0.15,
            uninformed_listen_prob=0.2,
        )
        records = paired_phase_records(plan, all_listening_roles, n=40, trials=30)
        assert_same_distribution(
            column(records["slot"], "informed"),
            column(records["fast"], "informed"),
            label="informed counts (single-hop inform phase)",
        )

    def test_jammed_inform_phase_statistics_match(self):
        plan = PhasePlan(
            name="inform",
            kind=PhaseKind.INFORM,
            round_index=5,
            num_slots=300,
            alice_send_prob=0.3,
            uninformed_listen_prob=0.3,
        )
        jam = lambda: JamPlan(num_jam_slots=150, targeting=JamTargeting.everyone())
        records = paired_phase_records(plan, all_listening_roles, jam)
        stats = mean_by_engine(records)
        assert stats["fast"]["adversary"] == stats["slot"]["adversary"] == 150
        assert stats["fast"]["informed"] == pytest.approx(stats["slot"]["informed"], rel=0.3, abs=4)

    def test_request_phase_noise_statistics_match(self):
        plan = PhasePlan(
            name="request",
            kind=PhaseKind.REQUEST,
            round_index=5,
            num_slots=400,
            nack_send_prob=0.02,
            uninformed_listen_prob=0.2,
            alice_listen_prob=0.2,
        )
        records = paired_phase_records(plan, all_listening_roles)
        stats = mean_by_engine(records)
        assert stats["fast"]["alice_noisy"] == pytest.approx(stats["slot"]["alice_noisy"], rel=0.3, abs=5)


class TestMultiHopPhaseEquivalence:
    """The multi-hop fast path resolves audibility per listener; its phase
    statistics must match the (automatically topology-exact) slot engine."""

    def test_multihop_inform_phase_matches(self):
        plan = PhasePlan(
            name="inform",
            kind=PhaseKind.INFORM,
            round_index=5,
            num_slots=300,
            alice_send_prob=0.2,
            uninformed_listen_prob=0.3,
        )
        records = paired_phase_records(
            plan, all_listening_roles, trials=40, config_kwargs=GILBERT
        )
        assert_means_close(
            column(records["slot"], "informed"),
            column(records["fast"], "informed"),
            rel=0.2,
            abs_tol=2.0,
            label="multihop informed",
        )
        assert_means_close(
            column(records["slot"], "node_total"),
            column(records["fast"], "node_total"),
            rel=0.15,
            label="multihop node_total",
        )
        assert_same_distribution(
            column(records["slot"], "informed"),
            column(records["fast"], "informed"),
            label="informed counts (multihop inform phase)",
        )

    def test_multihop_propagation_phase_matches(self):
        plan = PhasePlan(
            name="propagation:1",
            kind=PhaseKind.PROPAGATION,
            round_index=5,
            num_slots=300,
            relay_send_prob=0.1,
            uninformed_listen_prob=0.3,
        )
        records = paired_phase_records(plan, split_roles, trials=40, config_kwargs=GILBERT)
        assert_means_close(
            column(records["slot"], "informed"),
            column(records["fast"], "informed"),
            rel=0.15,
            abs_tol=2.0,
            label="multihop propagation informed",
        )
        assert_means_close(
            column(records["slot"], "node_total"),
            column(records["fast"], "node_total"),
            rel=0.15,
            label="multihop propagation node_total",
        )

    def test_multihop_spatially_jammed_phase_matches(self):
        plan = PhasePlan(
            name="inform",
            kind=PhaseKind.INFORM,
            round_index=5,
            num_slots=300,
            alice_send_prob=0.3,
            uninformed_listen_prob=0.3,
        )
        # A fixed disk of victims, resolved per-trial by node ids 0..11 as a
        # stand-in for a spatial region (identical for both engines).
        jam = lambda: JamPlan(num_jam_slots=150, targeting=JamTargeting.only(range(12)))
        records = paired_phase_records(plan, all_listening_roles, jam, trials=40, config_kwargs=GILBERT)
        stats = mean_by_engine(records)
        assert stats["fast"]["adversary"] == stats["slot"]["adversary"] == 150
        assert_means_close(
            column(records["slot"], "informed"),
            column(records["fast"], "informed"),
            rel=0.25,
            abs_tol=3.0,
            label="spatially jammed informed",
        )

    def test_multihop_request_phase_noise_matches(self):
        plan = PhasePlan(
            name="request",
            kind=PhaseKind.REQUEST,
            round_index=5,
            num_slots=400,
            nack_send_prob=0.02,
            uninformed_listen_prob=0.2,
            alice_listen_prob=0.2,
        )
        records = paired_phase_records(plan, all_listening_roles, trials=40, config_kwargs=GILBERT)
        assert_means_close(
            column(records["slot"], "alice_noisy"),
            column(records["fast"], "alice_noisy"),
            rel=0.3,
            abs_tol=5.0,
            label="multihop alice_noisy",
        )


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("adversary_factory", [
        lambda: "none",
        lambda: PhaseBlockingAdversary(max_total_spend=4_000),
    ])
    def test_full_runs_agree_on_protocol_outcomes(self, adversary_factory):
        fast = run_broadcast(n=64, seed=21, adversary=adversary_factory(), engine="fast")
        slot = run_broadcast(n=64, seed=21, adversary=adversary_factory(), engine="slot")
        assert fast.delivery_fraction == slot.delivery_fraction == 1.0
        assert fast.delivery.alice_terminated and slot.delivery.alice_terminated
        assert fast.delivery.rounds_executed == pytest.approx(slot.delivery.rounds_executed, abs=1)

    def test_full_run_costs_within_tolerance(self):
        fast = run_broadcast(n=64, seed=22, adversary=PhaseBlockingAdversary(max_total_spend=4_000), engine="fast")
        slot = run_broadcast(n=64, seed=22, adversary=PhaseBlockingAdversary(max_total_spend=4_000), engine="slot")
        assert fast.adversary_spend == pytest.approx(slot.adversary_spend, rel=0.15)
        assert fast.mean_node_cost == pytest.approx(slot.mean_node_cost, rel=0.35)
        assert fast.alice_cost == pytest.approx(slot.alice_cost, rel=0.35)


class TestMultiHopEndToEndEquivalence:
    """The ISSUE acceptance scenario: exp_multihop-style full runs agree."""

    @staticmethod
    def _run_many(engine, trials=6, adversary_factory=lambda: "none"):
        outs = []
        for trial in range(trials):
            outs.append(
                run_broadcast(
                    n=48,
                    seed=300 + trial,
                    variant="multihop",
                    engine=engine,
                    topology="gilbert",
                    topology_kwargs={"radius": 0.3},
                    adversary=adversary_factory(),
                )
            )
        return outs

    def test_multihop_full_runs_agree(self):
        fast = self._run_many("fast")
        slot = self._run_many("slot")
        assert_means_close(
            [o.delivery_fraction for o in slot],
            [o.delivery_fraction for o in fast],
            rel=0.05,
            abs_tol=0.05,
            label="multihop delivery fraction",
        )
        assert_means_close(
            [o.delivery.rounds_executed for o in slot],
            [o.delivery.rounds_executed for o in fast],
            rel=0.2,
            abs_tol=1.0,
            label="multihop rounds executed",
        )
        assert_means_close(
            [o.alice_cost for o in slot],
            [o.alice_cost for o in fast],
            rel=0.2,
            label="multihop alice cost",
        )
        # Per-run node cost is dominated by how many rounds the last
        # stragglers take, which is high-variance; the mean over seeds still
        # has to land in the same ballpark.
        assert_means_close(
            [o.mean_node_cost for o in slot],
            [o.mean_node_cost for o in fast],
            rel=0.6,
            label="multihop mean node cost",
        )

    def test_multihop_spatial_jam_full_runs_agree(self):
        factory = lambda: SpatialJammer(center=(0.25, 0.25), radius=0.2, max_total_spend=3_000)
        fast = self._run_many("fast", trials=4, adversary_factory=factory)
        slot = self._run_many("slot", trials=4, adversary_factory=factory)
        assert_means_close(
            [o.adversary_spend for o in slot],
            [o.adversary_spend for o in fast],
            rel=0.15,
            label="spatial-jam adversary spend",
        )
        assert_means_close(
            [o.delivery_fraction for o in slot],
            [o.delivery_fraction for o in fast],
            rel=0.1,
            abs_tol=0.1,
            label="spatial-jam delivery fraction",
        )


class TestMobileJammerEngineEquivalence:
    """The E12 acceptance scenario: full multi-hop runs under a *mobile*
    jammer (victims re-resolved every phase) must agree across engines on
    protocol outcomes, with cost figures from matching distributions."""

    @staticmethod
    def _run_many(engine, adversary_factory, trials=8):
        outs = []
        for trial in range(trials):
            outs.append(
                run_broadcast(
                    n=48,
                    seed=700 + trial,
                    variant="multihop",
                    engine=engine,
                    topology="gilbert",
                    topology_kwargs={"radius": 0.3},
                    adversary=adversary_factory(),
                )
            )
        return outs

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: MobileJammer(
                WaypointPatrol([(0.25, 0.25), (0.75, 0.75)], speed=0.08),
                radius=0.2,
                max_total_spend=2_000,
            ),
            lambda: ReactiveDiskJammer(radius=0.25, max_total_spend=2_000),
        ],
        ids=["patrol", "reactive_disk"],
    )
    def test_mobile_jammer_full_runs_agree(self, factory):
        fast = self._run_many("fast", factory)
        slot = self._run_many("slot", factory)
        assert_means_close(
            [o.delivery_fraction for o in slot],
            [o.delivery_fraction for o in fast],
            rel=0.1,
            abs_tol=0.1,
            label="mobile-jam delivery fraction",
        )
        assert_means_close(
            [o.adversary_spend for o in slot],
            [o.adversary_spend for o in fast],
            rel=0.25,
            abs_tol=50.0,
            label="mobile-jam adversary spend",
        )
        assert_means_close(
            [o.mean_node_cost for o in slot],
            [o.mean_node_cost for o in fast],
            rel=0.6,
            label="mobile-jam mean node cost",
        )
        assert_same_distribution(
            [o.delivery.informed for o in slot],
            [o.delivery.informed for o in fast],
            label="mobile-jam informed counts",
        )
