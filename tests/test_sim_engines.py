"""Unit tests for the slot-faithful and vectorised phase engines."""

from __future__ import annotations

import pytest

from repro.simulation import (
    ALICE_ID,
    JamPlan,
    JamTargeting,
    Network,
    PhaseEngine,
    PhaseKind,
    PhasePlan,
    PhaseRoles,
    SimulationConfig,
    SlotEngine,
)


def inform_plan(num_slots=200, alice=0.5, listen=0.5, round_index=3):
    return PhasePlan(
        name="inform",
        kind=PhaseKind.INFORM,
        round_index=round_index,
        num_slots=num_slots,
        alice_send_prob=alice,
        uninformed_listen_prob=listen,
    )


def request_plan(num_slots=200, nack=0.05, listen=0.5, alice_listen=0.5, round_index=3):
    return PhasePlan(
        name="request",
        kind=PhaseKind.REQUEST,
        round_index=round_index,
        num_slots=num_slots,
        nack_send_prob=nack,
        uninformed_listen_prob=listen,
        alice_listen_prob=alice_listen,
    )


def propagation_plan(num_slots=200, relay=0.1, listen=0.5, round_index=3):
    return PhasePlan(
        name="propagation:1",
        kind=PhaseKind.PROPAGATION,
        round_index=round_index,
        num_slots=num_slots,
        step=1,
        relay_send_prob=relay,
        uninformed_listen_prob=listen,
    )


@pytest.fixture(params=["slot", "fast"])
def engine_factory(request):
    def factory(network):
        return SlotEngine(network) if request.param == "slot" else PhaseEngine(network)

    return factory


def make_network(n=32, seed=5, f=1.0):
    return Network(SimulationConfig(n=n, f=f, seed=seed))


class TestEngineBasics:
    def test_empty_phase_is_noop(self, engine_factory):
        network = make_network()
        engine = engine_factory(network)
        plan = inform_plan(num_slots=0)
        result = engine.run_phase(plan, PhaseRoles.of(range(network.n)), JamPlan.idle())
        assert result.newly_informed == frozenset()
        assert network.alice_cost == 0

    def test_unjammed_inform_phase_informs_everyone(self, engine_factory):
        network = make_network()
        engine = engine_factory(network)
        plan = inform_plan(num_slots=300, alice=0.5, listen=0.8)
        result = engine.run_phase(plan, PhaseRoles.of(range(network.n)), JamPlan.idle())
        # With ~150 solo transmissions and listen probability 0.8 every node
        # catches at least one copy with overwhelming probability.
        assert len(result.newly_informed) == network.n

    def test_costs_are_charged(self, engine_factory):
        network = make_network()
        engine = engine_factory(network)
        plan = inform_plan(num_slots=400, alice=0.5, listen=0.5)
        engine.run_phase(plan, PhaseRoles.of(range(network.n)), JamPlan.idle())
        assert network.alice_cost > 0
        assert network.node_costs().sum() > 0
        # Alice's sends concentrate around 200 = 400 * 0.5.
        assert 100 <= network.alice_cost <= 300

    def test_full_jamming_blocks_all_delivery(self, engine_factory):
        network = make_network()
        engine = engine_factory(network)
        plan = inform_plan(num_slots=300)
        jam = JamPlan(num_jam_slots=300, targeting=JamTargeting.everyone())
        result = engine.run_phase(plan, PhaseRoles.of(range(network.n)), jam)
        assert result.newly_informed == frozenset()
        assert result.jammed_slots == 300
        assert network.adversary_cost == 300

    def test_n_uniform_jamming_spares_chosen_nodes(self, engine_factory):
        network = make_network()
        engine = engine_factory(network)
        spared = frozenset(range(8))
        plan = inform_plan(num_slots=300, alice=0.5, listen=0.8)
        jam = JamPlan(num_jam_slots=300, targeting=JamTargeting.sparing(spared))
        result = engine.run_phase(plan, PhaseRoles.of(range(network.n)), jam)
        assert result.newly_informed == spared

    def test_alice_inactive_means_no_delivery(self, engine_factory):
        network = make_network()
        engine = engine_factory(network)
        plan = inform_plan(num_slots=200)
        roles = PhaseRoles.of(range(network.n), alice_active=False)
        result = engine.run_phase(plan, roles, JamPlan.idle())
        assert result.newly_informed == frozenset()
        assert network.alice_cost == 0

    def test_adversary_budget_caps_jamming(self, engine_factory):
        config = SimulationConfig(n=32, f=0.0, budget_constant=1.0, seed=5)
        network = Network(config)
        budget = network.adversary_ledger.budget
        engine = engine_factory(network)
        plan = inform_plan(num_slots=int(budget) + 500)
        jam = JamPlan(num_jam_slots=plan.num_slots, targeting=JamTargeting.everyone())
        result = engine.run_phase(plan, PhaseRoles.of(range(network.n)), jam)
        assert result.jammed_slots <= budget
        assert network.adversary_cost <= budget

    def test_propagation_phase_spreads_message(self, engine_factory):
        network = make_network()
        engine = engine_factory(network)
        relays = frozenset(range(8))
        uninformed = frozenset(range(8, network.n))
        plan = propagation_plan(num_slots=400, relay=0.2, listen=0.8)
        result = engine.run_phase(plan, PhaseRoles.of(uninformed, relays=relays), JamPlan.idle())
        assert len(result.newly_informed) > len(uninformed) * 0.8
        assert result.newly_informed <= uninformed

    def test_request_phase_counts_noise_for_alice_and_nodes(self, engine_factory):
        network = make_network()
        engine = engine_factory(network)
        plan = request_plan(num_slots=400, nack=0.2, listen=0.5, alice_listen=0.5)
        result = engine.run_phase(plan, PhaseRoles.of(range(network.n)), JamPlan.idle())
        assert result.alice_noisy_heard > 0
        assert result.alice_listen_slots >= result.alice_noisy_heard
        assert sum(result.node_noisy_heard.values()) > 0

    def test_request_phase_silent_when_nobody_nacks(self, engine_factory):
        network = make_network()
        engine = engine_factory(network)
        plan = request_plan(num_slots=300, nack=0.0, listen=0.5, alice_listen=0.5)
        result = engine.run_phase(plan, PhaseRoles.of([], alice_active=True), JamPlan.idle())
        assert result.alice_noisy_heard == 0

    def test_spoofed_nacks_make_noise_for_alice(self, engine_factory):
        network = make_network()
        engine = engine_factory(network)
        plan = request_plan(num_slots=300, nack=0.0, listen=0.0, alice_listen=1.0)
        jam = JamPlan(spoof_nack_slots=150, targeting=JamTargeting.none())
        result = engine.run_phase(plan, PhaseRoles.of([], alice_active=True), jam)
        assert result.spoofed_transmissions == 150
        assert result.alice_noisy_heard == pytest.approx(150, abs=0)
        assert network.adversary_cost == 150

    def test_spoofed_payloads_do_not_inform_anyone(self, engine_factory):
        network = make_network()
        engine = engine_factory(network)
        plan = inform_plan(num_slots=300, alice=0.0, listen=1.0)
        jam = JamPlan(spoof_payload_slots=200, targeting=JamTargeting.none())
        result = engine.run_phase(plan, PhaseRoles.of(range(network.n)), jam)
        assert result.newly_informed == frozenset()
        assert result.spoofed_transmissions == 200

    def test_reactive_jamming_suppresses_delivery_cheaply(self, engine_factory):
        network = make_network()
        engine = engine_factory(network)
        plan = inform_plan(num_slots=300, alice=0.3, listen=0.8)
        jam = JamPlan(num_jam_slots=10_000, reactive=True, targeting=JamTargeting.everyone())
        result = engine.run_phase(plan, PhaseRoles.of(range(network.n)), jam)
        assert result.newly_informed == frozenset()
        # A reactive jammer only pays for slots that actually carried traffic.
        assert network.adversary_cost == result.jammed_slots
        assert result.jammed_slots < 300

    def test_decoy_traffic_costs_energy_and_confuses_reactive_jammers(self, engine_factory):
        network = make_network()
        engine = engine_factory(network)
        plan = PhasePlan(
            name="inform",
            kind=PhaseKind.INFORM,
            round_index=3,
            num_slots=300,
            alice_send_prob=0.3,
            uninformed_listen_prob=0.8,
            decoy_send_prob=0.05,
        )
        roles = PhaseRoles.of(range(network.n), decoy_senders=range(network.n))
        jam = JamPlan(num_jam_slots=60, reactive=True, targeting=JamTargeting.everyone())
        result = engine.run_phase(plan, roles, jam)
        # With decoys a large share of slots are busy (the share falls over the
        # phase as informed nodes stop sending decoys in the slot engine), so
        # 60 reactive jams cannot cover Alice's ~90 transmissions and some
        # nodes still learn m.
        assert len(result.newly_informed) > 0
        assert result.busy_slots > 100


class TestResultBookkeeping:
    def test_delivery_and_busy_slot_counters(self, engine_factory):
        network = make_network()
        engine = engine_factory(network)
        plan = inform_plan(num_slots=200, alice=0.5, listen=0.5)
        result = engine.run_phase(plan, PhaseRoles.of(range(network.n)), JamPlan.idle())
        assert 0 < result.delivery_slots <= result.busy_slots <= 200
        assert result.alice_send_slots == pytest.approx(100, abs=40)

    def test_jammed_fraction_property(self, engine_factory):
        network = make_network()
        engine = engine_factory(network)
        plan = inform_plan(num_slots=100)
        jam = JamPlan(num_jam_slots=50, targeting=JamTargeting.everyone())
        result = engine.run_phase(plan, PhaseRoles.of(range(network.n)), jam)
        assert result.jammed_fraction == pytest.approx(0.5)


class TestDeterministicResultOrdering:
    """Pinned regression for the sorted ``node_noisy`` cohort iteration.

    ``PhaseResult.node_noisy_heard`` is a dict whose insertion order leaks
    into every trace or record that serialises it.  Before the fix the slot
    engine seeded it from the raw uninformed *set*, so the order tracked
    hash-table layout: ``{1, 8}`` iterates ``[8, 1]``.
    """

    def test_node_noisy_heard_keys_follow_sorted_cohort(self, engine_factory):
        network = make_network(n=16, seed=9)
        engine = engine_factory(network)
        cohort = {1, 8}
        # Precondition: raw set order genuinely differs from sorted order.
        assert list(cohort) != sorted(cohort)
        plan = request_plan(num_slots=50)
        result = engine.run_phase(plan, PhaseRoles.of(cohort), JamPlan.idle())
        assert list(result.node_noisy_heard) == sorted(cohort)
