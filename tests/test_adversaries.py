"""Unit tests for the adversary strategy catalogue."""

from __future__ import annotations

import pytest

from repro.adversary import (
    Adversary,
    BurstyJammer,
    CompositeAdversary,
    ContinuousJammer,
    GeometricBudgetAllocator,
    NullAdversary,
    NUniformSplitAdversary,
    PhaseBlockingAdversary,
    RandomJammer,
    ReactiveJammer,
    RequestSpoofingAdversary,
    RoundSwitchingAdversary,
    SpoofingAdversary,
)
from repro.simulation import (
    ConfigurationError,
    JamMode,
    PhaseContext,
    PhaseKind,
    PhasePlan,
    PhaseResult,
    PhaseRoles,
    SimulationConfig,
)


def make_context(kind=PhaseKind.INFORM, num_slots=256, round_index=5, remaining=1e9, uninformed=None, n=64):
    config = SimulationConfig(n=n, seed=1)
    plan = PhasePlan(
        name=kind.value,
        kind=kind,
        round_index=round_index,
        num_slots=num_slots,
        alice_send_prob=0.1 if kind is PhaseKind.INFORM else 0.0,
        relay_send_prob=0.01 if kind is PhaseKind.PROPAGATION else 0.0,
        nack_send_prob=0.01 if kind is PhaseKind.REQUEST else 0.0,
        uninformed_listen_prob=0.1,
    )
    roles = PhaseRoles.of(uninformed if uninformed is not None else range(n))
    return PhaseContext(
        plan=plan,
        roles=roles,
        config=config,
        adversary_remaining_budget=remaining,
    )


def fake_result(context, spend):
    return PhaseResult(
        plan=context.plan,
        newly_informed=frozenset(),
        jammed_slots=int(spend),
        adversary_spend=float(spend),
    )


class TestNullAdversary:
    def test_never_attacks(self):
        adversary = NullAdversary()
        plan = adversary.plan_phase(make_context())
        assert not plan.attacks_anything
        assert adversary.spent == 0


class TestContinuousJammer:
    def test_jams_every_slot(self):
        plan = ContinuousJammer().plan_phase(make_context(num_slots=100))
        assert plan.num_jam_slots == 100
        assert plan.targeting.mode is JamMode.ALL

    def test_spend_cap_limits_plan(self):
        adversary = ContinuousJammer(max_total_spend=30)
        plan = adversary.plan_phase(make_context(num_slots=100))
        assert plan.num_jam_slots == 30

    def test_cap_tracks_observed_spend(self):
        adversary = ContinuousJammer(max_total_spend=30)
        context = make_context(num_slots=100)
        adversary.observe_result(context, fake_result(context, 25))
        plan = adversary.plan_phase(context)
        assert plan.num_jam_slots == 5

    def test_exhausted_cap_goes_idle(self):
        adversary = ContinuousJammer(max_total_spend=10)
        context = make_context(num_slots=100)
        adversary.observe_result(context, fake_result(context, 10))
        assert not adversary.plan_phase(context).attacks_anything

    def test_ledger_remaining_budget_respected(self):
        adversary = ContinuousJammer()
        plan = adversary.plan_phase(make_context(num_slots=100, remaining=7))
        assert plan.num_jam_slots == 7

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            ContinuousJammer(max_total_spend=-1)


class TestRandomJammer:
    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            RandomJammer(rate=1.5)

    def test_expected_jam_count(self):
        plan = RandomJammer(rate=0.25).plan_phase(make_context(num_slots=400))
        assert plan.num_jam_slots == 100


class TestBurstyJammer:
    def test_burst_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            BurstyJammer(burst_length=0, period=10)
        with pytest.raises(ConfigurationError):
            BurstyJammer(burst_length=10, period=5)

    def test_burst_slots_layout(self):
        jammer = BurstyJammer(burst_length=2, period=5)
        assert jammer.burst_slots(12) == (0, 1, 5, 6, 10, 11)

    def test_plan_uses_explicit_slots(self):
        plan = BurstyJammer(burst_length=2, period=8).plan_phase(make_context(num_slots=16))
        assert plan.slot_indices == (0, 1, 8, 9)


class TestPhaseBlocker:
    def test_blocks_only_targeted_kinds(self):
        blocker = PhaseBlockingAdversary(kinds={PhaseKind.INFORM})
        assert blocker.plan_phase(make_context(PhaseKind.INFORM)).attacks_anything
        assert not blocker.plan_phase(make_context(PhaseKind.REQUEST)).attacks_anything

    def test_fraction_of_slots(self):
        blocker = PhaseBlockingAdversary(fraction=0.5)
        plan = blocker.plan_phase(make_context(num_slots=200))
        assert plan.num_jam_slots == 100

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            PhaseBlockingAdversary(fraction=0.0)

    def test_empty_kinds_rejected(self):
        with pytest.raises(ConfigurationError):
            PhaseBlockingAdversary(kinds=[])

    def test_skip_early_rounds(self):
        blocker = PhaseBlockingAdversary(skip_rounds_below=6)
        assert not blocker.plan_phase(make_context(round_index=5)).attacks_anything
        assert blocker.plan_phase(make_context(round_index=6)).attacks_anything


class TestNUniformSplit:
    def test_victims_fixed_after_first_plan(self):
        adversary = NUniformSplitAdversary(target_uninformed=4)
        adversary.plan_phase(make_context(uninformed=range(10)))
        assert adversary.victims == frozenset(range(4))
        # Even if the uninformed set changes, victims stay pinned.
        adversary.plan_phase(make_context(uninformed=range(5, 10)))
        assert adversary.victims == frozenset(range(4))

    def test_request_phase_left_clean(self):
        adversary = NUniformSplitAdversary(target_uninformed=4)
        assert not adversary.plan_phase(make_context(PhaseKind.REQUEST)).attacks_anything

    def test_idle_when_victims_all_done(self):
        adversary = NUniformSplitAdversary(target_uninformed=2)
        adversary.plan_phase(make_context(uninformed=range(10)))
        plan = adversary.plan_phase(make_context(uninformed=range(5, 10)))
        assert not plan.attacks_anything

    def test_targeting_only_victims(self):
        adversary = NUniformSplitAdversary(target_uninformed=3)
        plan = adversary.plan_phase(make_context(uninformed=range(10)))
        assert plan.targeting.mode is JamMode.ONLY
        assert plan.targeting.nodes == frozenset({0, 1, 2})

    def test_zero_target_never_attacks(self):
        adversary = NUniformSplitAdversary(target_uninformed=0)
        assert not adversary.plan_phase(make_context()).attacks_anything

    def test_negative_target_rejected(self):
        with pytest.raises(ConfigurationError):
            NUniformSplitAdversary(target_uninformed=-1)


class TestRequestSpoofer:
    def test_spoofs_nacks_in_request_phase(self):
        adversary = RequestSpoofingAdversary(fraction=0.5)
        plan = adversary.plan_phase(make_context(PhaseKind.REQUEST, num_slots=100))
        assert plan.spoof_nack_slots == 50
        assert plan.num_jam_slots == 0

    def test_jamming_mode(self):
        adversary = RequestSpoofingAdversary(fraction=1.0, use_spoofed_nacks=False)
        plan = adversary.plan_phase(make_context(PhaseKind.REQUEST, num_slots=100))
        assert plan.num_jam_slots == 100

    def test_payload_phases_untouched_by_default(self):
        adversary = RequestSpoofingAdversary()
        assert not adversary.plan_phase(make_context(PhaseKind.INFORM)).attacks_anything

    def test_combined_strategy_blocks_payload_phases(self):
        adversary = RequestSpoofingAdversary(also_block_payload_phases=True)
        assert adversary.plan_phase(make_context(PhaseKind.INFORM)).num_jam_slots == 256


class TestReactiveJammer:
    def test_reactive_flag_set(self):
        plan = ReactiveJammer().plan_phase(make_context(PhaseKind.INFORM))
        assert plan.reactive

    def test_request_phase_ignored_by_default(self):
        assert not ReactiveJammer().plan_phase(make_context(PhaseKind.REQUEST)).attacks_anything

    def test_phase_budget_fraction(self):
        jammer = ReactiveJammer(phase_budget_fraction=0.5)
        plan = jammer.plan_phase(make_context(num_slots=1000, remaining=100))
        assert plan.num_jam_slots == 50

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            ReactiveJammer(phase_budget_fraction=0.0)


class TestSpoofingAdversary:
    def test_payload_spoofs_in_inform_phase(self):
        plan = SpoofingAdversary(payload_fraction=0.25).plan_phase(make_context(num_slots=100))
        assert plan.spoof_payload_slots == 25

    def test_nack_spoofs_in_request_phase(self):
        plan = SpoofingAdversary(nack_fraction=0.5).plan_phase(make_context(PhaseKind.REQUEST, num_slots=100))
        assert plan.spoof_nack_slots == 50

    def test_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            SpoofingAdversary(payload_fraction=2.0)


class TestComposites:
    def test_composite_uses_first_non_idle(self):
        composite = CompositeAdversary(
            [RequestSpoofingAdversary(), PhaseBlockingAdversary(kinds={PhaseKind.INFORM})]
        )
        inform_plan = composite.plan_phase(make_context(PhaseKind.INFORM))
        request_plan = composite.plan_phase(make_context(PhaseKind.REQUEST))
        assert inform_plan.num_jam_slots > 0
        assert request_plan.spoof_nack_slots > 0

    def test_composite_requires_strategies(self):
        with pytest.raises(ConfigurationError):
            CompositeAdversary([])

    def test_round_switching(self):
        switching = RoundSwitchingAdversary(
            early=ContinuousJammer(), late=NullAdversary(), switch_round=6
        )
        assert switching.plan_phase(make_context(round_index=5)).attacks_anything
        assert not switching.plan_phase(make_context(round_index=7)).attacks_anything

    def test_round_switching_validation(self):
        with pytest.raises(ConfigurationError):
            RoundSwitchingAdversary(ContinuousJammer(), NullAdversary(), switch_round=-1)

    def test_composite_shared_cap(self):
        composite = CompositeAdversary([ContinuousJammer()], max_total_spend=10)
        context = make_context(num_slots=100)
        plan = composite.plan_phase(context)
        assert plan.num_jam_slots == 10


class TestBudgetAllocator:
    def test_allotments_grow_geometrically(self):
        allocator = GeometricBudgetAllocator(total=1000, ratio=2.0, first_round=1, last_round=4)
        shares = [allocator.allotment(i) for i in range(1, 5)]
        assert shares[1] == pytest.approx(2 * shares[0])
        assert sum(shares) == pytest.approx(1000)

    def test_out_of_window_rounds_get_nothing(self):
        allocator = GeometricBudgetAllocator(total=100, ratio=2.0, first_round=2, last_round=3)
        assert allocator.allotment(1) == 0.0
        assert allocator.allotment(4) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GeometricBudgetAllocator(total=-1, ratio=2.0, first_round=1, last_round=2)
        with pytest.raises(ConfigurationError):
            GeometricBudgetAllocator(total=1, ratio=0.0, first_round=1, last_round=2)
        with pytest.raises(ConfigurationError):
            GeometricBudgetAllocator(total=1, ratio=2.0, first_round=3, last_round=2)

    def test_total_granted_tracks_queries(self):
        allocator = GeometricBudgetAllocator(total=100, ratio=1.0, first_round=1, last_round=2)
        allocator.allotment(1)
        assert allocator.total_granted() == pytest.approx(50)


class TestAdversaryBase:
    def test_results_recorded(self):
        adversary = ContinuousJammer()
        context = make_context()
        adversary.observe_result(context, fake_result(context, 12))
        assert adversary.spent == 12
        assert len(adversary.results) == 1

    def test_cap_plan_respects_slot_indices(self):
        plan = BurstyJammer(burst_length=10, period=10, max_total_spend=3).plan_phase(
            make_context(num_slots=30)
        )
        assert plan.slot_indices is not None
        assert len(plan.slot_indices) == 3

    def test_spoofs_capped_after_jams(self):
        adversary = RequestSpoofingAdversary(fraction=1.0, max_total_spend=40)
        plan = adversary.plan_phase(make_context(PhaseKind.REQUEST, num_slots=100))
        assert plan.spoof_nack_slots == 40

    def test_abstract_base_cannot_instantiate(self):
        with pytest.raises(TypeError):
            Adversary()  # type: ignore[abstract]
