"""Tests for the per-node, degree-aware quiet-rule termination machinery.

Covers the :mod:`repro.core.quietrule` policy catalogue (budgets, validation,
the deprecated ``max_quiet_retries`` alias), the topology-side neighbourhood
statistics the budgets derive from, the per-run streak state (including the
reused-orchestrator regression), both E11 misfire directions as behavioural
regressions, cross-engine statistical equivalence of the degree-aware rule on
Gilbert and scale-free topologies, and the trial-store pruning added
alongside.
"""

from __future__ import annotations

import os
import pickle
import time

import numpy as np
import pytest

from equivalence import assert_means_close, assert_same_distribution

from repro import run_broadcast
from repro.core.broadcast import MultiHopBroadcast
from repro.core.quietrule import (
    ConstantQuietRule,
    DegreeAwareQuietRule,
    PaperQuietRule,
    resolve_quiet_rule,
)
from repro.experiments.cache import TrialCache
from repro.experiments.harness import ExperimentSettings
from repro.simulation import SimulationConfig, TopologySpec
from repro.simulation.errors import ConfigurationError
from repro.simulation.network import Network
from repro.simulation.rng import RandomSource
from repro.simulation.topology import SingleHop, build_topology, gilbert_connectivity_radius


def make_topology(kind="gilbert", n=48, seed=3, **kwargs):
    spec = TopologySpec(kind=kind, **kwargs)
    return build_topology(spec, n, RandomSource(seed))


# --------------------------------------------------------------------------- #
# Topology neighbourhood statistics                                           #
# --------------------------------------------------------------------------- #


class TestNeighborhoodStatistics:
    def brute_force_ball(self, topo, node, hops):
        """Reference BFS ball over device ids (Alice included, self excluded)."""

        frontier = {node}
        ball = {node}
        for _ in range(hops):
            frontier = {v for u in frontier for v in topo.neighbors(u)} - ball
            ball |= frontier
        return ball - {node}

    @pytest.mark.parametrize("sparse", [False, True])
    @pytest.mark.parametrize("hops", [1, 2, 3])
    def test_matches_brute_force_bfs(self, sparse, hops):
        topo = make_topology(n=40, seed=7, radius=0.14, sparse=sparse)
        sizes = topo.neighborhood_sizes(hops)
        has_alice = topo.alice_within(hops)
        for node in range(topo.n):
            ball = self.brute_force_ball(topo, node, hops)
            assert sizes[node] == len(ball), f"node {node} hops {hops}"
            assert has_alice[node] == (-1 in ball), f"node {node} hops {hops}"

    def test_dense_and_sparse_backends_agree(self):
        dense = make_topology(n=64, seed=9, radius=0.12, sparse=False)
        sparse = make_topology(n=64, seed=9, radius=0.12, sparse=True)
        for hops in (1, 2, 3):
            assert np.array_equal(
                dense.neighborhood_sizes(hops), sparse.neighborhood_sizes(hops)
            )
            assert np.array_equal(dense.alice_within(hops), sparse.alice_within(hops))

    def test_hops_one_counts_devices_not_just_nodes(self):
        """Unlike degrees(), neighborhood_sizes counts Alice as a device."""

        topo = make_topology(n=40, seed=7, radius=0.14)
        degrees = topo.degrees()
        sizes = topo.neighborhood_sizes(1)
        alice_adjacent = topo.alice_within(1)
        assert np.array_equal(sizes, degrees + alice_adjacent.astype(np.int64))

    def test_degrees_and_sizes_are_cached_and_read_only(self):
        topo = make_topology(n=32, seed=2, radius=0.2)
        assert topo.degrees() is topo.degrees()
        assert topo.neighborhood_sizes(2) is topo.neighborhood_sizes(2)
        with pytest.raises(ValueError):
            topo.degrees()[0] = 99
        with pytest.raises(ValueError):
            topo.neighborhood_sizes(2)[0] = 99

    def test_single_hop_ball_is_everyone(self):
        topo = SingleHop(16)
        for hops in (1, 2):
            assert np.array_equal(topo.neighborhood_sizes(hops), np.full(16, 16))
            assert topo.alice_within(hops).all()

    def test_hops_validated(self):
        topo = make_topology(n=16, seed=1, radius=0.3)
        with pytest.raises(ConfigurationError):
            topo.neighborhood_sizes(0)
        with pytest.raises(ConfigurationError):
            topo.neighborhood_sizes(2, cap=0)
        with pytest.raises(ConfigurationError):
            topo.alice_within(0)

    @pytest.mark.parametrize("sparse", [False, True])
    def test_capped_sizes_are_exact_below_the_cap(self, sparse):
        """The saturating fast path: values below cap exact, others >= cap."""

        topo = make_topology(n=80, seed=4, radius=0.09, sparse=sparse)
        exact = topo.neighborhood_sizes(3)
        for cap in (2, 6, 15):
            capped = topo.neighborhood_sizes(3, cap=cap)
            below = exact < cap
            assert np.array_equal(capped[below], exact[below])
            assert (capped[~below] >= cap).all()

    def test_capped_cut_gives_identical_budgets(self):
        """The rule's saturating query must not change a single budget."""

        topo = make_topology(n=80, seed=4, radius=0.09)
        fast = DegreeAwareQuietRule().budgets(topo)
        slow_sizes = topo.neighborhood_sizes(3).astype(float)
        cut = 1.8 * np.log(80)
        slow = 1 + np.ceil(1.25 * np.log2(1.0 + slow_sizes))
        slow = np.where(slow_sizes >= cut, np.inf, slow)
        slow = np.where(topo.alice_within(6), np.inf, slow)
        assert np.array_equal(fast, slow)


# --------------------------------------------------------------------------- #
# QuietRule policies                                                          #
# --------------------------------------------------------------------------- #


class TestQuietRulePolicies:
    def test_paper_rule_budgets_are_unlimited(self):
        topo = make_topology(n=24, seed=1, radius=0.2)
        rule = PaperQuietRule()
        assert rule.channel_quiet_test
        assert np.isinf(rule.budgets(topo)).all()

    def test_constant_rule_is_uniform(self):
        topo = make_topology(n=24, seed=1, radius=0.2)
        rule = ConstantQuietRule(retries=4)
        assert rule.channel_quiet_test
        assert np.array_equal(rule.budgets(topo), np.full(24, 4.0))

    def test_degree_aware_budget_formula(self):
        topo = make_topology(n=48, seed=3, radius=0.12)
        rule = DegreeAwareQuietRule(
            coefficient=1.25,
            base=1,
            hops=3,
            unlimited_factor=1.8,
            protect_source_neighborhood=True,
        )
        assert not rule.channel_quiet_test
        budgets = rule.budgets(topo)
        sizes = topo.neighborhood_sizes(3)
        cut = 1.8 * np.log(48)
        protected = topo.alice_within(2 * 3)
        for node in range(48):
            if sizes[node] >= cut or protected[node]:
                assert np.isinf(budgets[node])
            else:
                assert budgets[node] == 1 + np.ceil(1.25 * np.log2(1 + sizes[node]))

    def test_unlimited_factor_none_disables_the_cut(self):
        topo = make_topology(n=48, seed=3, radius=0.3)
        rule = DegreeAwareQuietRule(unlimited_factor=None, protect_source_neighborhood=False)
        assert np.isfinite(rule.budgets(topo)).all()

    def test_hops_one_is_the_plain_degree_form(self):
        topo = make_topology(n=48, seed=3, radius=0.12)
        rule = DegreeAwareQuietRule(
            coefficient=2.0, base=2, hops=1, unlimited_factor=None,
            protect_source_neighborhood=False,
        )
        sizes = topo.neighborhood_sizes(1)
        expected = 2 + np.ceil(2.0 * np.log2(1 + sizes.astype(float)))
        assert np.array_equal(rule.budgets(topo), expected)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConstantQuietRule(retries=0)
        with pytest.raises(ConfigurationError):
            DegreeAwareQuietRule(coefficient=0)
        with pytest.raises(ConfigurationError):
            DegreeAwareQuietRule(base=0)
        with pytest.raises(ConfigurationError):
            DegreeAwareQuietRule(hops=0)
        with pytest.raises(ConfigurationError):
            DegreeAwareQuietRule(unlimited_factor=-1.0)

    def test_resolve(self):
        assert isinstance(resolve_quiet_rule(None), DegreeAwareQuietRule)
        assert resolve_quiet_rule(None, 7) == ConstantQuietRule(retries=7)
        assert isinstance(resolve_quiet_rule("paper"), PaperQuietRule)
        assert isinstance(resolve_quiet_rule("degree-aware"), DegreeAwareQuietRule)
        custom = DegreeAwareQuietRule(coefficient=3.0)
        assert resolve_quiet_rule(custom) is custom
        with pytest.raises(ConfigurationError):
            resolve_quiet_rule("no-such-rule")
        with pytest.raises(ConfigurationError):
            resolve_quiet_rule(PaperQuietRule(), 4)
        with pytest.raises(ConfigurationError):
            resolve_quiet_rule(None, 0)
        with pytest.raises(ConfigurationError):
            resolve_quiet_rule(object())

    def test_rules_are_picklable_policy_values(self):
        """Experiments ship rules as sweep params across process boundaries."""

        for rule in (PaperQuietRule(), ConstantQuietRule(5), DegreeAwareQuietRule()):
            clone = pickle.loads(pickle.dumps(rule))
            assert clone == rule
            assert rule.describe()


# --------------------------------------------------------------------------- #
# Behavioural regressions (both E11 misfire directions)                       #
# --------------------------------------------------------------------------- #

FRAGMENTED = dict(
    n=96,
    seed=11,
    variant="multihop",
    engine="fast",
    topology="gilbert",
    topology_kwargs={"radius": 0.06},
)


class TestQuietRuleBehaviour:
    def test_default_rule_is_degree_aware(self):
        config = SimulationConfig(n=16, seed=1, topology=TopologySpec.gilbert(radius=0.3))
        protocol = MultiHopBroadcast(config)
        assert protocol.quiet_rule == DegreeAwareQuietRule()

    def test_sub_threshold_cost_bound(self):
        """Direction 2: no retry cap configured, yet the Alice-less blowup is
        cured — within 2× of the uniform ConstantQuietRule(6) reference."""

        paper = run_broadcast(**FRAGMENTED, quiet_rule="paper")
        constant = run_broadcast(**FRAGMENTED, max_quiet_retries=6)
        degree = run_broadcast(**FRAGMENTED)
        assert degree.mean_node_cost <= 2.0 * constant.mean_node_cost
        assert degree.mean_node_cost <= 0.2 * paper.mean_node_cost

    def test_near_threshold_delivery_recovered(self):
        """Direction 1: at the E11 near-threshold profile the degree-aware
        rule returns delivery-vs-reachable to ~1 where the paper rule dips
        (nodes quit at the earliest reliable round, ahead of the frontier)."""

        settings = ExperimentSettings(n=256, trials=3, quick=True, seed=2012)
        r_c = gilbert_connectivity_radius(settings.n)
        label = "gilbert r=1.3·r_c"
        paper_dvr, degree_dvr = [], []
        for trial in range(settings.trials):
            seed = settings.trial_seed("E11", label, trial)
            config = SimulationConfig(
                n=settings.n, k=2, f=1.0, seed=seed,
                topology=TopologySpec.gilbert(radius=1.3 * r_c),
            )
            for rule, bucket in (("paper", paper_dvr), (None, degree_dvr)):
                protocol = MultiHopBroadcast(config, engine="fast", quiet_rule=rule)
                reachable = len(protocol.network.topology.reachable_from_alice())
                outcome = protocol.run()
                bucket.append(outcome.delivery.informed / reachable)
        assert np.mean(degree_dvr) >= 0.99
        assert abs(np.mean(degree_dvr) - 1.0) <= 0.01
        # And it stays within one node of the paper rule on every trial.
        # (Strict dominance held when one relay wave ran per round; pipelined
        # frontiers cure most of the paper rule's own dip at this profile, so
        # a single early-give-up node can now put the degree rule a hair
        # below a perfect paper trial.)
        for paper_value, degree_value in zip(paper_dvr, degree_dvr):
            assert degree_value >= paper_value - 1.5 / settings.n

    def test_small_alice_components_still_served(self):
        """Sub-threshold nodes in Alice's own (small) component are reachable
        and must not be starved by finite budgets: the source-neighbourhood
        protection keeps them patient."""

        settings = ExperimentSettings(n=96, trials=4, quick=True, seed=2012)
        r_c = gilbert_connectivity_radius(settings.n)
        informed = reachable_total = 0
        for trial in range(settings.trials):
            seed = settings.trial_seed("E11", "gilbert r=0.6·r_c", trial)
            config = SimulationConfig(
                n=settings.n, k=2, f=1.0, seed=seed,
                topology=TopologySpec.gilbert(radius=0.6 * r_c),
            )
            protocol = MultiHopBroadcast(config, engine="fast")
            reachable = protocol.network.topology.reachable_from_alice()
            # Only components that fit inside the protection radius are
            # guaranteed; sub-threshold Alice components are that small.
            outcome = protocol.run()
            informed += outcome.delivery.informed
            reachable_total += len(reachable)
        assert reachable_total > 0
        assert informed / reachable_total >= 0.99

    def test_single_hop_never_consults_the_rule(self):
        base = run_broadcast(n=48, seed=21, variant="multihop", quiet_rule="paper")
        degree = run_broadcast(n=48, seed=21, variant="multihop")
        assert degree.delivery.slots_elapsed == base.delivery.slots_elapsed
        assert degree.mean_node_cost == base.mean_node_cost
        assert degree.delivery_fraction == base.delivery_fraction == 1.0

    def test_reused_orchestrator_resets_the_streaks(self):
        """Regression for the stale-counter bug: the retry state used to live
        on the orchestrator and survive into the next run, so a reused
        orchestrator could cap its second run's very first request phase.
        The streaks now live on the per-run ProtocolState."""

        config = SimulationConfig(
            n=48, seed=13, topology=TopologySpec.gilbert(radius=0.4)
        )
        protocol = MultiHopBroadcast(config, engine="fast", max_quiet_retries=8)
        first = protocol.run()
        assert first.delivery_fraction == 1.0
        second = protocol.run()
        # With the stale run-level counter the second run terminated every
        # uninformed node in its first request phase; delivery collapsed.
        assert second.delivery_fraction == 1.0
        assert protocol.final_state.quiet_streaks.max() <= 8

    def test_streaks_only_count_uninformed_phases(self):
        config = SimulationConfig(
            n=32, seed=5, topology=TopologySpec.gilbert(radius=0.4)
        )
        protocol = MultiHopBroadcast(config, engine="fast")
        outcome = protocol.run()
        assert outcome.delivery_fraction == 1.0
        streaks = protocol.final_state.quiet_streaks
        # Nodes informed in round r stop accruing streak afterwards; nobody
        # can have more streak than executed rounds.
        assert streaks.max() <= outcome.delivery.rounds_executed


# --------------------------------------------------------------------------- #
# Cross-engine equivalence of the degree-aware rule                           #
# --------------------------------------------------------------------------- #


class TestDegreeRuleEngineEquivalence:
    """KS/moment equivalence of full degree-aware-rule runs on both engines.

    Fragmented profiles are the interesting ones: there the budgets actually
    fire (connected graphs deliver before any budget is reached).  The rule
    is applied by the orchestrator, so the engines must agree on the signals
    it consumes (per-node request-phase participation and cohort sizes).
    """

    @staticmethod
    def _run_many(engine, kind, trials=10, **topology_kwargs):
        outs = []
        for trial in range(trials):
            outs.append(
                run_broadcast(
                    n=32,
                    seed=500 + trial,
                    variant="multihop",
                    engine=engine,
                    topology=kind,
                    topology_kwargs=topology_kwargs,
                )
            )
        return outs

    @pytest.mark.parametrize(
        "kind,kwargs",
        [
            ("gilbert", {"radius": 0.09}),
            ("scale_free", {"alpha": 2.5, "min_radius": 0.05}),
        ],
    )
    def test_fragmented_full_runs_agree(self, kind, kwargs):
        fast = self._run_many("fast", kind, **kwargs)
        slot = self._run_many("slot", kind, **kwargs)
        for metric, rel, abs_tol in (
            ("delivery_fraction", 0.1, 0.05),
            ("mean_node_cost", 0.3, 0.0),
            ("alice_cost", 0.25, 0.0),
        ):
            assert_means_close(
                [getattr(o, metric) for o in slot],
                [getattr(o, metric) for o in fast],
                rel=rel,
                abs_tol=abs_tol,
                label=f"{kind} degree-rule {metric}",
            )
        assert_same_distribution(
            [o.delivery.terminated_uninformed for o in slot],
            [o.delivery.terminated_uninformed for o in fast],
            label=f"{kind} degree-rule terminated-uninformed counts",
        )

    def test_give_up_rounds_match_across_engines(self):
        """The budgets fire at the same request phases on both engines (the
        rule consumes no randomness; cohort membership drives it)."""

        for engine_pair in range(3):
            seed = 700 + engine_pair
            rounds = {}
            for engine in ("fast", "slot"):
                config = SimulationConfig(
                    n=24, seed=seed, topology=TopologySpec.gilbert(radius=0.08)
                )
                protocol = MultiHopBroadcast(config, engine=engine)
                protocol.run()
                state = protocol.final_state
                rounds[engine] = sorted(
                    state.terminated_at_round[node]
                    for node, status in state.statuses.items()
                    if status.value == "terminated_uninformed"
                )
            # Identical topology (seeded) and deterministic budgets: the two
            # engines may differ on *who* got informed, but every node that
            # exhausts its budget does so at the same round.
            exhausted_fast = [r for r in rounds["fast"]]
            exhausted_slot = [r for r in rounds["slot"]]
            assert exhausted_fast and exhausted_slot
            assert (
                np.median(exhausted_fast) == np.median(exhausted_slot)
            ), f"seed {seed}: {rounds}"


# --------------------------------------------------------------------------- #
# Trial-store pruning                                                         #
# --------------------------------------------------------------------------- #


class TestTrialCachePrune:
    def fill(self, cache, count, size=100, start_mtime=None):
        keys = []
        for index in range(count):
            key = f"{index:02x}" + "0" * 62
            cache.put(key, {"index": index, "blob": "x" * size})
            if start_mtime is not None:
                os.utime(cache.path_for(key), (start_mtime + index, start_mtime + index))
            keys.append(key)
        return keys

    def test_prune_by_age(self, tmp_path):
        cache = TrialCache(tmp_path)
        now = time.time()
        keys = self.fill(cache, 4, start_mtime=now - 10 * 86400)
        os.utime(cache.path_for(keys[-1]), (now, now))
        stats = cache.prune(max_age_days=5)
        assert stats.scanned == 4 and stats.removed == 3
        assert cache.get(keys[-1]) is not None
        assert all(cache.get(key) is None for key in keys[:-1])
        assert "pruned 3/4" in stats.describe()

    def test_prune_by_bytes_is_lru_by_mtime(self, tmp_path):
        cache = TrialCache(tmp_path)
        now = time.time()
        keys = self.fill(cache, 6, start_mtime=now - 600)
        entry_size = cache.path_for(keys[0]).stat().st_size
        stats = cache.prune(max_bytes=2 * entry_size)
        # Newest two mtimes survive; the four oldest are evicted.
        assert stats.removed == 4
        assert cache.get(keys[4]) is not None and cache.get(keys[5]) is not None
        assert all(cache.get(key) is None for key in keys[:4])
        assert stats.kept_bytes <= 2 * entry_size

    def test_prune_zero_budget_empties_the_store_and_shards(self, tmp_path):
        cache = TrialCache(tmp_path)
        self.fill(cache, 3)
        stats = cache.prune(max_bytes=0)
        assert stats.removed == 3 and len(cache) == 0
        assert not any(p.is_dir() for p in cache.root.iterdir())

    def test_prune_validation(self, tmp_path):
        cache = TrialCache(tmp_path)
        with pytest.raises(ValueError):
            cache.prune()
        with pytest.raises(ValueError):
            cache.prune(max_bytes=-1)
        with pytest.raises(ValueError):
            cache.prune(max_age_days=-1)

    def test_touch_refreshes_mtime_for_lru(self, tmp_path):
        cache = TrialCache(tmp_path)
        now = time.time()
        keys = self.fill(cache, 2, start_mtime=now - 1000)
        cache.touch(keys[0])  # a "hit" on the older entry
        entry_size = cache.path_for(keys[0]).stat().st_size
        cache.prune(max_bytes=entry_size)
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None
