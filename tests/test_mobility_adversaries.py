"""Behavioural tests for the jammer-mobility subsystem.

Covers the spatial-adversary edge cases named in the issue — unbound-use
errors, empty-disk idling, single-hop degradation to phase blocking, and
seeded-trajectory determinism across processes — plus the per-phase
``observe_phase`` re-resolution hook (forwarded by the composites and both
orchestrator families) and the ``max_quiet_retries`` quiet-rule cap.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro import run_broadcast
from repro.adversary import (
    CompositeAdversary,
    MobileJammer,
    MultiDiskJammer,
    NullAdversary,
    Orbit,
    PhaseBlockingAdversary,
    RandomWalk,
    ReactiveDiskJammer,
    RoundSwitchingAdversary,
    WaypointPatrol,
)
from repro.baselines import NaiveBroadcast
from repro.core.broadcast import EpsilonBroadcast, MultiHopBroadcast
from repro.simulation import SimulationConfig, TopologySpec
from repro.simulation.channel import JamMode
from repro.simulation.errors import ConfigurationError
from repro.simulation.phaseplan import PhaseContext, PhaseKind, PhasePlan, PhaseRoles

SRC = str(Path(__file__).resolve().parent.parent / "src")

GILBERT = TopologySpec.gilbert(radius=0.3)


def inform_context(config, n_active=None):
    n_active = config.n if n_active is None else n_active
    return PhaseContext(
        plan=PhasePlan(
            name="inform",
            kind=PhaseKind.INFORM,
            round_index=1,
            num_slots=8,
            alice_send_prob=0.5,
            uninformed_listen_prob=0.5,
        ),
        roles=PhaseRoles.of(range(n_active)),
        config=config,
    )


class TestTrajectories:
    def test_patrol_loops_over_waypoints(self):
        patrol = WaypointPatrol([(0.0, 0.0), (1.0, 0.0)], speed=0.5)
        # Closed square-less loop: 0 -> 1 -> back to 0 along the same edge.
        assert patrol.position(0) == (0.0, 0.0)
        assert patrol.position(1) == (0.5, 0.0)
        assert patrol.position(2) == (1.0, 0.0)
        assert patrol.position(4) == (0.0, 0.0)  # full 2.0-length lap

    def test_open_patrol_ping_pongs(self):
        patrol = WaypointPatrol([(0.0, 0.0), (1.0, 0.0)], speed=0.5, closed=False)
        assert patrol.position(2) == (1.0, 0.0)
        assert patrol.position(3) == (0.5, 0.0)  # heading back
        assert patrol.position(4) == (0.0, 0.0)

    def test_stationary_cases(self):
        assert WaypointPatrol([(0.3, 0.4)], speed=1.0).position(7) == (0.3, 0.4)
        assert WaypointPatrol([(0.3, 0.4), (0.8, 0.4)], speed=0.0).position(7) == (0.3, 0.4)

    def test_orbit_geometry(self):
        orbit = Orbit(center=(0.5, 0.5), orbit_radius=0.2, angular_speed=np.pi, initial_angle=0.0)
        assert orbit.position(0) == pytest.approx((0.7, 0.5))
        assert orbit.position(1) == pytest.approx((0.3, 0.5))
        assert orbit.position(2) == pytest.approx((0.7, 0.5))

    def test_random_walk_seeded_and_reflecting(self):
        walk_a = RandomWalk(start=(0.5, 0.5), step=0.3, seed=11)
        walk_b = RandomWalk(start=(0.5, 0.5), step=0.3, seed=11)
        positions = [walk_a.position(t) for t in range(50)]
        assert positions == [walk_b.position(t) for t in range(50)]
        assert all(0.0 <= x <= 1.0 and 0.0 <= y <= 1.0 for x, y in positions)
        assert RandomWalk(seed=12).position(5) != walk_a.position(5)

    def test_random_walk_positions_memoised_out_of_order(self):
        walk = RandomWalk(step=0.05, seed=3)
        later = walk.position(9)
        assert walk.position(9) == later
        assert walk.position(2) == RandomWalk(step=0.05, seed=3).position(2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WaypointPatrol([], speed=0.1)
        with pytest.raises(ConfigurationError):
            WaypointPatrol([(0, 0)], speed=-1)
        with pytest.raises(ConfigurationError):
            Orbit(orbit_radius=-0.1)
        with pytest.raises(ConfigurationError):
            RandomWalk(step=-0.1)
        with pytest.raises(ConfigurationError):
            RandomWalk(seed=-1)
        with pytest.raises(ConfigurationError):
            RandomWalk().position(-1)

    def test_trajectory_determinism_across_processes(self):
        """Seeded trajectories must replay bit-identically in a fresh process."""

        script = textwrap.dedent(
            """
            import json
            from repro.adversary import Orbit, RandomWalk, WaypointPatrol

            trajectories = {
                "patrol": WaypointPatrol([(0.1, 0.1), (0.9, 0.1), (0.9, 0.9)], speed=0.07),
                "walk": RandomWalk(start=(0.3, 0.7), step=0.04, seed=123),
                "orbit": Orbit(center=(0.4, 0.6), orbit_radius=0.2, angular_speed=0.3,
                               initial_angle=0.5),
            }
            print(json.dumps({
                name: [list(t.position(i)) for i in range(12)]
                for name, t in trajectories.items()
            }))
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, env=env
        )
        assert proc.returncode == 0, proc.stderr
        remote = json.loads(proc.stdout)

        local = {
            "patrol": WaypointPatrol([(0.1, 0.1), (0.9, 0.1), (0.9, 0.9)], speed=0.07),
            "walk": RandomWalk(start=(0.3, 0.7), step=0.04, seed=123),
            "orbit": Orbit(center=(0.4, 0.6), orbit_radius=0.2, angular_speed=0.3,
                           initial_angle=0.5),
        }
        for name, trajectory in local.items():
            expected = [list(trajectory.position(i)) for i in range(12)]
            assert remote[name] == expected, f"{name} trajectory differs across processes"


MOBILITY_FACTORIES = {
    "mobile": lambda **kw: MobileJammer(Orbit(), radius=0.2, **kw),
    "multi_disk": lambda **kw: MultiDiskJammer([(0.25, 0.25), (0.75, 0.75)], radius=0.15, **kw),
    "reactive_disk": lambda **kw: ReactiveDiskJammer(radius=0.2, **kw),
}


class TestUnboundUse:
    @pytest.mark.parametrize("name", sorted(MOBILITY_FACTORIES))
    def test_plan_without_binding_raises(self, name):
        adversary = MOBILITY_FACTORIES[name]()
        context = inform_context(SimulationConfig(n=8))
        with pytest.raises(ConfigurationError, match="bind_network"):
            adversary.plan_phase(context)

    @pytest.mark.parametrize("name", sorted(MOBILITY_FACTORIES))
    def test_observe_without_binding_raises(self, name):
        adversary = MOBILITY_FACTORIES[name]()
        context = inform_context(SimulationConfig(n=8))
        with pytest.raises(ConfigurationError, match="bind_network"):
            adversary.observe_phase(context)


class TestEmptyDiskIdling:
    def test_disk_outside_deployment_attacks_nothing(self):
        adversary = MobileJammer(
            WaypointPatrol([(5.0, 5.0)], speed=0.0), radius=0.05, max_total_spend=1_000
        )
        outcome = run_broadcast(
            n=32,
            seed=4,
            variant="multihop",
            engine="fast",
            topology="gilbert",
            topology_kwargs={"radius": 0.35},
            adversary=adversary,
        )
        assert outcome.adversary_spend == 0.0
        assert adversary.victims == frozenset()
        assert adversary.coverage == frozenset()
        assert outcome.delivery_fraction == 1.0

    def test_zero_radius_multi_disk_idles(self):
        adversary = MultiDiskJammer([(2.0, 2.0), (3.0, 3.0)], radius=0.0)
        outcome = run_broadcast(
            n=24,
            seed=4,
            variant="multihop",
            engine="fast",
            topology="gilbert",
            topology_kwargs={"radius": 0.4},
            adversary=adversary,
        )
        assert outcome.adversary_spend == 0.0


class TestSingleHopDegradation:
    @pytest.mark.parametrize("name", sorted(MOBILITY_FACTORIES))
    def test_disk_over_clique_is_a_phase_blocker(self, name):
        """On single-hop every disk resolves to the whole clique: the plan is
        exactly blanket payload-phase jamming."""

        config = SimulationConfig(n=12, seed=2)
        adversary = MOBILITY_FACTORIES[name](max_total_spend=10_000)
        protocol = EpsilonBroadcast(config, adversary=adversary, engine="fast")
        context = inform_context(config)
        adversary.observe_phase(context)
        plan = adversary.plan_phase(context)
        assert plan.num_jam_slots == context.plan.num_slots
        assert plan.targeting.mode is JamMode.ONLY
        assert plan.targeting.nodes == frozenset(range(12)) | {-1}

    def test_single_hop_run_completes(self):
        outcome = run_broadcast(
            n=24,
            seed=9,
            adversary=MobileJammer(Orbit(), radius=0.2, max_total_spend=500),
        )
        assert outcome.delivery_fraction == 1.0


class TestPerPhaseReResolution:
    def test_moving_disk_accumulates_coverage(self):
        adversary = MobileJammer(
            WaypointPatrol([(0.2, 0.2), (0.8, 0.8)], speed=0.1),
            radius=0.2,
            max_total_spend=5_000,
        )
        run_broadcast(
            n=48,
            seed=7,
            variant="multihop",
            engine="fast",
            topology="gilbert",
            topology_kwargs={"radius": 0.35},
            adversary=adversary,
        )
        assert adversary.phases_observed > 0
        # The union over phases is strictly larger than any single phase's
        # victim set: the disk genuinely moved and was re-resolved.
        assert len(adversary.coverage) > len(adversary.victims)

    def test_multi_disk_victims_are_union_of_disks(self):
        config = SimulationConfig(n=64, seed=3, topology=GILBERT)
        adversary = MultiDiskJammer([(0.2, 0.2), (0.8, 0.8)], radius=0.2)
        protocol = MultiHopBroadcast(config, adversary=adversary, engine="fast")
        adversary.observe_phase(inform_context(config))
        topology = protocol.network.topology
        expected = topology.nodes_in_disk((0.2, 0.2), 0.2) | topology.nodes_in_disk(
            (0.8, 0.8), 0.2
        )
        assert adversary.victims == expected

    def test_reactive_disk_chases_the_cluster(self):
        config = SimulationConfig(n=60, seed=5, topology=GILBERT)
        adversary = ReactiveDiskJammer(radius=0.2, start=(0.9, 0.9))
        protocol = MultiHopBroadcast(config, adversary=adversary, engine="fast")
        topology = protocol.network.topology
        # Restrict the active uninformed set to nodes in the lower-left
        # quadrant; the jammer must re-centre onto that cluster.
        cluster = [
            node
            for node in range(60)
            if topology.position(node)[0] < 0.4 and topology.position(node)[1] < 0.4
        ]
        assert len(cluster) >= 3
        context = PhaseContext(
            plan=inform_context(config).plan,
            roles=PhaseRoles.of(cluster),
            config=config,
        )
        adversary.observe_phase(context)
        x, y = adversary.center
        assert x < 0.6 and y < 0.6
        assert adversary.victims & set(cluster)

    def test_reactive_speed_caps_movement_per_phase(self):
        config = SimulationConfig(n=60, seed=5, topology=GILBERT)
        adversary = ReactiveDiskJammer(radius=0.2, speed=0.05, start=(0.9, 0.9))
        MultiHopBroadcast(config, adversary=adversary, engine="fast")
        context = inform_context(config, n_active=60)
        previous = adversary.center
        for _ in range(4):
            adversary.observe_phase(context)
            moved = float(np.hypot(adversary.center[0] - previous[0],
                                   adversary.center[1] - previous[1]))
            assert moved <= 0.05 + 1e-9
            previous = adversary.center

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MobileJammer(trajectory="not-a-trajectory")  # type: ignore[arg-type]
        with pytest.raises(ConfigurationError):
            MobileJammer(Orbit(), radius=-0.2)
        with pytest.raises(ConfigurationError):
            MultiDiskJammer([])
        with pytest.raises(ConfigurationError):
            MultiDiskJammer([(0.5, 0.5)], radius=[0.1, 0.2])
        with pytest.raises(ConfigurationError):
            MultiDiskJammer([(0.5, 0.5)], trajectories=[Orbit(), Orbit()])
        with pytest.raises(ConfigurationError):
            ReactiveDiskJammer(speed=-0.1)


class TestObservePhaseForwarding:
    def test_composite_forwards_to_unselected_strategies(self):
        config = SimulationConfig(n=32, seed=3, topology=GILBERT)
        mobile = MobileJammer(Orbit(), radius=0.2, max_total_spend=100.0)
        blocker = PhaseBlockingAdversary(max_total_spend=10_000)
        composite = CompositeAdversary([blocker, mobile])
        MultiHopBroadcast(config, adversary=composite, engine="fast").run()
        # The blocker's plan wins every phase, yet the mobile jammer's clock
        # still advanced through the forwarded hook.
        assert mobile.phases_observed > 0

    def test_round_switching_keeps_late_strategy_moving(self):
        config = SimulationConfig(n=32, seed=3, topology=GILBERT)
        late = MobileJammer(Orbit(angular_speed=0.5), radius=0.2, max_total_spend=100.0)
        switcher = RoundSwitchingAdversary(early=NullAdversary(), late=late, switch_round=3)
        MultiHopBroadcast(config, adversary=switcher, engine="fast").run()
        assert late.phases_observed > 0

    def test_baseline_orchestrators_forward_the_hook(self):
        config = SimulationConfig(n=32, seed=3, topology=GILBERT)
        adversary = MobileJammer(Orbit(), radius=0.2, max_total_spend=200.0)
        NaiveBroadcast(config, adversary=adversary, engine="fast").run()
        assert adversary.phases_observed > 0


class TestMaxQuietRetries:
    """The deprecated ``max_quiet_retries`` alias (now a ConstantQuietRule)."""

    FRAGMENTED = dict(
        n=96,
        seed=11,
        variant="multihop",
        engine="fast",
        topology="gilbert",
        topology_kwargs={"radius": 0.06},
    )

    def test_validation(self):
        config = SimulationConfig(n=16, seed=1, topology=GILBERT)
        with pytest.raises(ConfigurationError):
            MultiHopBroadcast(config, max_quiet_retries=0)
        with pytest.raises(ConfigurationError):
            MultiHopBroadcast(config, max_quiet_retries=4, quiet_rule="paper")

    def test_unreached_cap_is_bit_identical_to_paper_rule(self):
        """The cap only *adds* a termination rule to the paper's quiet test;
        a never-reached cap must not perturb anything (same rng draws, same
        outcomes)."""

        paper = run_broadcast(**self.FRAGMENTED, quiet_rule="paper")
        capped = run_broadcast(**self.FRAGMENTED, max_quiet_retries=99)
        assert capped.delivery.slots_elapsed == paper.delivery.slots_elapsed
        assert capped.delivery.informed == paper.delivery.informed
        assert capped.mean_node_cost == paper.mean_node_cost
        assert capped.alice_cost == paper.alice_cost

    def test_cap_stops_alice_less_components_early(self):
        """The E11 sub-threshold cost blowup: under the paper rule Alice-less
        components hear each other's nacks forever; the retry cap ends them
        orders of magnitude sooner without changing what is deliverable."""

        uncapped = run_broadcast(**self.FRAGMENTED, quiet_rule="paper")
        capped = run_broadcast(**self.FRAGMENTED, max_quiet_retries=4)
        assert capped.mean_node_cost < 0.1 * uncapped.mean_node_cost
        assert capped.delivery.slots_elapsed < uncapped.delivery.slots_elapsed
        # Delivery is bounded by Alice's component either way.
        assert capped.delivery.informed <= uncapped.delivery.informed + 1

    def test_single_hop_ignores_the_cap(self):
        base = run_broadcast(n=48, seed=21, variant="multihop")
        capped = run_broadcast(n=48, seed=21, variant="multihop", max_quiet_retries=1)
        assert capped.delivery.slots_elapsed == base.delivery.slots_elapsed
        assert capped.delivery_fraction == base.delivery_fraction == 1.0
