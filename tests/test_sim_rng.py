"""Unit tests for the deterministic random-source layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation import ConfigurationError, RandomSource, derive_seed


class TestRandomSource:
    def test_same_seed_same_streams(self):
        a = RandomSource(7)
        b = RandomSource(7)
        assert a.stream("x").random(5).tolist() == b.stream("x").random(5).tolist()

    def test_different_seeds_differ(self):
        a = RandomSource(7).stream("x").random(8)
        b = RandomSource(8).stream("x").random(8)
        assert not np.allclose(a, b)

    def test_different_stream_names_are_independent(self):
        source = RandomSource(7)
        a = source.stream("alpha").random(8)
        b = source.stream("beta").random(8)
        assert not np.allclose(a, b)

    def test_stream_is_memoised(self):
        source = RandomSource(7)
        assert source.stream("x") is source.stream("x")

    def test_stream_state_persists_across_calls(self):
        source = RandomSource(7)
        first = source.stream("x").random()
        second = source.stream("x").random()
        assert first != second

    def test_generator_for_with_identifier(self):
        source = RandomSource(3)
        a = source.generator_for("node", 1).random(4)
        b = source.generator_for("node", 2).random(4)
        assert not np.allclose(a, b)

    def test_generator_for_without_identifier(self):
        source = RandomSource(3)
        assert source.generator_for("alice") is source.stream("alice")

    def test_seed_property(self):
        assert RandomSource(123).seed == 123

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomSource(-1)

    def test_non_integer_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomSource("abc")  # type: ignore[arg-type]

    def test_spawn_is_deterministic(self):
        a = RandomSource(5).spawn("trial-1").stream("x").random(4)
        b = RandomSource(5).spawn("trial-1").stream("x").random(4)
        assert np.allclose(a, b)

    def test_spawn_children_differ(self):
        source = RandomSource(5)
        a = source.spawn("trial-1").stream("x").random(4)
        b = source.spawn("trial-2").stream("x").random(4)
        assert not np.allclose(a, b)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(10, "a", 1) == derive_seed(10, "a", 1)

    def test_label_sensitivity(self):
        assert derive_seed(10, "a", 1) != derive_seed(10, "a", 2)

    def test_base_seed_sensitivity(self):
        assert derive_seed(10, "a") != derive_seed(11, "a")

    def test_result_is_non_negative_int(self):
        value = derive_seed(1, "x")
        assert isinstance(value, int)
        assert value >= 0
