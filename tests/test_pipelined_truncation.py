"""Regressions for pipelined relay waves and cap-aware schedule truncation.

The sub-threshold E11 stall fix has two halves, each pinned here:

* **Pipelining** — the multi-hop orchestrator appends extra propagation
  steps while the previous step made progress, so one round carries the
  message across the component diameter instead of ``k - 1`` hops.
* **Cap-aware truncation** — after each request phase, infinite-budget
  uninformed nodes that no live message holder can still reach are
  terminated immediately, so the schedule ends as soon as every component
  has delivered or provably stalled instead of running to the round cap.

Also pinned alongside (same PR): pipelined-vs-sequential statistical
equivalence on Gilbert and scale-free graphs, the ``max_quiet_retries``
deprecation warning, and the no-allocation contract of the cached
active-id arrays the hot path now runs on.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from equivalence import assert_means_close, assert_same_distribution

from repro import run_broadcast
from repro.core.broadcast import MultiHopBroadcast
from repro.core.quietrule import ConstantQuietRule, resolve_quiet_rule
from repro.core.state import ProtocolState
from repro.simulation import SimulationConfig, TopologySpec

# The E11 sub-threshold profile: radius well below the Gilbert connectivity
# threshold, so the graph fragments into an Alice component plus Alice-less
# components whose super-critical cores receive infinite quiet budgets from
# the degree-aware rule — exactly the cohort that used to hold the channel
# to the cap.
SUB_THRESHOLD = dict(
    n=96,
    seed=11,
    variant="multihop",
    engine="fast",
    topology="gilbert",
    topology_kwargs={"radius": 0.09},
)


def cap_slots(protocol: MultiHopBroadcast) -> int:
    """Total slots of the full static schedule up to the round cap."""

    start = protocol.params.start_round
    stop = protocol.params.resolved_max_round(protocol.config.n)
    return sum(protocol.schedule.round_length(i) for i in range(start, stop + 1))


# --------------------------------------------------------------------------- #
# Cap-aware truncation                                                        #
# --------------------------------------------------------------------------- #


class TestCapAwareTruncation:
    def test_sub_threshold_ends_strictly_below_cap(self):
        """The headline regression: a sub-threshold run with the default
        degree-aware rule must end well before the round cap — no more
        run-to-the-cap stall from unreachable infinite-budget nodes.

        At this profile the pre-fix orchestrator ran to the cap (11 rounds,
        ~430k slots, ``terminated_by_cap=True``); the truncated schedule
        ends at ~8k slots with identical delivery."""

        spec = TopologySpec.gilbert(radius=SUB_THRESHOLD["topology_kwargs"]["radius"])
        config = SimulationConfig(
            n=SUB_THRESHOLD["n"], seed=SUB_THRESHOLD["seed"], topology=spec
        )
        protocol = MultiHopBroadcast(config, engine="fast")
        max_round = protocol.params.resolved_max_round(config.n)
        budget = cap_slots(protocol)
        reachable = len(protocol.network.topology.reachable_from_alice())

        outcome = protocol.run()

        assert not outcome.terminated_by_cap
        assert outcome.delivery.rounds_executed < max_round
        assert outcome.delivery.slots_elapsed < budget
        # The truncation is a harness fix, not a protocol change: delivery
        # inside Alice's component is untouched.
        assert outcome.delivery.informed <= reachable
        assert outcome.delivery_fraction > 0

    def test_paper_rule_exempt_from_truncation(self):
        """Rules using the paper's channel-quiet test are exempt: their
        sub-threshold channel-holding blowup is measured protocol behaviour
        (the E13 cost gates depend on it), so it must survive the fix."""

        paper = run_broadcast(**SUB_THRESHOLD, quiet_rule="paper")
        degree = run_broadcast(**SUB_THRESHOLD)
        assert paper.delivery.slots_elapsed > 10 * degree.delivery.slots_elapsed
        assert paper.delivery.rounds_executed > degree.delivery.rounds_executed

    def test_truncation_only_retires_already_stalled_nodes(self):
        """Every node the schedule ends early for is genuinely unreachable:
        terminated-uninformed nodes outside Alice's component, with the
        whole population accounted for at the end."""

        spec = TopologySpec.gilbert(radius=SUB_THRESHOLD["topology_kwargs"]["radius"])
        config = SimulationConfig(
            n=SUB_THRESHOLD["n"], seed=SUB_THRESHOLD["seed"], topology=spec
        )
        protocol = MultiHopBroadcast(config, engine="fast")
        reachable = protocol.network.topology.reachable_from_alice()
        outside = config.n - len(reachable)
        assert outside > 0, "profile should contain Alice-less components"
        delivery = protocol.run().delivery
        # Unreachable nodes never received the message and end retired, not
        # abandoned mid-run: the whole population is accounted for.
        assert delivery.informed <= len(reachable)
        assert delivery.terminated_uninformed >= outside
        assert delivery.terminated_informed + delivery.terminated_uninformed == config.n


# --------------------------------------------------------------------------- #
# Pipelined vs sequential statistical equivalence                             #
# --------------------------------------------------------------------------- #


class TestPipelinedEquivalence:
    @pytest.mark.parametrize(
        "topology, topology_kwargs",
        [
            ("gilbert", {"radius": 0.25}),
            ("scale_free", {"alpha": 2.5}),
        ],
    )
    def test_delivery_matches_sequential_schedule(self, topology, topology_kwargs):
        """Pipelining reshapes *when* slots happen, not *who* gets informed:
        delivery-side outcomes must match the sequential schedule in
        distribution (slots and cost differ by design)."""

        trials = 40
        records = {True: [], False: []}
        for pipeline in records:
            for trial in range(trials):
                outcome = run_broadcast(
                    n=48,
                    seed=500 + trial,
                    variant="multihop",
                    engine="fast",
                    topology=topology,
                    topology_kwargs=topology_kwargs,
                    pipeline=pipeline,
                )
                records[pipeline].append(
                    {
                        "informed": float(outcome.delivery.informed),
                        "stranded": float(outcome.delivery.terminated_uninformed),
                    }
                )
        for key in ("informed", "stranded"):
            a = [r[key] for r in records[True]]
            b = [r[key] for r in records[False]]
            assert_same_distribution(a, b, label=f"{topology} {key}")
            assert_means_close(a, b, rel=0.05, abs_tol=1.5, label=f"{topology} {key}")

    def test_pipelining_cuts_slots_on_multihop_graphs(self):
        """The payoff the tentpole claims: near the connectivity threshold the
        pipelined schedule finishes in fewer rounds — and because round
        lengths grow geometrically, far fewer slots."""

        kwargs = dict(
            n=128,
            variant="multihop",
            engine="fast",
            topology="gilbert",
            topology_kwargs={"radius": 0.14},
        )
        pipe_slots, seq_slots = [], []
        for seed in range(5):
            pipe = run_broadcast(**kwargs, seed=900 + seed, pipeline=True)
            seq = run_broadcast(**kwargs, seed=900 + seed, pipeline=False)
            assert (
                pipe.delivery.rounds_executed <= seq.delivery.rounds_executed
            ), f"seed {900 + seed}"
            pipe_slots.append(pipe.delivery.slots_elapsed)
            seq_slots.append(seq.delivery.slots_elapsed)
        assert np.mean(pipe_slots) < np.mean(seq_slots)


# --------------------------------------------------------------------------- #
# max_quiet_retries deprecation                                               #
# --------------------------------------------------------------------------- #


class TestMaxQuietRetriesDeprecation:
    def test_resolve_quiet_rule_warns(self):
        with pytest.warns(DeprecationWarning, match="max_quiet_retries is deprecated"):
            rule = resolve_quiet_rule(None, 3)
        assert rule == ConstantQuietRule(retries=3)

    def test_orchestrator_keyword_warns(self):
        config = SimulationConfig(n=16, seed=1, topology=TopologySpec.gilbert(radius=0.3))
        with pytest.warns(DeprecationWarning, match="max_quiet_retries"):
            protocol = MultiHopBroadcast(config, max_quiet_retries=2)
        assert protocol.quiet_rule == ConstantQuietRule(retries=2)

    def test_modern_spelling_is_silent(self):
        config = SimulationConfig(n=16, seed=1, topology=TopologySpec.gilbert(radius=0.3))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            MultiHopBroadcast(config, quiet_rule=ConstantQuietRule(retries=2))
            resolve_quiet_rule("degree-aware", None)


# --------------------------------------------------------------------------- #
# Hot-path allocation contract                                                #
# --------------------------------------------------------------------------- #


class TestHotPathAllocations:
    def test_active_arrays_are_identity_cached_between_mutations(self):
        """Repeated calls between transitions return the *same* object —
        the no-allocation contract relay retirement and the quiet rule
        rely on every phase."""

        state = ProtocolState(8)
        first = state.active_uninformed_array()
        assert state.active_uninformed_array() is first
        assert state.active_informed_array() is state.active_informed_array()
        with pytest.raises(ValueError):
            first[0] = 99  # read-only: callers cannot corrupt the cache
        state.mark_informed([1, 2], slot=10)
        assert state.active_uninformed_array() is not first
        assert state.active_uninformed_array() is state.active_uninformed_array()

    def test_run_never_materialises_frozensets(self, monkeypatch):
        """A full pipelined multi-hop run must be served entirely from the
        cached arrays; building a frozenset anywhere on the hot path is a
        regression."""

        def boom(self):
            raise AssertionError("frozenset materialised on the hot path")

        monkeypatch.setattr(ProtocolState, "active_uninformed", boom)
        monkeypatch.setattr(ProtocolState, "active_informed", boom)
        outcome = run_broadcast(
            n=48,
            seed=5,
            variant="multihop",
            engine="fast",
            topology="gilbert",
            topology_kwargs={"radius": 0.25},
        )
        assert outcome.delivery_fraction > 0
