"""Tests for fault-tolerant sweep execution.

Covers the whole fault layer: :class:`FaultPolicy` validation and env
resolution, deterministic backoff, quarantine semantics (sentinel vs strict),
the chaos :class:`FaultInjector` (worker crashes, hung chunks, cache
corruption) recovering **bit-identically** to a fault-free serial run,
pool degradation, trial-cache self-disable and corruption-shape handling,
the prune-vs-touch concurrency races, and KeyboardInterrupt teardown.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

from repro.analysis.stats import aggregate_records
from repro.experiments import ExperimentSettings
from repro.experiments.cache import TrialCache, trial_key
from repro.experiments.faults import (
    DEFAULT_FAULT_POLICY,
    FaultInjector,
    FaultPolicy,
    QuarantineError,
    TrialFailure,
    backoff_delay,
    fault_scope,
    quarantine_note,
)
from repro.experiments.runner import EXECUTION_STATS, TrialSpec, run_sweep, track_stats
from repro.observability.report import fault_rows, summarise_trace
from repro.observability.trace import TraceCollector
from repro.simulation.errors import ConfigurationError


@pytest.fixture(autouse=True)
def _no_runner_env(monkeypatch):
    """Keep the runner's env knobs from leaking into (or out of) these tests."""

    for name in (
        "REPRO_JOBS",
        "REPRO_CACHE_DIR",
        "REPRO_TRIAL_TIMEOUT_S",
        "REPRO_TRIAL_RETRIES",
        "REPRO_STRICT_FAULTS",
    ):
        monkeypatch.delenv(name, raising=False)


def _toy_trial(seed: int, scale: float = 1.0) -> dict:
    """A picklable trial function: derived deterministically from its inputs."""

    return {"seed": float(seed), "value": scale * (seed % 97)}


def _failing_trial(seed: int) -> dict:
    raise ValueError(f"poisoned configuration (seed={seed})")


def _flaky_trial(seed: int, marker: str = "") -> dict:
    """Fails on its first attempt, succeeds on every retry (marker-file state)."""

    path = Path(marker) / f"attempted-{seed}"
    if not path.exists():
        path.write_text("x")
        raise OSError("transient failure")
    return {"seed": float(seed)}


def _interrupting_trial(seed: int, boom: bool = False) -> dict:
    if boom:
        raise KeyboardInterrupt
    return {"seed": float(seed)}


def _settings(**overrides) -> ExperimentSettings:
    base = dict(n=16, trials=1, seed=2, jobs=1, cache_dir="")
    base.update(overrides)
    return ExperimentSettings(**base)


class TestFaultPolicy:
    def test_defaults_are_lenient(self):
        policy = FaultPolicy()
        assert policy == DEFAULT_FAULT_POLICY
        assert policy.timeout_s is None
        assert policy.max_retries == 2
        assert policy.strict is False

    @pytest.mark.parametrize(
        "kwargs, field",
        [
            (dict(timeout_s=0.0), "timeout_s"),
            (dict(timeout_s=-1.0), "timeout_s"),
            (dict(timeout_s=True), "timeout_s"),
            (dict(timeout_s="soon"), "timeout_s"),
            (dict(max_retries=-1), "max_retries"),
            (dict(max_retries=1.5), "max_retries"),
            (dict(backoff_base_s=-0.1), "backoff_base_s"),
            (dict(backoff_factor=0.5), "backoff_factor"),
            (dict(backoff_jitter=-0.1), "backoff_jitter"),
            (dict(max_pool_respawns=-1), "max_pool_respawns"),
            (dict(strict="yes"), "strict"),
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs, field):
        with pytest.raises(ConfigurationError, match=field):
            FaultPolicy(**kwargs)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = FaultPolicy(backoff_base_s=0.1, backoff_factor=2.0, backoff_jitter=0.5)
        for attempt in (1, 2, 3):
            delay = backoff_delay(policy, ("E2", "split"), 4, attempt)
            assert delay == backoff_delay(policy, ("E2", "split"), 4, attempt)
            lower = 0.1 * 2.0 ** (attempt - 1)
            assert lower <= delay <= lower * 1.5

    def test_zero_base_disables_backoff(self):
        policy = FaultPolicy(backoff_base_s=0.0)
        assert backoff_delay(policy, ("x",), 0, 3) == 0.0


class TestEnvResolution:
    def test_no_env_yields_the_default_policy(self):
        assert ExperimentSettings().resolved_fault_policy is DEFAULT_FAULT_POLICY

    def test_explicit_policy_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIAL_RETRIES", "9")
        policy = FaultPolicy(max_retries=1)
        assert ExperimentSettings(fault_policy=policy).resolved_fault_policy is policy

    def test_env_overrides_layer_over_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIAL_TIMEOUT_S", "2.5")
        monkeypatch.setenv("REPRO_TRIAL_RETRIES", "5")
        monkeypatch.setenv("REPRO_STRICT_FAULTS", "yes")
        policy = ExperimentSettings().resolved_fault_policy
        assert policy.timeout_s == 2.5
        assert policy.max_retries == 5
        assert policy.strict is True
        # Untouched knobs keep their defaults.
        assert policy.backoff_base_s == DEFAULT_FAULT_POLICY.backoff_base_s

    @pytest.mark.parametrize(
        "name, value",
        [
            ("REPRO_TRIAL_TIMEOUT_S", "soon"),
            ("REPRO_TRIAL_TIMEOUT_S", "0"),
            ("REPRO_TRIAL_TIMEOUT_S", "-3"),
            ("REPRO_TRIAL_RETRIES", "two"),
            ("REPRO_TRIAL_RETRIES", "-1"),
            ("REPRO_STRICT_FAULTS", "maybe"),
        ],
    )
    def test_bad_env_values_name_their_variable(self, monkeypatch, name, value):
        monkeypatch.setenv(name, value)
        with pytest.raises(ConfigurationError, match=name):
            ExperimentSettings().resolved_fault_policy

    def test_settings_reject_wrong_types(self):
        with pytest.raises(ConfigurationError, match="fault_policy"):
            ExperimentSettings(fault_policy=123)
        with pytest.raises(ConfigurationError, match="fault_injector"):
            ExperimentSettings(fault_injector="chaos")


class TestFaultInjector:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="hang_s"):
            FaultInjector(hang_s=0.0)
        with pytest.raises(ConfigurationError, match="fire_attempts"):
            FaultInjector(fire_attempts=0)

    def test_prefix_and_string_coordinates(self):
        injector = FaultInjector(crashes=[("E2", 0)], hangs=[((("E3"), 128), 1)])
        # A bare string is a one-element prefix: matches every E2 sweep point.
        assert injector.plans_crash(("E2", "split 2% of n"), 0, 0)
        assert injector.plans_crash(("E2",), 0, 0)
        assert not injector.plans_crash(("E1",), 0, 0)
        assert not injector.plans_crash(("E2", "x"), 1, 0)  # trial mismatch
        assert injector.plans_hang(("E3", 128, "extra"), 1, 0)
        assert not injector.plans_hang(("E3", 256), 1, 0)

    def test_faults_fire_only_below_fire_attempts(self):
        injector = FaultInjector(crashes=[(("p",), 0)])
        assert injector.plans_crash(("p",), 0, 0)
        assert not injector.plans_crash(("p",), 0, 1)  # the retry must succeed

    def test_inert_in_the_coordinating_process(self):
        # apply_in_worker refuses to fire outside a worker: the serial and
        # degraded paths always make forward progress under any injector.
        injector = FaultInjector(crashes=[(("p",), 0)], hangs=[(("p",), 0)], hang_s=3600.0)
        injector.apply_in_worker(("p",), 0, 0)  # would crash or stall a worker


class TestQuarantine:
    def test_sentinel_fills_the_slot_and_the_sweep_completes(self):
        specs = [
            TrialSpec.point(_toy_trial, "ok"),
            TrialSpec.point(_failing_trial, "bad"),
        ]
        policy = FaultPolicy(max_retries=2, backoff_base_s=0.0)
        with track_stats() as stats, fault_scope() as events:
            results = run_sweep(specs, _settings(), policy=policy)

        assert results[0][0]["seed"] == float(_settings().trial_seed("ok", 0))
        (failure,) = results[1]
        assert isinstance(failure, TrialFailure)
        assert failure.labels == ("bad",)
        assert failure.kind == "error"
        assert failure.error_type == "ValueError"
        assert failure.attempts == 3  # max_retries + 1
        assert "quarantined after 3 attempt(s)" in failure.describe()

        assert stats.retries == 2
        assert stats.quarantined == 1
        assert [e.kind for e in events] == ["retry", "retry", "quarantine"]
        note = quarantine_note(events)
        assert note is not None and "1 trial(s) quarantined" in note
        assert "('bad',)" in note

    def test_aggregation_skips_sentinels(self):
        records = [
            {"value": 1.0},
            TrialFailure(("bad",), 0, 7, "error", "ValueError", "boom", 3),
            {"value": 3.0},
        ]
        summary = aggregate_records(records)
        assert summary["value"].mean == 2.0
        assert summary["value"].count == 2

    def test_strict_mode_raises_with_the_failure_attached(self):
        policy = FaultPolicy(max_retries=0, backoff_base_s=0.0, strict=True)
        with pytest.raises(QuarantineError, match="poisoned") as excinfo:
            run_sweep([TrialSpec.point(_failing_trial, "bad")], _settings(), policy=policy)
        assert excinfo.value.failure.labels == ("bad",)
        assert excinfo.value.failure.attempts == 1

    def test_quarantine_note_is_none_when_clean(self):
        with fault_scope() as events:
            run_sweep([TrialSpec.point(_toy_trial, "ok")], _settings())
        assert events == []
        assert quarantine_note(events) is None

    def test_transient_failure_retries_to_an_identical_record(self, tmp_path):
        settings = _settings(trials=2, seed=5)
        specs = [TrialSpec.point(_flaky_trial, "flaky", marker=str(tmp_path))]
        policy = FaultPolicy(max_retries=2, backoff_base_s=0.0)
        with track_stats() as stats:
            results = run_sweep(specs, settings, policy=policy)
        assert stats.retries == 2  # one transient failure per trial
        assert stats.quarantined == 0
        assert results[0] == [
            {"seed": float(settings.trial_seed("flaky", t))} for t in range(2)
        ]

    def test_fault_events_reach_a_trace_recorder(self):
        collector = TraceCollector()
        policy = FaultPolicy(max_retries=1, backoff_base_s=0.0)
        run_sweep(
            [TrialSpec.point(_failing_trial, "bad")],
            _settings(),
            policy=policy,
            recorder=collector,
        )
        faults = collector.of_kind("fault")
        assert [e.data["fault"] for e in faults] == ["retry", "quarantine"]
        rows = fault_rows(collector.events)
        assert rows[0]["fault"] == "retry" and rows[0]["labels"] == "('bad',)"
        report = summarise_trace(collector.events)
        assert "runner faults:" in report
        assert "quarantine=1" in report


class TestChaosRecovery:
    """Injected crashes/hangs/corruption must recover bit-identically."""

    def _specs(self, count: int = 4):
        return [TrialSpec.point(_toy_trial, "p", i, scale=float(i)) for i in range(count)]

    def test_worker_crash_recovers_bit_identically(self):
        serial = run_sweep(self._specs(), _settings(trials=2))
        injector = FaultInjector(crashes=[(("p", 0), 0)])
        policy = FaultPolicy(max_retries=3, backoff_base_s=0.0)
        with track_stats() as stats, fault_scope() as events:
            chaos = run_sweep(
                self._specs(), _settings(trials=2, jobs=2), policy=policy, injector=injector
            )
        assert chaos == serial
        assert stats.worker_deaths >= 1
        assert stats.quarantined == 0
        assert "worker-death" in {e.kind for e in events}

    def test_hung_chunk_is_killed_and_redispatched(self):
        serial = run_sweep(self._specs(), _settings())
        injector = FaultInjector(hangs=[(("p", 1), 0)], hang_s=600.0)
        policy = FaultPolicy(timeout_s=1.0, max_retries=3, backoff_base_s=0.0)
        with track_stats() as stats, fault_scope() as events:
            chaos = run_sweep(
                self._specs(), _settings(jobs=2), policy=policy, injector=injector
            )
        assert chaos == serial
        assert stats.timeouts >= 1
        assert stats.quarantined == 0
        assert "timeout" in {e.kind for e in events}

    def test_repeated_breakage_degrades_to_serial(self):
        serial = run_sweep(self._specs(), _settings())
        injector = FaultInjector(crashes=[(("p", 0), 0)])
        policy = FaultPolicy(max_retries=3, backoff_base_s=0.0, max_pool_respawns=0)
        with pytest.warns(RuntimeWarning, match="degraded to serial"):
            with fault_scope() as events:
                chaos = run_sweep(
                    self._specs(), _settings(jobs=2), policy=policy, injector=injector
                )
        assert chaos == serial
        assert "pool-degraded" in {e.kind for e in events}

    def test_injected_corruption_forces_a_warm_recompute(self, tmp_path):
        settings = _settings(cache_dir=str(tmp_path))
        injector = FaultInjector(seed=7, corruptions=[(("p", 2), 0)])
        cold = run_sweep(self._specs(), settings, injector=injector)

        before = EXECUTION_STATS.snapshot()
        warm = run_sweep(self._specs(), settings)
        delta = EXECUTION_STATS.since(before)
        assert warm == cold
        assert delta.executed == 1  # exactly the torn entry
        assert delta.cache_hits == 3


class TestCacheResilience:
    def _key(self, label: str = "k") -> str:
        return trial_key(_toy_trial, (label,), 7, {})

    def test_unwritable_root_disables_with_one_warning(self, tmp_path):
        squatter = tmp_path / "squatter"
        squatter.write_text("not a directory")
        with pytest.warns(RuntimeWarning, match="trial cache disabled"):
            cache = TrialCache(squatter / "store")
        assert cache.disabled
        # Disabled stores are inert, and never warn twice.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cache.put(self._key(), {"a": 1.0})
            assert cache.get(self._key()) is None
            cache.touch(self._key())

    def test_write_failure_disables_for_the_rest_of_the_run(self, tmp_path, monkeypatch):
        cache = TrialCache(tmp_path)

        def refuse(key, record):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(cache, "_write", refuse)
        with pytest.warns(RuntimeWarning, match="No space left"):
            cache.put(self._key(), {"a": 1.0})
        assert cache.disabled
        monkeypatch.undo()
        # Still off after the filesystem "recovers": disable is for the run.
        cache.put(self._key(), {"a": 1.0})
        assert cache.get(self._key()) is None

    def test_sweep_survives_a_disabled_cache(self, tmp_path):
        squatter = tmp_path / "squatter"
        squatter.write_text("not a directory")
        settings = _settings(cache_dir=str(squatter / "store"))
        specs = [TrialSpec.point(_toy_trial, "p", i) for i in range(3)]
        with pytest.warns(RuntimeWarning, match="trial cache disabled"):
            with track_stats() as stats, fault_scope() as events:
                results = run_sweep(specs, settings)
        assert results == run_sweep(specs, _settings())
        assert stats.cache_disabled == 1
        assert [e.kind for e in events] == ["cache-disabled"]

    def test_torn_write_reads_as_miss(self, tmp_path):
        cache = TrialCache(tmp_path, torn_write_bytes=4)
        key = self._key()
        cache.put(key, {"a": 1.0})
        assert cache.path_for(key).stat().st_size == 4
        assert cache.get(key) is None

    @pytest.mark.parametrize("shape", ["truncated", "zero-byte", "directory"])
    def test_corruption_shapes_read_as_miss_and_are_rewritten(self, tmp_path, shape):
        cache = TrialCache(tmp_path)
        key = self._key()
        cache.put(key, {"a": 1.0})
        path = cache.path_for(key)
        if shape == "truncated":
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 2])
        elif shape == "zero-byte":
            path.write_bytes(b"")
        else:
            path.unlink()
            path.mkdir()
        assert cache.get(key) is None

        # The runner treats the miss as ordinary work: recompute and rewrite.
        settings = _settings(cache_dir=str(tmp_path))
        before = EXECUTION_STATS.snapshot()
        results = run_sweep([TrialSpec.point(_toy_trial, "rewrite")], settings)
        delta = EXECUTION_STATS.since(before)
        assert delta.executed == 1
        rewrite_key = trial_key(
            _toy_trial, ("rewrite",), settings.trial_seed("rewrite", 0), {}
        )
        assert cache.get(rewrite_key) == results[0][0]
        assert not cache.disabled

        # A directory squatting on the entry's own path is local damage: put
        # clears it and retries instead of disabling the store.
        cache.put(key, {"a": 2.0})
        assert cache.get(key) == {"a": 2.0}
        assert not cache.disabled


class TestPruneRaces:
    def _filled(self, tmp_path, count: int = 4):
        cache = TrialCache(tmp_path)
        keys = [trial_key(_toy_trial, ("p", i), i, {}) for i in range(count)]
        for i, key in enumerate(keys):
            cache.put(key, {"value": float(i)})
        return cache, keys

    def test_entry_vanishing_during_scan_is_skipped(self, tmp_path, monkeypatch):
        cache, keys = self._filled(tmp_path)
        victim = cache.path_for(keys[0])
        real_stat = Path.stat

        def racy_stat(self, **kwargs):
            if self == victim:
                raise FileNotFoundError(str(victim))
            return real_stat(self, **kwargs)

        monkeypatch.setattr(Path, "stat", racy_stat)
        stats = cache.prune(max_bytes=0)
        assert stats.scanned == len(keys) - 1
        assert stats.removed == len(keys) - 1
        monkeypatch.undo()
        assert victim.exists()  # the racing writer's entry was left alone

    def test_entry_vanishing_during_eviction_is_skipped(self, tmp_path, monkeypatch):
        cache, keys = self._filled(tmp_path)
        victim = cache.path_for(keys[1])
        real_unlink = Path.unlink

        def racy_unlink(self, *args, **kwargs):
            if self == victim:
                raise FileNotFoundError(str(victim))
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", racy_unlink)
        stats = cache.prune(max_bytes=0)
        assert stats.scanned == len(keys)
        assert stats.removed == len(keys) - 1  # the raced entry is not counted

    def test_touch_after_prune_is_a_silent_noop(self, tmp_path):
        cache, keys = self._filled(tmp_path, count=2)
        cache.prune(max_bytes=0)
        assert cache.get(keys[0]) is None
        cache.touch(keys[0])  # a hit served moments before the prune landed


class TestKeyboardInterrupt:
    def test_interrupt_flushes_completed_trials_and_summarises(self, tmp_path, capsys):
        settings = _settings(cache_dir=str(tmp_path))
        specs = [
            TrialSpec.point(_interrupting_trial, "a"),
            TrialSpec.point(_interrupting_trial, "b"),
            TrialSpec.point(_interrupting_trial, "c", boom=True),
        ]
        with pytest.raises(KeyboardInterrupt):
            run_sweep(specs, settings)
        err = capsys.readouterr().err
        assert "run_sweep interrupted: 2/3 trials finished" in err
        assert "flushed to the trial cache" in err

        # A re-run resumes warm from the flushed records.
        before = EXECUTION_STATS.snapshot()
        resumed = run_sweep(specs[:2], settings)
        delta = EXECUTION_STATS.since(before)
        assert delta.executed == 0
        assert delta.cache_hits == 2
        assert [r["seed"] for (r,) in resumed] == [
            float(settings.trial_seed("a", 0)),
            float(settings.trial_seed("b", 0)),
        ]


class TestNoFaultNeutrality:
    def test_policy_knobs_do_not_perturb_results(self):
        # A sweep with a watchdog, a retry budget, and backoff configured —
        # but no faults occurring — must be bit-identical to the default run:
        # the fault machinery consumes no RNG and rewrites no records.
        specs = [TrialSpec.point(_toy_trial, "p", i, scale=float(i)) for i in range(4)]
        plain = run_sweep(specs, _settings(trials=2))
        armed = run_sweep(
            specs,
            _settings(trials=2, jobs=2),
            policy=FaultPolicy(timeout_s=60.0, max_retries=5, backoff_base_s=1.0),
        )
        assert armed == plain
