"""Tests for the experiment harness, reporting, workloads, and registry."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentResult,
    ExperimentSettings,
    render_result,
    render_table,
    run_trials,
)
from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment
from repro.experiments.reporting import format_value
from repro.experiments.workloads import (
    ablation_roster,
    blocking_adversary,
    saturation_spend,
    spend_sweep,
)
from repro.simulation import PhaseKind, SimulationConfig
from repro.simulation.errors import ConfigurationError


class TestExperimentSettings:
    def test_trial_seeds_are_deterministic_and_distinct(self):
        settings = ExperimentSettings(seed=5)
        assert settings.trial_seed("E1", 0) == settings.trial_seed("E1", 0)
        assert settings.trial_seed("E1", 0) != settings.trial_seed("E1", 1)
        assert settings.trial_seed("E1", 0) != settings.trial_seed("E2", 0)

    def test_with_copies(self):
        settings = ExperimentSettings(n=512)
        assert settings.with_(n=128).n == 128
        assert settings.n == 512

    def test_run_trials_passes_distinct_seeds(self):
        settings = ExperimentSettings(trials=3, seed=1)
        seeds = run_trials(lambda seed: {"seed": float(seed)}, settings, "label")
        assert len(seeds) == 3
        assert len({record["seed"] for record in seeds}) == 3

    def test_valid_engines_accepted(self):
        assert ExperimentSettings(engine="fast").engine == "fast"
        assert ExperimentSettings(engine="slot").engine == "slot"

    @pytest.mark.parametrize("engine", ["phase", "FAST", "", "vectorised"])
    def test_unknown_engine_rejected_at_construction(self, engine):
        with pytest.raises(ConfigurationError, match="ExperimentSettings.engine"):
            ExperimentSettings(engine=engine)

    def test_unknown_engine_rejected_via_with_(self):
        settings = ExperimentSettings()
        with pytest.raises(ConfigurationError, match="ExperimentSettings.engine"):
            settings.with_(engine="slto")

    @pytest.mark.parametrize(
        "kwargs,field",
        [
            ({"n": 1}, "n"),
            ({"n": 2.5}, "n"),
            ({"trials": 0}, "trials"),
            ({"seed": "2012"}, "seed"),
        ],
    )
    def test_degenerate_settings_rejected(self, kwargs, field):
        # Error messages name the offending field and echo the received value.
        value = repr(kwargs[field])
        with pytest.raises(ConfigurationError, match=f"ExperimentSettings.{field}") as info:
            ExperimentSettings(**kwargs)
        assert value in str(info.value)


class TestExperimentResult:
    def test_add_row_and_column_values(self):
        result = ExperimentResult("EX", "title", "claim", columns=["a", "b"])
        result.add_row(a=1.0, b="x")
        result.add_row(a=2.0, b="y")
        assert result.column_values("a") == [1.0, 2.0]
        assert result.column_values("b") == []

    def test_notes_and_summaries(self):
        result = ExperimentResult("EX", "title", "claim", columns=["a"])
        result.add_note("hello")
        result.summaries["metric"] = 1.5
        text = render_result(result)
        assert "hello" in text and "metric" in text and "claim" in text


class TestReporting:
    def test_format_value_variants(self):
        assert format_value(True) == "yes"
        assert format_value(0.0) == "0"
        assert format_value(123456.0) == "1.23e+05"
        assert format_value(12.34) == "12.3"
        assert format_value(0.5) == "0.500"
        assert format_value("text") == "text"

    def test_render_table_alignment(self):
        table = render_table(["col", "value"], [{"col": "a", "value": 1.0}, {"col": "bb", "value": 22.0}])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_render_table_handles_missing_cells(self):
        table = render_table(["a", "b"], [{"a": 1.0}])
        assert "1.000" in table


class TestWorkloads:
    def test_spend_sweep_is_increasing_and_within_budget(self):
        config = SimulationConfig(n=256, f=1.0)
        sweep = spend_sweep(config, points=5, quick=False)
        assert sweep == sorted(sweep)
        assert sweep[-1] <= config.adversary_total_budget
        assert len(sweep) == 5

    def test_saturation_spend_positive(self):
        config = SimulationConfig(n=256)
        assert saturation_spend(config) > 0

    def test_blocking_adversary_targets_inform_only(self):
        adversary = blocking_adversary(1000)
        assert adversary.kinds == {PhaseKind.INFORM}
        assert adversary.max_total_spend == 1000

    def test_ablation_roster_contents(self):
        roster = ablation_roster(1000)
        assert {"none", "continuous", "phase_blocker", "reactive"} <= set(roster)
        adversary = roster["continuous"]()
        assert adversary.max_total_spend == 1000


class TestRegistry:
    def test_all_experiments_registered(self):
        assert experiment_ids() == [f"E{i}" for i in range(1, 15)]
        for spec in EXPERIMENTS.values():
            assert spec.title and spec.claim

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_delivery_experiment_runs_end_to_end(self):
        settings = ExperimentSettings(n=96, trials=1, quick=True, seed=3)
        result = run_experiment("E2", settings)
        assert result.experiment_id == "E2"
        assert result.rows
        assert all("delivery_fraction" in row for row in result.rows)
        # The no-attack scenario always informs everyone.
        assert result.rows[0]["delivery_fraction"] == pytest.approx(1.0)

    def test_spoofing_experiment_runs_end_to_end(self):
        settings = ExperimentSettings(n=96, trials=1, quick=True, seed=3)
        result = run_experiment("E10", settings)
        assert result.experiment_id == "E10"
        assert len(result.rows) >= 3
        assert all(row["delivery_fraction"] == pytest.approx(1.0) for row in result.rows)

    def test_quiet_rule_ablation_runs_end_to_end(self):
        settings = ExperimentSettings(n=96, trials=1, quick=True, seed=2012)
        result = run_experiment("E13", settings)
        assert result.experiment_id == "E13"
        rules = {row["rule"] for row in result.rows}
        assert {"paper", "constant R=6", "degree hops=1", "degree-aware (default)"} == rules
        # Paired seeds: every rule sees the same realised graphs, so the
        # reachable fraction is constant within a scenario.
        for scenario in {row["scenario"] for row in result.rows}:
            fractions = {
                row["reachable_fraction"]
                for row in result.rows
                if row["scenario"] == scenario
            }
            assert len(fractions) == 1
        # The E13 acceptance summaries guard both misfire directions.
        assert result.summaries["sub_cost_degree_vs_constant"] <= 2.0
        assert result.summaries["near_dvr_degree"] >= 0.97

    def test_mobile_jammer_experiment_runs_end_to_end(self):
        settings = ExperimentSettings(n=128, trials=2, quick=True, seed=3)
        result = run_experiment("E12", settings)
        assert result.experiment_id == "E12"
        rows = {row["scenario"]: row for row in result.rows}
        assert {"static disk", "patrol", "orbit", "random walk",
                "multi-disk k=3", "reactive disk"} == set(rows)
        # Every scenario spends the same cap (equal-budget comparison).
        spends = {round(row["carol_spend"], 6) for row in result.rows}
        assert len(spends) == 1
        # The E12 acceptance ordering: the adaptive disk drives the network's
        # delivery per unit budget strictly below the static disk's, and
        # strands more of its victims per unit budget.
        static, reactive = rows["static disk"], rows["reactive disk"]
        assert reactive["delivery_per_mspend"] < static["delivery_per_mspend"]
        assert reactive["stranded_per_mspend"] > static["stranded_per_mspend"]
        # Mobility buys coverage: every moving scenario covers more nodes
        # than the static disk.
        for scenario in ("patrol", "orbit", "reactive disk"):
            assert rows[scenario]["coverage_fraction"] > static["coverage_fraction"]

    def test_rendering_a_real_result(self):
        settings = ExperimentSettings(n=96, trials=1, quick=True, seed=3)
        result = run_experiment("E4", settings)
        text = render_result(result)
        assert "E4" in text and "load" in text.lower()
