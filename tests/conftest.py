"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.simulation import Network, RandomSource, SimulationConfig


@pytest.fixture
def small_config() -> SimulationConfig:
    """A small but non-trivial configuration used across unit tests."""

    return SimulationConfig(n=64, f=1.0, k=2, epsilon=0.1, seed=1234)


@pytest.fixture
def tiny_config() -> SimulationConfig:
    """The smallest configuration worth simulating (fast slot-engine tests)."""

    return SimulationConfig(n=16, f=0.5, k=2, epsilon=0.2, seed=99)


@pytest.fixture
def medium_config() -> SimulationConfig:
    """A configuration large enough for statistical/integration assertions."""

    return SimulationConfig(n=256, f=1.0, k=2, epsilon=0.1, seed=7)


@pytest.fixture
def small_network(small_config: SimulationConfig) -> Network:
    return Network(small_config)


@pytest.fixture
def rng() -> RandomSource:
    return RandomSource(2012)
