"""Unit tests for SimulationConfig and Network construction."""

from __future__ import annotations

import math

import pytest

from repro.simulation import (
    ALICE_ID,
    BudgetPolicy,
    ConfigurationError,
    Network,
    Role,
    SimulationConfig,
)


class TestSimulationConfigValidation:
    def test_minimal_valid(self):
        config = SimulationConfig(n=2)
        assert config.n == 2

    @pytest.mark.parametrize("field,value", [
        ("n", 1),
        ("f", -0.1),
        ("k", 1),
        ("k", 2.5),
        ("epsilon", 0.0),
        ("epsilon", 1.0),
        ("c", 0.0),
        ("budget_constant", 0.0),
        ("epsilon_prime", 1.5),
        ("seed", -3),
    ])
    def test_invalid_values_rejected(self, field, value):
        kwargs = {"n": 64, field: value}
        with pytest.raises(ConfigurationError):
            SimulationConfig(**kwargs)

    def test_with_returns_modified_copy(self):
        config = SimulationConfig(n=64)
        other = config.with_(n=128, seed=5)
        assert other.n == 128 and other.seed == 5
        assert config.n == 64

    def test_describe_mentions_core_fields(self):
        text = SimulationConfig(n=64).describe()
        assert "n=64" in text and "k=2" in text


class TestDerivedBudgets:
    def test_node_budget_scaling(self):
        config = SimulationConfig(n=256, k=2, budget_constant=16)
        assert config.node_budget == pytest.approx(16 * 16.0)

    def test_alice_budget_k2_has_single_log(self):
        config = SimulationConfig(n=256, k=2, budget_constant=1)
        assert config.alice_budget == pytest.approx(math.sqrt(256) * math.log(256))

    def test_alice_budget_general_k_has_log_power_k(self):
        config = SimulationConfig(n=256, k=3, budget_constant=1)
        assert config.alice_budget == pytest.approx(256 ** (1 / 3) * math.log(256) ** 3)

    def test_carol_budget_matches_alice(self):
        config = SimulationConfig(n=256)
        assert config.carol_budget == config.alice_budget

    def test_adversary_total_includes_byzantine_nodes(self):
        config = SimulationConfig(n=100, f=2.0)
        assert config.byzantine_count == 200
        assert config.adversary_total_budget == pytest.approx(
            config.carol_budget + 200 * config.node_budget
        )

    def test_f_zero_means_carol_alone(self):
        config = SimulationConfig(n=100, f=0.0)
        assert config.byzantine_count == 0
        assert config.adversary_total_budget == pytest.approx(config.carol_budget)

    def test_latency_bound(self):
        config = SimulationConfig(n=100, k=2)
        assert config.latency_bound == pytest.approx(100 ** 1.5)

    def test_eps_prime_default_and_override(self):
        assert SimulationConfig(n=64).eps_prime == pytest.approx(1 / 64)
        assert SimulationConfig(n=64, epsilon_prime=0.25).eps_prime == 0.25

    def test_termination_threshold(self):
        config = SimulationConfig(n=64, c=2.0)
        assert config.termination_threshold == pytest.approx(10 * math.log(64))


class TestNetwork:
    def test_device_counts(self, small_config):
        network = Network(small_config)
        assert len(network.nodes) == small_config.n
        assert network.alice.role is Role.ALICE
        assert all(node.role is Role.CORRECT for node in network.nodes)

    def test_device_lookup(self, small_config):
        network = Network(small_config)
        assert network.device(ALICE_ID) is network.alice
        assert network.device(3) is network.nodes[3]
        with pytest.raises(ConfigurationError):
            network.device(10_000)

    def test_budgets_assigned(self, small_config):
        network = Network(small_config)
        assert network.alice.ledger.budget == pytest.approx(small_config.alice_budget)
        assert network.nodes[0].ledger.budget == pytest.approx(small_config.node_budget)
        assert network.adversary_ledger.budget == pytest.approx(small_config.adversary_total_budget)

    def test_adversary_budget_enforced_by_default(self, small_config):
        network = Network(small_config)
        assert network.adversary_ledger.policy is BudgetPolicy.CAP

    def test_adversary_budget_enforcement_can_be_disabled(self, small_config):
        network = Network(small_config, enforce_adversary_budget=False)
        assert network.adversary_ledger.policy is BudgetPolicy.RECORD

    def test_cost_snapshot_fresh_network(self, small_config):
        snapshot = Network(small_config).cost_snapshot()
        assert snapshot == {
            "alice": 0.0,
            "adversary": 0.0,
            "node_mean": 0.0,
            "node_max": 0.0,
            "node_total": 0.0,
        }

    def test_budget_overruns_empty_initially(self, small_config):
        assert Network(small_config).budget_overruns() == {}

    def test_message_signature_verifies(self, small_config):
        network = Network(small_config)
        from repro.simulation import make_payload

        frame = make_payload(ALICE_ID, network.message_payload, network.message_signature)
        assert network.authenticator.verify(frame)

    def test_seed_override_changes_randomness(self, small_config):
        a = Network(small_config).random_source.stream("x").random(4)
        b = Network(small_config, seed=999).random_source.stream("x").random(4)
        assert not (a == b).all()
