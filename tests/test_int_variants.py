"""Integration tests for the protocol variants: general k, decoys, unknown n."""

from __future__ import annotations

import pytest

from repro import (
    DecoyBroadcast,
    EpsilonBroadcast,
    GeneralKBroadcast,
    SimulationConfig,
    SizeEstimateBroadcast,
    run_broadcast,
)
from repro.adversary import PhaseBlockingAdversary, ReactiveJammer
from repro.simulation import ConfigurationError, PhaseKind


class TestGeneralK:
    def test_k3_delivers_without_jamming(self):
        outcome = run_broadcast(n=128, k=3, seed=1, variant="general-k")
        assert outcome.delivery_fraction == 1.0
        assert outcome.delivery.alice_terminated

    def test_k3_rounds_have_two_propagation_steps(self):
        config = SimulationConfig(n=64, k=3, seed=1)
        protocol = GeneralKBroadcast(config)
        phases = protocol._round_phases(5)
        steps = [p for p in phases if p.kind is PhaseKind.PROPAGATION]
        assert len(steps) == 2

    def test_k4_round_has_theta_k_phases(self):
        # The Θ(k) overhead of §3.2 comes from the k-1 propagation steps: a
        # k = 4 round has 5 phases against k = 2's 3 phases.
        k2 = EpsilonBroadcast(SimulationConfig(n=64, k=2, seed=1))
        k4 = GeneralKBroadcast(SimulationConfig(n=64, k=4, seed=1))
        assert len(k4._round_phases(6)) == 5
        assert len(k2._round_phases(6)) == 3

    def test_k3_survives_blocking(self):
        outcome = run_broadcast(
            n=128,
            k=3,
            seed=2,
            variant="general-k",
            adversary=PhaseBlockingAdversary(max_total_spend=10_000),
        )
        assert outcome.delivery_fraction >= 1.0 - outcome.config.epsilon

    def test_general_k_with_k2_uses_figure2_probabilities(self):
        protocol = GeneralKBroadcast(SimulationConfig(n=64, k=2, seed=1))
        assert protocol.figure == 2


class TestDecoyVariant:
    def test_decoy_flag_enabled(self):
        protocol = DecoyBroadcast(SimulationConfig(n=64, seed=1))
        assert protocol.decoy_traffic
        assert protocol.receiver_policy.decoy_send_probability(5) > 0

    def test_decoy_roles_include_decoy_senders(self):
        protocol = DecoyBroadcast(SimulationConfig(n=64, seed=1))
        from repro.core.state import ProtocolState

        plan = protocol._round_phases(4)[0]
        roles = protocol._roles_for(plan, ProtocolState(64))
        assert roles.decoy_senders == roles.active_uninformed

    def test_plain_protocol_has_no_decoy_senders(self):
        protocol = EpsilonBroadcast(SimulationConfig(n=64, seed=1))
        from repro.core.state import ProtocolState

        plan = protocol._round_phases(4)[0]
        roles = protocol._roles_for(plan, ProtocolState(64))
        assert roles.decoy_senders == frozenset()

    def test_decoys_cost_more_but_still_deliver(self):
        # Decoy traffic is extra work for the nodes; the difference is clearly
        # visible once rounds are long (i.e. under jamming), while delivery is
        # unaffected in both settings.
        from repro.adversary import PhaseBlockingAdversary

        plain = run_broadcast(
            n=128, seed=3, adversary=PhaseBlockingAdversary(max_total_spend=8_000)
        )
        decoy = run_broadcast(
            n=128,
            seed=3,
            adversary=PhaseBlockingAdversary(max_total_spend=8_000),
            variant="decoy",
        )
        assert plain.delivery_fraction == 1.0
        assert decoy.delivery_fraction == 1.0
        assert decoy.mean_node_cost >= plain.mean_node_cost

    def test_reactive_jammer_defeats_plain_but_not_decoy(self):
        # Against the plain protocol a reactive Carol with a healthy budget
        # (f = 1) suppresses delivery outright; with decoy traffic even the
        # §4.1 threshold budget (f < 1/24) cannot stop the broadcast.
        plain = run_broadcast(n=128, f=1.0, seed=4, adversary=ReactiveJammer())
        decoy = run_broadcast(
            n=128, f=1.0 / 48.0, seed=4, adversary=ReactiveJammer(), variant="decoy"
        )
        assert plain.delivery_fraction < 0.5
        assert decoy.delivery_fraction >= 1.0 - decoy.config.epsilon

    def test_reactive_carol_pays_more_against_decoys(self):
        f = 1.0 / 48.0
        plain = run_broadcast(n=128, f=f, seed=5, adversary=ReactiveJammer())
        decoy = run_broadcast(n=128, f=f, seed=5, adversary=ReactiveJammer(), variant="decoy")
        plain_ratio = plain.adversary_spend / max(plain.alice_cost, 1.0)
        decoy_ratio = decoy.adversary_spend / max(decoy.alice_cost, 1.0)
        assert decoy_ratio > plain_ratio


class TestSizeEstimateVariant:
    def test_estimate_must_cover_true_n(self):
        with pytest.raises(ConfigurationError):
            SizeEstimateBroadcast(SimulationConfig(n=64, seed=1), size_estimate=32)

    def test_sweep_exponents_cover_estimate(self):
        protocol = SizeEstimateBroadcast(SimulationConfig(n=64, seed=1), size_estimate=64 * 64)
        assert protocol.sweep_exponents[-1] == 12
        assert protocol.sweep_exponents[0] == 1

    def test_propagation_steps_are_swept(self):
        protocol = SizeEstimateBroadcast(SimulationConfig(n=64, seed=1), size_estimate=4096)
        phases = protocol._round_phases(4)
        propagation = [p for p in phases if p.kind is PhaseKind.PROPAGATION]
        assert len(propagation) == len(protocol.sweep_exponents)
        assert propagation[0].relay_send_prob == pytest.approx(0.5)
        assert propagation[-1].relay_send_prob == pytest.approx(1 / 4096)

    def test_request_phase_not_swept(self):
        protocol = SizeEstimateBroadcast(SimulationConfig(n=64, seed=1), size_estimate=4096)
        requests = [p for p in protocol._round_phases(4) if p.kind is PhaseKind.REQUEST]
        assert len(requests) == 1

    def test_receiver_policy_uses_estimate(self):
        protocol = SizeEstimateBroadcast(SimulationConfig(n=64, seed=1), size_estimate=4096)
        assert protocol.receiver_policy.n == 4096
        assert protocol.alice_policy.n == 64  # Alice knows the true n

    def test_delivery_preserved_with_overestimate(self):
        outcome = run_broadcast(
            n=128, seed=6, variant="size-estimate", size_estimate=128 * 128
        )
        assert outcome.delivery_fraction == 1.0

    def test_latency_inflated_by_log_factor(self):
        exact = run_broadcast(n=128, seed=7)
        estimated = run_broadcast(n=128, seed=7, variant="size-estimate", size_estimate=128 * 128)
        inflation = estimated.slots_elapsed / exact.slots_elapsed
        # 2 + lg(n^2) = 16 phases per round vs 3 → factor ≈ 5.3; allow slack.
        assert 3.0 < inflation < 9.0

    def test_moderate_estimate_costs_less_than_polynomial_one(self):
        doubled = run_broadcast(n=128, seed=8, variant="size-estimate", size_estimate=256)
        squared = run_broadcast(n=128, seed=8, variant="size-estimate", size_estimate=128 * 128)
        assert doubled.slots_elapsed < squared.slots_elapsed
