"""Regression: the default single-hop model is bit-identical to the seed code.

The topology refactor threads a :class:`~repro.simulation.topology.Topology`
through the configuration, network, channel, and both engines.  On the
default (single-hop) topology every one of those layers must take exactly the
pre-refactor code path and consume exactly the pre-refactor random draws, so
that same-seed runs reproduce the seed code's outcomes bit for bit.

The golden snapshots below were captured by running the *pre-refactor* code
(with the stable CRC-32 stream hashing of :mod:`repro.simulation.rng`, which
makes runs reproducible across interpreter processes — the built-in ``hash``
the seed originally used was salted per process) on ``n = 40`` for a roster
of adversaries, both engines, and two seeds.  Any change to these numbers
means the RNG draw sequence of the default model moved — which is exactly
what this test exists to catch.
"""

from __future__ import annotations

import pytest

from repro.adversary import (
    NullAdversary,
    NUniformSplitAdversary,
    PhaseBlockingAdversary,
    RandomJammer,
)
from repro.core.broadcast import EpsilonBroadcast, MultiHopBroadcast
from repro.simulation import SimulationConfig, TopologySpec

ADVERSARIES = {
    "none": NullAdversary,
    "blocker": lambda: PhaseBlockingAdversary(max_total_spend=2000),
    "random": lambda: RandomJammer(rate=0.3, max_total_spend=1500),
    "splitter": lambda: NUniformSplitAdversary(target_uninformed=3),
}

# (adversary, engine, seed) -> pre-refactor snapshot at n = 40.
GOLDEN = {
    ("none", "fast", 3): {"alice": 484.0, "adversary": 0.0, "node_mean": 1.05, "node_max": 2.0, "node_total": 42.0, "informed": 40, "slots": 2373},
    ("none", "fast", 11): {"alice": 517.0, "adversary": 0.0, "node_mean": 1.075, "node_max": 2.0, "node_total": 43.0, "informed": 40, "slots": 2373},
    ("none", "slot", 3): {"alice": 492.0, "adversary": 0.0, "node_mean": 1.075, "node_max": 2.0, "node_total": 43.0, "informed": 40, "slots": 2373},
    ("none", "slot", 11): {"alice": 494.0, "adversary": 0.0, "node_mean": 1.05, "node_max": 2.0, "node_total": 42.0, "informed": 40, "slots": 2373},
    ("blocker", "fast", 3): {"alice": 736.0, "adversary": 2000.0, "node_mean": 1570.525, "node_max": 1607.0, "node_total": 62821.0, "informed": 40, "slots": 6717},
    ("blocker", "fast", 11): {"alice": 717.0, "adversary": 2000.0, "node_mean": 1614.075, "node_max": 1650.0, "node_total": 64563.0, "informed": 40, "slots": 6717},
    ("blocker", "slot", 3): {"alice": 670.0, "adversary": 2000.0, "node_mean": 1674.6, "node_max": 1705.0, "node_total": 66984.0, "informed": 40, "slots": 6717},
    ("blocker", "slot", 11): {"alice": 725.0, "adversary": 2000.0, "node_mean": 1752.175, "node_max": 1791.0, "node_total": 70087.0, "informed": 40, "slots": 6717},
    ("random", "fast", 3): {"alice": 770.0, "adversary": 1500.0, "node_mean": 2.075, "node_max": 3.0, "node_total": 83.0, "informed": 40, "slots": 6717},
    ("random", "fast", 11): {"alice": 725.0, "adversary": 1500.0, "node_mean": 2.075, "node_max": 3.0, "node_total": 83.0, "informed": 40, "slots": 6717},
    ("random", "slot", 3): {"alice": 492.0, "adversary": 711.0, "node_mean": 1.075, "node_max": 2.0, "node_total": 43.0, "informed": 40, "slots": 2373},
    ("random", "slot", 11): {"alice": 725.0, "adversary": 1500.0, "node_mean": 1.05, "node_max": 2.0, "node_total": 42.0, "informed": 40, "slots": 6717},
    ("splitter", "fast", 3): {"alice": 494.0, "adversary": 4421.0, "node_mean": 765.45, "node_max": 10255.0, "node_total": 30618.0, "informed": 37, "slots": 53760},
    ("splitter", "fast", 11): {"alice": 512.0, "adversary": 4421.0, "node_mean": 759.5, "node_max": 10240.0, "node_total": 30380.0, "informed": 37, "slots": 53760},
    ("splitter", "slot", 3): {"alice": 492.0, "adversary": 4421.0, "node_mean": 758.7, "node_max": 10159.0, "node_total": 30348.0, "informed": 37, "slots": 53760},
    ("splitter", "slot", 11): {"alice": 494.0, "adversary": 4421.0, "node_mean": 760.55, "node_max": 10208.0, "node_total": 30422.0, "informed": 37, "slots": 53760},
}


def run_snapshot(adversary_name, engine, seed, protocol_cls=EpsilonBroadcast, config=None):
    config = config if config is not None else SimulationConfig(n=40, seed=seed)
    protocol = protocol_cls(config, adversary=ADVERSARIES[adversary_name](), engine=engine)
    outcome = protocol.run()
    snapshot = protocol.network.cost_snapshot()
    snapshot["informed"] = outcome.delivery.informed
    snapshot["slots"] = outcome.delivery.slots_elapsed
    return snapshot


@pytest.mark.parametrize("adversary_name,engine,seed", sorted(GOLDEN))
def test_default_model_matches_pre_refactor_golden(adversary_name, engine, seed):
    assert run_snapshot(adversary_name, engine, seed) == GOLDEN[(adversary_name, engine, seed)]


@pytest.mark.parametrize("engine", ["fast", "slot"])
def test_explicit_single_hop_spec_is_bit_identical_to_default(engine):
    """Passing topology=TopologySpec.single_hop() must not move a single draw."""

    config = SimulationConfig(n=40, seed=3, topology=TopologySpec.single_hop())
    assert run_snapshot("blocker", engine, 3, config=config) == GOLDEN[("blocker", engine, 3)]


@pytest.mark.parametrize("engine", ["fast", "slot"])
def test_multihop_variant_on_single_hop_is_bit_identical(engine):
    """MultiHopBroadcast defers to the base protocol on a clique."""

    snapshot = run_snapshot("splitter", engine, 11, protocol_cls=MultiHopBroadcast)
    assert snapshot == GOLDEN[("splitter", engine, 11)]


@pytest.mark.parametrize("engine", ["fast", "slot"])
def test_same_seed_same_outcome_within_process(engine):
    a = run_snapshot("random", engine, 3)
    b = run_snapshot("random", engine, 3)
    assert a == b
