"""Property-based tests (hypothesis) for the simulation substrate invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import (
    Channel,
    EnergyLedger,
    EnergyOperation,
    BudgetPolicy,
    JamPlan,
    JamTargeting,
    RandomSource,
    SimulationConfig,
    clip_probability,
    make_nack,
    make_payload,
)
from repro.simulation.jamming import materialize_jam_slots, materialize_spoof_slots


class TestEnergyLedgerProperties:
    @given(
        charges=st.lists(st.floats(min_value=0, max_value=50, allow_nan=False), max_size=30),
        budget=st.floats(min_value=0, max_value=500, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_cap_policy_never_exceeds_budget(self, charges, budget):
        ledger = EnergyLedger(owner="x", budget=budget, policy=BudgetPolicy.CAP)
        for units in charges:
            ledger.charge_bulk(EnergyOperation.JAM, units)
        assert ledger.spent <= budget + 1e-9
        assert ledger.remaining >= -1e-9

    @given(charges=st.lists(st.floats(min_value=0, max_value=50, allow_nan=False), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_record_policy_spent_equals_sum(self, charges):
        ledger = EnergyLedger(owner="x", budget=10, policy=BudgetPolicy.RECORD)
        for units in charges:
            ledger.charge_bulk(EnergyOperation.LISTEN, units)
        assert ledger.spent == pytest.approx(math.fsum(charges))
        assert ledger.spent_on(EnergyOperation.LISTEN) == pytest.approx(math.fsum(charges))


class TestChannelProperties:
    @given(
        num_payloads=st.integers(min_value=0, max_value=5),
        num_nacks=st.integers(min_value=0, max_value=5),
        listeners=st.sets(st.integers(min_value=0, max_value=30), max_size=10),
        jam_mode=st.sampled_from(["none", "all", "only", "except"]),
        jam_nodes=st.sets(st.integers(min_value=0, max_value=30), max_size=5),
    )
    @settings(max_examples=120, deadline=None)
    def test_channel_invariants(self, num_payloads, num_nacks, listeners, jam_mode, jam_nodes):
        channel = Channel()
        transmissions = [make_payload(-1, "m", "sig")] * num_payloads + [
            make_nack(100 + i) for i in range(num_nacks)
        ]
        targeting = {
            "none": JamTargeting.none(),
            "all": JamTargeting.everyone(),
            "only": JamTargeting.only(jam_nodes),
            "except": JamTargeting.sparing(jam_nodes),
        }[jam_mode]
        resolution = channel.resolve_slot(transmissions, listeners, targeting)

        # Every listener gets exactly one observation.
        assert set(resolution.observations) == set(listeners)
        total = len(transmissions)
        for listener, observation in resolution.observations.items():
            jammed = targeting.affects(listener)
            if total == 0 and not jammed:
                assert observation.is_silent
            if total >= 2:
                # Collisions are noise for everyone: nobody decodes a frame.
                assert observation.message is None
            if observation.message is not None:
                # A decoded frame implies a single unjammed transmission.
                assert total == 1 and not jammed
            if total > 0:
                # Activity can never be perceived as silence (no forged silence).
                assert observation.is_noisy

    @given(
        listeners=st.sets(st.integers(min_value=0, max_value=20), min_size=1, max_size=10),
        spared=st.sets(st.integers(min_value=0, max_value=20), max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_n_uniform_sparing_is_exact(self, listeners, spared):
        channel = Channel()
        resolution = channel.resolve_slot(
            [make_payload(-1, "m", "sig")], listeners, JamTargeting.sparing(spared)
        )
        for listener, observation in resolution.observations.items():
            if listener in spared:
                assert observation.message is not None
            else:
                assert observation.message is None


class TestJammingMaterialisationProperties:
    @given(
        num_slots=st.integers(min_value=0, max_value=500),
        requested=st.integers(min_value=0, max_value=800),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=80, deadline=None)
    def test_jam_slots_within_phase_and_unique(self, num_slots, requested, seed):
        plan = JamPlan(num_jam_slots=requested)
        slots = materialize_jam_slots(plan, num_slots, np.random.default_rng(seed))
        assert len(slots) == min(requested, num_slots)
        assert len(set(slots.tolist())) == len(slots)
        assert all(0 <= slot < num_slots for slot in slots.tolist())

    @given(
        num_slots=st.integers(min_value=1, max_value=300),
        count=st.integers(min_value=0, max_value=400),
        exclude=st.sets(st.integers(min_value=0, max_value=299), max_size=50),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=80, deadline=None)
    def test_spoof_slots_respect_exclusions(self, num_slots, count, exclude, seed):
        slots = materialize_spoof_slots(count, num_slots, np.random.default_rng(seed), exclude=exclude)
        slot_list = slots.tolist()
        assert len(set(slot_list)) == len(slot_list)
        assert not (set(slot_list) & exclude)
        assert all(0 <= slot < num_slots for slot in slot_list)


class TestProbabilityAndConfigProperties:
    @given(value=st.floats(allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6))
    def test_clip_probability_range(self, value):
        assert 0.0 <= clip_probability(value) <= 1.0

    @given(
        # n >= 8 so that ln n > 1 and Alice's log-factor budget dominates a
        # node's (the paper's regime; the relation flips for toy n <= 2).
        n=st.integers(min_value=8, max_value=5000),
        f=st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
        k=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=80, deadline=None)
    def test_budget_relationships(self, n, f, k):
        config = SimulationConfig(n=n, f=f, k=k)
        # Alice's budget always dominates a single node's budget.
        assert config.alice_budget >= config.node_budget
        # The aggregate adversary budget covers Carol plus every Byzantine node.
        assert config.adversary_total_budget >= config.carol_budget
        assert config.adversary_total_budget == pytest.approx(
            config.carol_budget + config.byzantine_count * config.node_budget
        )
        # Budgets are sublinear in n: a single node never holds n units.
        assert config.node_budget < config.budget_constant * n

    @given(seed=st.integers(min_value=0, max_value=2**30), name=st.text(min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_random_source_reproducibility(self, seed, name):
        a = RandomSource(seed).stream(name).random(3)
        b = RandomSource(seed).stream(name).random(3)
        assert np.allclose(a, b)
