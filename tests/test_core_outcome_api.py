"""Unit tests for BroadcastOutcome and the high-level run_broadcast API."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BroadcastOutcome, SimulationConfig, run_broadcast
from repro.core.api import ADVERSARY_CATALOGUE, PROTOCOL_VARIANTS, make_adversary
from repro.simulation import ConfigurationError, CostBreakdown, DeliveryStats


def make_outcome(alice=10.0, node_mean=5.0, node_max=8.0, adversary=100.0, informed=95, n=100):
    delivery = DeliveryStats(
        n=n,
        informed=informed,
        terminated_informed=informed,
        terminated_uninformed=n - informed,
        slots_elapsed=1234,
        rounds_executed=6,
        alice_terminated=True,
    )
    costs = CostBreakdown(
        alice=alice,
        node_mean=node_mean,
        node_max=node_max,
        node_total=node_mean * n,
        adversary=adversary,
        per_node=np.full(n, node_mean),
    )
    return BroadcastOutcome(
        protocol="epsilon-broadcast",
        adversary="phase_blocker",
        config=SimulationConfig(n=n, epsilon=0.1, seed=1),
        delivery=delivery,
        costs=costs,
    )


class TestBroadcastOutcome:
    def test_basic_accessors(self):
        outcome = make_outcome()
        assert outcome.delivery_fraction == pytest.approx(0.95)
        assert outcome.adversary_spend == 100.0
        assert outcome.alice_cost == 10.0
        assert outcome.max_node_cost == 8.0
        assert outcome.slots_elapsed == 1234

    def test_competitive_ratios(self):
        outcome = make_outcome()
        assert outcome.alice_competitive_ratio == pytest.approx(0.1)
        assert outcome.node_competitive_ratio == pytest.approx(0.08)

    def test_ratio_with_zero_adversary_spend(self):
        outcome = make_outcome(adversary=0.0)
        assert outcome.alice_competitive_ratio == float("inf")

    def test_load_balance_ratio(self):
        outcome = make_outcome(alice=10.0, node_mean=5.0)
        assert outcome.load_balance_ratio == pytest.approx(2.0)

    def test_meets_delivery_target(self):
        outcome = make_outcome(informed=95)
        assert outcome.meets_delivery_target()          # ε = 0.1 → need ≥ 90
        assert not outcome.meets_delivery_target(0.01)  # need ≥ 99

    def test_summary_mentions_key_numbers(self):
        text = make_outcome().summary()
        assert "95/100" in text
        assert "epsilon-broadcast" in text

    def test_as_record_flattens(self):
        record = make_outcome().as_record()
        assert record["delivery_fraction"] == pytest.approx(0.95)
        assert record["adversary_spend"] == 100.0
        assert "load_balance" in record


class TestMakeAdversary:
    def test_every_catalogue_entry_constructible(self):
        for name in ADVERSARY_CATALOGUE:
            adversary = make_adversary(name)
            assert adversary.name == name or adversary.name in name or name in adversary.name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_adversary("does-not-exist")

    def test_kwargs_forwarded(self):
        adversary = make_adversary("random", rate=0.9)
        assert adversary.rate == 0.9

    def test_defaults_filled_for_required_args(self):
        assert make_adversary("bursty").burst_length == 32
        assert make_adversary("nuniform_split").target_uninformed == 0


class TestRunBroadcast:
    def test_returns_outcome(self):
        outcome = run_broadcast(n=32, seed=1, adversary="none")
        assert isinstance(outcome, BroadcastOutcome)
        assert outcome.config.n == 32

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            run_broadcast(n=32, variant="nope")

    def test_all_variants_registered(self):
        assert set(PROTOCOL_VARIANTS) == {
            "epsilon-broadcast",
            "general-k",
            "decoy",
            "size-estimate",
            "multihop",
        }

    def test_adversary_instance_accepted(self):
        adversary = make_adversary("continuous", max_total_spend=100)
        outcome = run_broadcast(n=32, seed=1, adversary=adversary)
        assert outcome.adversary_spend <= 100

    def test_explicit_config_overrides_shortcuts(self):
        config = SimulationConfig(n=48, seed=9)
        outcome = run_broadcast(n=9999, config=config)
        assert outcome.config.n == 48

    def test_topology_conflicts_with_explicit_config(self):
        config = SimulationConfig(n=32, seed=9)
        with pytest.raises(ConfigurationError, match="explicit config"):
            run_broadcast(n=32, config=config, topology="gilbert")
        with pytest.raises(ConfigurationError, match="explicit config"):
            run_broadcast(n=32, config=config, topology_kwargs={"radius": 0.2})

    def test_bad_topology_kwargs_raise_configuration_error(self):
        with pytest.raises(ConfigurationError, match="topology_kwargs"):
            run_broadcast(n=32, topology="gilbert", topology_kwargs={"raduis": 0.2})

    def test_topology_kwargs_without_topology_rejected(self):
        with pytest.raises(ConfigurationError, match="without topology"):
            run_broadcast(n=32, topology_kwargs={"radius": 0.2})

    def test_topology_kwargs_with_spec_rejected(self):
        from repro.simulation import TopologySpec

        with pytest.raises(ConfigurationError, match="kind name"):
            run_broadcast(n=32, topology=TopologySpec.gilbert(), topology_kwargs={"radius": 0.2})

    def test_same_seed_reproducible(self):
        a = run_broadcast(n=32, seed=5, adversary="continuous",
                          adversary_kwargs={"max_total_spend": 500})
        b = run_broadcast(n=32, seed=5, adversary="continuous",
                          adversary_kwargs={"max_total_spend": 500})
        assert a.alice_cost == b.alice_cost
        assert a.delivery.informed == b.delivery.informed
        assert a.adversary_spend == b.adversary_spend

    def test_different_seeds_differ(self):
        a = run_broadcast(n=64, seed=5)
        b = run_broadcast(n=64, seed=6)
        assert a.alice_cost != b.alice_cost
