"""Sparse (CSR) topology backend: equivalence, crossover, and engine parity.

The sparse backend must be invisible except for memory and speed:

* the CSR neighbourhoods must expand to exactly the boolean ``reach_matrix``
  for every topology class (the grid construction realises the identical
  edge set as the dense all-pairs construction);
* the dense/sparse crossover must pick the CSR backend above
  ``SPARSE_NODE_THRESHOLD`` devices and honour explicit overrides; and
* the vectorised engine's event-driven sparse path must be statistically
  equivalent to the dense indicator-matrix path (same KS/moment harness the
  fast/slot engine pair uses).

All trials are seeded, so every assertion is deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from equivalence import assert_means_close, assert_same_distribution, column

import repro.simulation.topology as topology_module
from repro.core.api import run_broadcast
from repro.simulation import (
    ALICE_ID,
    GilbertGraph,
    JamPlan,
    JamTargeting,
    Network,
    PhaseEngine,
    PhaseKind,
    PhasePlan,
    PhaseRoles,
    RandomSource,
    ScaleFreeGilbert,
    SimulationConfig,
    SingleHop,
    TopologySpec,
    build_topology,
    gilbert_connectivity_radius,
)
from repro.simulation.errors import ConfigurationError
from repro.simulation.fastengine import _sample_bernoulli_events
from repro.simulation.topology import _sample_positions


def paired_topologies(kind: str, n: int = 64, seed: int = 0, **kwargs):
    """The same realised graph under both backends (identical positions)."""

    rng = np.random.default_rng(seed)
    pos = _sample_positions(n, rng, "center")
    if kind == "gilbert":
        radius = kwargs.get("radius", 0.25)
        return (
            GilbertGraph(pos, radius, sparse=False),
            GilbertGraph(pos, radius, sparse=True),
        )
    alpha = kwargs.get("alpha", 2.0)
    min_radius = kwargs.get("min_radius", 0.05)
    uniforms = rng.random(n + 1)
    radii = np.minimum(min_radius * uniforms ** (-1.0 / alpha), np.sqrt(2.0))
    return (
        ScaleFreeGilbert(pos, radii, alpha, min_radius, sparse=False),
        ScaleFreeGilbert(pos, radii, alpha, min_radius, sparse=True),
    )


ALL_SPECS = [
    TopologySpec.single_hop(),
    TopologySpec.gilbert(radius=0.22),
    TopologySpec.scale_free(alpha=2.0),
]


class TestCsrMatchesReachMatrix:
    """`neighbor_csr()` expands to exactly `reach_matrix()` for every class."""

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.kind)
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_csr_expands_to_reach_matrix(self, spec, seed):
        n = 48
        topo = build_topology(spec, n, RandomSource(seed))
        # Device order matching the Alice-last row convention.
        devices = list(range(n)) + [ALICE_ID]
        expected = topo.reach_matrix(devices, devices)
        assert np.array_equal(topo.neighbor_csr().to_dense(), expected)

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.kind)
    def test_per_listener_slices_match(self, spec):
        n = 40
        topo = build_topology(spec, n, RandomSource(3))
        for device in [ALICE_ID, 0, 5, n - 1]:
            ids = topo.neighbor_slice(device)
            assert list(ids) == sorted(topo.neighbors(device))
            row = topo.neighbor_csr().row(topo._index(device))
            assert list(row) == sorted(row)  # sorted within each row
            assert topo._index(device) not in row  # empty diagonal

    def test_csr_is_symmetric_and_cached(self):
        dense, sparse = paired_topologies("gilbert", n=80, seed=5)
        csr = sparse.neighbor_csr()
        assert csr is sparse.neighbor_csr()  # memoised
        mat = csr.to_dense()
        assert np.array_equal(mat, mat.T)
        assert not mat.diagonal().any()
        assert csr.nnz == int(mat.sum())


class TestGridEqualsBruteForce:
    """The grid cell index realises the identical edge set as all-pairs."""

    @pytest.mark.parametrize("radius", [0.03, 0.1, 0.25, 0.6, 1.3])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_gilbert(self, radius, seed):
        dense, sparse = paired_topologies("gilbert", n=150, seed=seed, radius=radius)
        assert dense.backend == "dense" and sparse.backend == "sparse"
        assert np.array_equal(dense.adjacency, sparse.adjacency)

    @pytest.mark.parametrize("alpha,min_radius", [(2.5, 0.04), (1.2, 0.05), (0.7, 0.02)])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_scale_free(self, alpha, min_radius, seed):
        dense, sparse = paired_topologies(
            "scale_free", n=150, seed=seed, alpha=alpha, min_radius=min_radius
        )
        assert np.array_equal(dense.adjacency, sparse.adjacency)

    def test_statistics_agree_across_backends(self):
        dense, sparse = paired_topologies("gilbert", n=200, seed=11, radius=0.08)
        assert np.array_equal(dense.degrees(), sparse.degrees())
        assert dense.reachable_from_alice() == sparse.reachable_from_alice()
        assert sorted(map(sorted, dense.connected_components())) == sorted(
            map(sorted, sparse.connected_components())
        )
        assert dense.largest_component_fraction() == sparse.largest_component_fraction()

    def test_reach_matrix_and_can_hear_on_sparse_backend(self):
        dense, sparse = paired_topologies("gilbert", n=60, seed=2, radius=0.2)
        listeners = [ALICE_ID, 0, 7, 31]
        senders = [-3, 5, 7, ALICE_ID]  # includes a synthetic Byzantine sender
        expected = dense.reach_matrix(listeners, senders)
        assert np.array_equal(sparse.reach_matrix(listeners, senders), expected)
        assert np.array_equal(
            sparse.reach_matrix_f32(listeners, senders), expected.astype(np.float32)
        )
        for u in listeners:
            for v in senders:
                assert sparse.can_hear(u, v) == dense.can_hear(u, v)

    def test_reach_matrix_with_duplicate_senders(self):
        # Regression: repeated sender ids must fill every duplicate column on
        # the sparse backend, exactly as the dense np.ix_ slice does.
        dense, sparse = paired_topologies("gilbert", n=60, seed=2, radius=0.2)
        listeners = [0, 1, 2, ALICE_ID]
        senders = [5, 5, 7, ALICE_ID, 5, -2, -2]
        expected = dense.reach_matrix(listeners, senders)
        assert np.array_equal(sparse.reach_matrix(listeners, senders), expected)
        assert np.array_equal(expected[:, 0], expected[:, 1])  # duplicates agree

    def test_any_neighbor_in_matches_set_intersection(self):
        dense, sparse = paired_topologies("scale_free", n=90, seed=4)
        members = set(range(0, 90, 7))
        devices = list(range(0, 90, 3)) + [ALICE_ID]
        expected = np.array(
            [bool(dense.node_neighbors(d) & members) for d in devices], dtype=bool
        )
        for topo in (dense, sparse):
            assert np.array_equal(topo.any_neighbor_in(devices, members), expected)
        # SingleHop: every other member is a neighbour.
        clique = SingleHop(10)
        got = clique.any_neighbor_in([0, 1, 9], {1})
        assert got.tolist() == [True, False, True]


class TestCrossover:
    """The dense/sparse crossover and its explicit overrides."""

    def test_crossover_picks_sparse_above_threshold(self, monkeypatch):
        monkeypatch.setattr(topology_module, "SPARSE_NODE_THRESHOLD", 32)
        rng = np.random.default_rng(0)
        small = GilbertGraph.sample(20, 0.3, rng)
        large = GilbertGraph.sample(64, 0.3, rng)
        assert small.backend == "dense"
        assert large.backend == "sparse"
        sf = ScaleFreeGilbert.sample(64, 2.0, 0.05, rng)
        assert sf.backend == "sparse"

    def test_real_threshold_value(self):
        # The unpatched crossover sits at SPARSE_NODE_THRESHOLD devices;
        # a build just above it must come out sparse without being forced.
        n = topology_module.SPARSE_NODE_THRESHOLD  # devices = n + 1 > threshold
        topo = GilbertGraph.sample(n, 0.05, np.random.default_rng(1))
        assert topo.backend == "sparse"
        assert topo.memory_bytes() < (n + 1) ** 2  # far below the dense bool matrix

    def test_explicit_overrides_win(self):
        rng = np.random.default_rng(3)
        forced_sparse = GilbertGraph.sample(24, 0.3, rng, sparse=True)
        forced_dense = GilbertGraph.sample(24, 0.3, rng, sparse=False)
        assert forced_sparse.backend == "sparse"
        assert forced_dense.backend == "dense"

    def test_spec_sparse_field_threads_through_network(self):
        config = SimulationConfig(
            n=40, seed=9, topology=TopologySpec.gilbert(radius=0.3, sparse=True)
        )
        network = Network(config)
        assert network.topology.backend == "sparse"
        assert network.topology_memory_bytes() == network.topology.memory_bytes()
        dense_net = Network(
            SimulationConfig(n=40, seed=9, topology=TopologySpec.gilbert(radius=0.3))
        )
        assert dense_net.topology.backend == "dense"
        # Same seed => identical realised graph regardless of backend.
        assert np.array_equal(network.topology.adjacency, dense_net.topology.adjacency)

    def test_spec_rejects_non_bool_sparse(self):
        with pytest.raises(ConfigurationError):
            TopologySpec(kind="gilbert", sparse="yes")

    def test_single_hop_stores_nothing(self):
        topo = SingleHop(50)
        assert topo.backend == "implicit"
        assert topo.memory_bytes() == 0


class TestBernoulliEventSampler:
    def test_matches_bernoulli_grid_moments(self):
        rng = np.random.default_rng(0)
        num, s, p = 40, 5000, 0.001
        counts = []
        for _ in range(30):
            idx, slots = _sample_bernoulli_events(rng, num, s, p)
            assert idx.size == slots.size
            assert ((0 <= idx) & (idx < num)).all()
            assert ((0 <= slots) & (slots < s)).all()
            # no duplicate (device, slot) cells
            assert np.unique(idx * s + slots).size == idx.size
            counts.append(idx.size)
        expected = num * s * p
        assert abs(np.mean(counts) - expected) < 5 * np.sqrt(expected / 30)

    def test_degenerate_inputs(self):
        rng = np.random.default_rng(1)
        for num, s, p in [(0, 10, 0.5), (10, 0, 0.5), (10, 10, 0.0)]:
            idx, slots = _sample_bernoulli_events(rng, num, s, p)
            assert idx.size == 0 and slots.size == 0
        idx, slots = _sample_bernoulli_events(rng, 3, 4, 1.0)
        assert idx.size == 12  # p = 1 fills the grid


def paired_backend_phase_records(plan, roles_builder, jam_builder=JamPlan.idle,
                                 n=48, trials=30, base_seed=500, spec_kwargs=None):
    """Run one phase through the dense and sparse engine paths across seeds.

    Mirrors ``equivalence.paired_phase_records`` but pairs topology *backends*
    (same realised graph per seed) instead of engines.
    """

    records = {"dense": [], "sparse": []}
    for trial in range(trials):
        for backend, sparse in (("dense", False), ("sparse", True)):
            spec = TopologySpec.gilbert(sparse=sparse, **(spec_kwargs or {"radius": 0.3}))
            config = SimulationConfig(n=n, seed=base_seed + trial, topology=spec)
            network = Network(config)
            engine = PhaseEngine(network)
            result = engine.run_phase(plan, roles_builder(network), jam_builder())
            records[backend].append(
                {
                    "informed": float(len(result.newly_informed)),
                    "alice_cost": float(network.alice_cost),
                    "node_total": float(network.node_costs().sum()),
                    "alice_noisy": float(result.alice_noisy_heard),
                    "node_noisy_total": float(sum(result.node_noisy_heard.values())),
                    "delivery_slots": float(result.delivery_slots),
                    "busy_slots": float(result.busy_slots),
                }
            )
    return records


class TestEnginePathEquivalence:
    """The event-driven sparse path matches the dense indicator-matrix path."""

    N = 48

    def _check(self, records, keys, rel=0.2):
        for key in keys:
            a, b = column(records["dense"], key), column(records["sparse"], key)
            assert_same_distribution(a, b, alpha=0.01, label=key)
            assert_means_close(a, b, rel=rel, abs_tol=2.0, label=key)

    def test_inform_phase(self):
        plan = PhasePlan(
            name="inform", kind=PhaseKind.INFORM, round_index=5, num_slots=256,
            alice_send_prob=0.05, uninformed_listen_prob=0.2,
        )
        records = paired_backend_phase_records(
            plan, lambda net: PhaseRoles.of(range(net.n)), n=self.N
        )
        self._check(records, ["informed", "alice_cost", "node_total", "busy_slots"])

    def test_propagation_phase_with_relays(self):
        plan = PhasePlan(
            name="propagation:1", kind=PhaseKind.PROPAGATION, round_index=5,
            num_slots=256, step=1, relay_send_prob=0.02, uninformed_listen_prob=0.25,
        )
        records = paired_backend_phase_records(
            plan,
            lambda net: PhaseRoles.of(range(net.n // 2), relays=range(net.n // 2, net.n)),
            n=self.N,
        )
        self._check(records, ["informed", "node_total", "delivery_slots"])

    def test_request_phase_noise_counts(self):
        plan = PhasePlan(
            name="request", kind=PhaseKind.REQUEST, round_index=5, num_slots=256,
            alice_listen_prob=0.3, uninformed_listen_prob=0.3, nack_send_prob=0.05,
        )
        records = paired_backend_phase_records(
            plan, lambda net: PhaseRoles.of(range(net.n)), n=self.N
        )
        self._check(
            records, ["alice_noisy", "node_noisy_total", "node_total", "alice_cost"]
        )

    def test_request_phase_under_targeted_jamming(self):
        plan = PhasePlan(
            name="request", kind=PhaseKind.REQUEST, round_index=5, num_slots=192,
            alice_listen_prob=0.3, uninformed_listen_prob=0.3, nack_send_prob=0.04,
        )
        jam = lambda: JamPlan(
            jam_rate=0.3, targeting=JamTargeting.only(range(0, self.N, 2))
        )
        records = paired_backend_phase_records(
            plan, lambda net: PhaseRoles.of(range(net.n)), jam_builder=jam, n=self.N
        )
        self._check(records, ["alice_noisy", "node_noisy_total", "node_total"])

    def test_request_phase_with_payload_senders(self):
        # Regression: a request phase that also carries payload (never built
        # by the protocol schedules, but legal through the engine API) must
        # exclude clean deliveries from the noisy counts and stop counting at
        # each listener's informed cutoff, exactly like the dense path.
        plan = PhasePlan(
            name="request+payload", kind=PhaseKind.REQUEST, round_index=5,
            num_slots=256, alice_listen_prob=0.3, uninformed_listen_prob=0.3,
            nack_send_prob=0.03, relay_send_prob=0.02,
        )
        records = paired_backend_phase_records(
            plan,
            lambda net: PhaseRoles.of(range(net.n // 2), relays=range(net.n // 2, net.n)),
            n=self.N,
        )
        self._check(
            records, ["informed", "node_noisy_total", "node_total", "alice_noisy"]
        )

    def test_inform_phase_with_spoofing_and_decoys(self):
        plan = PhasePlan(
            name="inform", kind=PhaseKind.INFORM, round_index=5, num_slots=192,
            alice_send_prob=0.08, uninformed_listen_prob=0.25, decoy_send_prob=0.02,
        )
        jam = lambda: JamPlan(spoof_payload_slots=20, spoof_nack_slots=10)
        records = paired_backend_phase_records(
            plan,
            lambda net: PhaseRoles.of(range(net.n), decoy_senders=range(net.n)),
            jam_builder=jam,
            n=self.N,
        )
        self._check(records, ["informed", "node_total", "busy_slots"])


class TestFullRunEquivalence:
    """Whole multi-hop executions agree across backends in distribution."""

    def _outcomes(self, sparse, trials=12, **kwargs):
        outcomes = []
        for seed in range(trials):
            outcomes.append(
                run_broadcast(
                    n=64,
                    seed=900 + seed,
                    variant="multihop",
                    topology="gilbert",
                    topology_kwargs={"radius": 0.3, "sparse": sparse},
                    **kwargs,
                )
            )
        return outcomes

    def test_delivery_and_costs_match(self):
        dense = self._outcomes(sparse=False)
        sparse = self._outcomes(sparse=True)
        assert_same_distribution(
            [o.delivery.informed for o in dense],
            [o.delivery.informed for o in sparse],
            alpha=0.01,
            label="informed",
        )
        assert_means_close(
            [o.mean_node_cost for o in dense],
            [o.mean_node_cost for o in sparse],
            rel=0.3,
            label="mean_node_cost",
        )
        assert_means_close(
            [o.delivery.slots_elapsed for o in dense],
            [o.delivery.slots_elapsed for o in sparse],
            rel=0.3,
            label="slots_elapsed",
        )

    def test_sparse_run_is_seed_deterministic(self):
        a = run_broadcast(
            n=64, seed=42, variant="multihop", topology="gilbert",
            topology_kwargs={"radius": 0.3, "sparse": True},
        )
        b = run_broadcast(
            n=64, seed=42, variant="multihop", topology="gilbert",
            topology_kwargs={"radius": 0.3, "sparse": True},
        )
        assert a.delivery.informed == b.delivery.informed
        assert a.delivery.slots_elapsed == b.delivery.slots_elapsed
        assert a.mean_node_cost == b.mean_node_cost


class TestDiskQueryGrid:
    """Grid-accelerated nodes_in_disk selects exactly the dense scan's rows.

    Mobile jammers query a disk every phase, so above the sparse crossover
    the query goes through a cached point grid; the distance predicate is the
    same float arithmetic, so the two paths must agree bit for bit — on every
    backend, including disks that are empty, huge, or (partly) outside the
    unit square.
    """

    PROBES = [
        ((0.3, 0.4), 0.2),
        ((0.95, 0.95), 0.1),
        ((1.5, 1.5), 0.2),      # entirely outside the square
        ((0.5, 0.5), 0.0),      # degenerate disk
        ((0.5, 0.5), 2.0),      # covers everything
        ((-0.2, 0.5), 0.25),    # straddles the boundary
        ((0.5, 0.5), 0.03),     # smaller than a grid cell
    ]

    @pytest.mark.parametrize("kind", ["gilbert", "scale_free"])
    def test_grid_path_equals_scan_path(self, kind):
        dense, sparse = paired_topologies(kind, n=300, seed=6)
        for topo in (dense, sparse):
            for center, radius in self.PROBES:
                scan = np.sort(topo._disk_rows_scan(center, radius))
                grid = np.asarray(topo._disk_rows_grid(center, radius))
                assert np.array_equal(scan, grid), (kind, topo.backend, center, radius)

    def test_backends_agree_on_disk_queries(self):
        dense, sparse = paired_topologies("gilbert", n=150, seed=1, radius=0.1)
        for center, radius in self.PROBES:
            assert dense.nodes_in_disk(center, radius) == sparse.nodes_in_disk(center, radius)

    def test_dispatch_by_device_count(self, monkeypatch):
        dense, _ = paired_topologies("gilbert", n=64, seed=3, radius=0.2)
        baseline = dense.nodes_in_disk((0.4, 0.4), 0.3)
        assert dense._disk_grid is None  # small n: the scan path ran
        monkeypatch.setattr(topology_module, "SPARSE_NODE_THRESHOLD", 16)
        assert dense.nodes_in_disk((0.4, 0.4), 0.3) == baseline
        assert dense._disk_grid is not None  # the grid path ran and cached
