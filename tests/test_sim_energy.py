"""Unit tests for the energy ledger (the paper's cost model)."""

from __future__ import annotations

import math

import pytest

from repro.simulation import (
    BudgetExceededError,
    BudgetPolicy,
    ConfigurationError,
    EnergyLedger,
    EnergyOperation,
)


class TestEnergyOperations:
    def test_all_operations_cost_one_unit(self):
        for operation in EnergyOperation:
            assert operation.unit_cost == 1.0


class TestEnergyLedgerRecording:
    def test_initial_state(self):
        ledger = EnergyLedger(owner="x", budget=10)
        assert ledger.spent == 0
        assert ledger.remaining == 10
        assert not ledger.exhausted

    def test_charge_accumulates(self):
        ledger = EnergyLedger(owner="x", budget=10)
        ledger.charge(EnergyOperation.SEND)
        ledger.charge(EnergyOperation.LISTEN)
        ledger.charge(EnergyOperation.LISTEN)
        assert ledger.spent == 3
        assert ledger.spent_on(EnergyOperation.LISTEN) == 2
        assert ledger.spent_on(EnergyOperation.SEND) == 1

    def test_zero_charge_is_noop(self):
        ledger = EnergyLedger(owner="x", budget=10)
        assert ledger.charge(EnergyOperation.SEND, 0)
        assert ledger.spent == 0

    def test_negative_charge_rejected(self):
        ledger = EnergyLedger(owner="x", budget=10)
        with pytest.raises(ConfigurationError):
            ledger.charge(EnergyOperation.SEND, -1)

    def test_record_policy_allows_overdraft(self):
        ledger = EnergyLedger(owner="x", budget=2, policy=BudgetPolicy.RECORD)
        for _ in range(5):
            assert ledger.charge(EnergyOperation.LISTEN)
        assert ledger.spent == 5
        assert ledger.overdraft == 3

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyLedger(owner="x", budget=-1)

    def test_infinite_budget_never_exhausts(self):
        ledger = EnergyLedger(owner="x", budget=math.inf)
        ledger.charge_bulk(EnergyOperation.JAM, 1e9)
        assert not ledger.exhausted
        assert ledger.can_afford(1e12)

    def test_snapshot_contains_all_operations(self):
        ledger = EnergyLedger(owner="x", budget=4)
        ledger.charge(EnergyOperation.JAM)
        snapshot = ledger.snapshot()
        assert snapshot["spent"] == 1
        assert snapshot["budget"] == 4
        for operation in EnergyOperation:
            assert operation.value in snapshot


class TestEnergyLedgerEnforcement:
    def test_enforce_policy_raises(self):
        ledger = EnergyLedger(owner="x", budget=1, policy=BudgetPolicy.ENFORCE)
        ledger.charge(EnergyOperation.SEND)
        with pytest.raises(BudgetExceededError):
            ledger.charge(EnergyOperation.SEND)

    def test_enforce_error_carries_details(self):
        ledger = EnergyLedger(owner="carol", budget=1, policy=BudgetPolicy.ENFORCE)
        ledger.charge(EnergyOperation.JAM)
        with pytest.raises(BudgetExceededError) as excinfo:
            ledger.charge(EnergyOperation.JAM)
        assert excinfo.value.owner == "carol"
        assert excinfo.value.budget == 1

    def test_cap_policy_refuses_without_raising(self):
        ledger = EnergyLedger(owner="x", budget=2, policy=BudgetPolicy.CAP)
        assert ledger.charge(EnergyOperation.JAM)
        assert ledger.charge(EnergyOperation.JAM)
        assert not ledger.charge(EnergyOperation.JAM)
        assert ledger.spent == 2

    def test_exhausted_flag(self):
        ledger = EnergyLedger(owner="x", budget=1, policy=BudgetPolicy.CAP)
        assert not ledger.exhausted
        ledger.charge(EnergyOperation.JAM)
        assert ledger.exhausted


class TestChargeBulk:
    def test_bulk_within_budget(self):
        ledger = EnergyLedger(owner="x", budget=100)
        charged = ledger.charge_bulk(EnergyOperation.LISTEN, 40)
        assert charged == 40
        assert ledger.spent == 40

    def test_bulk_cap_truncates(self):
        ledger = EnergyLedger(owner="x", budget=10, policy=BudgetPolicy.CAP)
        charged = ledger.charge_bulk(EnergyOperation.JAM, 25)
        assert charged == 10
        assert ledger.spent == 10
        assert ledger.remaining == 0

    def test_bulk_cap_when_exhausted_returns_zero(self):
        ledger = EnergyLedger(owner="x", budget=1, policy=BudgetPolicy.CAP)
        ledger.charge_bulk(EnergyOperation.JAM, 1)
        assert ledger.charge_bulk(EnergyOperation.JAM, 5) == 0

    def test_bulk_enforce_raises(self):
        ledger = EnergyLedger(owner="x", budget=5, policy=BudgetPolicy.ENFORCE)
        with pytest.raises(BudgetExceededError):
            ledger.charge_bulk(EnergyOperation.JAM, 6)

    def test_bulk_record_allows_overdraft(self):
        ledger = EnergyLedger(owner="x", budget=5, policy=BudgetPolicy.RECORD)
        assert ledger.charge_bulk(EnergyOperation.LISTEN, 9) == 9
        assert ledger.overdraft == 4

    def test_bulk_negative_rejected(self):
        ledger = EnergyLedger(owner="x", budget=5)
        with pytest.raises(ConfigurationError):
            ledger.charge_bulk(EnergyOperation.LISTEN, -3)

    def test_bulk_zero_is_noop(self):
        ledger = EnergyLedger(owner="x", budget=5)
        assert ledger.charge_bulk(EnergyOperation.LISTEN, 0) == 0


class TestLedgerArray:
    """Array-backed bulk accounting for the correct-node population."""

    @staticmethod
    def _array(budget=10.0, policy=BudgetPolicy.RECORD, count=4):
        from repro.simulation import LedgerArray

        return LedgerArray("node", count, budget, policy=policy)

    def test_charge_bulk_many_records_per_device(self):
        import numpy as np

        array = self._array()
        charged = array.charge_bulk_many(
            EnergyOperation.LISTEN, np.array([0, 2]), np.array([3.0, 5.0])
        )
        assert charged.tolist() == [3.0, 5.0]
        assert array.spent_array().tolist() == [3.0, 0.0, 5.0, 0.0]
        assert array.view(2).spent_on(EnergyOperation.LISTEN) == 5.0
        assert array.view(1).spent == 0.0

    def test_charge_bulk_many_matches_per_device_charge_bulk(self):
        """The vector op must be indistinguishable from n charge_bulk calls."""

        import numpy as np

        array = self._array(budget=100.0)
        reference = [EnergyLedger(owner=f"ref:{i}", budget=100.0) for i in range(4)]
        indices = np.array([0, 1, 3])
        units = np.array([2.0, 7.0, 1.5])
        array.charge_bulk_many(EnergyOperation.SEND, indices, units)
        for index, amount in zip(indices, units):
            reference[index].charge_bulk(EnergyOperation.SEND, float(amount))
        for i in range(4):
            assert array.view(i).spent == reference[i].spent
            assert array.view(i).spent_on(EnergyOperation.SEND) == reference[i].spent_on(
                EnergyOperation.SEND
            )

    def test_cap_policy_clips_each_device_independently(self):
        import numpy as np

        array = self._array(budget=5.0, policy=BudgetPolicy.CAP)
        array.charge_bulk_many(EnergyOperation.JAM, np.array([0]), np.array([4.0]))
        charged = array.charge_bulk_many(
            EnergyOperation.JAM, np.array([0, 1]), np.array([3.0, 3.0])
        )
        assert charged.tolist() == [1.0, 3.0]  # device 0 clipped at its budget
        assert array.view(0).spent == 5.0
        assert array.view(0).remaining == 0.0

    def test_enforce_policy_raises_on_any_overdraft(self):
        import numpy as np

        array = self._array(budget=5.0, policy=BudgetPolicy.ENFORCE)
        with pytest.raises(BudgetExceededError):
            array.charge_bulk_many(EnergyOperation.JAM, np.array([1]), np.array([6.0]))

    def test_shape_mismatch_and_negative_rejected(self):
        import numpy as np

        array = self._array()
        with pytest.raises(ConfigurationError):
            array.charge_bulk_many(EnergyOperation.SEND, np.array([0, 1]), np.array([1.0]))
        with pytest.raises(ConfigurationError):
            array.charge_bulk_many(EnergyOperation.SEND, np.array([0]), np.array([-1.0]))

    def test_view_satisfies_the_energy_ledger_interface(self):
        array = self._array(budget=3.0, policy=BudgetPolicy.CAP)
        view = array.view(1)
        assert view.owner == "node:1"
        assert view.charge(EnergyOperation.SEND)
        assert view.charge(EnergyOperation.LISTEN, 2.0)
        assert not view.charge(EnergyOperation.SEND)  # CAP refuses the 4th unit
        assert view.spent == 3.0
        assert view.exhausted
        snapshot = view.snapshot()
        assert snapshot["spent"] == 3.0 and snapshot["send"] == 1.0
        assert view.charge_bulk(EnergyOperation.LISTEN, 5.0) == 0.0

    def test_view_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            self._array().view(4)

    def test_network_nodes_are_array_backed(self):
        import numpy as np

        from repro.simulation import Network, SimulationConfig

        network = Network(SimulationConfig(n=8, seed=1))
        network.nodes[3].ledger.charge(EnergyOperation.LISTEN)
        network.node_ledgers.charge_bulk_many(
            EnergyOperation.SEND, np.arange(8), np.full(8, 2.0)
        )
        costs = network.node_costs()
        assert costs[3] == 3.0 and costs[0] == 2.0
        assert network.nodes[3].ledger.spent == 3.0
        assert network.max_node_cost() == 3.0
