"""Unit tests for the energy ledger (the paper's cost model)."""

from __future__ import annotations

import math

import pytest

from repro.simulation import (
    BudgetExceededError,
    BudgetPolicy,
    ConfigurationError,
    EnergyLedger,
    EnergyOperation,
)


class TestEnergyOperations:
    def test_all_operations_cost_one_unit(self):
        for operation in EnergyOperation:
            assert operation.unit_cost == 1.0


class TestEnergyLedgerRecording:
    def test_initial_state(self):
        ledger = EnergyLedger(owner="x", budget=10)
        assert ledger.spent == 0
        assert ledger.remaining == 10
        assert not ledger.exhausted

    def test_charge_accumulates(self):
        ledger = EnergyLedger(owner="x", budget=10)
        ledger.charge(EnergyOperation.SEND)
        ledger.charge(EnergyOperation.LISTEN)
        ledger.charge(EnergyOperation.LISTEN)
        assert ledger.spent == 3
        assert ledger.spent_on(EnergyOperation.LISTEN) == 2
        assert ledger.spent_on(EnergyOperation.SEND) == 1

    def test_zero_charge_is_noop(self):
        ledger = EnergyLedger(owner="x", budget=10)
        assert ledger.charge(EnergyOperation.SEND, 0)
        assert ledger.spent == 0

    def test_negative_charge_rejected(self):
        ledger = EnergyLedger(owner="x", budget=10)
        with pytest.raises(ConfigurationError):
            ledger.charge(EnergyOperation.SEND, -1)

    def test_record_policy_allows_overdraft(self):
        ledger = EnergyLedger(owner="x", budget=2, policy=BudgetPolicy.RECORD)
        for _ in range(5):
            assert ledger.charge(EnergyOperation.LISTEN)
        assert ledger.spent == 5
        assert ledger.overdraft == 3

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyLedger(owner="x", budget=-1)

    def test_infinite_budget_never_exhausts(self):
        ledger = EnergyLedger(owner="x", budget=math.inf)
        ledger.charge_bulk(EnergyOperation.JAM, 1e9)
        assert not ledger.exhausted
        assert ledger.can_afford(1e12)

    def test_snapshot_contains_all_operations(self):
        ledger = EnergyLedger(owner="x", budget=4)
        ledger.charge(EnergyOperation.JAM)
        snapshot = ledger.snapshot()
        assert snapshot["spent"] == 1
        assert snapshot["budget"] == 4
        for operation in EnergyOperation:
            assert operation.value in snapshot


class TestEnergyLedgerEnforcement:
    def test_enforce_policy_raises(self):
        ledger = EnergyLedger(owner="x", budget=1, policy=BudgetPolicy.ENFORCE)
        ledger.charge(EnergyOperation.SEND)
        with pytest.raises(BudgetExceededError):
            ledger.charge(EnergyOperation.SEND)

    def test_enforce_error_carries_details(self):
        ledger = EnergyLedger(owner="carol", budget=1, policy=BudgetPolicy.ENFORCE)
        ledger.charge(EnergyOperation.JAM)
        with pytest.raises(BudgetExceededError) as excinfo:
            ledger.charge(EnergyOperation.JAM)
        assert excinfo.value.owner == "carol"
        assert excinfo.value.budget == 1

    def test_cap_policy_refuses_without_raising(self):
        ledger = EnergyLedger(owner="x", budget=2, policy=BudgetPolicy.CAP)
        assert ledger.charge(EnergyOperation.JAM)
        assert ledger.charge(EnergyOperation.JAM)
        assert not ledger.charge(EnergyOperation.JAM)
        assert ledger.spent == 2

    def test_exhausted_flag(self):
        ledger = EnergyLedger(owner="x", budget=1, policy=BudgetPolicy.CAP)
        assert not ledger.exhausted
        ledger.charge(EnergyOperation.JAM)
        assert ledger.exhausted


class TestChargeBulk:
    def test_bulk_within_budget(self):
        ledger = EnergyLedger(owner="x", budget=100)
        charged = ledger.charge_bulk(EnergyOperation.LISTEN, 40)
        assert charged == 40
        assert ledger.spent == 40

    def test_bulk_cap_truncates(self):
        ledger = EnergyLedger(owner="x", budget=10, policy=BudgetPolicy.CAP)
        charged = ledger.charge_bulk(EnergyOperation.JAM, 25)
        assert charged == 10
        assert ledger.spent == 10
        assert ledger.remaining == 0

    def test_bulk_cap_when_exhausted_returns_zero(self):
        ledger = EnergyLedger(owner="x", budget=1, policy=BudgetPolicy.CAP)
        ledger.charge_bulk(EnergyOperation.JAM, 1)
        assert ledger.charge_bulk(EnergyOperation.JAM, 5) == 0

    def test_bulk_enforce_raises(self):
        ledger = EnergyLedger(owner="x", budget=5, policy=BudgetPolicy.ENFORCE)
        with pytest.raises(BudgetExceededError):
            ledger.charge_bulk(EnergyOperation.JAM, 6)

    def test_bulk_record_allows_overdraft(self):
        ledger = EnergyLedger(owner="x", budget=5, policy=BudgetPolicy.RECORD)
        assert ledger.charge_bulk(EnergyOperation.LISTEN, 9) == 9
        assert ledger.overdraft == 4

    def test_bulk_negative_rejected(self):
        ledger = EnergyLedger(owner="x", budget=5)
        with pytest.raises(ConfigurationError):
            ledger.charge_bulk(EnergyOperation.LISTEN, -3)

    def test_bulk_zero_is_noop(self):
        ledger = EnergyLedger(owner="x", budget=5)
        assert ledger.charge_bulk(EnergyOperation.LISTEN, 0) == 0
