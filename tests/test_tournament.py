"""Tournament harness tests: golden parallel/cache identity, exponent-fitter
properties, optimiser process-stability and bounds, and roster-wide parameter
introspection conformance.

The golden tests mirror ``tests/test_parallel_runner.py``: a tournament grid
run with ``jobs=4`` must reproduce the ``jobs=1`` result field-for-field, and
a warm ``TrialCache`` re-run must serve every trial without executing one.
Comparisons go through ``repr`` because flagged cells legitimately carry NaN
confidence intervals, and ``nan != nan`` would flag identical runs.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import settings as hyp_settings
from hypothesis import strategies as st

from repro.adversary import ParamSpec
from repro.analysis.competitiveness import ExponentFit, fit_cell_exponent
from repro.experiments import ExperimentSettings
from repro.experiments.runner import EXECUTION_STATS
from repro.simulation.errors import ConfigurationError
from repro.tournament import (
    TournamentCell,
    adversary_roster,
    adversary_supports_topology,
    build_adversary,
    optimise_cell,
    protocol_roster,
    run_tournament,
    topology_grid,
    tournament_cells,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")

GOLDEN_GRID = dict(
    adversaries=["budget_blocker", "sybil", "static_disk"],
    protocols=["eps-broadcast", "mh-sequential"],
    topologies=["single-hop", "gilbert-sub"],
)
GOLDEN_FRACTIONS = (0.1, 0.4, 0.9)
GOLDEN_SETTINGS = dict(n=48, trials=2, quick=True, seed=5)


def run_golden(**overrides):
    settings = ExperimentSettings(**{**GOLDEN_SETTINGS, "cache_dir": "", **overrides})
    return run_tournament(
        settings,
        cells=tournament_cells(**GOLDEN_GRID),
        spend_fractions=GOLDEN_FRACTIONS,
    )


class TestTournamentGolden:
    def test_grid_respects_compatibility_filters(self):
        cells = tournament_cells(**GOLDEN_GRID)
        # single-hop: the disk jammer needs geometry, so only the two channel
        # adversaries run there; gilbert-sub takes all three on mh-sequential.
        assert len(cells) == 5
        for cell in cells:
            kind = topology_grid()[cell.topology].kind
            assert kind in protocol_roster()[cell.protocol].topology_kinds
            assert adversary_supports_topology(cell.adversary, kind)

    def test_jobs4_bit_identical_to_jobs1(self):
        serial = run_golden(jobs=1)
        parallel = run_golden(jobs=4)
        assert repr(parallel) == repr(serial)

    def test_warm_cache_identical_without_recomputing(self, tmp_path):
        cache_dir = str(tmp_path / "trial-cache")
        cold = run_golden(jobs=1, cache_dir=cache_dir)

        before = EXECUTION_STATS.snapshot()
        warm = run_golden(jobs=1, cache_dir=cache_dir)
        delta = EXECUTION_STATS.since(before)

        assert delta.executed == 0, "warm re-run recomputed trials"
        assert delta.cache_hits > 0
        assert repr(warm) == repr(cold)

    def test_every_cell_fitted_or_flagged(self):
        result = run_golden(jobs=1)
        assert len(result.cells) == 5
        for cell_result in result.cells:
            fit = cell_result.node_fit
            if fit.flagged:
                assert fit.reason in {
                    "flat-cost",
                    "degenerate-spend-range",
                    "insufficient-points",
                    "zero-cost",
                }
            else:
                assert math.isfinite(fit.exponent)
                assert fit.ci_low <= fit.exponent <= fit.ci_high


class TestExponentFitProperties:
    @given(
        rho=st.floats(min_value=0.05, max_value=1.5),
        scale=st.floats(min_value=0.5, max_value=50.0),
        base=st.floats(min_value=2.0, max_value=50.0),
    )
    @hyp_settings(max_examples=100, deadline=None)
    def test_recovers_planted_exponent(self, rho, scale, base):
        spends = [base * (3.0**i) for i in range(5)]
        costs = [scale * spend**rho for spend in spends]
        fit = fit_cell_exponent(spends, costs)
        assert fit.ok
        assert fit.exponent == pytest.approx(rho, abs=1e-6)
        assert fit.ci_low - 1e-6 <= rho <= fit.ci_high + 1e-6
        assert fit.r_squared == pytest.approx(1.0)

    @given(
        cost=st.floats(min_value=0.5, max_value=1e6),
        n_points=st.integers(min_value=2, max_value=8),
    )
    @hyp_settings(max_examples=100, deadline=None)
    def test_flat_cost_is_flagged_zero_exponent(self, cost, n_points):
        spends = [10.0 * (2.0**i) for i in range(n_points)]
        fit = fit_cell_exponent(spends, [cost] * n_points)
        assert fit.flagged and fit.reason == "flat-cost"
        assert fit.exponent == 0.0

    @given(n_points=st.integers(min_value=1, max_value=6))
    @hyp_settings(max_examples=50, deadline=None)
    def test_zero_cost_is_flagged(self, n_points):
        spends = [10.0 * (2.0**i) for i in range(n_points)]
        fit = fit_cell_exponent(spends, [0.0] * n_points)
        assert fit.flagged and fit.reason == "zero-cost"

    @given(
        spread=st.floats(min_value=1.0, max_value=1.9),
        costs=st.lists(
            st.floats(min_value=1.0, max_value=1e3), min_size=2, max_size=2
        ),
    )
    @hyp_settings(max_examples=50, deadline=None)
    def test_narrow_spend_range_is_flagged(self, spread, costs):
        fit = fit_cell_exponent([10.0, 10.0 * spread], costs)
        assert fit.flagged and fit.reason == "degenerate-spend-range"

    @given(
        points=st.lists(
            st.tuples(
                st.floats(allow_nan=True, allow_infinity=True),
                st.floats(allow_nan=True, allow_infinity=True),
            ),
            max_size=10,
        )
    )
    @hyp_settings(max_examples=200, deadline=None)
    def test_never_raises_on_arbitrary_series(self, points):
        spends = [p[0] for p in points]
        costs = [p[1] for p in points]
        fit = fit_cell_exponent(spends, costs)
        assert isinstance(fit, ExponentFit)
        if not fit.flagged:
            assert math.isfinite(fit.exponent)


OPT_CELL = TournamentCell("bursty", "eps-broadcast", "single-hop")
OPT_KWARGS = dict(spend_fraction=0.4, rounds=1, grid_points=2)
OPT_SETTINGS = dict(n=48, trials=1, quick=True, seed=11, cache_dir="")


def optimiser_payload():
    settings = ExperimentSettings(**OPT_SETTINGS)
    result = optimise_cell(OPT_CELL, settings, **OPT_KWARGS)
    return {
        "baseline_params": result.baseline_params,
        "baseline_score": result.baseline_score,
        "best_params": result.best_params,
        "best_score": result.best_score,
        "evaluations": result.evaluations,
        "history": result.history,
    }


class TestOptimiser:
    def test_argmax_stable_across_processes(self):
        """A fresh interpreter must reproduce the search bit-for-bit."""

        script = textwrap.dedent(
            """
            import json
            import test_tournament

            print(json.dumps(test_tournament.optimiser_payload()))
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            SRC
            + os.pathsep
            + str(Path(__file__).resolve().parent)
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        env.pop("REPRO_JOBS", None)
        env.pop("REPRO_CACHE_DIR", None)
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, env=env
        )
        assert proc.returncode == 0, proc.stderr
        remote = json.loads(proc.stdout)
        local = json.loads(json.dumps(optimiser_payload()))  # tuples -> lists
        assert remote == local

    def test_never_proposes_out_of_bounds_parameters(self):
        settings = ExperimentSettings(n=48, trials=1, quick=True, seed=11, cache_dir="")
        cell = TournamentCell("static_disk", "mh-sequential", "gilbert-sub")
        result = optimise_cell(cell, settings, rounds=2, grid_points=3)
        specs = adversary_roster()[cell.adversary](None).tunable_parameters()
        assert result.evaluations == len(result.history) > 0
        for params, score in result.history:
            assert math.isfinite(score)
            for name, value in params:
                assert specs[name].contains(value), f"{name}={value} out of bounds"
        assert result.beats_hand_picked()
        assert dict(result.best_params) in [dict(p) for p, _ in result.history]


class TestRosterParameterConformance:
    """Satellite: every roster adversary exposes a sound introspection surface."""

    def roster(self):
        return adversary_roster()

    def test_roster_is_complete(self):
        assert sorted(self.roster()) == [
            "budget_blocker",
            "bursty",
            "composite",
            "mobile_disk",
            "multi_disk",
            "reactive",
            "reactive_disk",
            "request_spoofer",
            "round_switch",
            "static_disk",
            "sybil",
        ]

    def test_every_adversary_declares_in_bounds_tunables(self):
        for name, factory in self.roster().items():
            adversary = factory(1000.0)
            specs = adversary.tunable_parameters()
            assert specs, f"{name} declares no tunable parameters"
            for pname, spec in specs.items():
                assert isinstance(spec, ParamSpec)
                value = adversary.get_parameter(pname)
                assert spec.contains(value), f"{name}.{pname} default out of bounds"

    def test_with_parameters_round_trips_without_mutating(self):
        for name, factory in self.roster().items():
            adversary = factory(1000.0)
            for pname, spec in adversary.tunable_parameters().items():
                original = adversary.get_parameter(pname)
                for candidate in spec.grid(3):
                    try:
                        clone = adversary.with_parameters(**{pname: candidate})
                    except ConfigurationError:
                        # Cross-field constraints (e.g. bursty's period >=
                        # burst_length) may reject an in-bounds single move.
                        continue
                    assert clone is not adversary
                    assert clone.get_parameter(pname) == candidate
                    assert adversary.get_parameter(pname) == original, (
                        f"{name}.{pname}: with_parameters mutated the original"
                    )

    def test_unknown_and_out_of_range_parameters_raise(self):
        for name, factory in self.roster().items():
            adversary = factory(1000.0)
            with pytest.raises(ConfigurationError):
                adversary.with_parameters(no_such_parameter=1.0)
            with pytest.raises(ConfigurationError):
                adversary.get_parameter("no_such_parameter")
            for pname, spec in adversary.tunable_parameters().items():
                with pytest.raises(ConfigurationError):
                    adversary.with_parameters(**{pname: spec.high + spec.span()})
                with pytest.raises(ConfigurationError):
                    adversary.with_parameters(**{pname: spec.low - spec.span()})

    def test_composites_route_prefixed_parameters(self):
        composite = self.roster()["composite"](1000.0)
        names = set(composite.tunable_parameters())
        assert any(pname.startswith("s0.") for pname in names)
        assert any(pname.startswith("s1.") for pname in names)

        switcher = self.roster()["round_switch"](1000.0)
        names = set(switcher.tunable_parameters())
        assert "switch_round" in names
        assert any(pname.startswith("early.") for pname in names)
        assert any(pname.startswith("late.") for pname in names)
        moved = switcher.with_parameters(switch_round=9)
        assert moved.get_parameter("switch_round") == 9

    def test_build_adversary_applies_parameters(self):
        adversary = build_adversary(
            "bursty", 500.0, params=(("burst_length", 8), ("period", 32))
        )
        assert adversary.get_parameter("burst_length") == 8
        assert adversary.get_parameter("period") == 32
