"""Unit tests for phase plans, jam plans, and jam-slot materialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation import (
    JamPlan,
    JamTargeting,
    PhaseKind,
    PhasePlan,
    PhaseRoles,
    clip_probability,
)
from repro.simulation.jamming import materialize_jam_slots, materialize_spoof_slots


class TestClipProbability:
    @pytest.mark.parametrize("raw,expected", [(-0.5, 0.0), (0.0, 0.0), (0.4, 0.4), (1.0, 1.0), (7.3, 1.0)])
    def test_clipping(self, raw, expected):
        assert clip_probability(raw) == expected


class TestPhasePlan:
    def test_probabilities_clipped_on_construction(self):
        plan = PhasePlan(
            name="inform",
            kind=PhaseKind.INFORM,
            round_index=1,
            num_slots=4,
            alice_send_prob=3.0,
            uninformed_listen_prob=-1.0,
        )
        assert plan.alice_send_prob == 1.0
        assert plan.uninformed_listen_prob == 0.0

    def test_negative_slots_rejected(self):
        with pytest.raises(ValueError):
            PhasePlan(name="x", kind=PhaseKind.INFORM, round_index=1, num_slots=-1)

    def test_carries_payload(self):
        inform = PhasePlan(name="i", kind=PhaseKind.INFORM, round_index=1, num_slots=4, alice_send_prob=0.5)
        request = PhasePlan(name="r", kind=PhaseKind.REQUEST, round_index=1, num_slots=4, nack_send_prob=0.5)
        assert inform.carries_payload
        assert not request.carries_payload


class TestPhaseRoles:
    def test_of_constructor_freezes_sets(self):
        roles = PhaseRoles.of([1, 2, 3], relays=[4], alice_active=False)
        assert roles.active_uninformed == frozenset({1, 2, 3})
        assert roles.relays == frozenset({4})
        assert not roles.alice_active


class TestJamPlan:
    def test_idle_plan(self):
        plan = JamPlan.idle()
        assert not plan.attacks_anything

    def test_attacks_anything_variants(self):
        assert JamPlan(num_jam_slots=1).attacks_anything
        assert JamPlan(jam_rate=0.1).attacks_anything
        assert JamPlan(slot_indices=(1, 2)).attacks_anything
        assert JamPlan(spoof_nack_slots=2).attacks_anything
        assert not JamPlan().attacks_anything


class TestMaterializeJamSlots:
    def test_explicit_indices_clipped_to_phase(self):
        plan = JamPlan(slot_indices=(0, 3, 99))
        slots = materialize_jam_slots(plan, 10, np.random.default_rng(0))
        assert slots.tolist() == [0, 3]

    def test_count_selection_has_exact_size(self):
        plan = JamPlan(num_jam_slots=5)
        slots = materialize_jam_slots(plan, 20, np.random.default_rng(0))
        assert len(slots) == 5
        assert len(set(slots.tolist())) == 5

    def test_count_capped_at_phase_length(self):
        plan = JamPlan(num_jam_slots=50)
        slots = materialize_jam_slots(plan, 10, np.random.default_rng(0))
        assert len(slots) == 10

    def test_rate_selection_statistics(self):
        plan = JamPlan(jam_rate=0.3)
        slots = materialize_jam_slots(plan, 10_000, np.random.default_rng(1))
        assert 0.25 < len(slots) / 10_000 < 0.35

    def test_reactive_requires_activity_mask(self):
        plan = JamPlan(num_jam_slots=2, reactive=True)
        with pytest.raises(ValueError):
            materialize_jam_slots(plan, 10, np.random.default_rng(0))

    def test_reactive_jams_only_active_slots(self):
        plan = JamPlan(num_jam_slots=3, reactive=True)
        activity = np.array([False, True, False, True, True, False, True])
        slots = materialize_jam_slots(plan, 7, np.random.default_rng(0), activity_mask=activity)
        assert slots.tolist() == [1, 3, 4]

    def test_reactive_rate_subsets_active_slots(self):
        plan = JamPlan(jam_rate=1.0, reactive=True)
        activity = np.array([True, False, True])
        slots = materialize_jam_slots(plan, 3, np.random.default_rng(0), activity_mask=activity)
        assert slots.tolist() == [0, 2]

    def test_zero_slots_phase(self):
        assert materialize_jam_slots(JamPlan(num_jam_slots=3), 0, np.random.default_rng(0)).size == 0

    def test_empty_plan(self):
        assert materialize_jam_slots(JamPlan(), 16, np.random.default_rng(0)).size == 0


class TestMaterializeSpoofSlots:
    def test_excludes_given_slots(self):
        slots = materialize_spoof_slots(5, 10, np.random.default_rng(0), exclude=range(5))
        assert all(slot >= 5 for slot in slots.tolist())
        assert len(slots) == 5

    def test_count_capped_by_available(self):
        slots = materialize_spoof_slots(10, 4, np.random.default_rng(0), exclude=[0])
        assert len(slots) == 3

    def test_zero_count(self):
        assert materialize_spoof_slots(0, 10, np.random.default_rng(0)).size == 0
