"""Behavioural tests for the multi-hop relay layer and spatial jamming."""

from __future__ import annotations

import pytest

from repro import run_broadcast
from repro.adversary import SpatialJammer
from repro.core.broadcast import MultiHopBroadcast
from repro.simulation import SimulationConfig, TopologySpec
from repro.simulation.errors import ConfigurationError


class TestMultiHopBroadcast:
    def test_delivery_limited_to_alice_component(self):
        """No radio path, no message: delivery never exceeds reachability."""

        config = SimulationConfig(n=64, seed=9, topology=TopologySpec.gilbert(radius=0.12))
        protocol = MultiHopBroadcast(config, engine="fast")
        reachable = len(protocol.network.topology.reachable_from_alice())
        outcome = protocol.run()
        assert outcome.delivery.informed <= reachable

    @pytest.mark.parametrize("engine", ["fast", "slot"])
    def test_connected_gilbert_reaches_everyone(self, engine):
        outcome = run_broadcast(
            n=48,
            seed=5,
            variant="multihop",
            engine=engine,
            topology="gilbert",
            topology_kwargs={"radius": 0.4},
        )
        assert outcome.delivery_fraction == 1.0
        assert not outcome.terminated_by_cap

    def test_multihop_beats_single_hop_protocol_on_spatial_graph(self):
        """The relay layer is what carries the message beyond Alice's range."""

        spec = TopologySpec.gilbert(radius=0.25)
        kwargs = dict(n=64, seed=13, engine="fast", config=SimulationConfig(n=64, seed=13, topology=spec))
        base = run_broadcast(variant="epsilon-broadcast", **kwargs)
        multi = run_broadcast(variant="multihop", **kwargs)
        assert multi.delivery.informed > base.delivery.informed

    def test_run_broadcast_topology_string_shortcut(self):
        outcome = run_broadcast(
            n=32,
            seed=2,
            variant="multihop",
            topology="scale_free",
            topology_kwargs={"alpha": 2.0},
        )
        assert outcome.config.topology.kind == "scale_free"
        assert outcome.config.topology.alpha == 2.0


class TestSpatialJammer:
    def test_requires_binding(self):
        from repro.simulation.phaseplan import PhaseContext, PhaseKind, PhasePlan, PhaseRoles

        jammer = SpatialJammer()
        context = PhaseContext(
            plan=PhasePlan(name="inform", kind=PhaseKind.INFORM, round_index=1, num_slots=4,
                           alice_send_prob=0.5),
            roles=PhaseRoles.of(range(4)),
            config=SimulationConfig(n=4),
        )
        with pytest.raises(ConfigurationError, match="bind_network"):
            jammer.plan_phase(context)

    def test_binds_to_disk_victims(self):
        config = SimulationConfig(n=64, seed=3, topology=TopologySpec.gilbert(radius=0.3))
        jammer = SpatialJammer(center=(0.5, 0.5), radius=0.2)
        protocol = MultiHopBroadcast(config, adversary=jammer, engine="fast")
        expected = protocol.network.topology.nodes_in_disk((0.5, 0.5), 0.2)
        assert jammer.victims == expected
        assert -1 in jammer.victims  # Alice sits at the default centre

    def test_spatial_jam_costs_carol_without_stranding_forever(self):
        outcome = run_broadcast(
            n=48,
            seed=7,
            variant="multihop",
            engine="fast",
            topology="gilbert",
            topology_kwargs={"radius": 0.35},
            adversary="spatial",
            adversary_kwargs={"center": (0.3, 0.3), "radius": 0.2, "max_total_spend": 2_000.0},
        )
        assert outcome.adversary_spend == pytest.approx(2_000.0, abs=200)
        assert outcome.delivery_fraction == 1.0

    def test_negative_radius_rejected(self):
        with pytest.raises(ConfigurationError):
            SpatialJammer(radius=-0.1)

    def test_composite_adversaries_forward_binding(self):
        """A SpatialJammer nested in a composite must still get the topology."""

        from repro.adversary import CompositeAdversary, RoundSwitchingAdversary, NullAdversary

        config = SimulationConfig(n=32, seed=3, topology=TopologySpec.gilbert(radius=0.3))
        inner = SpatialJammer(center=(0.5, 0.5), radius=0.2, max_total_spend=100.0)
        MultiHopBroadcast(config, adversary=CompositeAdversary([inner]), engine="fast").run()
        assert inner.victims

        late = SpatialJammer(center=(0.5, 0.5), radius=0.2, max_total_spend=100.0)
        switcher = RoundSwitchingAdversary(early=NullAdversary(), late=late, switch_round=1)
        MultiHopBroadcast(config, adversary=switcher, engine="fast").run()
        assert late.victims

    def test_baseline_orchestrators_bind_spatial_jammer(self):
        """Every orchestrator family that owns a Network must bind the adversary."""

        from repro.baselines import NaiveBroadcast

        config = SimulationConfig(n=32, seed=3, topology=TopologySpec.gilbert(radius=0.3))
        jammer = SpatialJammer(center=(0.5, 0.5), radius=0.2, max_total_spend=200.0)
        protocol = NaiveBroadcast(config, adversary=jammer, engine="fast")
        assert jammer.victims  # bound at construction, before the first phase
        outcome = protocol.run()
        assert outcome.adversary_spend <= 200.0
