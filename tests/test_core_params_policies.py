"""Unit tests for protocol parameters and the Alice/receiver policies."""

from __future__ import annotations

import math

import pytest

from repro.core import ProtocolParameters
from repro.core.alice import AlicePolicy
from repro.core.receiver import ReceiverPolicy
from repro.simulation import ConfigurationError, SimulationConfig


class TestProtocolParameters:
    def test_defaults_match_lemma_11(self):
        params = ProtocolParameters(k=2)
        assert params.a_value == pytest.approx(0.5)
        assert params.b_value == 1.0

    def test_general_k_a_value(self):
        assert ProtocolParameters(k=4).a_value == pytest.approx(0.25)

    def test_explicit_a_override(self):
        assert ProtocolParameters(k=2, a=0.4).a_value == 0.4

    @pytest.mark.parametrize("field,value", [
        ("k", 1),
        ("a", 1.5),
        ("b", 0.0),
        ("c", -1.0),
        ("epsilon_prime", 0.0),
        ("start_round", 0),
        ("min_termination_round", 0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ConfigurationError):
            ProtocolParameters(**{field: value})

    def test_max_round_before_start_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolParameters(start_round=5, max_round=4)

    def test_phase_length_grows_geometrically(self):
        params = ProtocolParameters(k=2)
        assert params.phase_length(4) == pytest.approx(2 ** 6, abs=1)
        assert params.phase_length(6) / params.phase_length(4) == pytest.approx(8.0, rel=0.01)

    def test_request_phase_length_k2(self):
        params = ProtocolParameters(k=2)
        assert params.request_phase_length(4) == pytest.approx(2 ** 6, abs=1)

    def test_resolved_round_window(self):
        params = ProtocolParameters(k=2)
        n = 1024
        assert params.resolved_min_termination_round(n) >= 3
        assert params.resolved_max_round(n) >= math.log2(n)

    def test_explicit_round_window_respected(self):
        params = ProtocolParameters(min_termination_round=5, max_round=9)
        assert params.resolved_min_termination_round(4096) == 5
        assert params.resolved_max_round(4096) == 9

    def test_termination_threshold(self):
        params = ProtocolParameters(c=2.0)
        assert params.termination_threshold(100) == pytest.approx(10 * math.log(100))

    def test_from_config_inherits_fields(self):
        config = SimulationConfig(n=128, k=3, c=4.0, epsilon_prime=0.03)
        params = ProtocolParameters.from_config(config)
        assert params.k == 3
        assert params.c == 4.0
        assert params.epsilon_prime == 0.03

    def test_with_returns_copy(self):
        params = ProtocolParameters(k=2)
        other = params.with_(c=9.0)
        assert other.c == 9.0 and params.c != 9.0


class TestAlicePolicy:
    def make(self, n=1024, figure=1, **kwargs):
        return AlicePolicy(ProtocolParameters(k=kwargs.pop("k", 2), **kwargs), n, figure=figure)

    def test_inform_send_probability_formula(self):
        policy = self.make()
        i = 8
        expected = 2 * math.log(1024) / 2 ** i
        assert policy.inform_send_probability(i) == pytest.approx(expected)

    def test_inform_send_probability_clipped_early(self):
        assert self.make().inform_send_probability(1) == 1.0

    def test_figure2_uses_log_power_k(self):
        policy = AlicePolicy(ProtocolParameters(k=3), 1024, figure=2)
        i = 10
        expected = 2 * 2.0 * math.log(1024) ** 3 / 2 ** i
        assert policy.inform_send_probability(i) == pytest.approx(min(expected, 1.0))

    def test_request_listen_probability_decreases_with_round(self):
        policy = self.make()
        assert policy.request_listen_probability(10) < policy.request_listen_probability(8)

    def test_expected_request_listens_constant_per_round(self):
        policy = self.make()
        for i in (9, 10, 11):
            expected = policy.request_listen_probability(i) * policy.request_phase_length(i)
            assert expected == pytest.approx(
                policy.params.c * math.log(1024) / (1 - math.exp(-4 * policy.params.epsilon_prime)),
                rel=0.05,
            )

    def test_should_terminate_requires_minimum_round(self):
        policy = self.make()
        early = policy.earliest_termination_round() - 1
        assert not policy.should_terminate(0, early)
        assert policy.should_terminate(0, policy.earliest_termination_round())

    def test_should_not_terminate_when_noisy(self):
        policy = self.make()
        late = policy.earliest_termination_round() + 1
        assert not policy.should_terminate(10_000, late)

    def test_invalid_figure_rejected(self):
        with pytest.raises(ValueError):
            AlicePolicy(ProtocolParameters(), 64, figure=3)


class TestReceiverPolicy:
    def make(self, n=1024, figure=1, decoy=False, k=2):
        return ReceiverPolicy(ProtocolParameters(k=k), n, figure=figure, decoy_traffic=decoy)

    def test_inform_listen_formula(self):
        policy = self.make()
        i = 9
        expected = 2.0 / (policy.params.epsilon_prime * 2 ** i)
        assert policy.inform_listen_probability(i) == pytest.approx(min(expected, 1.0))

    def test_relay_and_nack_probabilities_are_one_over_n(self):
        policy = self.make(n=500)
        assert policy.relay_send_probability(7) == pytest.approx(1 / 500)
        assert policy.nack_send_probability(7) == pytest.approx(1 / 500)

    def test_propagation_listen_figure1_vs_figure2_differ(self):
        fig1 = self.make(figure=1).propagation_listen_probability(9)
        fig2 = self.make(figure=2).propagation_listen_probability(9)
        assert fig1 != fig2

    def test_decoy_probability_zero_when_disabled(self):
        assert self.make().decoy_send_probability(8) == 0.0

    def test_decoy_probability_scales_with_rate(self):
        policy = ReceiverPolicy(ProtocolParameters(), 100, decoy_traffic=True, decoy_rate=0.75)
        assert policy.decoy_send_probability(8) == pytest.approx(0.0075)

    def test_decoy_boosts_listening(self):
        base = self.make(decoy=False).inform_listen_probability(12)
        boosted = self.make(decoy=True).inform_listen_probability(12)
        assert boosted > base

    def test_termination_threshold_uses_policy_n(self):
        policy = self.make(n=2048)
        assert policy.termination_threshold() == pytest.approx(10 * math.log(2048))

    def test_earliest_termination_round_is_sane(self):
        policy = self.make()
        earliest = policy.earliest_termination_round()
        assert policy.params.start_round <= earliest <= policy.params.resolved_max_round(1024)

    def test_min_reliable_round_grows_with_threshold(self):
        lenient = ReceiverPolicy(ProtocolParameters(c=1.0), 1024)
        strict = ReceiverPolicy(ProtocolParameters(c=4.0), 1024)
        assert strict.min_reliable_termination_round() >= lenient.min_reliable_termination_round()

    def test_should_terminate_threshold_boundary(self):
        policy = self.make()
        round_index = policy.earliest_termination_round()
        threshold = policy.termination_threshold()
        assert policy.should_terminate(int(threshold), round_index)
        assert not policy.should_terminate(int(threshold) + 1, round_index)

    def test_invalid_decoy_rate(self):
        with pytest.raises(ValueError):
            ReceiverPolicy(ProtocolParameters(), 64, decoy_rate=0.0)
