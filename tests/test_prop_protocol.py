"""Property-based tests (hypothesis) for protocol-level invariants."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.fitting import fit_power_law
from repro.core import ProtocolParameters
from repro.core.alice import AlicePolicy
from repro.core.receiver import ReceiverPolicy
from repro.core.state import NodeStatus, ProtocolState


class TestParameterProperties:
    @given(
        k=st.integers(min_value=2, max_value=6),
        round_index=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=100, deadline=None)
    def test_phase_lengths_positive_and_monotone(self, k, round_index):
        params = ProtocolParameters(k=k)
        assert params.phase_length(round_index) >= 1
        assert params.phase_length(round_index + 1) > params.phase_length(round_index)
        assert params.request_phase_length(round_index + 1) > params.request_phase_length(round_index)

    @given(
        k=st.integers(min_value=2, max_value=6),
        n=st.integers(min_value=4, max_value=100_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_round_window_ordering(self, k, n):
        params = ProtocolParameters(k=k)
        assert params.start_round <= params.resolved_min_termination_round(n)
        assert params.resolved_min_termination_round(n) <= params.resolved_max_round(n) + 1


class TestPolicyProperties:
    @given(
        n=st.integers(min_value=8, max_value=10_000),
        k=st.integers(min_value=2, max_value=4),
        round_index=st.integers(min_value=1, max_value=24),
        figure=st.sampled_from([1, 2]),
    )
    @settings(max_examples=150, deadline=None)
    def test_all_probabilities_are_valid(self, n, k, round_index, figure):
        params = ProtocolParameters(k=k)
        alice = AlicePolicy(params, n, figure=figure)
        receiver = ReceiverPolicy(params, n, figure=figure, decoy_traffic=True)
        probabilities = [
            alice.inform_send_probability(round_index),
            alice.request_listen_probability(round_index),
            receiver.inform_listen_probability(round_index),
            receiver.propagation_listen_probability(round_index),
            receiver.request_listen_probability(round_index),
            receiver.relay_send_probability(round_index),
            receiver.nack_send_probability(round_index),
            receiver.decoy_send_probability(round_index),
        ]
        assert all(0.0 <= p <= 1.0 for p in probabilities)

    @given(
        n=st.integers(min_value=8, max_value=10_000),
        round_index=st.integers(min_value=4, max_value=20),
    )
    @settings(max_examples=100, deadline=None)
    def test_listening_probabilities_never_increase_with_round(self, n, round_index):
        receiver = ReceiverPolicy(ProtocolParameters(k=2), n)
        assert receiver.inform_listen_probability(round_index + 1) <= receiver.inform_listen_probability(
            round_index
        )
        assert receiver.request_listen_probability(round_index + 1) <= receiver.request_listen_probability(
            round_index
        )

    @given(
        n=st.integers(min_value=8, max_value=10_000),
        heard=st.integers(min_value=0, max_value=10_000),
        round_index=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=150, deadline=None)
    def test_termination_is_monotone_in_noise(self, n, heard, round_index):
        receiver = ReceiverPolicy(ProtocolParameters(k=2), n)
        # If a node terminates having heard `heard` noisy slots, it must also
        # terminate having heard fewer.
        if receiver.should_terminate(heard, round_index):
            assert receiver.should_terminate(max(heard - 1, 0), round_index)
        # And never before its earliest allowed round.
        if round_index < receiver.earliest_termination_round():
            assert not receiver.should_terminate(0, round_index)


class TestProtocolStateProperties:
    @given(
        n=st.integers(min_value=1, max_value=60),
        informed=st.data(),
    )
    @settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_status_counts_always_partition_the_network(self, n, informed):
        state = ProtocolState(n)
        to_inform = informed.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n)
        )
        state.mark_informed(to_inform, slot=1)
        terminate_informed = informed.draw(st.sets(st.sampled_from(sorted(to_inform)), max_size=len(to_inform))) if to_inform else set()
        state.terminate_informed(terminate_informed, round_index=1)
        remaining_uninformed = sorted(set(range(n)) - set(to_inform))
        give_up = (
            informed.draw(st.sets(st.sampled_from(remaining_uninformed), max_size=len(remaining_uninformed)))
            if remaining_uninformed
            else set()
        )
        state.terminate_uninformed(give_up, round_index=1)

        statuses = [state.status(i) for i in range(n)]
        counts = {
            NodeStatus.UNINFORMED: 0,
            NodeStatus.INFORMED: 0,
            NodeStatus.TERMINATED_INFORMED: 0,
            NodeStatus.TERMINATED_UNINFORMED: 0,
        }
        for status in statuses:
            counts[status] += 1
        assert sum(counts.values()) == n
        assert counts[NodeStatus.TERMINATED_INFORMED] == len(terminate_informed)
        assert counts[NodeStatus.TERMINATED_UNINFORMED] == len(give_up)
        assert state.informed_count() == len(to_inform)


class TestFittingProperties:
    @given(
        exponent=st.floats(min_value=0.1, max_value=1.5),
        coefficient=st.floats(min_value=0.1, max_value=50.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_fit_recovers_exact_power_laws(self, exponent, coefficient):
        xs = [10.0, 100.0, 1000.0, 10_000.0]
        ys = [coefficient * x ** exponent for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(exponent, abs=1e-6)
        assert fit.coefficient == pytest.approx(coefficient, rel=1e-4)
