"""Unit tests for the single-channel collision/jamming semantics."""

from __future__ import annotations

import pytest

from repro.simulation import (
    ALICE_ID,
    Channel,
    ChannelState,
    JamMode,
    JamTargeting,
    ProtocolViolationError,
    make_nack,
    make_payload,
)


@pytest.fixture
def channel() -> Channel:
    return Channel()


def payload():
    return make_payload(ALICE_ID, "m", "sig")


class TestJamTargeting:
    def test_none_affects_nobody(self):
        assert not JamTargeting.none().affects(3)
        assert not JamTargeting.none().is_active

    def test_everyone_affects_all(self):
        targeting = JamTargeting.everyone()
        assert targeting.affects(0)
        assert targeting.affects(ALICE_ID)
        assert targeting.is_active

    def test_only_affects_listed(self):
        targeting = JamTargeting.only({1, 2})
        assert targeting.affects(1)
        assert not targeting.affects(3)

    def test_sparing_affects_everyone_else(self):
        targeting = JamTargeting.sparing({1, 2})
        assert not targeting.affects(1)
        assert targeting.affects(3)

    def test_mode_enumeration(self):
        assert JamTargeting.none().mode is JamMode.NONE
        assert JamTargeting.everyone().mode is JamMode.ALL
        assert JamTargeting.only([1]).mode is JamMode.ONLY
        assert JamTargeting.sparing([1]).mode is JamMode.EXCEPT


class TestChannelResolution:
    def test_silent_slot(self, channel):
        resolution = channel.resolve_slot([], {1, 2}, JamTargeting.none())
        assert all(obs.is_silent for obs in resolution.observations.values())
        assert not resolution.busy

    def test_single_transmission_delivered(self, channel):
        resolution = channel.resolve_slot([payload()], {1}, JamTargeting.none(), senders=[ALICE_ID])
        observation = resolution.observations[1]
        assert observation.state is ChannelState.MESSAGE
        assert observation.message.payload == "m"

    def test_collision_is_noise_for_everyone(self, channel):
        resolution = channel.resolve_slot(
            [payload(), make_nack(3)], {1, 2}, JamTargeting.none(), senders=[ALICE_ID, 3]
        )
        assert all(obs.state is ChannelState.NOISE for obs in resolution.observations.values())

    def test_jamming_blocks_single_transmission(self, channel):
        resolution = channel.resolve_slot([payload()], {1}, JamTargeting.everyone(), senders=[ALICE_ID])
        assert resolution.observations[1].state is ChannelState.NOISE

    def test_n_uniform_jamming_spares_chosen_listener(self, channel):
        resolution = channel.resolve_slot(
            [payload()], {1, 2}, JamTargeting.sparing({1}), senders=[ALICE_ID]
        )
        assert resolution.observations[1].state is ChannelState.MESSAGE
        assert resolution.observations[2].state is ChannelState.NOISE

    def test_jamming_empty_slot_cannot_forge_silence(self, channel):
        # Jamming an empty slot makes it *noisy*; the reverse (making a busy
        # slot silent) is impossible by construction.
        resolution = channel.resolve_slot([], {1}, JamTargeting.everyone())
        assert resolution.observations[1].state is ChannelState.NOISE
        assert resolution.busy

    def test_unjammed_unlistened_slot_has_no_observations(self, channel):
        resolution = channel.resolve_slot([payload()], set(), JamTargeting.none(), senders=[ALICE_ID])
        assert resolution.observations == {}
        assert resolution.transmission_count == 1

    def test_sender_cannot_also_listen(self, channel):
        with pytest.raises(ProtocolViolationError):
            channel.resolve_slot([make_nack(1)], {1}, JamTargeting.none(), senders=[1])

    def test_alice_can_listen_like_any_node(self, channel):
        resolution = channel.resolve_slot([make_nack(5)], {ALICE_ID}, JamTargeting.none(), senders=[5])
        assert resolution.observations[ALICE_ID].state is ChannelState.MESSAGE
        assert resolution.observations[ALICE_ID].is_noisy

    def test_only_targeting_affects_alice_when_listed(self, channel):
        resolution = channel.resolve_slot(
            [make_nack(5)], {ALICE_ID}, JamTargeting.only({ALICE_ID}), senders=[5]
        )
        assert resolution.observations[ALICE_ID].state is ChannelState.NOISE

    def test_busy_flag_with_only_jamming(self, channel):
        resolution = channel.resolve_slot([], set(), JamTargeting.everyone())
        assert resolution.busy
        assert resolution.transmission_count == 0


class TestObservationSemantics:
    def test_message_counts_as_noisy_for_request_rule(self, channel):
        resolution = channel.resolve_slot([make_nack(2)], {1}, JamTargeting.none(), senders=[2])
        assert resolution.observations[1].is_noisy

    def test_silent_is_not_noisy(self, channel):
        resolution = channel.resolve_slot([], {1}, JamTargeting.none())
        assert not resolution.observations[1].is_noisy


class TestDeterministicObservationOrder:
    """Pinned regression for the sorted listener loop in ``resolve_slot``.

    The observations mapping's insertion order is observable to every
    consumer that iterates it (engines, traces).  Before the fix the loop
    ran over the raw listener set, so the order tracked hash-table layout:
    ``{1, 8}`` iterates ``[8, 1]`` because 8 hashes into slot 0.
    """

    def test_observations_insert_in_sorted_listener_order(self, channel):
        listeners = {1, 8}
        # Precondition: raw set order genuinely differs from sorted order,
        # otherwise this test could not distinguish the fix from the bug.
        assert list(listeners) != sorted(listeners)
        resolution = channel.resolve_slot([], listeners, JamTargeting.none())
        assert list(resolution.observations) == sorted(listeners)

    def test_order_holds_with_traffic_and_jamming(self, channel):
        listeners = {1, 8, 2}
        assert list(listeners) != sorted(listeners)
        resolution = channel.resolve_slot(
            [make_nack(5)], listeners, JamTargeting.only({2}), senders=[5]
        )
        assert list(resolution.observations) == sorted(listeners)
