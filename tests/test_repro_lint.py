"""Tests for :mod:`repro.lint` — the determinism & invariant linter.

Coverage contract (see docs/architecture.md "Static analysis"):

* one positive and one negative fixture per built-in rule R1–R8,
* suppression-comment handling with and without a reason,
* the JSON report schema,
* registry validation,
* config parsing / exemption matching,
* a meta-test asserting the shipped ``src/repro`` tree is lint-clean, and
* CLI subprocess tests demonstrating the CI gate fails on a seeded
  violation and passes on a clean file.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    LintConfig,
    LintRule,
    Violation,
    lint_paths,
    lint_source,
    register_rule,
    registered_rules,
    report_json,
)
from repro.lint.framework import PARSE_RULE, SUPPRESSION_RULE, iter_python_files

REPO_ROOT = Path(__file__).resolve().parents[1]
CLI = REPO_ROOT / "tools" / "repro_lint.py"


def lint(source: str) -> list:
    return lint_source(textwrap.dedent(source))


def rules_hit(violations, *, include_suppressed: bool = False) -> set:
    return {
        v.rule for v in violations if include_suppressed or not v.suppressed
    }


# --------------------------------------------------------------------- #
# Per-rule fixtures: one positive, one negative each                     #
# --------------------------------------------------------------------- #


class TestR1AmbientNondeterminism:
    def test_flags_clock_read(self):
        violations = lint(
            """
            import time

            def seed_for(label):
                return int(time.time())
            """
        )
        assert rules_hit(violations) == {"R1"}

    def test_resolves_import_aliases(self):
        violations = lint(
            """
            import numpy as np

            def reseed():
                np.random.seed(0)
            """
        )
        assert rules_hit(violations) == {"R1"}

    def test_flags_from_import(self):
        violations = lint(
            """
            from time import time

            def now():
                return time()
            """
        )
        assert rules_hit(violations) == {"R1"}

    def test_flags_bare_default_rng(self):
        violations = lint(
            """
            import numpy as np

            rng = np.random.default_rng()
            """
        )
        assert rules_hit(violations) == {"R1"}

    def test_allows_seeded_default_rng(self):
        violations = lint(
            """
            import numpy as np

            def make_rng(seed):
                return np.random.default_rng(seed)
            """
        )
        assert rules_hit(violations) == set()

    def test_flags_module_level_random(self):
        violations = lint(
            """
            import random

            def draw():
                return random.random()
            """
        )
        assert rules_hit(violations) == {"R1"}


class TestR2UnstableHash:
    def test_flags_builtin_hash(self):
        violations = lint(
            """
            def cache_key(label):
                return hash(label) % 1000
            """
        )
        assert rules_hit(violations) == {"R2"}

    def test_flags_id(self):
        violations = lint(
            """
            def order_key(obj):
                return id(obj)
            """
        )
        assert rules_hit(violations) == {"R2"}

    def test_allows_hash_inside_dunder_hash(self):
        violations = lint(
            """
            class Key:
                def __hash__(self):
                    return hash(self.label)
            """
        )
        assert rules_hit(violations) == set()


class TestR3UnorderedIteration:
    def test_flags_for_loop_over_set(self):
        violations = lint(
            """
            def schedule(nodes):
                active = {n for n in nodes if n > 0}
                out = []
                for node in active:
                    out.append(node)
                return out
            """
        )
        assert rules_hit(violations) == {"R3"}

    def test_flags_list_materialisation(self):
        violations = lint(
            """
            def snapshot():
                seen = set()
                return list(seen)
            """
        )
        assert rules_hit(violations) == {"R3"}

    def test_flags_comprehension_over_set(self):
        violations = lint(
            """
            def record(ids):
                pending = set(ids)
                return [2 * i for i in pending]
            """
        )
        assert rules_hit(violations) == {"R3"}

    def test_allows_sorted_iteration(self):
        violations = lint(
            """
            def schedule(nodes):
                active = {n for n in nodes if n > 0}
                return [node for node in sorted(active)]
            """
        )
        assert rules_hit(violations) == set()

    def test_allows_order_insensitive_reduction(self):
        violations = lint(
            """
            def total(ids):
                pending = set(ids)
                return sum(pending) + len(pending)
            """
        )
        assert rules_hit(violations) == set()


class TestR4UnpicklableTrial:
    def test_flags_lambda_trial_fn(self):
        violations = lint(
            """
            from repro.experiments.runner import TrialSpec

            def build():
                return TrialSpec.point(lambda seed: {}, "E", n=8)
            """
        )
        assert rules_hit(violations) == {"R4"}

    def test_flags_nested_trial_fn(self):
        violations = lint(
            """
            from repro.experiments.runner import TrialSpec

            def build():
                def _trial(seed):
                    return {}

                return TrialSpec.point(_trial, "E", n=8)
            """
        )
        assert rules_hit(violations) == {"R4"}

    def test_allows_top_level_trial_fn(self):
        violations = lint(
            """
            from repro.experiments.runner import TrialSpec

            def _trial(seed):
                return {}

            def build():
                return TrialSpec.point(_trial, "E", n=8)
            """
        )
        assert rules_hit(violations) == set()


class TestR5UnguardedTraceEmit:
    def test_flags_unguarded_record(self):
        violations = lint(
            """
            def run_phase(recorder):
                recorder.record({"event": "phase"})
            """
        )
        assert rules_hit(violations) == {"R5"}

    def test_allows_if_guarded_record(self):
        violations = lint(
            """
            def run_phase(recorder):
                if recorder.enabled:
                    recorder.record({"event": "phase"})
            """
        )
        assert rules_hit(violations) == set()

    def test_allows_early_return_guard(self):
        violations = lint(
            """
            def run_phase(recorder):
                if not recorder.enabled:
                    return
                recorder.record({"event": "phase"})
            """
        )
        assert rules_hit(violations) == set()

    def test_else_branch_is_not_guarded(self):
        violations = lint(
            """
            def run_phase(recorder):
                if recorder.enabled:
                    pass
                else:
                    recorder.record({"event": "phase"})
            """
        )
        assert rules_hit(violations) == {"R5"}


class TestR6TunableContract:
    def test_flags_unbacked_parameter(self):
        violations = lint(
            """
            from repro.adversary.parameters import ParamSpec

            class Jammer:
                tunable = (ParamSpec("radius", 0.0, 1.0),)

                def __init__(self):
                    self.budget = 1.0
            """
        )
        assert rules_hit(violations) == {"R6"}

    def test_flags_mutable_list_declaration(self):
        violations = lint(
            """
            from repro.adversary.parameters import ParamSpec

            class Jammer:
                tunable = [ParamSpec("radius", 0.0, 1.0)]

                def __init__(self, radius):
                    self.radius = radius
            """
        )
        assert "R6" in rules_hit(violations)

    def test_flags_duplicate_parameter(self):
        violations = lint(
            """
            from repro.adversary.parameters import ParamSpec

            class Jammer:
                tunable = (
                    ParamSpec("radius", 0.0, 1.0),
                    ParamSpec("radius", 0.0, 2.0),
                )

                def __init__(self, radius):
                    self.radius = radius
            """
        )
        assert rules_hit(violations) == {"R6"}

    def test_flags_dead_hook_without_declaration(self):
        violations = lint(
            """
            class Jammer:
                def _validate_parameters(self):
                    pass
            """
        )
        assert rules_hit(violations) == {"R6"}

    def test_allows_init_backed_parameter(self):
        violations = lint(
            """
            from repro.adversary.parameters import ParamSpec

            class Jammer:
                tunable = (ParamSpec("radius", 0.0, 1.0),)

                def __init__(self, radius=0.5):
                    self.radius = radius
            """
        )
        assert rules_hit(violations) == set()

    def test_allows_set_parameter_override(self):
        violations = lint(
            """
            from repro.adversary.parameters import ParamSpec

            class Jammer:
                tunable = (ParamSpec("duty", 0.0, 1.0),)

                def _set_parameter(self, name, value):
                    pass
            """
        )
        assert rules_hit(violations) == set()


class TestR7FrozenMutation:
    def test_flags_post_construction_mutation(self):
        violations = lint(
            """
            class Config:
                def bump(self):
                    object.__setattr__(self, "count", self.count + 1)
            """
        )
        assert rules_hit(violations) == {"R7"}

    def test_allows_post_init(self):
        violations = lint(
            """
            class Config:
                def __post_init__(self):
                    object.__setattr__(self, "count", 0)
            """
        )
        assert rules_hit(violations) == set()


class TestR8NoPrint:
    def test_flags_stdout_print(self):
        violations = lint(
            """
            def run():
                print("done")
            """
        )
        assert rules_hit(violations) == {"R8"}

    def test_allows_stderr_print(self):
        violations = lint(
            """
            import sys

            def run():
                print("done", file=sys.stderr)
            """
        )
        assert rules_hit(violations) == set()


# --------------------------------------------------------------------- #
# Suppressions                                                           #
# --------------------------------------------------------------------- #


class TestSuppressions:
    def test_same_line_disable_with_reason(self):
        violations = lint(
            """
            def run():
                print("x")  # repro-lint: disable=R8 -- demo fixture output
            """
        )
        assert rules_hit(violations) == set()
        (violation,) = violations
        assert violation.rule == "R8"
        assert violation.suppressed
        assert violation.reason == "demo fixture output"

    def test_previous_line_disable(self):
        violations = lint(
            """
            def run():
                # repro-lint: disable=R8 -- demo fixture output
                print("x")
            """
        )
        assert rules_hit(violations) == set()
        assert violations[0].suppressed

    def test_disable_without_reason_suppresses_nothing(self):
        violations = lint(
            """
            def run():
                print("x")  # repro-lint: disable=R8
            """
        )
        assert rules_hit(violations) == {"R8", SUPPRESSION_RULE}

    def test_disable_only_covers_named_rules(self):
        violations = lint(
            """
            def run():
                print("x")  # repro-lint: disable=R1 -- wrong rule named
            """
        )
        assert rules_hit(violations) == {"R8"}

    def test_disable_all_covers_every_rule(self):
        violations = lint(
            """
            def run():
                print("x")  # repro-lint: disable=all -- fixture escape hatch
            """
        )
        assert rules_hit(violations) == set()
        assert violations[0].suppressed

    def test_marker_inside_string_is_not_a_suppression(self):
        violations = lint(
            '''
            def run():
                note = "# repro-lint: disable=R8 -- not a comment"
                print(note)
            '''
        )
        assert rules_hit(violations) == {"R8"}

    def test_comma_separated_rule_list(self):
        violations = lint(
            """
            import time

            def run():
                print(time.time())  # repro-lint: disable=R1,R8 -- fixture covers both
            """
        )
        assert rules_hit(violations) == set()
        assert {v.rule for v in violations} == {"R1", "R8"}
        assert all(v.suppressed for v in violations)


# --------------------------------------------------------------------- #
# Framework: parse errors, registry, config, JSON                       #
# --------------------------------------------------------------------- #


class TestFramework:
    def test_syntax_error_yields_parse_violation(self):
        violations = lint_source("def broken(:\n    pass\n")
        (violation,) = violations
        assert violation.rule == PARSE_RULE
        assert "syntax error" in violation.message

    def test_catalogue_has_the_eight_rules(self):
        rules = registered_rules()
        assert list(rules) == sorted(rules)
        assert set(rules) >= {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"}
        for cls in rules.values():
            assert cls.title
            assert cls.rationale

    def test_register_rejects_invalid_id(self):
        class Bad(LintRule):
            rule_id = "r9"
            title = "lowercase id"

        with pytest.raises(ValueError, match="invalid rule id"):
            register_rule(Bad)

    def test_register_rejects_reserved_id(self):
        class Bad(LintRule):
            rule_id = SUPPRESSION_RULE
            title = "reserved"

        with pytest.raises(ValueError, match="reserved"):
            register_rule(Bad)

    def test_register_rejects_duplicate_id(self):
        class Bad(LintRule):
            rule_id = "R1"
            title = "imposter"

        with pytest.raises(ValueError, match="duplicate"):
            register_rule(Bad)

    def test_register_requires_title(self):
        class Bad(LintRule):
            rule_id = "R99"
            title = ""

        with pytest.raises(ValueError, match="title"):
            register_rule(Bad)

    def test_select_restricts_rules(self):
        source = textwrap.dedent(
            """
            import time

            def run():
                print(time.time())
            """
        )
        config = LintConfig(select=frozenset({"R8"}))
        violations = lint_source(source, config=config)
        assert rules_hit(violations) == {"R8"}

    def test_config_from_ini_and_exemption(self, tmp_path):
        ini = tmp_path / "repro-lint.ini"
        ini.write_text(
            textwrap.dedent(
                """
                [repro-lint]
                exclude = generated/*.py

                [repro-lint.exempt]
                R1 = src/repro/observability/progress.py
                """
            ),
            encoding="utf-8",
        )
        config = LintConfig.from_ini(ini)
        assert config.select is None
        assert config.is_excluded("generated/out.py")
        # Suffix-tolerant: absolute invocation paths still match the glob.
        assert config.is_exempt("R1", "src/repro/observability/progress.py")
        assert config.is_exempt("R1", "/abs/repo/src/repro/observability/progress.py")
        assert not config.is_exempt("R1", "src/repro/simulation/engine.py")
        assert not config.is_exempt("R8", "src/repro/observability/progress.py")

    def test_discover_finds_repo_config(self):
        config = LintConfig.discover(REPO_ROOT / "src" / "repro")
        assert "R1" in config.exempt

    def test_lint_paths_walks_sorted_and_counts(self, tmp_path):
        (tmp_path / "b.py").write_text("print('x')\n", encoding="utf-8")
        (tmp_path / "a.py").write_text("VALUE = 1\n", encoding="utf-8")
        files = list(iter_python_files([tmp_path]))
        assert files == sorted(files)
        violations, checked = lint_paths([tmp_path])
        assert checked == 2
        assert rules_hit(violations) == {"R8"}

    def test_report_json_schema(self):
        violations = [
            Violation(rule="R8", path="a.py", line=1, col=0, message="print"),
            Violation(
                rule="R1",
                path="a.py",
                line=2,
                col=0,
                message="clock",
                suppressed=True,
                reason="store policy",
            ),
        ]
        report = report_json(violations, files_checked=3)
        assert report["version"] == 1
        assert report["files_checked"] == 3
        assert report["unsuppressed"] == 1
        assert report["suppressed"] == 1
        assert report["counts"] == {"R8": 1}
        entries = report["violations"]
        assert len(entries) == 2
        assert set(entries[0]) == {
            "rule",
            "path",
            "line",
            "col",
            "message",
            "suppressed",
            "reason",
        }
        json.dumps(report)  # must be serialisable as-is

    def test_violation_format_mentions_location_and_reason(self):
        violation = Violation(
            rule="R3", path="x.py", line=7, col=4, message="set order"
        )
        assert violation.format() == "x.py:7:4: R3 set order"
        suppressed = Violation(
            rule="R3",
            path="x.py",
            line=7,
            col=4,
            message="set order",
            suppressed=True,
            reason="why",
        )
        assert "(suppressed: why)" in suppressed.format()


# --------------------------------------------------------------------- #
# Meta-test: the shipped tree is lint-clean                              #
# --------------------------------------------------------------------- #


class TestTreeIsClean:
    def test_src_repro_has_no_unsuppressed_violations(self):
        config = LintConfig.discover(REPO_ROOT / "src" / "repro")
        violations, checked = lint_paths([REPO_ROOT / "src" / "repro"], config)
        assert checked > 50
        unsuppressed = [v for v in violations if not v.suppressed]
        assert unsuppressed == [], "\n".join(v.format() for v in unsuppressed)

    def test_every_suppression_carries_a_reason(self):
        config = LintConfig.discover(REPO_ROOT / "src" / "repro")
        violations, _ = lint_paths([REPO_ROOT / "src" / "repro"], config)
        for violation in violations:
            if violation.suppressed:
                assert violation.reason.strip(), violation.format()


# --------------------------------------------------------------------- #
# CLI: the CI gate, demonstrated end to end                              #
# --------------------------------------------------------------------- #


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(CLI), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=120,
    )


class TestCli:
    def test_seeded_violation_fails_the_gate(self, tmp_path):
        bad = tmp_path / "seeded.py"
        bad.write_text(
            "import time\n\ndef seed():\n    return time.time()\n",
            encoding="utf-8",
        )
        proc = run_cli(str(bad))
        assert proc.returncode == 1
        assert "R1" in proc.stdout

    def test_clean_file_passes(self, tmp_path):
        good = tmp_path / "clean.py"
        good.write_text("VALUE = 1\n", encoding="utf-8")
        proc = run_cli(str(good))
        assert proc.returncode == 0

    def test_json_output_is_parseable(self, tmp_path):
        bad = tmp_path / "seeded.py"
        bad.write_text("print('hello')\n", encoding="utf-8")
        proc = run_cli("--json", str(bad))
        assert proc.returncode == 1
        report = json.loads(proc.stdout)
        assert report["version"] == 1
        assert report["counts"] == {"R8": 1}

    def test_missing_path_is_usage_error(self, tmp_path):
        proc = run_cli(str(tmp_path / "nope.py"))
        assert proc.returncode == 2

    def test_list_rules_prints_catalogue(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("R1", "R3", "R8"):
            assert f"{rule_id}:" in proc.stdout

    def test_full_tree_gate_passes(self):
        proc = run_cli("src/repro")
        assert proc.returncode == 0, proc.stdout + proc.stderr
