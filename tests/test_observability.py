"""The observability layer: trace neutrality, progress completeness, tooling.

The telemetry contract has two hard halves, both pinned here:

* **Trace neutrality** — attaching a recorder must not move a single random
  draw or schedule decision.  Traced runs are asserted *bit-identical* to the
  untraced golden snapshots of ``test_regression_singlehop.py`` on the
  single-hop engines, and to fresh untraced runs on the sparse multi-hop and
  pipelined-truncation paths (where quiet-expiry and truncation events fire).
* **Progress completeness** — with a sink active, :func:`run_sweep` emits
  exactly one event per work unit (cache hit or computed; serial or in the
  process pool) and the instrumented sweep's results equal the plain sweep's.

Plus the supporting machinery: JSONL round-trips (including non-finite
floats), monitor aggregation across back-to-back sweeps, runner stage spans,
and the positional phase diff that ``tools/trace_report.py`` renders.
"""

from __future__ import annotations

import io

import pytest

from test_regression_singlehop import ADVERSARIES, GOLDEN

from repro.core.broadcast import EpsilonBroadcast, MultiHopBroadcast
from repro.experiments import ExperimentSettings
from repro.experiments.cache import TrialCache
from repro.experiments.runner import (
    TrialSpec,
    progress_scope,
    run_sweep,
    span_scope,
    timed_span,
)
from repro.observability import (
    CliProgressRenderer,
    NullRecorder,
    ProgressEvent,
    ProgressMonitor,
    TraceCollector,
    TraceEvent,
    diff_phase_events,
    diff_traces,
    read_jsonl,
    round_rows,
    span_events,
    summarise_trace,
    write_jsonl,
)
from repro.simulation import SimulationConfig, TopologySpec

# --------------------------------------------------------------------------- #
# Trace neutrality: recording must not move a single draw                     #
# --------------------------------------------------------------------------- #

# A cross-section of the single-hop golden grid: every adversary, both
# engines, without duplicating the full 16-cell regression matrix.
NEUTRALITY_CELLS = [
    ("none", "fast", 3),
    ("none", "slot", 11),
    ("blocker", "fast", 11),
    ("blocker", "slot", 3),
    ("random", "fast", 3),
    ("random", "slot", 11),
    ("splitter", "fast", 3),
    ("splitter", "slot", 11),
]

# The E11 sub-threshold profile of test_pipelined_truncation.py: fragments
# into Alice-less components, so quiet-rule expiries AND cap-aware truncation
# both fire — the multi-hop-only emission sites are all on this path.
SPARSE_MULTIHOP = dict(n=96, seed=11, radius=0.09)


def traced_snapshot(adversary_name, engine, seed):
    recorder = TraceCollector()
    protocol = EpsilonBroadcast(
        SimulationConfig(n=40, seed=seed),
        adversary=ADVERSARIES[adversary_name](),
        engine=engine,
        recorder=recorder,
    )
    outcome = protocol.run()
    snapshot = protocol.network.cost_snapshot()
    snapshot["informed"] = outcome.delivery.informed
    snapshot["slots"] = outcome.delivery.slots_elapsed
    return snapshot, recorder


def multihop_snapshot(recorder=None, *, sparse, pipeline=True):
    spec = TopologySpec.gilbert(radius=SPARSE_MULTIHOP["radius"], sparse=sparse)
    config = SimulationConfig(
        n=SPARSE_MULTIHOP["n"], seed=SPARSE_MULTIHOP["seed"], topology=spec
    )
    kwargs = {"recorder": recorder} if recorder is not None else {}
    protocol = MultiHopBroadcast(config, engine="fast", pipeline=pipeline, **kwargs)
    outcome = protocol.run()
    snapshot = protocol.network.cost_snapshot()
    snapshot["informed"] = outcome.delivery.informed
    snapshot["slots"] = outcome.delivery.slots_elapsed
    snapshot["rounds"] = outcome.delivery.rounds_executed
    snapshot["terminated_uninformed"] = outcome.delivery.terminated_uninformed
    snapshot["capped"] = outcome.terminated_by_cap
    return snapshot


class TestTraceNeutrality:
    @pytest.mark.parametrize("adversary_name,engine,seed", NEUTRALITY_CELLS)
    def test_traced_single_hop_matches_untraced_golden(self, adversary_name, engine, seed):
        """A recording run must reproduce the *pre-telemetry* golden numbers
        bit for bit — the strongest form of "recording reads, never writes"."""

        snapshot, recorder = traced_snapshot(adversary_name, engine, seed)
        assert snapshot == GOLDEN[(adversary_name, engine, seed)]
        # And the trace is substantive, not vacuously empty.
        kinds = {event.kind for event in recorder.events}
        assert {"run-start", "phase", "engine", "run-end"} <= kinds

    @pytest.mark.parametrize("adversary_name,engine,seed", [("blocker", "fast", 3)])
    def test_null_recorder_matches_untraced_golden(self, adversary_name, engine, seed):
        """An explicitly passed NullRecorder is the untraced path."""

        protocol = EpsilonBroadcast(
            SimulationConfig(n=40, seed=seed),
            adversary=ADVERSARIES[adversary_name](),
            engine=engine,
            recorder=NullRecorder(),
        )
        outcome = protocol.run()
        snapshot = protocol.network.cost_snapshot()
        snapshot["informed"] = outcome.delivery.informed
        snapshot["slots"] = outcome.delivery.slots_elapsed
        assert snapshot == GOLDEN[(adversary_name, engine, seed)]

    @pytest.mark.parametrize("sparse", [True, False])
    def test_traced_sparse_multihop_is_bit_identical(self, sparse):
        """Sub-threshold multi-hop: quiet expiries and truncation fire, and
        their emission must not perturb the run on either engine path."""

        untraced = multihop_snapshot(sparse=sparse)
        recorder = TraceCollector()
        traced = multihop_snapshot(recorder, sparse=sparse)
        assert traced == untraced
        kinds = {event.kind for event in recorder.events}
        assert "quiet-expire" in kinds
        assert "truncate" in kinds
        path = "multihop-sparse" if sparse else "multihop-dense"
        assert {e.data["path"] for e in recorder.of_kind("engine")} == {path}

    def test_traced_sequential_schedule_is_bit_identical(self):
        """The pipelined-truncation regression profile, sequential variant."""

        untraced = multihop_snapshot(sparse=True, pipeline=False)
        traced = multihop_snapshot(TraceCollector(), sparse=True, pipeline=False)
        assert traced == untraced

    def test_trace_records_the_truncation_decision(self):
        recorder = TraceCollector()
        snapshot = multihop_snapshot(recorder, sparse=True)
        truncated = sum(
            int(e.data["count"]) for e in recorder.of_kind("truncate")
        ) + sum(int(e.data["count"]) for e in recorder.of_kind("quiet-expire"))
        # Every stalled retirement the run reports is visible in the trace.
        assert truncated >= snapshot["terminated_uninformed"] - snapshot["informed"]
        (run_end,) = recorder.of_kind("run-end")
        assert run_end.data["informed"] == snapshot["informed"]
        assert run_end.data["slots_elapsed"] == snapshot["slots"]
        assert run_end.data["terminated_by_cap"] is False


# --------------------------------------------------------------------------- #
# Progress completeness: one event per work unit                              #
# --------------------------------------------------------------------------- #


def _probe_trial(seed, scale=1.0):
    """Top-level so the process pool can import it by reference."""

    return {"seed": seed, "value": seed * scale}


def _specs():
    return [
        TrialSpec.point(_probe_trial, "probe", width, scale=float(width))
        for width in (1, 2, 3)
    ]


class TestProgressCompleteness:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_one_event_per_work_unit(self, jobs):
        settings = ExperimentSettings(n=8, trials=4, seed=2012, jobs=jobs, cache_dir="")
        plain = run_sweep(_specs(), settings)
        events = []
        with progress_scope(events.append):
            instrumented = run_sweep(_specs(), settings)
        assert instrumented == plain  # observation changes nothing
        total = len(_specs()) * settings.trials
        assert len(events) == total
        assert [e.completed for e in events] == list(range(1, total + 1))
        assert all(e.total == total for e in events)
        assert all(not e.cache_hit for e in events)  # cache off: all computed
        assert all(e.elapsed >= 0.0 for e in events)
        # Every (labels, trial) unit reported exactly once.
        units = {(e.labels, e.trial_index) for e in events}
        assert len(units) == total

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_cache_hits_are_reported_as_events(self, tmp_path, jobs):
        settings = ExperimentSettings(n=8, trials=3, seed=2012, jobs=jobs, cache_dir="")
        cache = TrialCache(str(tmp_path / "store"))
        total = len(_specs()) * settings.trials

        cold_events, warm_events = [], []
        with progress_scope(cold_events.append):
            cold = run_sweep(_specs(), settings, cache=cache)
        with progress_scope(warm_events.append):
            warm = run_sweep(_specs(), settings, cache=cache)

        assert warm == cold
        assert len(cold_events) == len(warm_events) == total
        assert all(not e.cache_hit for e in cold_events)
        assert all(e.cache_hit for e in warm_events)

    def test_progress_keyword_and_scope_both_receive_events(self):
        settings = ExperimentSettings(n=8, trials=2, seed=2012, jobs=1, cache_dir="")
        scoped, direct = [], []
        with progress_scope(scoped.append):
            run_sweep(_specs(), settings, progress=direct.append)
        assert scoped == direct
        assert len(direct) == len(_specs()) * settings.trials


# --------------------------------------------------------------------------- #
# Monitor aggregation and CLI rendering                                       #
# --------------------------------------------------------------------------- #


def _event(completed, total, *, cache_hit=False, elapsed=0.0):
    return ProgressEvent(
        labels=("x",),
        trial_index=0,
        cache_hit=cache_hit,
        completed=completed,
        total=total,
        elapsed=elapsed,
    )


class TestProgressMonitor:
    def test_single_sweep_aggregates(self):
        monitor = ProgressMonitor()
        monitor.observe(_event(1, 4, elapsed=1.0))
        monitor.observe(_event(2, 4, cache_hit=True, elapsed=2.0))
        assert monitor.completed == 2
        assert monitor.total == 4
        assert monitor.remaining == 2
        assert monitor.cache_hits == 1 and monitor.executed == 1
        assert monitor.cache_hit_rate == pytest.approx(0.5)
        assert monitor.throughput == pytest.approx(1.0)  # 2 units / 2s
        assert monitor.eta_seconds == pytest.approx(2.0)
        assert "2/4 units" in monitor.status_line()

    def test_back_to_back_sweeps_accumulate(self):
        """An experiment is several nested run_sweep calls: the counter
        restarting must bank totals and wall-clock, not reset them."""

        monitor = ProgressMonitor()
        for completed in (1, 2):
            monitor.observe(_event(completed, 2, elapsed=float(completed)))
        for completed in (1, 2, 3):
            monitor.observe(_event(completed, 3, elapsed=float(completed)))
        assert monitor.total == 5
        assert monitor.completed == 5
        assert monitor.remaining == 0
        assert monitor.elapsed == pytest.approx(5.0)  # 2s banked + 3s current

    def test_fresh_monitor_has_safe_defaults(self):
        monitor = ProgressMonitor()
        assert monitor.throughput == 0.0
        assert monitor.eta_seconds is None
        assert monitor.cache_hit_rate == 0.0


class TestCliProgressRenderer:
    def test_renders_to_stream_and_seals_on_finish(self):
        stream = io.StringIO()
        renderer = CliProgressRenderer(label="E99", stream=stream, min_interval=0.0)
        for completed in (1, 2):
            renderer(_event(completed, 2, elapsed=float(completed)))
        renderer.finish()
        output = stream.getvalue()
        assert "E99:" in output
        assert "2/2 units" in output
        assert output.endswith("\n")

    def test_silent_when_it_saw_nothing(self):
        stream = io.StringIO()
        CliProgressRenderer(stream=stream).finish()
        assert stream.getvalue() == ""

    def test_as_run_sweep_sink(self):
        stream = io.StringIO()
        renderer = CliProgressRenderer(label="probe", stream=stream, min_interval=0.0)
        settings = ExperimentSettings(n=8, trials=2, seed=2012, jobs=1, cache_dir="")
        with progress_scope(renderer):
            run_sweep(_specs(), settings)
        renderer.finish()
        assert renderer.monitor.completed == len(_specs()) * settings.trials
        assert "probe:" in stream.getvalue()


# --------------------------------------------------------------------------- #
# Runner stage spans                                                          #
# --------------------------------------------------------------------------- #


class TestTimedSpans:
    def test_sweep_stages_are_attributed(self):
        settings = ExperimentSettings(n=8, trials=2, seed=2012, jobs=1, cache_dir="")
        with span_scope() as spans:
            run_sweep(_specs(), settings)
        assert [span.name for span in spans] == ["schedule", "fan-out", "reassemble"]
        assert all(span.seconds >= 0.0 for span in spans)

    def test_no_scope_means_no_measurement(self):
        # Permanently-wrapped code must be free when unobserved; the span
        # list only fills inside a scope.
        with timed_span("orphan"):
            pass
        with span_scope() as spans:
            with timed_span("seen"):
                pass
        assert [span.name for span in spans] == ["seen"]

    def test_spans_convert_to_trace_events(self):
        with span_scope() as spans:
            with timed_span("stage-a"):
                pass
        events = span_events(spans)
        assert [e.phase for e in events] == ["stage-a"]
        assert events[0].kind == "span"
        assert events[0].data["seconds"] >= 0.0


# --------------------------------------------------------------------------- #
# JSONL round-trip and the trace reports                                      #
# --------------------------------------------------------------------------- #


class TestJsonlRoundTrip:
    def test_round_trip_preserves_events(self, tmp_path):
        recorder = TraceCollector()
        multihop_snapshot(recorder, sparse=True)
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(recorder.events, str(path))
        assert count == len(recorder.events)
        assert read_jsonl(str(path)) == list(recorder.events)

    def test_non_finite_floats_survive(self, tmp_path):
        events = [
            TraceEvent(
                kind="phase",
                round_index=0,
                phase="request",
                data={"budget": float("inf"), "slack": float("-inf"), "rho": float("nan")},
            )
        ]
        path = tmp_path / "weird.jsonl"
        write_jsonl(events, str(path))
        (back,) = read_jsonl(str(path))
        assert back.data["budget"] == float("inf")
        assert back.data["slack"] == float("-inf")
        assert back.data["rho"] != back.data["rho"]  # NaN round-trips as NaN


class TestTraceReports:
    def test_summary_covers_rounds_and_header(self):
        recorder = TraceCollector()
        multihop_snapshot(recorder, sparse=True)
        text = summarise_trace(recorder.events)
        assert "run-start:" in text and "run-end:" in text
        assert "totals:" in text
        rounds = round_rows(recorder.events)
        assert rounds, "a full run must aggregate into at least one round"
        assert sum(int(row["slots"]) for row in rounds) > 0

    def test_identical_runs_diff_clean(self):
        a, b = TraceCollector(), TraceCollector()
        multihop_snapshot(a, sparse=True)
        multihop_snapshot(b, sparse=True)
        assert diff_phase_events(a.events, b.events) == []
        assert "traces agree" in diff_traces(a.events, b.events)

    def test_pipeline_toggle_shows_schedule_divergence(self):
        """The headline diff use case: pipelined vs sequential schedules of
        the same seed diverge, and the diff names where."""

        pipelined, sequential = TraceCollector(), TraceCollector()
        multihop_snapshot(pipelined, sparse=True, pipeline=True)
        multihop_snapshot(sequential, sparse=True, pipeline=False)
        divergences = diff_phase_events(pipelined.events, sequential.events)
        assert divergences, "pipelining must reshape the schedule at this profile"
        text = diff_traces(pipelined.events, sequential.events)
        assert "first divergence" in text
        assert any(d.field == "<schedule>" for d in divergences)

    def test_payload_divergence_is_field_precise(self):
        base = TraceEvent(
            kind="phase", round_index=2, phase="inform", data={"num_slots": 8, "frontier": 3}
        )
        changed = TraceEvent(
            kind="phase", round_index=2, phase="inform", data={"num_slots": 8, "frontier": 5}
        )
        (divergence,) = diff_phase_events([base], [changed])
        assert divergence.field == "frontier"
        assert (divergence.left, divergence.right) == (3, 5)
