"""Property tests for spatial topology generation.

Checks the structural invariants the engines rely on (determinism under the
run's seed, adjacency symmetry, no self-loops) and the two statistical
regimes the experiments exploit: the Gilbert connectivity threshold
``r_c = sqrt(ln n / (π n))`` and the heavy degree tail of the scale-free
variant.  All trials are seeded, so every assertion is deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation import (
    ALICE_ID,
    GilbertGraph,
    Network,
    RandomSource,
    ScaleFreeGilbert,
    SimulationConfig,
    SingleHop,
    TopologySpec,
    build_topology,
    gilbert_connectivity_radius,
)
from repro.simulation.errors import ConfigurationError


def make_gilbert(n=64, radius=0.3, seed=0):
    return build_topology(TopologySpec.gilbert(radius=radius), n, RandomSource(seed))


def make_scale_free(n=64, alpha=2.0, seed=0):
    return build_topology(TopologySpec.scale_free(alpha=alpha), n, RandomSource(seed))


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            TopologySpec(kind="torus")

    @pytest.mark.parametrize("kwargs", [
        {"kind": "gilbert", "radius": 0.0},
        {"kind": "gilbert", "radius": -1.0},
        {"kind": "scale_free", "alpha": 0.0},
        {"kind": "scale_free", "min_radius": -0.5},
        {"kind": "gilbert", "alice_placement": "corner"},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TopologySpec(**kwargs)

    def test_config_rejects_non_spec_topology(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(n=16, topology="gilbert")


class TestSeedDeterminism:
    @pytest.mark.parametrize("maker", [make_gilbert, make_scale_free])
    def test_same_seed_same_graph(self, maker):
        a, b = maker(seed=42), maker(seed=42)
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.adjacency, b.adjacency)

    @pytest.mark.parametrize("maker", [make_gilbert, make_scale_free])
    def test_different_seed_different_graph(self, maker):
        a, b = maker(seed=1), maker(seed=2)
        assert not np.array_equal(a.positions, b.positions)

    def test_network_realises_spec_deterministically(self):
        config = SimulationConfig(n=48, seed=7, topology=TopologySpec.gilbert(radius=0.25))
        net_a, net_b = Network(config), Network(config)
        assert np.array_equal(net_a.topology.adjacency, net_b.topology.adjacency)

    def test_topology_build_does_not_perturb_engine_streams(self):
        plain = Network(SimulationConfig(n=32, seed=5))
        spatial = Network(SimulationConfig(n=32, seed=5, topology=TopologySpec.gilbert(radius=0.3)))
        draws_plain = plain.random_source.stream("engine:alice").random(8)
        draws_spatial = spatial.random_source.stream("engine:alice").random(8)
        assert np.array_equal(draws_plain, draws_spatial)


class TestAdjacencyInvariants:
    @pytest.mark.parametrize("maker", [make_gilbert, make_scale_free])
    def test_symmetric_no_self_loops(self, maker):
        topo = maker(seed=3)
        adjacency = topo.adjacency
        assert np.array_equal(adjacency, adjacency.T)
        assert not adjacency.diagonal().any()

    def test_can_hear_matches_adjacency_and_is_symmetric(self, ):
        topo = make_gilbert(n=32, seed=9)
        devices = [ALICE_ID] + list(range(32))
        for u in devices[:8]:
            for v in devices[:8]:
                assert topo.can_hear(u, v) == topo.can_hear(v, u)
                if u == v:
                    assert not topo.can_hear(u, v)

    def test_byzantine_senders_audible_everywhere(self):
        topo = make_gilbert(n=16, radius=0.01, seed=0)
        assert topo.can_hear(0, -2)
        assert topo.can_hear(ALICE_ID, -5)
        # reach_matrix must agree with can_hear on synthetic sender ids:
        # an all-True column even on a radius so small no real edge exists.
        matrix = topo.reach_matrix([ALICE_ID, 0, 1], [-2, 0])
        assert matrix[:, 0].all()
        assert not matrix[1, 1]  # self-pair stays False for real senders
        assert np.array_equal(
            topo.reach_matrix_f32([ALICE_ID, 0, 1], [-2, 0]),
            matrix.astype(np.float32),
        )

    def test_reach_matrix_agrees_with_can_hear(self):
        topo = make_gilbert(n=24, seed=11)
        listeners = [ALICE_ID, 0, 5, 7]
        senders = [3, 5, ALICE_ID]
        matrix = topo.reach_matrix(listeners, senders)
        for i, u in enumerate(listeners):
            for j, v in enumerate(senders):
                assert matrix[i, j] == topo.can_hear(u, v)

    def test_edges_match_radius_geometry(self):
        topo = make_gilbert(n=40, radius=0.2, seed=13)
        positions = topo.positions
        adjacency = topo.adjacency
        deltas = positions[:, None, :] - positions[None, :, :]
        distances = np.sqrt((deltas ** 2).sum(axis=-1))
        expected = distances <= 0.2
        np.fill_diagonal(expected, False)
        assert np.array_equal(adjacency, expected)

    def test_single_hop_hears_everyone(self):
        topo = SingleHop(8)
        assert topo.is_single_hop
        assert topo.neighbors(0) == frozenset(range(1, 8)) | {ALICE_ID}
        assert topo.neighbors(ALICE_ID) == frozenset(range(8))
        assert topo.largest_component_fraction() == 1.0


class TestConnectivityThreshold:
    """Empirical connectivity agrees with the Gilbert threshold regime."""

    N = 400

    def _fractions(self, multiplier, seeds=range(5)):
        r = multiplier * gilbert_connectivity_radius(self.N)
        return [
            build_topology(
                TopologySpec.gilbert(radius=r), self.N, RandomSource(1000 + s)
            ).largest_component_fraction()
            for s in seeds
        ]

    def test_subcritical_radius_fragments(self):
        fractions = self._fractions(0.4)
        assert max(fractions) < 0.5

    def test_supercritical_radius_connects(self):
        fractions = self._fractions(2.0)
        assert min(fractions) > 0.95

    def test_fraction_increases_across_threshold(self):
        below = np.mean(self._fractions(0.6))
        above = np.mean(self._fractions(1.5))
        assert above > below + 0.3

    def test_reachable_from_alice_subset_of_component(self):
        topo = make_gilbert(n=100, radius=0.12, seed=4)
        reachable = topo.reachable_from_alice()
        assert reachable  # Alice at the centre of a near-critical graph
        components = topo.connected_components()
        # Every node reachable from Alice lies in a single node-component
        # (Alice's edges can merge node-components, so take the union of the
        # components her neighbours touch).
        neighbor_components = [c for c in components if c & topo.node_neighbors(ALICE_ID)]
        union = frozenset().union(*neighbor_components) if neighbor_components else frozenset()
        assert reachable == union


class TestScaleFreeDegreeTail:
    def test_degree_tail_heavier_than_gilbert(self):
        n = 300
        sf = build_topology(TopologySpec.scale_free(alpha=1.5), n, RandomSource(21))
        degrees = sf.degrees()
        median = np.median(degrees)
        # Hubs: some node's degree dwarfs the median; a homogeneous Gilbert
        # graph (Poisson degrees) never shows this spread.
        assert degrees.max() >= 6 * max(median, 1.0)
        gilbert = build_topology(
            TopologySpec.gilbert(radius=2.0 * gilbert_connectivity_radius(n)),
            n,
            RandomSource(21),
        )
        g_degrees = gilbert.degrees()
        g_ratio = g_degrees.max() / max(np.median(g_degrees), 1.0)
        sf_ratio = degrees.max() / max(median, 1.0)
        assert sf_ratio > 2.0 * g_ratio

    def test_radii_are_pareto_bounded_below(self):
        sf = make_scale_free(n=128, alpha=2.5, seed=8)
        assert isinstance(sf, ScaleFreeGilbert)
        assert (sf.radii >= sf.min_radius - 1e-12).all()
        assert (sf.radii <= np.sqrt(2.0) + 1e-12).all()


class TestSpatialQueries:
    def test_nodes_in_disk_matches_geometry(self):
        topo = make_gilbert(n=60, seed=17)
        center, radius = (0.5, 0.5), 0.3
        inside = topo.nodes_in_disk(center, radius)
        assert ALICE_ID in inside  # Alice sits at the centre by default
        positions = topo.positions
        for node in range(60):
            d2 = (positions[node, 0] - 0.5) ** 2 + (positions[node, 1] - 0.5) ** 2
            assert (node in inside) == (d2 <= radius ** 2)

    def test_single_hop_disk_is_everyone(self):
        topo = SingleHop(10)
        assert topo.nodes_in_disk((0.0, 0.0), 0.01) == frozenset(range(10)) | {ALICE_ID}

    def test_gilbert_default_radius_is_supercritical(self):
        topo = build_topology(TopologySpec.gilbert(), 200, RandomSource(2))
        assert isinstance(topo, GilbertGraph)
        assert topo.radius == pytest.approx(2.0 * gilbert_connectivity_radius(200))
