"""Integration tests: full ε-Broadcast executions under various adversaries."""

from __future__ import annotations

import pytest

from repro import EpsilonBroadcast, SimulationConfig, run_broadcast
from repro.adversary import (
    ContinuousJammer,
    NullAdversary,
    NUniformSplitAdversary,
    PhaseBlockingAdversary,
    RequestSpoofingAdversary,
)
from repro.core import ProtocolParameters
from repro.simulation import PhaseKind


class TestNoAdversaryRuns:
    def test_everyone_informed_and_terminated(self):
        outcome = run_broadcast(n=128, seed=3, adversary="none")
        assert outcome.delivery_fraction == 1.0
        assert outcome.delivery.all_terminated
        assert outcome.delivery.alice_terminated
        assert not outcome.terminated_by_cap

    def test_costs_are_modest_without_jamming(self):
        outcome = run_broadcast(n=128, seed=3, adversary="none")
        # Lemma 9: polylog costs; at this scale that means a few units per
        # node and a few thousand for Alice (she runs until her termination
        # round regardless).
        assert outcome.mean_node_cost < 50
        assert outcome.alice_cost < 5000
        assert outcome.adversary_spend == 0

    def test_unjammed_latency_far_below_jammed_latency(self):
        clean = run_broadcast(n=128, seed=3, adversary="none")
        jammed = run_broadcast(n=128, seed=3, adversary=ContinuousJammer())
        # Without jamming the run ends at the fixed warm-up round; under a
        # full-budget jammer it stretches to Θ(n^{1+1/k}) slots.
        assert clean.slots_elapsed * 4 < jammed.slots_elapsed
        assert jammed.slots_elapsed < 100 * clean.config.latency_bound

    def test_slot_engine_matches_semantics(self):
        outcome = run_broadcast(n=48, seed=3, adversary="none", engine="slot")
        assert outcome.delivery_fraction == 1.0
        assert outcome.delivery.alice_terminated

    def test_event_log_attached_and_consistent(self):
        outcome = run_broadcast(n=64, seed=4, adversary="none")
        assert outcome.events is not None
        assert outcome.events.total_slots() == outcome.slots_elapsed
        names = {p.phase_name for p in outcome.events.phases}
        assert {"inform", "propagation:1", "request"} <= names


class TestBlockedRuns:
    def test_blocking_delays_but_does_not_defeat_delivery(self):
        clean = run_broadcast(n=128, seed=5, adversary="none")
        blocked = run_broadcast(
            n=128,
            seed=5,
            adversary=PhaseBlockingAdversary(max_total_spend=20_000),
        )
        assert blocked.delivery_fraction == 1.0
        assert blocked.slots_elapsed > clean.slots_elapsed
        assert blocked.adversary_spend > 0

    def test_more_jamming_costs_carol_more_than_nodes(self):
        outcome = run_broadcast(
            n=256,
            seed=6,
            adversary=PhaseBlockingAdversary(max_total_spend=40_000),
        )
        assert outcome.adversary_spend > outcome.mean_node_cost
        assert outcome.adversary_spend > outcome.alice_cost

    def test_full_budget_jammer_cannot_prevent_delivery(self):
        outcome = run_broadcast(n=128, seed=7, adversary=ContinuousJammer())
        assert outcome.delivery_fraction >= 1.0 - outcome.config.epsilon
        assert not outcome.terminated_by_cap

    def test_node_costs_grow_with_adversary_spend(self):
        costs = []
        for cap in (2_000, 60_000):
            outcome = run_broadcast(
                n=256, seed=8, adversary=PhaseBlockingAdversary(max_total_spend=cap)
            )
            costs.append(outcome.mean_node_cost)
        assert costs[1] > costs[0]

    def test_sublinear_response_to_spend(self):
        small = run_broadcast(n=256, seed=9, adversary=PhaseBlockingAdversary(max_total_spend=8_000))
        large = run_broadcast(n=256, seed=9, adversary=PhaseBlockingAdversary(max_total_spend=64_000))
        spend_ratio = large.adversary_spend / small.adversary_spend
        cost_ratio = large.mean_node_cost / small.mean_node_cost
        # Theorem 1: node cost grows like T^(1/3), so an 8x spend increase
        # should much less than 8x the node cost (allowing generous slack for
        # finite-n constants).
        assert spend_ratio > 4
        assert cost_ratio < spend_ratio * 0.75


class TestSplitAttacks:
    def test_split_leaves_target_uninformed_but_costs_full_budget(self):
        n = 256
        target = 20
        outcome = run_broadcast(
            n=n, seed=10, adversary=NUniformSplitAdversary(target_uninformed=target)
        )
        assert outcome.delivery.terminated_uninformed == target
        assert outcome.delivery.informed == n - target
        # The stranding attack consumes essentially the whole aggregate budget.
        assert outcome.adversary_spend > 0.8 * outcome.config.adversary_total_budget

    def test_quorum_survives_split(self):
        n = 256
        outcome = run_broadcast(
            n=n, seed=11, adversary=NUniformSplitAdversary(target_uninformed=n // 10)
        )
        assert outcome.delivery.informed > n // 2


class TestSpoofingAttacks:
    def test_spoofer_delays_alice_but_not_delivery(self):
        clean = run_broadcast(n=128, seed=12, adversary="none")
        spoofed = run_broadcast(
            n=128, seed=12, adversary=RequestSpoofingAdversary(max_total_spend=30_000)
        )
        assert spoofed.delivery_fraction == 1.0
        assert spoofed.extra["alice_terminated_round"] >= clean.extra["alice_terminated_round"]
        assert spoofed.alice_cost >= clean.alice_cost

    def test_spoofer_cannot_cause_premature_termination(self):
        outcome = run_broadcast(
            n=128, seed=13, adversary=RequestSpoofingAdversary(max_total_spend=30_000)
        )
        # Silence cannot be forged, so spoofing never strands anyone.
        assert outcome.delivery.terminated_uninformed == 0


class TestOrchestratorConfiguration:
    def test_mismatched_k_rejected(self):
        config = SimulationConfig(n=64, k=2)
        with pytest.raises(Exception):
            EpsilonBroadcast(config, params=ProtocolParameters(k=3))

    def test_unknown_engine_rejected(self):
        config = SimulationConfig(n=64)
        with pytest.raises(Exception):
            EpsilonBroadcast(config, engine="warp-drive")

    def test_round_cap_forces_termination(self):
        config = SimulationConfig(n=64, seed=2)
        protocol = EpsilonBroadcast(
            config,
            adversary=NullAdversary(),
            params=ProtocolParameters(k=2, max_round=3, min_termination_round=10),
        )
        outcome = protocol.run()
        assert outcome.terminated_by_cap
        assert outcome.delivery.all_terminated

    def test_budget_overruns_reported_for_correct_devices(self):
        # Correct devices use RECORD ledgers: they may exceed their nominal
        # budgets at simulation scale, and the network reports it rather than
        # halting the run.
        config = SimulationConfig(n=64, seed=2, budget_constant=1.0)
        protocol = EpsilonBroadcast(config, adversary=ContinuousJammer())
        protocol.run()
        assert isinstance(protocol.network.budget_overruns(), dict)

    def test_phase_records_track_adversary_spend(self):
        adversary = PhaseBlockingAdversary(max_total_spend=10_000)
        outcome = run_broadcast(n=128, seed=14, adversary=adversary)
        spent_in_log = sum(p.adversary_spend for p in outcome.events.phases)
        assert spent_in_log == pytest.approx(outcome.adversary_spend)
        inform_records = [p for p in outcome.events.phases if p.phase_name == "inform"]
        assert any(p.jammed_slots > 0 for p in inform_records)
        request_records = [p for p in outcome.events.phases if p.phase_name == "request"]
        assert all(p.jammed_slots == 0 for p in request_records)
