"""Tests for the parallel trial runner and the content-addressed trial cache.

The heart of this file is the bit-identity golden test: for every registered
experiment, records produced with ``jobs=4`` must equal records produced with
``jobs=1`` field-for-field, and a cache-warm re-run must return identical
records without recomputing anything (asserted through the runner's execution
counters).
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.experiments import ExperimentSettings, run_experiment
from repro.experiments.cache import CACHE_VERSION, TrialCache, stable_token, trial_key
from repro.experiments.faults import FaultPolicy, QuarantineError, TrialFailure
from repro.experiments.registry import experiment_ids
from repro.experiments.runner import EXECUTION_STATS, TrialSpec, run_point, run_sweep
from repro.simulation.errors import ConfigurationError

# Registry-wide settings for the golden tests: small enough that running all
# twelve experiments twice stays in benchmark-smoke territory, large enough
# that every sweep keeps all of its scenarios meaningful.
GOLDEN = dict(n=96, trials=2, quick=True, seed=3)


@pytest.fixture(autouse=True)
def _no_runner_env(monkeypatch):
    """Keep the runner's env knobs from leaking into (or out of) these tests."""

    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_TRIAL_TIMEOUT_S", raising=False)
    monkeypatch.delenv("REPRO_TRIAL_RETRIES", raising=False)
    monkeypatch.delenv("REPRO_STRICT_FAULTS", raising=False)


def _toy_trial(seed: int, scale: float = 1.0) -> dict:
    """A picklable trial function: derived deterministically from its inputs."""

    return {"seed": float(seed), "value": scale * (seed % 97)}


def _exploding_trial(seed: int, boom: bool = False) -> dict:
    if boom:
        raise RuntimeError("simulated mid-sweep interruption")
    return {"seed": float(seed)}


class TestSettingsKnobs:
    def test_jobs_default_is_serial(self):
        assert ExperimentSettings().resolved_jobs == 1

    def test_explicit_jobs_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert ExperimentSettings(jobs=2).resolved_jobs == 2

    def test_env_jobs_used_when_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert ExperimentSettings().resolved_jobs == 3

    @pytest.mark.parametrize("value", ["zero", "-1", "0", "1.5"])
    def test_bad_env_jobs_rejected(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_JOBS", value)
        with pytest.raises(ConfigurationError, match="REPRO_JOBS"):
            ExperimentSettings().resolved_jobs

    @pytest.mark.parametrize("jobs", [0, -2, 1.5, "4"])
    def test_bad_explicit_jobs_rejected_at_construction(self, jobs):
        with pytest.raises(ConfigurationError, match="ExperimentSettings.jobs"):
            ExperimentSettings(jobs=jobs)

    def test_cache_dir_resolution(self, monkeypatch, tmp_path):
        assert ExperimentSettings().resolved_cache_dir is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert ExperimentSettings().resolved_cache_dir == str(tmp_path)
        # Explicit settings win over the environment; "" explicitly disables.
        assert ExperimentSettings(cache_dir=str(tmp_path / "x")).resolved_cache_dir == str(
            tmp_path / "x"
        )
        assert ExperimentSettings(cache_dir="").resolved_cache_dir is None

    def test_bad_cache_dir_rejected(self):
        with pytest.raises(ConfigurationError, match="ExperimentSettings.cache_dir"):
            ExperimentSettings(cache_dir=123)


class TestStableToken:
    def test_plain_values_round_trip(self):
        assert stable_token(1) == stable_token(1)
        assert stable_token(1) != stable_token(True)  # bool is not the int 1 here
        assert stable_token((1, "a", 2.5, None)) == stable_token([1, "a", 2.5, None])
        assert stable_token({"b": 2, "a": 1}) == stable_token({"a": 1, "b": 2})

    def test_unsupported_types_raise(self):
        with pytest.raises(TypeError, match="stable cache token"):
            stable_token(object())

    def test_trial_key_sensitivity(self):
        base = trial_key(_toy_trial, ("E1", 1.0), 42, {"scale": 2.0})
        assert base == trial_key(_toy_trial, ("E1", 1.0), 42, {"scale": 2.0})
        assert base != trial_key(_toy_trial, ("E1", 1.0), 43, {"scale": 2.0})
        assert base != trial_key(_toy_trial, ("E1", 2.0), 42, {"scale": 2.0})
        assert base != trial_key(_toy_trial, ("E1", 1.0), 42, {"scale": 3.0})

    def test_bumping_cache_version_invalidates_keys(self, monkeypatch):
        import repro.experiments.cache as cache_module

        key = trial_key(_toy_trial, (), 0, {})
        monkeypatch.setattr(cache_module, "CACHE_VERSION", CACHE_VERSION + 1)
        assert trial_key(_toy_trial, (), 0, {}) != key


class TestTrialCache:
    def test_round_trip(self, tmp_path):
        cache = TrialCache(tmp_path)
        key = trial_key(_toy_trial, ("p",), 7, {})
        assert cache.get(key) is None
        cache.put(key, {"a": 1.0})
        assert cache.get(key) == {"a": 1.0}
        assert len(cache) == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = TrialCache(tmp_path)
        key = trial_key(_toy_trial, ("p",), 7, {})
        cache.put(key, {"a": 1.0})
        cache.path_for(key).write_bytes(b"\x80corrupt")
        assert cache.get(key) is None

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = TrialCache(tmp_path)
        cache.put(trial_key(_toy_trial, (), 1, {}), {"x": 1.0})
        assert not list(tmp_path.glob("**/*.tmp"))


class TestRunSweep:
    def test_matches_serial_run_trials_seed_derivation(self):
        settings = ExperimentSettings(n=16, trials=4, seed=11, cache_dir="")
        records = run_point(_toy_trial, settings, "E0", 3.5, scale=1.0)
        expected = [
            _toy_trial(settings.trial_seed("E0", 3.5, t)) for t in range(settings.trials)
        ]
        assert records == expected

    def test_parallel_equals_serial_on_toy_sweep(self):
        specs = [
            TrialSpec.point(_toy_trial, "point", idx, scale=float(idx)) for idx in range(5)
        ]
        serial = run_sweep(specs, ExperimentSettings(n=16, trials=3, seed=2, jobs=1, cache_dir=""))
        parallel = run_sweep(specs, ExperimentSettings(n=16, trials=3, seed=2, jobs=4, cache_dir=""))
        assert serial == parallel

    def test_cache_round_trip_and_probe(self, tmp_path):
        settings = ExperimentSettings(n=16, trials=3, seed=2, jobs=1, cache_dir=str(tmp_path))
        before = EXECUTION_STATS.snapshot()
        cold = run_point(_toy_trial, settings, "probe", scale=2.0)
        after_cold = EXECUTION_STATS.since(before)
        assert after_cold.executed == settings.trials
        assert after_cold.cache_misses == settings.trials

        before = EXECUTION_STATS.snapshot()
        warm = run_point(_toy_trial, settings, "probe", scale=2.0)
        after_warm = EXECUTION_STATS.since(before)
        assert warm == cold
        assert after_warm.executed == 0
        assert after_warm.cache_hits == settings.trials

    def test_failing_sweep_quarantines_and_keeps_completed_trials(self, tmp_path):
        # Records are written to the store as they complete, and a trial that
        # keeps failing is quarantined into a TrialFailure sentinel instead of
        # killing the sweep — the finished trials stay cached either way, so a
        # re-run resumes without recomputing the healthy part.
        settings = ExperimentSettings(n=16, trials=1, seed=2, jobs=1, cache_dir=str(tmp_path))
        policy = FaultPolicy(max_retries=1, backoff_base_s=0.0)
        specs = [
            TrialSpec.point(_exploding_trial, "a", boom=False),
            TrialSpec.point(_exploding_trial, "b", boom=False),
            TrialSpec.point(_exploding_trial, "c", boom=True),
        ]
        results = run_sweep(specs, settings, policy=policy)
        (failure,) = results[2]
        assert isinstance(failure, TrialFailure)
        assert failure.error_type == "RuntimeError"
        assert "interruption" in failure.error_message
        assert failure.attempts == policy.max_retries + 1

        # Strict mode turns the same quarantine into a raised error.
        strict = FaultPolicy(max_retries=0, backoff_base_s=0.0, strict=True)
        with pytest.raises(QuarantineError, match="interruption"):
            run_sweep(specs, settings, policy=strict)

        before = EXECUTION_STATS.snapshot()
        resumed = run_sweep(specs[:2], settings)
        delta = EXECUTION_STATS.since(before)
        assert delta.executed == 0
        assert delta.cache_hits == 2
        assert [r["seed"] for (r,) in resumed] == [
            float(settings.trial_seed("a", 0)),
            float(settings.trial_seed("b", 0)),
        ]

    def test_trial_functions_must_be_picklable_for_parallel_runs(self):
        # A closure cannot cross the process boundary: the runner should fail
        # loudly (pickling error) rather than silently serialise differently.
        local = lambda seed: {"seed": seed}  # noqa: E731
        settings = ExperimentSettings(n=16, trials=2, seed=2, jobs=2, cache_dir="")
        with pytest.raises(Exception):
            run_sweep([TrialSpec.point(local, "x")], settings)


class TestRegistryGolden:
    """The acceptance tests of the parallel runner against every experiment."""

    @pytest.fixture(scope="class")
    def serial_results(self):
        settings = ExperimentSettings(**GOLDEN, jobs=1, cache_dir="")
        return {eid: run_experiment(eid, settings) for eid in experiment_ids()}

    def test_jobs4_bit_identical_to_jobs1(self, serial_results):
        settings = ExperimentSettings(**GOLDEN, jobs=4, cache_dir="")
        for eid in experiment_ids():
            parallel = run_experiment(eid, settings)
            serial = serial_results[eid]
            assert parallel.rows == serial.rows, f"{eid}: parallel rows diverge"
            assert parallel.summaries == serial.summaries, f"{eid}: summaries diverge"
            assert parallel.notes == serial.notes, f"{eid}: notes diverge"

    def test_warm_cache_returns_identical_records_without_recomputing(
        self, serial_results, tmp_path_factory
    ):
        cache_dir = str(tmp_path_factory.mktemp("trial-cache"))
        settings = ExperimentSettings(**GOLDEN, jobs=1, cache_dir=cache_dir)
        cold = {eid: run_experiment(eid, settings) for eid in experiment_ids()}

        before = EXECUTION_STATS.snapshot()
        warm = {eid: run_experiment(eid, settings) for eid in experiment_ids()}
        delta = EXECUTION_STATS.since(before)

        assert delta.executed == 0, "warm re-run recomputed trials"
        assert delta.cache_hits > 0
        for eid in experiment_ids():
            assert warm[eid].rows == cold[eid].rows, f"{eid}: warm rows diverge"
            assert warm[eid].rows == serial_results[eid].rows, f"{eid}: cached rows diverge"
            assert warm[eid].summaries == cold[eid].summaries


class TestColumnIndex:
    def test_column_values_reflect_added_rows(self):
        from repro.experiments import ExperimentResult

        result = ExperimentResult("EX", "t", "c", columns=["a"])
        result.add_row(a=1.0, b="text")
        assert result.column_values("a") == [1.0]
        assert result.column_values("b") == []
        # The index must invalidate when new rows arrive, including rows
        # appended directly to the public list.
        result.add_row(a=2.0)
        assert result.column_values("a") == [1.0, 2.0]
        result.rows.append({"a": 3.0})
        assert result.column_values("a") == [1.0, 2.0, 3.0]

    def test_returned_lists_are_copies(self):
        from repro.experiments import ExperimentResult

        result = ExperimentResult("EX", "t", "c", columns=["a"])
        result.add_row(a=1.0)
        values = result.column_values("a")
        values.append(99.0)
        assert result.column_values("a") == [1.0]


class TestRoundPhaseMemo:
    def test_round_phases_built_once_per_round(self):
        from repro.core.broadcast import EpsilonBroadcast
        from repro.simulation.config import SimulationConfig

        protocol = EpsilonBroadcast(SimulationConfig(n=32, seed=5))
        calls = []
        original = protocol._build_round_phases

        def counting(round_index):
            calls.append(round_index)
            return original(round_index)

        protocol._build_round_phases = counting
        first = protocol._round_phases(3)
        second = protocol._round_phases(3)
        assert first is second
        assert calls == [3]

    def test_size_estimate_variant_inherits_memoisation(self):
        from repro.core.estimation import SizeEstimateBroadcast
        from repro.simulation.config import SimulationConfig

        protocol = SizeEstimateBroadcast(SimulationConfig(n=32, seed=5), size_estimate=64)
        first = protocol._round_phases(2)
        assert protocol._round_phases(2) is first
        # The sweep structure is preserved through the cache.
        assert any("@g=" in plan.name for plan in first)
