"""Reusable statistical-equivalence harness for the fast/slot engine pair.

The vectorised :class:`~repro.simulation.fastengine.PhaseEngine` is required
to be *statistically* equivalent to the slot-faithful
:class:`~repro.simulation.engine.SlotEngine`: on identical scenarios the two
must agree on protocol-visible outcomes, and their cost figures must come
from matching distributions.  This module centralises the machinery every
equivalence test needs:

* :func:`paired_phase_records` — run one phase on both engines across seeded
  trials and collect per-trial scalar records;
* :func:`ks_statistic` / :func:`ks_threshold` / :func:`assert_same_distribution`
  — a dependency-free two-sample Kolmogorov–Smirnov check;
* :func:`assert_means_close` — moment (mean) comparison with mixed
  relative/absolute tolerances.

All trials are seeded, so a passing test is deterministic: tolerances guard
against *model* drift, not against run-to-run noise.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.simulation import (
    JamPlan,
    Network,
    PhaseEngine,
    PhasePlan,
    PhaseRoles,
    SimulationConfig,
    SlotEngine,
)

ENGINE_CLASSES = {"slot": SlotEngine, "fast": PhaseEngine}


# --------------------------------------------------------------------------- #
# Two-sample Kolmogorov–Smirnov                                               #
# --------------------------------------------------------------------------- #


def ks_statistic(a: Sequence[float], b: Sequence[float]) -> float:
    """The two-sample KS statistic ``sup_x |F_a(x) - F_b(x)|``."""

    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValueError("KS statistic needs non-empty samples")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def ks_threshold(m: int, n: int, alpha: float = 0.01) -> float:
    """Asymptotic rejection threshold for the two-sample KS test.

    Samples of sizes ``m`` and ``n`` from the same distribution exceed this
    with probability at most ``alpha`` (Smirnov's asymptotic formula
    ``c(α)·sqrt((m+n)/(m·n))`` with ``c(α) = sqrt(-ln(α/2)/2)``).

    Power note: the KS statistic is bounded by 1, so the check is vacuous
    unless the threshold sits well below that — keep ``alpha`` no smaller
    than ~0.01 and trial counts at 30+ (threshold ≈ 0.36 at 40 vs 40 trials).
    Trials are seeded, so a tighter threshold costs determinism nothing.
    """

    if not (0 < alpha < 1):
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
    c = math.sqrt(-math.log(alpha / 2.0) / 2.0)
    return c * math.sqrt((m + n) / (m * n))


def assert_same_distribution(
    a: Sequence[float],
    b: Sequence[float],
    alpha: float = 0.01,
    label: str = "samples",
) -> None:
    """Fail when a two-sample KS test rejects that ``a`` and ``b`` match."""

    stat = ks_statistic(a, b)
    threshold = ks_threshold(len(a), len(b), alpha)
    assert stat <= threshold, (
        f"KS test rejects equivalence for {label}: statistic {stat:.3f} > "
        f"threshold {threshold:.3f} (alpha={alpha:g}, sizes {len(a)}/{len(b)})"
    )


# --------------------------------------------------------------------------- #
# Moment checks                                                               #
# --------------------------------------------------------------------------- #


def assert_means_close(
    a: Sequence[float],
    b: Sequence[float],
    rel: float = 0.25,
    abs_tol: float = 0.0,
    label: str = "metric",
) -> None:
    """Fail when the sample means differ beyond ``rel`` or ``abs_tol``.

    The comparison passes when |mean_a - mean_b| is within ``abs_tol`` *or*
    within ``rel`` of the larger magnitude — mirroring ``pytest.approx`` but
    symmetric in its arguments.
    """

    mean_a = float(np.mean(np.asarray(a, dtype=float)))
    mean_b = float(np.mean(np.asarray(b, dtype=float)))
    gap = abs(mean_a - mean_b)
    scale = max(abs(mean_a), abs(mean_b))
    assert gap <= max(abs_tol, rel * scale), (
        f"means differ for {label}: {mean_a:.4g} vs {mean_b:.4g} "
        f"(gap {gap:.4g}, allowed rel={rel:g}, abs={abs_tol:g})"
    )


# --------------------------------------------------------------------------- #
# Paired engine execution                                                     #
# --------------------------------------------------------------------------- #


def phase_record(network: Network, result) -> Dict[str, float]:
    """The standard scalar record extracted after one phase execution."""

    return {
        "informed": float(len(result.newly_informed)),
        "alice_cost": float(network.alice_cost),
        "node_total": float(network.node_costs().sum()),
        "adversary": float(network.adversary_cost),
        "alice_noisy": float(result.alice_noisy_heard),
        "delivery_slots": float(result.delivery_slots),
        "jammed_slots": float(result.jammed_slots),
    }


def paired_phase_records(
    plan: PhasePlan,
    roles_builder: Callable[[Network], PhaseRoles],
    jam_builder: Callable[[], JamPlan] = JamPlan.idle,
    n: int = 48,
    trials: int = 6,
    base_seed: int = 100,
    config_kwargs: Optional[dict] = None,
) -> Dict[str, List[Dict[str, float]]]:
    """Run one phase on both engines across seeded trials.

    Each trial builds a fresh :class:`Network` (so spatial topologies are
    resampled per seed, identically for the two engines), executes ``plan``
    on it, and extracts :func:`phase_record`.  Returns per-engine record
    lists suitable for :func:`column`, :func:`assert_means_close`, and
    :func:`assert_same_distribution`.
    """

    records: Dict[str, List[Dict[str, float]]] = {name: [] for name in ENGINE_CLASSES}
    for trial in range(trials):
        for name, engine_cls in ENGINE_CLASSES.items():
            config = SimulationConfig(n=n, seed=base_seed + trial, **(config_kwargs or {}))
            network = Network(config)
            engine = engine_cls(network)
            result = engine.run_phase(plan, roles_builder(network), jam_builder())
            records[name].append(phase_record(network, result))
    return records


def column(records: Iterable[Dict[str, float]], key: str) -> List[float]:
    """Extract one metric across a record list."""

    return [record[key] for record in records]


def mean_by_engine(
    records: Dict[str, List[Dict[str, float]]]
) -> Dict[str, Dict[str, float]]:
    """Per-engine means of every metric (the legacy ``run_phase_on_both`` shape)."""

    return {
        name: {key: float(np.mean(column(rows, key))) for key in rows[0]}
        for name, rows in records.items()
    }
