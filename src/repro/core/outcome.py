"""Result object returned by every protocol run.

:class:`BroadcastOutcome` bundles everything an experiment (or a downstream
user) needs to know about one execution: who received the message, how long it
took, and — central to the paper — how much energy each side of the game
spent.  It is deliberately protocol-agnostic so that ε-Broadcast and the
baselines can be compared with identical code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..simulation.config import SimulationConfig
from ..simulation.events import EventLog
from ..simulation.metrics import CostBreakdown, DeliveryStats, resource_competitive_ratio

__all__ = ["BroadcastOutcome"]


@dataclass(frozen=True)
class BroadcastOutcome:
    """Summary of one protocol execution.

    Attributes
    ----------
    protocol:
        Name of the protocol that produced the run (e.g.
        ``"epsilon-broadcast"``, ``"naive"``, ``"ksy"``).
    adversary:
        Name of the adversary strategy it faced.
    config:
        The :class:`~repro.simulation.config.SimulationConfig` of the run.
    delivery:
        Delivery and termination statistics.
    costs:
        Energy expenditure of Alice, the nodes, and the adversary.
    events:
        The phase-level event log (``None`` if the caller disabled logging).
    terminated_by_cap:
        ``True`` if the run hit the orchestrator's safety cap on rounds rather
        than terminating through the protocol's own rules.
    extra:
        Protocol-specific annotations (e.g. the round at which Alice stopped).
    """

    protocol: str
    adversary: str
    config: SimulationConfig
    delivery: DeliveryStats
    costs: CostBreakdown
    events: Optional[EventLog] = field(default=None, compare=False, repr=False)
    terminated_by_cap: bool = False
    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Convenience accessors                                               #
    # ------------------------------------------------------------------ #

    @property
    def delivery_fraction(self) -> float:
        return self.delivery.delivery_fraction

    @property
    def adversary_spend(self) -> float:
        """Carol's total expenditure ``T``."""

        return self.costs.adversary

    @property
    def alice_cost(self) -> float:
        return self.costs.alice

    @property
    def max_node_cost(self) -> float:
        return self.costs.node_max

    @property
    def mean_node_cost(self) -> float:
        return self.costs.node_mean

    @property
    def slots_elapsed(self) -> int:
        return self.delivery.slots_elapsed

    @property
    def alice_competitive_ratio(self) -> float:
        """Alice's cost relative to Carol's spend (local perspective)."""

        return resource_competitive_ratio(self.costs.alice, self.costs.adversary)

    @property
    def node_competitive_ratio(self) -> float:
        """The worst node's cost relative to Carol's spend."""

        return resource_competitive_ratio(self.costs.node_max, self.costs.adversary)

    @property
    def load_balance_ratio(self) -> float:
        """Alice's cost divided by the mean node cost (≈ polylog when balanced)."""

        if self.costs.node_mean <= 0:
            return float("inf") if self.costs.alice > 0 else 1.0
        return self.costs.alice / self.costs.node_mean

    def meets_delivery_target(self, epsilon: Optional[float] = None) -> bool:
        """Whether at least ``(1 - ε)·n`` correct nodes received the message."""

        eps = self.config.epsilon if epsilon is None else epsilon
        return self.delivery.informed >= (1.0 - eps) * self.config.n

    def summary(self) -> str:
        """A one-paragraph human-readable report used by the examples."""

        lines = [
            f"protocol={self.protocol} vs adversary={self.adversary} "
            f"(n={self.config.n}, k={self.config.k}, f={self.config.f:g})",
            f"  delivered to {self.delivery.informed}/{self.config.n} nodes "
            f"({100.0 * self.delivery_fraction:.1f}%) in {self.delivery.slots_elapsed} slots "
            f"over {self.delivery.rounds_executed} rounds",
            f"  costs: Alice={self.costs.alice:.0f}, node mean={self.costs.node_mean:.1f}, "
            f"node max={self.costs.node_max:.0f}, Carol={self.costs.adversary:.0f}",
            f"  competitive ratios: Alice={self.alice_competitive_ratio:.3g}, "
            f"worst node={self.node_competitive_ratio:.3g}; "
            f"load balance (Alice/mean node)={self.load_balance_ratio:.2f}",
        ]
        if self.terminated_by_cap:
            lines.append("  NOTE: run stopped at the round-cap safety limit")
        return "\n".join(lines)

    def as_record(self) -> Dict[str, float]:
        """A flat record suitable for tabular aggregation in experiments."""

        record: Dict[str, float] = {
            "n": float(self.config.n),
            "k": float(self.config.k),
            "f": float(self.config.f),
            "delivery_fraction": self.delivery_fraction,
            "informed": float(self.delivery.informed),
            "slots": float(self.delivery.slots_elapsed),
            "rounds": float(self.delivery.rounds_executed),
            "alice_cost": self.costs.alice,
            "node_mean_cost": self.costs.node_mean,
            "node_max_cost": self.costs.node_max,
            "adversary_spend": self.costs.adversary,
            "alice_ratio": self.alice_competitive_ratio,
            "node_ratio": self.node_competitive_ratio,
            "load_balance": self.load_balance_ratio,
            "terminated_by_cap": float(self.terminated_by_cap),
        }
        record.update({f"extra_{key}": value for key, value in self.extra.items()})
        return record
