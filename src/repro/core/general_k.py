"""The general-``k`` protocol (Figure 2, §3).

For ``k ≥ 3`` the single propagation phase of Figure 1 is not enough: each
round repeats the propagation step ``k - 1`` times, growing the informed sets
``S_{i,1} ⊂ S_{i,2} ⊂ … ⊂ S_{i,k-1}`` until the last one is large enough to
reach everybody.  The cost exponent improves to ``1/(k+1)`` at the price of a
``Θ(k)`` factor in latency and total cost (§3.2 explains why ``k`` cannot grow
beyond a constant).

:class:`GeneralKBroadcast` is a thin subclass of
:class:`~repro.core.broadcast.EpsilonBroadcast`: the propagation-step loop and
the Figure-2 probabilities are already handled generically by the schedule
builder and the policies, so all this class does is insist on the Figure-2
parameterisation and document the variant.
"""

from __future__ import annotations

from typing import Optional

from ..adversary.base import Adversary
from ..simulation.config import SimulationConfig
from .broadcast import EngineSpec, EpsilonBroadcast
from .params import ProtocolParameters

__all__ = ["GeneralKBroadcast"]


class GeneralKBroadcast(EpsilonBroadcast):
    """ε-Broadcast with the general-``k`` pseudocode of Figure 2.

    Works for any ``k ≥ 2``; with ``k = 2`` it differs from Figure 1 only in
    Alice's inform-phase sending probability (``2·c·ln² n / 2^i`` instead of
    ``2·ln n / 2^i``), which is the form §3 uses for its proofs.
    """

    protocol_name = "epsilon-broadcast-general-k"

    def __init__(
        self,
        config: SimulationConfig,
        adversary: Optional[Adversary] = None,
        params: Optional[ProtocolParameters] = None,
        engine: EngineSpec = "fast",
        **kwargs: object,
    ) -> None:
        kwargs.setdefault("figure", 2)
        super().__init__(
            config,
            adversary=adversary,
            params=params,
            engine=engine,
            **kwargs,  # type: ignore[arg-type]
        )
