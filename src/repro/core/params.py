"""Protocol parameters for ε-Broadcast.

The protocol of Figure 1 is parameterised by two constants ``a`` and ``b``
whose values are *derived* in Lemma 11 to make the protocol simultaneously
load balanced and resource competitive: ``b = 1`` and ``a = 1/k``.  This module
keeps those constants explicit (so ablation experiments can move them) and
derives the per-round quantities — phase lengths, round window, termination
threshold — that the schedules in :mod:`repro.core.phases` consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from ..simulation.config import SimulationConfig
from ..simulation.errors import ConfigurationError

__all__ = ["ProtocolParameters"]


@dataclass(frozen=True)
class ProtocolParameters:
    """Resolved constants for one ε-Broadcast execution.

    Attributes
    ----------
    k:
        The budget exponent (``k >= 2``); per-device cost is
        ``Õ(T^{1/(k+1)})``.
    a, b:
        The protocol exponents of Figure 1.  Lemma 11 derives ``a = 1/k`` and
        ``b = 1``; other values are accepted for ablation studies.
    c:
        The high-probability constant; also sets the ``5·c·ln n`` termination
        threshold.
    epsilon_prime:
        The internal ``ε'`` constant used in listening probabilities and
        termination thresholds.
    start_round:
        First round index ``i`` executed.  The paper lets nodes start at
        ``i = 1``; starting later skips rounds that are too short to matter.
    min_termination_round:
        First round in which the request-phase termination rules may fire; the
        paper's analysis begins at ``i = 3·lg ln n`` and terminating earlier
        would let nodes give up before the noisy-slot statistics are
        meaningful.
    max_round:
        Safety cap on the round index (``lg n + O(1)`` in the paper); the
        orchestrator aborts the run if it is ever exceeded, which cannot
        happen when Carol's budget is enforced.
    """

    k: int = 2
    a: Optional[float] = None
    b: float = 1.0
    c: float = 2.0
    epsilon_prime: float = 1.0 / 64.0
    start_round: int = 1
    min_termination_round: Optional[int] = None
    max_round: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.k, int) or self.k < 2:
            raise ConfigurationError(f"k must be an integer >= 2, got {self.k!r}")
        if self.a is not None and not (0 < self.a <= 1):
            raise ConfigurationError(f"a must lie in (0, 1], got {self.a}")
        if not (0 < self.b <= 1):
            raise ConfigurationError(f"b must lie in (0, 1], got {self.b}")
        if self.c <= 0:
            raise ConfigurationError(f"c must be positive, got {self.c}")
        if not (0 < self.epsilon_prime < 1):
            raise ConfigurationError(
                f"epsilon_prime must lie in (0, 1), got {self.epsilon_prime}"
            )
        if self.start_round < 1:
            raise ConfigurationError(f"start_round must be >= 1, got {self.start_round}")
        if self.min_termination_round is not None and self.min_termination_round < 1:
            raise ConfigurationError(
                f"min_termination_round must be >= 1, got {self.min_termination_round}"
            )
        if self.max_round is not None and self.max_round < self.start_round:
            raise ConfigurationError(
                f"max_round ({self.max_round}) must be >= start_round ({self.start_round})"
            )

    # ------------------------------------------------------------------ #
    # Derived constants                                                   #
    # ------------------------------------------------------------------ #

    @property
    def a_value(self) -> float:
        """The exponent ``a``; Lemma 11's load-balanced choice is ``1/k``."""

        return self.a if self.a is not None else 1.0 / self.k

    @property
    def b_value(self) -> float:
        """The exponent ``b``; Lemma 11's choice is ``1``."""

        return self.b

    @classmethod
    def from_config(cls, config: SimulationConfig, **overrides: object) -> "ProtocolParameters":
        """Build parameters consistent with a :class:`SimulationConfig`."""

        defaults = dict(
            k=config.k,
            c=config.c,
            epsilon_prime=config.eps_prime,
        )
        defaults.update(overrides)
        return cls(**defaults)  # type: ignore[arg-type]

    # ------------------------------------------------------------------ #
    # Per-round geometry                                                  #
    # ------------------------------------------------------------------ #

    def phase_length(self, round_index: int) -> int:
        """Number of slots in an inform/propagation phase of round ``i``.

        Figure 1 uses ``2^{(a+b)i}`` and Figure 2 uses ``2^{(1+1/k)i}``; with
        the derived values ``a = 1/k`` and ``b = 1`` these coincide.
        """

        exponent = (self.a_value + self.b_value) * round_index
        return max(1, int(round(2.0 ** exponent)))

    def request_phase_length(self, round_index: int) -> int:
        """Number of slots in the request phase of round ``i`` (``2^{(b/2+1)i}``)."""

        exponent = (self.b_value / 2.0 + 1.0) * round_index
        return max(1, int(round(2.0 ** exponent)))

    def resolved_min_termination_round(self, n: int) -> int:
        """The first round in which termination checks are allowed."""

        if self.min_termination_round is not None:
            return self.min_termination_round
        log_n = max(math.log(n), 2.0)
        return max(self.start_round, int(math.ceil(3.0 * math.log2(log_n))))

    def resolved_max_round(self, n: int) -> int:
        """The safety cap on round indices (``lg n + O(1)``)."""

        if self.max_round is not None:
            return self.max_round
        return int(math.ceil(math.log2(n))) + 4

    def termination_threshold(self, n: int) -> float:
        """The ``5·c·ln n`` noisy-slot threshold of the request phase."""

        return 5.0 * self.c * math.log(n)

    def with_(self, **changes: object) -> "ProtocolParameters":
        """Return a copy with the given fields replaced."""

        return replace(self, **changes)
