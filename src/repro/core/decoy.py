"""The reactive-adversary-tolerant variant (§4.1): make your own noise.

A reactive Carol senses channel activity within the slot and jams only then,
which against the plain protocol lets her kill every copy of ``m`` while
spending no more than Alice does.  §4.1's countermeasure is for the correct
nodes to generate *decoy* traffic during the inform and propagation phases:
RSSI tells Carol that *something* is on the air but not *what*, so she must
jam (and pay for) a constant fraction of all busy slots to be sure of hitting
``m`` — restoring resource competitiveness for ``f < 1/24`` (Lemma 19).

:class:`DecoyBroadcast` enables the decoy role for every active correct node
and the boosted listening probability that compensates for decoy collisions.
"""

from __future__ import annotations

from typing import Optional

from ..adversary.base import Adversary
from ..simulation.config import SimulationConfig
from .broadcast import EngineSpec, EpsilonBroadcast
from .params import ProtocolParameters

__all__ = ["DecoyBroadcast"]


class DecoyBroadcast(EpsilonBroadcast):
    """ε-Broadcast with §4.1's decoy traffic enabled."""

    protocol_name = "epsilon-broadcast-decoy"

    def __init__(
        self,
        config: SimulationConfig,
        adversary: Optional[Adversary] = None,
        params: Optional[ProtocolParameters] = None,
        engine: EngineSpec = "fast",
        **kwargs: object,
    ) -> None:
        kwargs.setdefault("decoy_traffic", True)
        super().__init__(
            config,
            adversary=adversary,
            params=params,
            engine=engine,
            **kwargs,  # type: ignore[arg-type]
        )
