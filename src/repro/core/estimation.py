"""Running ε-Broadcast without exact knowledge of ``n`` (§4.2).

The protocol's probabilities refer to ``1/n`` and ``ln n``.  §4.2 observes
that a constant-factor approximation of either value only costs a constant
factor, and that even a *polynomial overestimate* ``ν = n^{c'}`` suffices: for
quantities of the form ``ln n`` the overestimate is itself a constant-factor
approximation (``ln ν = c'·ln n``), and for the ``1/n`` sending probability of
the propagation phase the nodes sweep the unknown scale by repeating each
propagation step with sending probabilities ``1/2, 1/4, …, 1/2^{⌈lg ν⌉}``;
one repetition lands within a factor two of the true ``1/n``, and the extra
repetitions multiply cost and latency by only an ``O(lg ν) = O(log n)``
factor.

:class:`SizeEstimateBroadcast` implements that scheme.  Alice still knows the
true ``n`` (she is the trusted, provisioned sender); only the correct nodes
work from the overestimate, which is the asymmetric situation the section
describes.

Scope note (documented substitution): the paper remarks that "the same
technique can be used in the request phase" without spelling out how the
``5·c·ln n`` noisy-slot termination statistic should be aggregated across the
swept repetitions.  We keep the request phase un-swept — uninformed nodes nack
with probability ``1/ν`` and compare against the ``5·c·ln ν`` threshold — and
evaluate the variant (experiment E8) in the light-jamming regime where the
measurable claim is the ``O(log n)`` cost factor, not worst-case termination
behaviour.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..adversary.base import Adversary
from ..simulation.clock import SlotClock
from ..simulation.config import SimulationConfig
from ..simulation.errors import ConfigurationError
from ..simulation.phaseplan import PhaseKind, PhasePlan, PhaseResult, PhaseRoles, clip_probability
from .broadcast import EngineSpec, EpsilonBroadcast
from .params import ProtocolParameters
from .receiver import ReceiverPolicy
from .state import ProtocolState

__all__ = ["SizeEstimateBroadcast"]


class SizeEstimateBroadcast(EpsilonBroadcast):
    """ε-Broadcast where nodes only hold a polynomial overestimate of ``n``.

    Parameters
    ----------
    size_estimate:
        The shared overestimate ``ν ≥ n``.  A common choice in experiments is
        ``ν = n²`` (the paper's ``ν_u = n^{c'}``).
    """

    protocol_name = "epsilon-broadcast-size-estimate"

    def __init__(
        self,
        config: SimulationConfig,
        size_estimate: int,
        adversary: Optional[Adversary] = None,
        params: Optional[ProtocolParameters] = None,
        engine: EngineSpec = "fast",
        **kwargs: object,
    ) -> None:
        if size_estimate < config.n:
            raise ConfigurationError(
                f"size_estimate ({size_estimate}) must be at least the true n ({config.n})"
            )
        self.size_estimate = int(size_estimate)
        super().__init__(
            config,
            adversary=adversary,
            params=params,
            engine=engine,
            **kwargs,  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------ #
    # Hooks                                                               #
    # ------------------------------------------------------------------ #

    def _build_receiver_policy(self) -> ReceiverPolicy:
        # Correct nodes only know the overestimate; every probability they
        # compute uses ν in place of n.
        return ReceiverPolicy(
            self.params,
            self.size_estimate,
            figure=self.figure,
            decoy_traffic=self.decoy_traffic,
        )

    @property
    def sweep_exponents(self) -> List[int]:
        """The exponents ``g`` swept by the unknown-``n`` propagation repetitions."""

        top = max(1, int(math.ceil(math.log2(self.size_estimate))))
        return list(range(1, top + 1))

    def _build_round_phases(self, round_index: int) -> List[PhasePlan]:
        base = self.schedule.round_phases(round_index)
        phases: List[PhasePlan] = []
        for plan in base:
            if plan.kind is PhaseKind.PROPAGATION:
                phases.extend(self._sweep_propagation(plan))
            else:
                phases.append(plan)
        return phases

    def _sweep_propagation(self, plan: PhasePlan) -> List[PhasePlan]:
        """Replicate a propagation step once per sweep exponent ``g``."""

        repetitions: List[PhasePlan] = []
        for g in self.sweep_exponents:
            repetitions.append(
                PhasePlan(
                    name=f"{plan.name}@g={g}",
                    kind=plan.kind,
                    round_index=plan.round_index,
                    num_slots=plan.num_slots,
                    step=plan.step,
                    relay_send_prob=clip_probability(1.0 / (2.0 ** g)),
                    uninformed_listen_prob=plan.uninformed_listen_prob,
                    decoy_send_prob=plan.decoy_send_prob,
                )
            )
        return repetitions

    def _apply_result(
        self,
        plan: PhasePlan,
        roles: PhaseRoles,
        result: PhaseResult,
        state: ProtocolState,
        round_index: int,
        clock: SlotClock,
    ) -> None:
        """Delay relay termination until the final sweep repetition of a step.

        A relay must stay alive for every repetition ``g = 1 … ⌈lg ν⌉`` of its
        propagation step (that is the whole point of the sweep), so the base
        class's "terminate relays at the end of the step" rule is applied only
        when the repetition with the largest ``g`` finishes.
        """

        if plan.kind is PhaseKind.PROPAGATION and not self._is_final_sweep(plan):
            if result.newly_informed:
                state.mark_informed(result.newly_informed, slot=clock.now)
            return
        super()._apply_result(plan, roles, result, state, round_index, clock)

    def _is_final_sweep(self, plan: PhasePlan) -> bool:
        return plan.name.endswith(f"@g={self.sweep_exponents[-1]}")
