"""Correct-node per-phase behaviour.

A correct node's life is passive until it holds the message:

* **inform phase** — listen with probability ``2 / (ε'·2^{(a+b/2)i})``;
* **propagation phase** — if it received ``m`` in the preceding phase/step it
  relays with probability ``1/n`` and terminates at the end of the step;
  otherwise it listens with probability ``4e(c+1) / 2^{(a+b/2)i}``
  (Figure 1) or ``2ec / (ε'·2^i)`` (Figure 2);
* **request phase** — send a nack with probability ``1/n``, listen with
  probability ``(c+1) / ((1-e^{-64ε'})·2^i)``, and terminate (without ``m``)
  if at most ``5·c·ln n`` noisy slots were heard;
* §4.1 decoy variant — additionally transmit a decoy during inform and
  propagation phases and listen with a constant-factor boosted probability,
  so that a reactive jammer cannot tell which busy slots actually carry ``m``.

A note on the decoy constants: the paper writes the decoy probability as
``3/(4ε'n)`` and compensates with a listening boost of ``e^{3/(2ε')}``.  Those
two constants cancel in the analysis but are astronomically large for the tiny
``ε'`` the proofs use, which only balances out "for n sufficiently large".  At
simulation scale we keep the *mechanism* — a per-slot decoy rate that makes a
constant fraction of slots busy, plus the matching constant-factor listening
boost ``e^{decoy_rate}`` — and expose the rate as ``decoy_rate`` (default
``3/4``, the paper's numerator).  This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import math

from ..simulation.phaseplan import clip_probability
from .params import ProtocolParameters

__all__ = ["ReceiverPolicy"]


class ReceiverPolicy:
    """Computes correct-node probabilities for each phase of a round.

    Parameters
    ----------
    params:
        The protocol constants.
    n:
        Network size used inside the probability formulas (or the §4.2
        estimate of it).
    figure:
        ``1`` for the ``k = 2`` pseudocode, ``2`` for the general-``k`` one.
    decoy_traffic:
        Enable the §4.1 modification (decoy messages plus a boosted listening
        probability) that defeats reactive jamming when ``f < 1/24``.
    decoy_rate:
        Expected number of decoy transmissions per slot when the whole network
        is still uninformed; each active node sends a decoy with probability
        ``decoy_rate / n`` per slot.
    """

    def __init__(
        self,
        params: ProtocolParameters,
        n: int,
        figure: int = 1,
        decoy_traffic: bool = False,
        decoy_rate: float = 0.75,
    ) -> None:
        if figure not in (1, 2):
            raise ValueError(f"figure must be 1 or 2, got {figure}")
        if decoy_rate <= 0:
            raise ValueError(f"decoy_rate must be positive, got {decoy_rate}")
        self.params = params
        self.n = n
        self.figure = figure
        self.decoy_traffic = decoy_traffic
        self.decoy_rate = decoy_rate

    # ------------------------------------------------------------------ #
    # Inform phase                                                        #
    # ------------------------------------------------------------------ #

    def inform_listen_probability(self, round_index: int) -> float:
        raw = self._base_inform_listen(round_index)
        if self.decoy_traffic:
            raw *= self._decoy_listen_boost()
        return clip_probability(raw)

    def _base_inform_listen(self, round_index: int) -> float:
        params = self.params
        if self.figure == 1:
            exponent = (params.a_value + params.b_value / 2.0) * round_index
        else:
            exponent = float(round_index)
        return 2.0 / (params.epsilon_prime * (2.0 ** exponent))

    # ------------------------------------------------------------------ #
    # Propagation phase                                                   #
    # ------------------------------------------------------------------ #

    def relay_send_probability(self, round_index: int) -> float:
        """Probability an informed relay transmits ``m`` in a slot (``1/n``)."""

        return clip_probability(1.0 / self.n)

    def propagation_listen_probability(self, round_index: int) -> float:
        raw = self._base_propagation_listen(round_index)
        if self.decoy_traffic:
            raw *= self._decoy_listen_boost()
        return clip_probability(raw)

    def _base_propagation_listen(self, round_index: int) -> float:
        params = self.params
        if self.figure == 1:
            exponent = (params.a_value + params.b_value / 2.0) * round_index
            return 4.0 * math.e * (params.c + 1.0) / (2.0 ** exponent)
        return 2.0 * math.e * params.c / (params.epsilon_prime * (2.0 ** round_index))

    # ------------------------------------------------------------------ #
    # Request phase                                                       #
    # ------------------------------------------------------------------ #

    def nack_send_probability(self, round_index: int) -> float:
        """Probability an uninformed node transmits a nack in a slot (``1/n``)."""

        return clip_probability(1.0 / self.n)

    def request_listen_probability(self, round_index: int) -> float:
        params = self.params
        denominator = (1.0 - math.exp(-64.0 * params.epsilon_prime)) * (2.0 ** round_index)
        raw = (params.c + 1.0) / denominator
        return clip_probability(raw)

    def termination_threshold(self) -> float:
        """A node terminates when it hears at most this many noisy slots.

        Memoised (pure function of the immutable parameters): the per-node
        termination test consults it for every active node in every request
        phase.
        """

        cached = getattr(self, "_termination_threshold", None)
        if cached is None:
            cached = self.params.termination_threshold(self.n)
            self._termination_threshold = cached
        return cached

    def request_phase_length(self, round_index: int) -> int:
        """Length of the request phase under the pseudocode in use."""

        if self.figure == 1:
            return self.params.request_phase_length(round_index)
        return self.params.phase_length(round_index)

    def min_reliable_termination_round(self, margin: float = 1.5) -> int:
        """First round where the noisy-slot statistic reliably discriminates.

        Mirrors :meth:`repro.core.alice.AlicePolicy.min_reliable_termination_round`:
        a node may only act on the ``5·c·ln n`` rule once the expected number
        of noisy slots it would hear with the whole network still nacking
        exceeds ``margin`` times the threshold, otherwise finite-n noise lets
        nodes give up while the broadcast is still actively blocked.
        """

        p_busy = 1.0 - (1.0 - 1.0 / self.n) ** self.n
        max_round = self.params.resolved_max_round(self.n)
        for round_index in range(self.params.start_round, max_round + 1):
            expected = (
                self.request_listen_probability(round_index)
                * self.request_phase_length(round_index)
                * p_busy
            )
            if expected >= margin * self.termination_threshold():
                return round_index
        return max_round

    def earliest_termination_round(self) -> int:
        """The first round in which a node's termination test may fire.

        Memoised: the value is a pure function of the (immutable) policy
        parameters, and :meth:`should_terminate` consults it once per active
        node per request phase — recomputing the round scan n times per phase
        dominated large-n request phases before the cache.
        """

        cached = getattr(self, "_earliest_termination_round", None)
        if cached is None:
            cached = max(
                self.params.resolved_min_termination_round(self.n),
                self.min_reliable_termination_round(),
            )
            self._earliest_termination_round = cached
        return cached

    def should_terminate(self, noisy_slots_heard: int, round_index: int) -> bool:
        """The uninformed node's termination test at the end of a request phase."""

        if round_index < self.earliest_termination_round():
            return False
        return noisy_slots_heard <= self.termination_threshold()

    # ------------------------------------------------------------------ #
    # §4.1 decoy traffic                                                   #
    # ------------------------------------------------------------------ #

    def decoy_send_probability(self, round_index: int) -> float:
        """Per-slot decoy probability (0 when decoys are disabled)."""

        if not self.decoy_traffic:
            return 0.0
        return clip_probability(self.decoy_rate / self.n)

    def _decoy_listen_boost(self) -> float:
        """Constant-factor listening boost compensating for decoy collisions.

        A slot carrying ``m`` survives the cover traffic with probability at
        least ``e^{-decoy_rate}``; boosting the listening probability by the
        reciprocal keeps the expected number of successful receptions per
        phase unchanged, mirroring the ``p_u`` redefinition in §4.1.
        """

        return math.exp(self.decoy_rate) * 2.0
