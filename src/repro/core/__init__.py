"""The paper's contribution: the ε-Broadcast protocol and its variants."""

from .alice import AlicePolicy
from .api import ADVERSARY_CATALOGUE, PROTOCOL_VARIANTS, make_adversary, run_broadcast
from .broadcast import EpsilonBroadcast
from .decoy import DecoyBroadcast
from .estimation import SizeEstimateBroadcast
from .general_k import GeneralKBroadcast
from .outcome import BroadcastOutcome
from .params import ProtocolParameters
from .phases import ScheduleBuilder
from .receiver import ReceiverPolicy
from .state import NodeStatus, ProtocolState
from .termination import RequestPhaseDecision, apply_request_phase

__all__ = [
    "ADVERSARY_CATALOGUE",
    "AlicePolicy",
    "apply_request_phase",
    "BroadcastOutcome",
    "DecoyBroadcast",
    "EpsilonBroadcast",
    "GeneralKBroadcast",
    "make_adversary",
    "NodeStatus",
    "PROTOCOL_VARIANTS",
    "ProtocolParameters",
    "ProtocolState",
    "ReceiverPolicy",
    "RequestPhaseDecision",
    "run_broadcast",
    "ScheduleBuilder",
    "SizeEstimateBroadcast",
]
