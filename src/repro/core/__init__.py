"""The paper's contribution: the ε-Broadcast protocol and its variants."""

from .alice import AlicePolicy
from .api import ADVERSARY_CATALOGUE, PROTOCOL_VARIANTS, make_adversary, run_broadcast
from .broadcast import EpsilonBroadcast, MultiHopBroadcast
from .decoy import DecoyBroadcast
from .estimation import SizeEstimateBroadcast
from .general_k import GeneralKBroadcast
from .outcome import BroadcastOutcome
from .params import ProtocolParameters
from .phases import ScheduleBuilder
from .quietrule import (
    ConstantQuietRule,
    DegreeAwareQuietRule,
    PaperQuietRule,
    QuietRule,
    resolve_quiet_rule,
)
from .receiver import ReceiverPolicy
from .state import NodeStatus, ProtocolState
from .termination import RequestPhaseDecision, apply_request_phase

__all__ = [
    "ADVERSARY_CATALOGUE",
    "AlicePolicy",
    "apply_request_phase",
    "BroadcastOutcome",
    "ConstantQuietRule",
    "DecoyBroadcast",
    "DegreeAwareQuietRule",
    "EpsilonBroadcast",
    "GeneralKBroadcast",
    "make_adversary",
    "MultiHopBroadcast",
    "NodeStatus",
    "PaperQuietRule",
    "PROTOCOL_VARIANTS",
    "ProtocolParameters",
    "ProtocolState",
    "QuietRule",
    "ReceiverPolicy",
    "RequestPhaseDecision",
    "resolve_quiet_rule",
    "run_broadcast",
    "ScheduleBuilder",
    "SizeEstimateBroadcast",
]
