"""Alice's per-phase behaviour.

Alice is the trusted sender.  Her protocol role is small but precise:

* in the **inform phase** of round ``i`` she transmits ``m`` in each slot with
  probability ``2·ln n / 2^{b·i}`` (Figure 1, ``k = 2``) or
  ``2·c·ln^k n / 2^i`` (Figure 2, general ``k``);
* she sleeps through the **propagation phase** — relaying is the nodes' job;
* in the **request phase** she listens with probability
  ``c·ln n / ((1 - e^{-4ε'}) · 2^{(b/2+1)i})`` and terminates the protocol if
  she hears at most ``5·c·ln n`` noisy slots (few surviving nacks means almost
  everyone has the message).

The class holds no mutable state; the orchestrator queries it when building
phase plans.
"""

from __future__ import annotations

import math

from ..simulation.phaseplan import clip_probability
from .params import ProtocolParameters

__all__ = ["AlicePolicy"]


class AlicePolicy:
    """Computes Alice's send/listen probabilities for each phase of a round.

    Parameters
    ----------
    params:
        The protocol constants.
    n:
        Network size used inside the probability formulas.  The §4.2 variant
        passes a (possibly over-)estimate here instead of the true ``n``.
    figure:
        ``1`` to use the ``k = 2`` pseudocode probabilities (Figure 1) or
        ``2`` for the general-``k`` pseudocode (Figure 2).
    """

    def __init__(self, params: ProtocolParameters, n: int, figure: int = 1) -> None:
        if figure not in (1, 2):
            raise ValueError(f"figure must be 1 or 2, got {figure}")
        self.params = params
        self.n = n
        self.figure = figure

    @property
    def log_n(self) -> float:
        return math.log(max(self.n, 2))

    def inform_send_probability(self, round_index: int) -> float:
        """Probability Alice transmits ``m`` in each inform-phase slot."""

        params = self.params
        if self.figure == 1:
            raw = 2.0 * self.log_n / (2.0 ** (params.b_value * round_index))
        else:
            raw = 2.0 * params.c * (self.log_n ** params.k) / (2.0 ** round_index)
        return clip_probability(raw)

    def request_listen_probability(self, round_index: int) -> float:
        """Probability Alice listens in each request-phase slot.

        The denominator matches the request-phase length of the pseudocode in
        use — ``2^{(b/2+1)i}`` for Figure 1, ``2^{(1+1/k)i}`` for Figure 2 —
        so that Alice's expected number of listening slots per request phase
        is ``c·ln n / (1 - e^{-4ε'})`` regardless of the round.
        """

        params = self.params
        if self.figure == 1:
            exponent = (params.b_value / 2.0 + 1.0) * round_index
        else:
            exponent = (1.0 + 1.0 / params.k) * round_index
        denominator = (1.0 - math.exp(-4.0 * params.epsilon_prime)) * (2.0 ** exponent)
        raw = params.c * self.log_n / denominator
        return clip_probability(raw)

    def termination_threshold(self) -> float:
        """Alice terminates when she hears at most this many noisy slots."""

        return self.params.termination_threshold(self.n)

    def request_phase_length(self, round_index: int) -> int:
        """Length of the request phase under the pseudocode in use."""

        if self.figure == 1:
            return self.params.request_phase_length(round_index)
        return self.params.phase_length(round_index)

    def min_reliable_termination_round(self, margin: float = 1.5) -> int:
        """First round where the noisy-slot statistic reliably discriminates.

        The paper's analysis assumes ``i ≥ 3·lg ln n`` *and* n large enough
        that the expected number of noisy slots heard while many nodes are
        still uninformed clears the ``5·c·ln n`` threshold with room to spare.
        At laptop-scale ``n`` the second condition can bind later than the
        first, so the orchestrator only allows termination once the expected
        count (with the whole network still nacking) exceeds ``margin`` times
        the threshold.
        """

        p_busy = 1.0 - (1.0 - 1.0 / self.n) ** self.n
        max_round = self.params.resolved_max_round(self.n)
        for round_index in range(self.params.start_round, max_round + 1):
            expected = (
                self.request_listen_probability(round_index)
                * self.request_phase_length(round_index)
                * p_busy
            )
            if expected >= margin * self.termination_threshold():
                return round_index
        return max_round

    def earliest_termination_round(self) -> int:
        """The first round in which Alice's termination test may fire.

        Memoised like the receiver-side twin: a pure function of the
        immutable policy parameters, consulted once per request phase.
        """

        cached = getattr(self, "_earliest_termination_round", None)
        if cached is None:
            cached = max(
                self.params.resolved_min_termination_round(self.n),
                self.min_reliable_termination_round(),
            )
            self._earliest_termination_round = cached
        return cached

    def should_terminate(self, noisy_slots_heard: int, round_index: int) -> bool:
        """Alice's termination test for the end of a request phase."""

        if round_index < self.earliest_termination_round():
            return False
        return noisy_slots_heard <= self.termination_threshold()
