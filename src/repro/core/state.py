"""Per-node protocol state.

:class:`ProtocolState` tracks, for every correct node and for Alice, where it
is in the ε-Broadcast life cycle:

* **uninformed & active** — still listening for ``m``;
* **informed & active** — received ``m`` in the most recent phase and will
  relay it during the next propagation step before terminating;
* **terminated informed / terminated uninformed** — done, with or without the
  message (the latter is the ε-fraction the protocol is allowed to lose).

The orchestrators in :mod:`repro.core.broadcast` drive all transitions; the
state object only enforces their legality.

Storage is structure-of-arrays: one ``int8`` status-code array plus ``int64``
slot/round ledgers, so the hot-path queries (`active_uninformed_array`,
`active_informed_array`, the counts) are numpy mask operations instead of
dict scans.  The sorted active-id arrays are cached and invalidated by a
transition counter — repeated reads between transitions return the *same*
array object, which the relay-retirement hot path relies on.  Dict-shaped
views (``statuses``, ``informed_at_slot``, ``terminated_at_round``) are kept
for observers; they are read-only adapters over the arrays.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterable, Iterator, Optional, Set, Tuple

import numpy as np

from ..simulation.errors import ProtocolViolationError

__all__ = ["NodeStatus", "ProtocolState"]


class NodeStatus(enum.Enum):
    """Life-cycle status of a correct node."""

    UNINFORMED = "uninformed"
    INFORMED = "informed"
    TERMINATED_INFORMED = "terminated_informed"
    TERMINATED_UNINFORMED = "terminated_uninformed"

    @property
    def is_terminated(self) -> bool:
        return self in (NodeStatus.TERMINATED_INFORMED, NodeStatus.TERMINATED_UNINFORMED)

    @property
    def is_informed(self) -> bool:
        return self in (NodeStatus.INFORMED, NodeStatus.TERMINATED_INFORMED)


# Status codes for the structure-of-arrays backing store.
_UNINFORMED = 0
_INFORMED = 1
_TERM_INFORMED = 2
_TERM_UNINFORMED = 3

_CODE_TO_STATUS = {
    _UNINFORMED: NodeStatus.UNINFORMED,
    _INFORMED: NodeStatus.INFORMED,
    _TERM_INFORMED: NodeStatus.TERMINATED_INFORMED,
    _TERM_UNINFORMED: NodeStatus.TERMINATED_UNINFORMED,
}


class _StatusView:
    """Read-only dict-shaped view over the status-code array."""

    __slots__ = ("_codes",)

    def __init__(self, codes: np.ndarray) -> None:
        self._codes = codes

    def __getitem__(self, node_id: int) -> NodeStatus:
        if not 0 <= node_id < self._codes.size:
            raise KeyError(node_id)
        return _CODE_TO_STATUS[int(self._codes[node_id])]

    def get(self, node_id: int, default: Optional[NodeStatus] = None) -> Optional[NodeStatus]:
        if not 0 <= node_id < self._codes.size:
            return default
        return _CODE_TO_STATUS[int(self._codes[node_id])]

    def __len__(self) -> int:
        return self._codes.size

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._codes.size))

    def __contains__(self, node_id: object) -> bool:
        return isinstance(node_id, int) and 0 <= node_id < self._codes.size

    def keys(self) -> Iterator[int]:
        return iter(range(self._codes.size))

    def values(self) -> Iterator[NodeStatus]:
        for code in self._codes:
            yield _CODE_TO_STATUS[int(code)]

    def items(self) -> Iterator[Tuple[int, NodeStatus]]:
        for node_id, code in enumerate(self._codes):
            yield node_id, _CODE_TO_STATUS[int(code)]


class _LedgerView:
    """Read-only dict-shaped view over an ``int64`` ledger with ``-1`` = unset."""

    __slots__ = ("_values",)

    def __init__(self, values: np.ndarray) -> None:
        self._values = values

    def __getitem__(self, node_id: int) -> int:
        if not 0 <= node_id < self._values.size or self._values[node_id] < 0:
            raise KeyError(node_id)
        return int(self._values[node_id])

    def get(self, node_id: int, default: Optional[int] = None) -> Optional[int]:
        if not 0 <= node_id < self._values.size or self._values[node_id] < 0:
            return default
        return int(self._values[node_id])

    def __len__(self) -> int:
        return int(np.count_nonzero(self._values >= 0))

    def __contains__(self, node_id: object) -> bool:
        return (
            isinstance(node_id, int)
            and 0 <= node_id < self._values.size
            and self._values[node_id] >= 0
        )

    def __iter__(self) -> Iterator[int]:
        return iter(np.flatnonzero(self._values >= 0).tolist())

    def keys(self) -> Iterator[int]:
        return iter(self)

    def values(self) -> Iterator[int]:
        for node_id in np.flatnonzero(self._values >= 0):
            yield int(self._values[node_id])

    def items(self) -> Iterator[Tuple[int, int]]:
        for node_id in np.flatnonzero(self._values >= 0):
            yield int(node_id), int(self._values[node_id])


class ProtocolState:
    """Mutable protocol state for one execution (structure-of-arrays)."""

    __slots__ = (
        "n",
        "alice_terminated",
        "alice_terminated_at_round",
        "quiet_streaks",
        "_codes",
        "_informed_at_slot",
        "_terminated_at_round",
        "_version",
        "_cache_version",
        "_cached_uninformed",
        "_cached_informed",
    )

    def __init__(self, n: int) -> None:
        self.n = n
        self.alice_terminated = False
        self.alice_terminated_at_round: Optional[int] = None
        # Per-node quiet-rule retry state: quiet_streaks[i] counts the request
        # phases node i has completed while still uninformed (every one of
        # them is quiet or nack-only — a request phase never carries the
        # message).  Living on the per-run state, the counters reset with
        # every run by construction; a reused orchestrator cannot leak a
        # previous run's count.
        self.quiet_streaks = np.zeros(n, dtype=np.int64)
        self._codes = np.zeros(n, dtype=np.int8)
        self._informed_at_slot = np.full(n, -1, dtype=np.int64)
        self._terminated_at_round = np.full(n, -1, dtype=np.int64)
        # Transition counter invalidating the cached active-id arrays.
        self._version = 0
        self._cache_version = -1
        self._cached_uninformed: Optional[np.ndarray] = None
        self._cached_informed: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Queries                                                             #
    # ------------------------------------------------------------------ #

    @property
    def statuses(self) -> _StatusView:
        """Dict-shaped view ``{node_id: NodeStatus}`` over the code array."""

        return _StatusView(self._codes)

    @property
    def informed_at_slot(self) -> _LedgerView:
        """Dict-shaped view ``{node_id: slot}`` for nodes that received ``m``."""

        return _LedgerView(self._informed_at_slot)

    @property
    def terminated_at_round(self) -> _LedgerView:
        """Dict-shaped view ``{node_id: round}`` for terminated nodes."""

        return _LedgerView(self._terminated_at_round)

    def status(self, node_id: int) -> NodeStatus:
        return _CODE_TO_STATUS[int(self._codes[node_id])]

    def _refresh_cache(self) -> None:
        if self._cache_version != self._version:
            # np.flatnonzero returns ascending ids — already sorted, so
            # downstream termination order is deterministic.
            self._cached_uninformed = np.flatnonzero(self._codes == _UNINFORMED)
            self._cached_informed = np.flatnonzero(self._codes == _INFORMED)
            self._cached_uninformed.setflags(write=False)
            self._cached_informed.setflags(write=False)
            self._cache_version = self._version

    def active_uninformed(self) -> FrozenSet[int]:
        """Nodes still executing the protocol without the message."""

        self._refresh_cache()
        return frozenset(self._cached_uninformed.tolist())

    def active_informed(self) -> FrozenSet[int]:
        """Nodes holding the message that have not yet terminated (relays)."""

        self._refresh_cache()
        return frozenset(self._cached_informed.tolist())

    def active_uninformed_array(self) -> np.ndarray:
        """:meth:`active_uninformed` as a sorted read-only ``int64`` array.

        The vectorised view the quiet-rule machinery indexes budget and
        streak arrays with.  Cached between transitions: repeated calls
        return the *same* array object until the state mutates, so hot
        paths can call this every phase without re-materialising sets.
        """

        self._refresh_cache()
        return self._cached_uninformed

    def active_informed_array(self) -> np.ndarray:
        """:meth:`active_informed` as a sorted read-only ``int64`` array.

        Same caching contract as :meth:`active_uninformed_array`; this is
        the relay frontier the multi-hop orchestrator serves to the engine
        and to relay retirement without rebuilding sorted sets.
        """

        self._refresh_cache()
        return self._cached_informed

    def record_unserved_request_phase(self, node_ids: np.ndarray) -> np.ndarray:
        """Bump the quiet streak of every node in ``node_ids``; returns the array.

        Called once per request phase with the still-uninformed cohort; the
        returned array is the live per-node streak state (indexed by node id).
        """

        self.quiet_streaks[node_ids] += 1
        return self.quiet_streaks

    def active_uninformed_count(self) -> int:
        return int(np.count_nonzero(self._codes == _UNINFORMED))

    def active_informed_count(self) -> int:
        return int(np.count_nonzero(self._codes == _INFORMED))

    def informed_count(self) -> int:
        return int(
            np.count_nonzero((self._codes == _INFORMED) | (self._codes == _TERM_INFORMED))
        )

    def terminated_informed_count(self) -> int:
        return int(np.count_nonzero(self._codes == _TERM_INFORMED))

    def terminated_uninformed_count(self) -> int:
        return int(np.count_nonzero(self._codes == _TERM_UNINFORMED))

    def all_nodes_terminated(self) -> bool:
        return bool(np.all(self._codes >= _TERM_INFORMED))

    def everyone_done(self) -> bool:
        """Protocol-over condition: Alice and every correct node terminated."""

        return self.alice_terminated and self.all_nodes_terminated()

    # ------------------------------------------------------------------ #
    # Transitions                                                         #
    # ------------------------------------------------------------------ #

    def _as_id_array(self, node_ids: Iterable[int]) -> np.ndarray:
        ids = np.asarray(
            node_ids if isinstance(node_ids, np.ndarray) else list(node_ids), dtype=np.int64
        )
        if ids.size and (ids.min() < 0 or ids.max() >= self.n):
            bad = ids[(ids < 0) | (ids >= self.n)][0]
            raise ProtocolViolationError(f"unknown node id {bad}")
        return ids

    def mark_informed(self, node_ids: Iterable[int], slot: int) -> Set[int]:
        """Transition ``UNINFORMED -> INFORMED``; returns the ids that changed."""

        ids = self._as_id_array(node_ids)
        if ids.size == 0:
            return set()
        codes = self._codes[ids]
        terminated = ids[codes >= _TERM_INFORMED]
        if terminated.size:
            node_id = int(terminated[0])
            raise ProtocolViolationError(
                f"node {node_id} received m after terminating ({self.status(node_id).value})"
            )
        # Receiving a duplicate copy (already INFORMED) is harmless.
        fresh = ids[codes == _UNINFORMED]
        if fresh.size == 0:
            return set()
        self._codes[fresh] = _INFORMED
        self._informed_at_slot[fresh] = slot
        self._version += 1
        return set(fresh.tolist())

    def terminate_informed(self, node_ids: Iterable[int], round_index: int) -> None:
        """Transition ``INFORMED -> TERMINATED_INFORMED``."""

        ids = self._as_id_array(node_ids)
        if ids.size == 0:
            return
        codes = self._codes[ids]
        illegal = ids[(codes == _UNINFORMED) | (codes == _TERM_UNINFORMED)]
        if illegal.size:
            node_id = int(illegal[0])
            raise ProtocolViolationError(
                f"cannot terminate node {node_id} as informed from status "
                f"{self.status(node_id).value}"
            )
        fresh = ids[codes == _INFORMED]
        if fresh.size == 0:
            return
        self._codes[fresh] = _TERM_INFORMED
        self._terminated_at_round[fresh] = round_index
        self._version += 1

    def terminate_uninformed(self, node_ids: Iterable[int], round_index: int) -> None:
        """Transition ``UNINFORMED -> TERMINATED_UNINFORMED`` (the ε-loss path)."""

        ids = self._as_id_array(node_ids)
        if ids.size == 0:
            return
        codes = self._codes[ids]
        illegal = ids[(codes == _INFORMED) | (codes == _TERM_INFORMED)]
        if illegal.size:
            node_id = int(illegal[0])
            raise ProtocolViolationError(
                f"cannot terminate node {node_id} as uninformed from status "
                f"{self.status(node_id).value}"
            )
        fresh = ids[codes == _UNINFORMED]
        if fresh.size == 0:
            return
        self._codes[fresh] = _TERM_UNINFORMED
        self._terminated_at_round[fresh] = round_index
        self._version += 1

    def terminate_alice(self, round_index: int) -> None:
        if not self.alice_terminated:
            self.alice_terminated = True
            self.alice_terminated_at_round = round_index
