"""Per-node protocol state.

:class:`ProtocolState` tracks, for every correct node and for Alice, where it
is in the ε-Broadcast life cycle:

* **uninformed & active** — still listening for ``m``;
* **informed & active** — received ``m`` in the most recent phase and will
  relay it during the next propagation step before terminating;
* **terminated informed / terminated uninformed** — done, with or without the
  message (the latter is the ε-fraction the protocol is allowed to lose).

The orchestrators in :mod:`repro.core.broadcast` drive all transitions; the
state object only enforces their legality.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Set

import numpy as np

from ..simulation.errors import ProtocolViolationError

__all__ = ["NodeStatus", "ProtocolState"]


class NodeStatus(enum.Enum):
    """Life-cycle status of a correct node."""

    UNINFORMED = "uninformed"
    INFORMED = "informed"
    TERMINATED_INFORMED = "terminated_informed"
    TERMINATED_UNINFORMED = "terminated_uninformed"

    @property
    def is_terminated(self) -> bool:
        return self in (NodeStatus.TERMINATED_INFORMED, NodeStatus.TERMINATED_UNINFORMED)

    @property
    def is_informed(self) -> bool:
        return self in (NodeStatus.INFORMED, NodeStatus.TERMINATED_INFORMED)


@dataclass
class ProtocolState:
    """Mutable protocol state for one execution."""

    n: int
    statuses: Dict[int, NodeStatus] = field(default_factory=dict)
    informed_at_slot: Dict[int, int] = field(default_factory=dict)
    terminated_at_round: Dict[int, int] = field(default_factory=dict)
    alice_terminated: bool = False
    alice_terminated_at_round: Optional[int] = None
    # Per-node quiet-rule retry state: quiet_streaks[i] counts the request
    # phases node i has completed while still uninformed (every one of them
    # is quiet or nack-only — a request phase never carries the message).
    # Living on the per-run state, the counters reset with every run by
    # construction; a reused orchestrator cannot leak a previous run's count.
    quiet_streaks: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if not self.statuses:
            self.statuses = {node_id: NodeStatus.UNINFORMED for node_id in range(self.n)}
        if self.quiet_streaks is None:
            self.quiet_streaks = np.zeros(self.n, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Queries                                                             #
    # ------------------------------------------------------------------ #

    def status(self, node_id: int) -> NodeStatus:
        return self.statuses[node_id]

    def active_uninformed(self) -> FrozenSet[int]:
        """Nodes still executing the protocol without the message."""

        return frozenset(
            node_id
            for node_id, status in self.statuses.items()
            if status is NodeStatus.UNINFORMED
        )

    def active_informed(self) -> FrozenSet[int]:
        """Nodes holding the message that have not yet terminated (relays)."""

        return frozenset(
            node_id for node_id, status in self.statuses.items() if status is NodeStatus.INFORMED
        )

    def active_uninformed_array(self) -> np.ndarray:
        """:meth:`active_uninformed` as a sorted ``int64`` array.

        The vectorised view the quiet-rule machinery indexes budget and
        streak arrays with; sorted so downstream termination order is
        deterministic.
        """

        return np.fromiter(
            (
                node_id
                for node_id in range(self.n)
                if self.statuses[node_id] is NodeStatus.UNINFORMED
            ),
            dtype=np.int64,
        )

    def record_unserved_request_phase(self, node_ids: np.ndarray) -> np.ndarray:
        """Bump the quiet streak of every node in ``node_ids``; returns the array.

        Called once per request phase with the still-uninformed cohort; the
        returned array is the live per-node streak state (indexed by node id).
        """

        self.quiet_streaks[node_ids] += 1
        return self.quiet_streaks

    def informed_count(self) -> int:
        return sum(1 for status in self.statuses.values() if status.is_informed)

    def terminated_informed_count(self) -> int:
        return sum(1 for status in self.statuses.values() if status is NodeStatus.TERMINATED_INFORMED)

    def terminated_uninformed_count(self) -> int:
        return sum(
            1 for status in self.statuses.values() if status is NodeStatus.TERMINATED_UNINFORMED
        )

    def all_nodes_terminated(self) -> bool:
        return all(status.is_terminated for status in self.statuses.values())

    def everyone_done(self) -> bool:
        """Protocol-over condition: Alice and every correct node terminated."""

        return self.alice_terminated and self.all_nodes_terminated()

    # ------------------------------------------------------------------ #
    # Transitions                                                         #
    # ------------------------------------------------------------------ #

    def mark_informed(self, node_ids: Iterable[int], slot: int) -> Set[int]:
        """Transition ``UNINFORMED -> INFORMED``; returns the ids that changed."""

        changed: Set[int] = set()
        for node_id in node_ids:
            status = self.statuses.get(node_id)
            if status is None:
                raise ProtocolViolationError(f"unknown node id {node_id}")
            if status is NodeStatus.UNINFORMED:
                self.statuses[node_id] = NodeStatus.INFORMED
                self.informed_at_slot[node_id] = slot
                changed.add(node_id)
            elif status is NodeStatus.INFORMED:
                # Receiving a duplicate copy is harmless.
                continue
            else:
                raise ProtocolViolationError(
                    f"node {node_id} received m after terminating ({status.value})"
                )
        return changed

    def terminate_informed(self, node_ids: Iterable[int], round_index: int) -> None:
        """Transition ``INFORMED -> TERMINATED_INFORMED``."""

        for node_id in node_ids:
            status = self.statuses.get(node_id)
            if status is None:
                raise ProtocolViolationError(f"unknown node id {node_id}")
            if status is NodeStatus.INFORMED:
                self.statuses[node_id] = NodeStatus.TERMINATED_INFORMED
                self.terminated_at_round[node_id] = round_index
            elif status is NodeStatus.TERMINATED_INFORMED:
                continue
            else:
                raise ProtocolViolationError(
                    f"cannot terminate node {node_id} as informed from status {status.value}"
                )

    def terminate_uninformed(self, node_ids: Iterable[int], round_index: int) -> None:
        """Transition ``UNINFORMED -> TERMINATED_UNINFORMED`` (the ε-loss path)."""

        for node_id in node_ids:
            status = self.statuses.get(node_id)
            if status is None:
                raise ProtocolViolationError(f"unknown node id {node_id}")
            if status is NodeStatus.UNINFORMED:
                self.statuses[node_id] = NodeStatus.TERMINATED_UNINFORMED
                self.terminated_at_round[node_id] = round_index
            elif status is NodeStatus.TERMINATED_UNINFORMED:
                continue
            else:
                raise ProtocolViolationError(
                    f"cannot terminate node {node_id} as uninformed from status {status.value}"
                )

    def terminate_alice(self, round_index: int) -> None:
        if not self.alice_terminated:
            self.alice_terminated = True
            self.alice_terminated_at_round = round_index
