"""Round schedules: turning the pseudocode of Figures 1 and 2 into phase plans.

:class:`ScheduleBuilder` assembles, for each round ``i``, the list of
:class:`~repro.simulation.phaseplan.PhasePlan` objects the engines execute:

* one **inform** phase of ``2^{(a+b)i}`` slots,
* ``k - 1`` **propagation** steps of the same length (one step for ``k = 2``,
  matching Figure 1),
* one **request** phase of ``2^{(b/2+1)i}`` slots (Figure 1) or
  ``2^{(1+1/k)i}`` slots (Figure 2).

All per-slot probabilities come from :class:`~repro.core.alice.AlicePolicy`
and :class:`~repro.core.receiver.ReceiverPolicy`, so protocol variants only
need to swap the policies (or override :meth:`ScheduleBuilder.round_phases`).
"""

from __future__ import annotations

from typing import List

from ..simulation.phaseplan import PhaseKind, PhasePlan
from .alice import AlicePolicy
from .params import ProtocolParameters
from .receiver import ReceiverPolicy

__all__ = ["ScheduleBuilder"]


class ScheduleBuilder:
    """Builds the per-round phase plans of ε-Broadcast.

    Parameters
    ----------
    params:
        Protocol constants (``k``, ``a``, ``b``, ``c``, ``ε'``, round window).
    alice:
        Alice's probability policy.
    receiver:
        The correct nodes' probability policy.
    figure:
        ``1`` for the ``k = 2`` pseudocode of Figure 1, ``2`` for the general
        ``k`` pseudocode of Figure 2.
    """

    def __init__(
        self,
        params: ProtocolParameters,
        alice: AlicePolicy,
        receiver: ReceiverPolicy,
        figure: int = 1,
    ) -> None:
        if figure not in (1, 2):
            raise ValueError(f"figure must be 1 or 2, got {figure}")
        self.params = params
        self.alice = alice
        self.receiver = receiver
        self.figure = figure

    # ------------------------------------------------------------------ #
    # Phase construction                                                  #
    # ------------------------------------------------------------------ #

    def inform_phase(self, round_index: int) -> PhasePlan:
        """The inform phase of round ``i``: Alice seeds the set ``S_{i,1}``."""

        return PhasePlan(
            name="inform",
            kind=PhaseKind.INFORM,
            round_index=round_index,
            num_slots=self.params.phase_length(round_index),
            alice_send_prob=self.alice.inform_send_probability(round_index),
            uninformed_listen_prob=self.receiver.inform_listen_probability(round_index),
            decoy_send_prob=self.receiver.decoy_send_probability(round_index),
        )

    def propagation_step(self, round_index: int, step: int) -> PhasePlan:
        """One propagation step of round ``i``.

        Steps beyond ``k - 1`` carry the same per-slot probabilities — the
        pipelined multi-hop orchestrator appends them while fresh frontiers
        remain in flight (see :class:`~repro.core.broadcast.MultiHopBroadcast`).
        """

        return PhasePlan(
            name=f"propagation:{step}",
            kind=PhaseKind.PROPAGATION,
            round_index=round_index,
            num_slots=self.params.phase_length(round_index),
            step=step,
            relay_send_prob=self.receiver.relay_send_probability(round_index),
            uninformed_listen_prob=self.receiver.propagation_listen_probability(round_index),
            decoy_send_prob=self.receiver.decoy_send_probability(round_index),
        )

    def propagation_steps(self, round_index: int) -> List[PhasePlan]:
        """The ``k - 1`` propagation steps of round ``i``."""

        return [self.propagation_step(round_index, step) for step in range(1, self.params.k)]

    def request_phase(self, round_index: int) -> PhasePlan:
        """The request phase of round ``i``: nacks, listening, termination."""

        if self.figure == 1:
            num_slots = self.params.request_phase_length(round_index)
        else:
            num_slots = self.params.phase_length(round_index)
        return PhasePlan(
            name="request",
            kind=PhaseKind.REQUEST,
            round_index=round_index,
            num_slots=num_slots,
            alice_listen_prob=self.alice.request_listen_probability(round_index),
            uninformed_listen_prob=self.receiver.request_listen_probability(round_index),
            nack_send_prob=self.receiver.nack_send_probability(round_index),
        )

    def round_phases(self, round_index: int) -> List[PhasePlan]:
        """All phases of round ``i``, in execution order."""

        phases = [self.inform_phase(round_index)]
        phases.extend(self.propagation_steps(round_index))
        phases.append(self.request_phase(round_index))
        return phases

    def round_length(self, round_index: int) -> int:
        """Total number of slots in round ``i``."""

        return sum(plan.num_slots for plan in self.round_phases(round_index))
