"""High-level convenience API.

Most users only need two calls::

    from repro import run_broadcast
    outcome = run_broadcast(n=512, adversary="phase_blocker", seed=1)
    print(outcome.summary())

:func:`run_broadcast` assembles the configuration, adversary, and protocol
variant from plain keyword arguments; :func:`make_adversary` exposes the
adversary catalogue by name so experiments and examples can sweep strategies
from strings.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from ..adversary import (
    Adversary,
    BurstyJammer,
    ContinuousJammer,
    MobileJammer,
    MultiDiskJammer,
    NullAdversary,
    NUniformSplitAdversary,
    Orbit,
    PhaseBlockingAdversary,
    RandomJammer,
    ReactiveDiskJammer,
    ReactiveJammer,
    RequestSpoofingAdversary,
    SpatialJammer,
    SpoofingAdversary,
)
from ..simulation.config import SimulationConfig
from ..simulation.errors import ConfigurationError
from ..simulation.topology import TopologySpec
from .broadcast import EpsilonBroadcast, MultiHopBroadcast
from .decoy import DecoyBroadcast
from .estimation import SizeEstimateBroadcast
from .general_k import GeneralKBroadcast
from .outcome import BroadcastOutcome
from .params import ProtocolParameters

__all__ = ["run_broadcast", "make_adversary", "ADVERSARY_CATALOGUE", "PROTOCOL_VARIANTS"]


ADVERSARY_CATALOGUE: Dict[str, Type[Adversary]] = {
    "none": NullAdversary,
    "continuous": ContinuousJammer,
    "random": RandomJammer,
    "bursty": BurstyJammer,
    "phase_blocker": PhaseBlockingAdversary,
    "nuniform_split": NUniformSplitAdversary,
    "request_spoofer": RequestSpoofingAdversary,
    "reactive": ReactiveJammer,
    "spoofing": SpoofingAdversary,
    "spatial": SpatialJammer,
    "mobile": MobileJammer,
    "multi_disk": MultiDiskJammer,
    "reactive_disk": ReactiveDiskJammer,
}
"""Adversary strategies addressable by name."""

PROTOCOL_VARIANTS = {
    "epsilon-broadcast": EpsilonBroadcast,
    "general-k": GeneralKBroadcast,
    "decoy": DecoyBroadcast,
    "size-estimate": SizeEstimateBroadcast,
    "multihop": MultiHopBroadcast,
}
"""Protocol variants addressable by name."""


def make_adversary(name: str, **kwargs: object) -> Adversary:
    """Construct an adversary from the catalogue by name.

    Extra keyword arguments are forwarded to the strategy's constructor, with
    lightweight defaults filled in for strategies that require arguments
    (``rate`` for the random jammer, burst geometry for the bursty jammer,
    ``target_uninformed`` for the n-uniform splitter).
    """

    if name not in ADVERSARY_CATALOGUE:
        raise ConfigurationError(
            f"unknown adversary {name!r}; available: {sorted(ADVERSARY_CATALOGUE)}"
        )
    cls = ADVERSARY_CATALOGUE[name]
    if cls is RandomJammer:
        kwargs.setdefault("rate", 0.5)
    elif cls is BurstyJammer:
        kwargs.setdefault("burst_length", 32)
        kwargs.setdefault("period", 64)
    elif cls is NUniformSplitAdversary:
        kwargs.setdefault("target_uninformed", 0)
    elif cls is MobileJammer:
        kwargs.setdefault("trajectory", Orbit())
    elif cls is MultiDiskJammer:
        kwargs.setdefault("centers", [(0.25, 0.25), (0.75, 0.75)])
    return cls(**kwargs)  # type: ignore[arg-type]


def run_broadcast(
    n: int,
    adversary: str | Adversary = "none",
    k: int = 2,
    f: float = 1.0,
    epsilon: float = 0.1,
    seed: int = 0,
    variant: str = "epsilon-broadcast",
    engine: str = "fast",
    adversary_kwargs: Optional[dict] = None,
    config: Optional[SimulationConfig] = None,
    params: Optional[ProtocolParameters] = None,
    topology: str | TopologySpec | None = None,
    topology_kwargs: Optional[dict] = None,
    **variant_kwargs: object,
) -> BroadcastOutcome:
    """Run one ε-Broadcast execution and return its outcome.

    Parameters
    ----------
    n, k, f, epsilon, seed:
        Shortcut model parameters; ignored when an explicit ``config`` is
        passed.
    adversary:
        Either a strategy name from :data:`ADVERSARY_CATALOGUE` or an already
        constructed :class:`~repro.adversary.Adversary`.
    variant:
        Protocol variant name from :data:`PROTOCOL_VARIANTS`.  Use
        ``"multihop"`` for spatial topologies so informed nodes relay hop by
        hop.
    engine:
        ``"fast"`` or ``"slot"``.
    adversary_kwargs:
        Extra constructor arguments when ``adversary`` is given by name.
    topology:
        Optional topology: a kind name (``"gilbert"``, ``"scale_free"``) or a
        full :class:`~repro.simulation.topology.TopologySpec`.  Mutually
        exclusive with an explicit ``config`` (put the spec on the config
        instead); combining the two raises ``ConfigurationError``.
    topology_kwargs:
        Extra :class:`~repro.simulation.topology.TopologySpec` fields when
        ``topology`` is given by name (e.g. ``radius=0.2``).
    variant_kwargs:
        Extra constructor arguments for the protocol variant (e.g.
        ``size_estimate=n**2`` for the ``"size-estimate"`` variant).
    """

    if config is not None:
        if topology is not None or topology_kwargs is not None:
            raise ConfigurationError(
                "topology/topology_kwargs cannot be combined with an explicit config; "
                "pass SimulationConfig(topology=TopologySpec(...)) instead"
            )
    else:
        topology_spec: Optional[TopologySpec] = None
        if isinstance(topology, TopologySpec):
            if topology_kwargs is not None:
                raise ConfigurationError(
                    "topology_kwargs only applies when topology is a kind name; "
                    "put the fields on the TopologySpec instead"
                )
            topology_spec = topology
        elif topology is not None:
            try:
                topology_spec = TopologySpec(kind=topology, **(topology_kwargs or {}))  # type: ignore[arg-type]
            except TypeError as exc:
                raise ConfigurationError(
                    f"invalid topology_kwargs for topology {topology!r}: {exc}"
                ) from exc
        elif topology_kwargs is not None:
            raise ConfigurationError(
                "topology_kwargs given without topology; pass topology='gilbert' "
                "or topology='scale_free'"
            )
        config = SimulationConfig(
            n=n, f=f, k=k, epsilon=epsilon, seed=seed, topology=topology_spec
        )
    if variant not in PROTOCOL_VARIANTS:
        raise ConfigurationError(
            f"unknown protocol variant {variant!r}; available: {sorted(PROTOCOL_VARIANTS)}"
        )
    if isinstance(adversary, str):
        adversary_obj = make_adversary(adversary, **(adversary_kwargs or {}))
    else:
        adversary_obj = adversary

    protocol_cls = PROTOCOL_VARIANTS[variant]
    protocol = protocol_cls(
        config,
        adversary=adversary_obj,
        params=params,
        engine=engine,
        **variant_kwargs,  # type: ignore[arg-type]
    )
    return protocol.run()
