"""Termination (quiet-rule) policies for the multi-hop request phase.

§2.2's termination protocol lets an uninformed node stop once a request phase
sounds quiet: with every transmission audible to every listener, "my channel
is quiet" and "almost nobody still wants the message" are the same statement.
Over a spatial :class:`~repro.simulation.topology.Topology` they are not, and
the rule misfires in both directions:

* **early give-up** — a node with a handful of radio neighbours hears a
  handful of nacks; its channel sounds quiet against the global ``5·c·ln n``
  threshold even while its whole component is still waiting, so it abandons a
  message that is actively relaying towards it (the near-threshold
  ``delivery_vs_reachable`` dip of E11);
* **mutual sustain** — nodes in a multi-node component *without* Alice keep
  hearing each other's nacks, never see a quiet phase, and run to the round
  cap, overspending their budgets by orders of magnitude (the sub-threshold
  ``mean_node_cost`` blowup of E11).

A :class:`QuietRule` decides, per node, when to give up instead.  The policy
is two numbers per node, both pure functions of the immutable realised graph:

* whether the paper's **channel-quiet test** still applies (it is only
  meaningful when the audible population is Θ(n)), and
* a **request-phase budget**: how many consecutive quiet/nack-only request
  phases the node sits through before giving up.  Every request phase an
  uninformed node completes is quiet or nack-only — the protocol never
  delivers ``m`` during a request phase — so the budget bounds the node's
  futile patience; ``inf`` means unlimited (the round cap bounds the run).

The rules themselves:

* :class:`PaperQuietRule` — the unmodified §2.2 behaviour (channel test, no
  budget).  Bit-identical to the pre-rule orchestrator.
* :class:`ConstantQuietRule` — the paper rule plus one global budget for
  every node.  ``MultiHopBroadcast(max_quiet_retries=R)`` is a deprecated
  alias for this rule and remains bit-identical to the old retry cap.
* :class:`DegreeAwareQuietRule` (the default) — budgets derived from each
  node's *local neighbourhood size*.  The Gilbert-graph limit theory
  (arXiv:1312.4861) says local neighbourhood counts concentrate around
  ``π r² n``, so the size of a node's ``hops``-ball is a local read on which
  side of the connectivity threshold its surroundings sit: inside a
  sub-critical fragment the ball is bounded by the (small) component, while
  in the giant component it is ≈ degree × mean degree.  Sub-critical
  neighbourhoods get a small budget (stop early, curing the blowup);
  super-critical ones get unlimited patience (curing the early give-up — the
  round cap, not local silence, ends them).  The scale-free construction of
  arXiv:1411.6824 is why the rule must be per-node rather than one global
  constant: heavy-tailed radii put hub and fringe neighbourhoods in the same
  graph.
"""

from __future__ import annotations

import abc
import math
import warnings
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..simulation.errors import ConfigurationError
from ..simulation.topology import Topology

__all__ = [
    "QuietRule",
    "PaperQuietRule",
    "ConstantQuietRule",
    "DegreeAwareQuietRule",
    "resolve_quiet_rule",
]


class QuietRule(abc.ABC):
    """When does an uninformed node stop asking for the message?

    Instances are immutable policy values (frozen dataclasses): picklable, so
    experiments can pass them as sweep parameters, and hashable/tokenisable
    for the trial cache.  The orchestrator owns all mutable state (the
    per-node streak counters live in
    :class:`~repro.core.state.ProtocolState`).
    """

    name: str = "quiet-rule"

    #: Whether the paper's channel-quiet test (``heard <= 5·c·ln n`` after the
    #: earliest reliable round) still terminates nodes.  Rules that replace it
    #: set this to ``False``; the test stays exact on single-hop topologies,
    #: which never consult a ``QuietRule`` at all.
    channel_quiet_test: bool = True

    @abc.abstractmethod
    def budgets(self, topology: Topology) -> np.ndarray:
        """Per-node request-phase budgets, shape ``(n,)``, dtype ``float64``.

        ``budgets[i]`` is how many request phases node ``i`` may complete
        while still uninformed before it gives up; ``np.inf`` disables the
        budget for that node.  Pure function of the realised topology —
        callers may cache the result for the lifetime of the run.
        """

    def describe(self) -> str:
        """One-line human-readable summary (used by experiment tables)."""

        return self.name


@dataclass(frozen=True)
class PaperQuietRule(QuietRule):
    """The unmodified §2.2 rule: channel-quiet test only, no budget."""

    name = "paper"
    channel_quiet_test = True

    def budgets(self, topology: Topology) -> np.ndarray:
        return np.full(topology.n, np.inf)


@dataclass(frozen=True)
class ConstantQuietRule(QuietRule):
    """The paper rule plus one global budget (the old ``max_quiet_retries``).

    Every active uninformed node takes part in every request phase, so one
    global budget caps each node's futile patience uniformly; outcomes are
    bit-identical to the run-level retry cap this rule replaces.
    """

    retries: int = 6

    name = "constant"
    channel_quiet_test = True

    def __post_init__(self) -> None:
        if not isinstance(self.retries, int) or self.retries < 1:
            raise ConfigurationError(
                f"ConstantQuietRule.retries must be a positive integer, got {self.retries!r}"
            )

    def budgets(self, topology: Topology) -> np.ndarray:
        return np.full(topology.n, float(self.retries))

    def describe(self) -> str:
        return f"constant(R={self.retries})"


@dataclass(frozen=True)
class DegreeAwareQuietRule(QuietRule):
    """Per-node budgets from the local neighbourhood size (the default).

    A node whose ``hops``-ball holds ``m`` devices gets

    ``budget(m) = base + ceil(coefficient · log2(1 + m))``

    request phases of patience — except that a ball of at least
    ``unlimited_factor · ln n`` devices reads as super-critical (the local
    neighbourhood count sits at or above the Gilbert connectivity scale
    ``ln n`` of arXiv:1312.4861), and such nodes never self-terminate: their
    component plausibly contains Alice, the message is plausibly still
    relaying towards them, and the round cap bounds their spend.

    With the default ``hops=3`` the ball is the three-hop neighbourhood: a
    sub-critical fragment bounds the ball by its own (small) size, while in
    the giant component the ball is ≈ degree × mean degree² and clears the
    cut even for fringe nodes whose plain degree would not.  ``hops=1``
    recovers the plain degree form ``base + ceil(c · log(deg+1))``.  Alice
    counts as a device in the ball (a node whose only neighbour is Alice is
    reachable, not isolated); an isolated node's ball is empty, so it gives
    up after ``base`` phases.

    The defaults are calibrated on the E11 sweep (and re-checked by the E13
    ablation): relative to the paper rule they cut the sub-threshold
    (0.6·r_c) mean node cost ~6–20× — within 2× of a uniform
    ``ConstantQuietRule(6)`` cap — while recovering the near-threshold
    ``delivery_vs_reachable`` dip.  The recovery is sweep-specific, not a
    guarantee: the E11 draws at n = 256 go 0.90 → 0.99, while the E13
    ablation's harder draws (cap-bound graphs where even never-giving-up
    tops out below 1) go 0.68 → 0.89.  The residual sub-1 sliver is the
    locally-undecidable class: a pendant chain of the giant component and
    the fringe of a large sub-critical fragment present identical
    ``hops``-balls, so any local rule must price one against the other.

    Parameters
    ----------
    coefficient, base:
        Budget-formula constants.  ``base`` bounds the patience of an
        isolated node and must be at least 1.
    hops:
        Neighbourhood radius the ball is measured over.
    unlimited_factor:
        Super-critical cut in units of ``ln n``; ``None`` disables the cut
        (every node gets a finite formula budget).
    protect_source_neighborhood:
        A node that knows Alice is nearby (within ``2·hops`` edges) is
        reachable by construction and gets unlimited patience regardless of
        ball size (default on).  Without it, members of small Alice
        components — sub-threshold nodes the protocol can and does inform —
        would give up on tiny budgets before the message crosses the last
        hops.  The protection is effectively free: protected nodes receive
        the message and terminate informed, so they never pay the
        run-to-the-cap cost.
    """

    coefficient: float = 1.25
    base: int = 1
    hops: int = 3
    unlimited_factor: Optional[float] = 1.8
    protect_source_neighborhood: bool = True

    name = "degree-aware"
    channel_quiet_test = False

    def __post_init__(self) -> None:
        if self.coefficient <= 0:
            raise ConfigurationError(
                f"DegreeAwareQuietRule.coefficient must be positive, got {self.coefficient}"
            )
        if not isinstance(self.base, int) or self.base < 1:
            raise ConfigurationError(
                f"DegreeAwareQuietRule.base must be an integer >= 1, got {self.base!r}"
            )
        if not isinstance(self.hops, int) or self.hops < 1:
            raise ConfigurationError(
                f"DegreeAwareQuietRule.hops must be an integer >= 1, got {self.hops!r}"
            )
        if self.unlimited_factor is not None and self.unlimited_factor <= 0:
            raise ConfigurationError(
                f"DegreeAwareQuietRule.unlimited_factor must be positive or None, "
                f"got {self.unlimited_factor}"
            )

    def budgets(self, topology: Topology) -> np.ndarray:
        if self.unlimited_factor is not None:
            # Only the threshold matters above the cut, so let the ball
            # computation saturate there: ball sizes below the cut stay
            # exact (identical budgets), and super-critical nodes stop
            # expanding the moment they clear it — the large-n fast path.
            cut = self.unlimited_factor * math.log(max(topology.n, 2))
            cap = int(math.ceil(cut))
            sizes = topology.neighborhood_sizes(self.hops, cap=cap).astype(np.float64)
        else:
            cut = None
            sizes = topology.neighborhood_sizes(self.hops).astype(np.float64)
        budgets = self.base + np.ceil(self.coefficient * np.log2(1.0 + sizes))
        if cut is not None:
            budgets = np.where(sizes >= cut, np.inf, budgets)
        if self.protect_source_neighborhood:
            budgets = np.where(topology.alice_within(2 * self.hops), np.inf, budgets)
        return budgets

    def describe(self) -> str:
        cut = "∞-cut off" if self.unlimited_factor is None else f"{self.unlimited_factor:g}·ln n"
        return (
            f"degree-aware(c={self.coefficient:g}, base={self.base}, "
            f"hops={self.hops}, unlimited at {cut})"
        )


_NAMED_RULES = {
    "paper": PaperQuietRule,
    "constant": ConstantQuietRule,
    "degree-aware": DegreeAwareQuietRule,
}


def resolve_quiet_rule(
    quiet_rule: Union[QuietRule, str, None],
    max_quiet_retries: Optional[int] = None,
) -> QuietRule:
    """Resolve the orchestrator's quiet-rule configuration.

    ``max_quiet_retries`` is the deprecated spelling of
    ``ConstantQuietRule(retries)`` and cannot be combined with an explicit
    ``quiet_rule``.  ``quiet_rule`` may be a :class:`QuietRule` instance or a
    rule name (``"paper"``, ``"constant"``, ``"degree-aware"``); ``None``
    selects the default :class:`DegreeAwareQuietRule`.
    """

    if max_quiet_retries is not None:
        if quiet_rule is not None:
            raise ConfigurationError(
                "pass either quiet_rule or the deprecated max_quiet_retries, not both"
            )
        if not isinstance(max_quiet_retries, int) or max_quiet_retries < 1:
            raise ConfigurationError(
                f"max_quiet_retries must be a positive integer or None, got {max_quiet_retries}"
            )
        warnings.warn(
            "max_quiet_retries is deprecated; pass "
            "quiet_rule=ConstantQuietRule(retries=...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return ConstantQuietRule(retries=max_quiet_retries)
    if quiet_rule is None:
        return DegreeAwareQuietRule()
    if isinstance(quiet_rule, str):
        cls = _NAMED_RULES.get(quiet_rule)
        if cls is None:
            raise ConfigurationError(
                f"unknown quiet rule {quiet_rule!r}; available: {sorted(_NAMED_RULES)}"
            )
        return cls()
    if not isinstance(quiet_rule, QuietRule):
        raise ConfigurationError(
            f"quiet_rule must be a QuietRule, a rule name, or None; got {quiet_rule!r}"
        )
    return quiet_rule
