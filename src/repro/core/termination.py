"""Request-phase termination logic.

§2.2 of the paper describes the termination protocol: during the request phase
uninformed nodes advertise their existence with nacks; a listener (Alice or a
node) that hears at most ``5·c·ln n`` noisy slots concludes that almost nobody
is left wanting the message and stops.  Because correct nodes cannot be
authenticated, Carol can delay termination by spoofing nacks or jamming — but
never *cause* premature termination, since silence cannot be forged.

This module applies those rules to a request phase's
:class:`~repro.simulation.phaseplan.PhaseResult` and reports exactly what
changed, so orchestrators stay small and the rules themselves are unit
testable in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Set

from ..simulation.phaseplan import PhaseResult
from .alice import AlicePolicy
from .receiver import ReceiverPolicy
from .state import ProtocolState

__all__ = ["RequestPhaseDecision", "apply_request_phase"]


@dataclass(frozen=True)
class RequestPhaseDecision:
    """The outcome of applying the termination rules after a request phase."""

    round_index: int
    terminated_nodes: FrozenSet[int]
    alice_terminated: bool
    alice_noisy_heard: int
    threshold: float
    nodes_evaluated: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def any_terminated(self) -> bool:
        return self.alice_terminated or bool(self.terminated_nodes)


def apply_request_phase(
    state: ProtocolState,
    result: PhaseResult,
    alice_policy: AlicePolicy,
    receiver_policy: ReceiverPolicy,
    round_index: int,
    node_channel_test: bool = True,
) -> RequestPhaseDecision:
    """Apply the request-phase termination rules and mutate ``state``.

    Every *active uninformed* node compares the number of noisy slots it heard
    against the ``5·c·ln n`` threshold and terminates (uninformed) if the
    channel looked quiet.  Alice does the same with her own count.  Nodes that
    hold the message have already terminated at the end of the propagation
    phase, so they take no part here.

    ``node_channel_test=False`` skips the node-side quiet test while keeping
    Alice's: the global threshold presumes a Θ(n) audible population, and the
    multi-hop orchestrator disables it when a
    :class:`~repro.core.quietrule.QuietRule` replaces it with per-node
    budgets (Alice's own termination rule is out of that rule's scope).
    """

    threshold = receiver_policy.termination_threshold()
    terminating: Set[int] = set()
    nodes_evaluated = 0
    if node_channel_test:
        # Served from the cached active-id array; the frozenset accessors are
        # off the hot path (quiet-rule runs skip this branch entirely).
        active = state.active_uninformed_array()
        nodes_evaluated = int(active.size)
        for node_id in active.tolist():
            heard = result.node_noisy_heard.get(node_id, 0)
            if receiver_policy.should_terminate(heard, round_index):
                terminating.add(node_id)
    if terminating:
        state.terminate_uninformed(terminating, round_index)

    alice_terminates = False
    if not state.alice_terminated:
        if alice_policy.should_terminate(result.alice_noisy_heard, round_index):
            state.terminate_alice(round_index)
            alice_terminates = True

    return RequestPhaseDecision(
        round_index=round_index,
        terminated_nodes=frozenset(terminating),
        alice_terminated=alice_terminates,
        alice_noisy_heard=result.alice_noisy_heard,
        threshold=threshold,
        nodes_evaluated=nodes_evaluated,
    )
