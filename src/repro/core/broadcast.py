"""The ε-Broadcast orchestrator.

:class:`EpsilonBroadcast` drives a full protocol execution: it builds the
per-round phase schedules, lets the adversary commit to an attack before each
phase, hands the phase to an execution engine, and applies the protocol's
state transitions (who is informed, who relays, who terminates) to the
results.  The class implements the ``k = 2`` protocol of Figure 1 by default;
the general-``k``, decoy-traffic, and unknown-``n`` variants subclass it and
override narrow hooks.

:class:`MultiHopBroadcast` is the spatial-topology variant: over a Gilbert or
scale-free radio graph Alice's transmissions reach only her neighbourhood, so
informed nodes keep re-running the ε-Broadcast propagation step towards
*their* neighbourhoods — hop by hop — instead of terminating after one relay
step.  A relay retires once no active uninformed neighbour remains, which
recovers exactly the single-hop termination behaviour on a clique.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from ..adversary.base import Adversary
from ..adversary.none import NullAdversary
from ..simulation.clock import SlotClock
from ..simulation.config import SimulationConfig
from ..simulation.engine import SlotEngine
from ..simulation.errors import ConfigurationError
from ..simulation.events import EventLog, PhaseRecord
from ..simulation.fastengine import PhaseEngine
from ..simulation.metrics import CostBreakdown, DeliveryStats
from ..simulation.network import Network
from ..simulation.phaseplan import PhaseContext, PhaseKind, PhasePlan, PhaseResult, PhaseRoles
from ..observability.trace import NULL_RECORDER, TraceEvent, TraceRecorder
from .alice import AlicePolicy
from .outcome import BroadcastOutcome
from .params import ProtocolParameters
from .phases import ScheduleBuilder
from .quietrule import QuietRule, resolve_quiet_rule
from .receiver import ReceiverPolicy
from .state import NodeStatus, ProtocolState
from .termination import apply_request_phase

__all__ = ["EpsilonBroadcast", "MultiHopBroadcast"]

EngineSpec = Union[str, SlotEngine, PhaseEngine]

# Shared empty role cohort: roles are built every phase, so the common empty
# arrays (no relays, no decoys) are allocated once.
_EMPTY_IDS = np.zeros(0, dtype=np.int64)
_EMPTY_IDS.setflags(write=False)


class EpsilonBroadcast:
    """Run the ε-Broadcast protocol of Gilbert & Young against an adversary.

    Parameters
    ----------
    config:
        Model parameters (network size, budgets, ``k``, ``ε``).
    adversary:
        The attack strategy Carol plays; defaults to no attack.
    params:
        Protocol constants; derived from ``config`` when omitted.
    engine:
        ``"fast"`` (vectorised, default), ``"slot"`` (slot-faithful), or an
        already-constructed engine instance.
    network:
        An existing :class:`~repro.simulation.network.Network` to reuse;
        constructed from ``config`` when omitted.
    record_events:
        Keep the phase-level event log on the returned outcome.
    figure:
        Which pseudocode's probabilities to use (1 = Figure 1, 2 = Figure 2).
        Defaults to Figure 1 for ``k = 2`` and Figure 2 otherwise.
    decoy_traffic:
        Enable the §4.1 decoy-traffic modification.
    recorder:
        A :class:`~repro.observability.trace.TraceRecorder` to stream
        phase-level telemetry to; defaults to the no-op
        :data:`~repro.observability.trace.NULL_RECORDER`.  When given, it is
        also installed on the execution engine so channel-level ``"engine"``
        events land in the same trace.  Recording is strictly read-only:
        traced runs are bit-identical to untraced ones.
    """

    protocol_name = "epsilon-broadcast"

    def __init__(
        self,
        config: SimulationConfig,
        adversary: Optional[Adversary] = None,
        params: Optional[ProtocolParameters] = None,
        engine: EngineSpec = "fast",
        network: Optional[Network] = None,
        record_events: bool = True,
        figure: Optional[int] = None,
        decoy_traffic: bool = False,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        self.config = config
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.adversary = adversary if adversary is not None else NullAdversary()
        self.params = params if params is not None else ProtocolParameters.from_config(config)
        if self.params.k != config.k:
            raise ConfigurationError(
                f"protocol k ({self.params.k}) disagrees with configuration k ({config.k})"
            )
        self.network = network if network is not None else Network(config)
        self.engine = self._resolve_engine(engine)
        if recorder is not None:
            # Same sink for orchestrator-level "phase" events and the engine's
            # channel-level "engine" events; pre-built engines keep whatever
            # recorder they were constructed with unless one is given here.
            self.engine.recorder = self.recorder
        # Strategies that depend on the realised topology (e.g. spatial disk
        # jammers) override the bind_network hook; the base default is a no-op.
        self.adversary.bind_network(self.network)
        self.record_events = record_events
        self.figure = figure if figure is not None else (1 if self.params.k == 2 else 2)
        self.decoy_traffic = decoy_traffic

        self.alice_policy = self._build_alice_policy()
        self.receiver_policy = self._build_receiver_policy()
        self.schedule = self._build_schedule()
        self._round_phase_cache: Dict[int, List[PhasePlan]] = {}

    # ------------------------------------------------------------------ #
    # Construction hooks (overridden by protocol variants)                #
    # ------------------------------------------------------------------ #

    def _resolve_engine(self, engine: EngineSpec) -> Union[SlotEngine, PhaseEngine]:
        if isinstance(engine, (SlotEngine, PhaseEngine)):
            return engine
        if engine == "fast":
            return PhaseEngine(self.network)
        if engine == "slot":
            return SlotEngine(self.network)
        raise ConfigurationError(f"unknown engine specification {engine!r}")

    def _protocol_n(self) -> int:
        """The network-size value plugged into the probability formulas."""

        return self.config.n

    def _build_alice_policy(self) -> AlicePolicy:
        figure = self.figure if hasattr(self, "figure") else 1
        return AlicePolicy(self.params, self._protocol_n(), figure=figure)

    def _build_receiver_policy(self) -> ReceiverPolicy:
        figure = self.figure if hasattr(self, "figure") else 1
        return ReceiverPolicy(
            self.params,
            self._protocol_n(),
            figure=figure,
            decoy_traffic=self.decoy_traffic,
        )

    def _build_schedule(self) -> ScheduleBuilder:
        return ScheduleBuilder(self.params, self.alice_policy, self.receiver_policy, figure=self.figure)

    # ------------------------------------------------------------------ #
    # Execution                                                           #
    # ------------------------------------------------------------------ #

    def run(self) -> BroadcastOutcome:
        """Execute the protocol to completion and return its outcome."""

        state = ProtocolState(self.config.n)
        clock = SlotClock()
        log = EventLog()
        start_round = self.params.start_round
        max_round = self.params.resolved_max_round(self.config.n)
        terminated_by_cap = False

        if self.recorder.enabled:
            self.recorder.record(TraceEvent(kind="run-start", data=self._run_start_data()))

        round_index = start_round
        while round_index <= max_round:
            for plan in self._iter_round_phases(round_index, state):
                roles = self._roles_for(plan, state)
                self._execute_phase(plan, roles, state, clock, log, round_index)
                if state.everyone_done():
                    break
            if state.everyone_done():
                break
            round_index += 1
        else:
            terminated_by_cap = True
            self._finalize_at_cap(state, max_round)

        # Keep the per-node end state inspectable: experiments that partition
        # delivery by population (e.g. a spatial jammer's victims) need node
        # identities, which the aggregate outcome deliberately drops.
        self.final_state = state
        outcome = self._build_outcome(state, clock, log, terminated_by_cap)
        if self.recorder.enabled:
            snapshot = self.network.cost_snapshot()
            self.recorder.record(
                TraceEvent(
                    kind="run-end",
                    round_index=round_index if not terminated_by_cap else max_round,
                    data={
                        "informed": outcome.delivery.informed,
                        "slots_elapsed": outcome.delivery.slots_elapsed,
                        "rounds_executed": outcome.delivery.rounds_executed,
                        "terminated_by_cap": terminated_by_cap,
                        "alice_cost": float(snapshot["alice"]),
                        "adversary_spend": float(snapshot["adversary"]),
                        "nodes_cost": float(snapshot["node_total"]),
                    },
                )
            )
        return outcome

    def _run_start_data(self) -> Dict[str, object]:
        """Payload of the ``"run-start"`` event (variants extend it)."""

        spec = self.config.topology
        return {
            "protocol": self.protocol_name,
            "adversary": getattr(self.adversary, "name", type(self.adversary).__name__),
            "engine": type(self.engine).__name__,
            "n": self.config.n,
            "seed": self.config.seed,
            "k": self.params.k,
            "topology": spec.kind if spec is not None else "single_hop",
        }

    # ------------------------------------------------------------------ #
    # Per-phase machinery                                                 #
    # ------------------------------------------------------------------ #

    def _round_phases(self, round_index: int) -> List[PhasePlan]:
        """The (memoised) phase plans of round ``i``.

        Plans are frozen dataclasses and a pure function of the round index
        (the schedule's policies are immutable after construction), so each
        round's list is built once per orchestrator and reused — ``run()``
        used to rebuild it every round, and repeated runs or round-length
        probes paid the construction again.  Variants override
        :meth:`_build_round_phases`, not this accessor, so they inherit the
        memoisation.
        """

        cached = self._round_phase_cache.get(round_index)
        if cached is None:
            cached = self._round_phase_cache[round_index] = self._build_round_phases(round_index)
        return cached

    def _build_round_phases(self, round_index: int) -> List[PhasePlan]:
        return self.schedule.round_phases(round_index)

    def _iter_round_phases(self, round_index: int, state: ProtocolState) -> Iterator[PhasePlan]:
        """Yield the phase plans of round ``i`` in execution order.

        The base protocol's schedule is static, so this simply walks the
        memoised per-round list.  It is a *generator hook*: variants whose
        schedule depends on how the round unfolds (the pipelined multi-hop
        orchestrator appends propagation steps while fresh frontiers remain
        in flight) override it and inspect the mutated ``state`` between
        yields.
        """

        return iter(self._round_phases(round_index))

    def _roles_for(self, plan: PhasePlan, state: ProtocolState) -> PhaseRoles:
        active_uninformed = state.active_uninformed_array()
        relays = (
            state.active_informed_array() if plan.kind is PhaseKind.PROPAGATION else _EMPTY_IDS
        )
        decoy_senders = (
            active_uninformed
            if (self.decoy_traffic and plan.kind in (PhaseKind.INFORM, PhaseKind.PROPAGATION))
            else _EMPTY_IDS
        )
        return PhaseRoles(
            active_uninformed=active_uninformed,
            relays=relays,
            decoy_senders=decoy_senders,
            alice_active=not state.alice_terminated,
        )

    def _execute_phase(
        self,
        plan: PhasePlan,
        roles: PhaseRoles,
        state: ProtocolState,
        clock: SlotClock,
        log: EventLog,
        round_index: int,
    ) -> PhaseResult:
        context = PhaseContext(
            plan=plan,
            roles=roles,
            config=self.config,
            history=log.phases,
            adversary_remaining_budget=self.network.adversary_ledger.remaining,
        )
        # Per-phase re-resolution hook: mobile/adaptive spatial strategies
        # advance their trajectory and re-resolve victims before planning.
        self.adversary.observe_phase(context)
        jam_plan = self.adversary.plan_phase(context)

        alice_before = self.network.alice_cost
        nodes_before = float(self.network.node_costs().sum())

        clock.begin_phase(round_index, plan.name)
        result = self.engine.run_phase(plan, roles, jam_plan, start_slot=clock.now)
        clock.advance(plan.num_slots)
        clock.end_phase()

        self._apply_result(plan, roles, result, state, round_index, clock)

        self.adversary.observe_result(context, result)
        alice_delta = self.network.alice_cost - alice_before
        nodes_delta = float(self.network.node_costs().sum()) - nodes_before
        # Phase records are cheap (one per phase) and outcome assembly relies
        # on them, so they are always recorded; ``record_events`` only controls
        # whether the log is attached to the returned outcome.
        log.record_phase(
            PhaseRecord(
                round_index=round_index,
                phase_name=plan.name,
                num_slots=plan.num_slots,
                start_slot=clock.now - plan.num_slots,
                jammed_slots=result.jammed_slots,
                adversary_spend=result.adversary_spend,
                newly_informed=len(result.newly_informed),
                alice_cost=alice_delta,
                nodes_cost=nodes_delta,
                active_uninformed_after=state.active_uninformed_count(),
                terminated_after=state.terminated_informed_count()
                + state.terminated_uninformed_count(),
            )
        )
        if self.recorder.enabled:
            self.recorder.record(
                TraceEvent(
                    kind="phase",
                    round_index=round_index,
                    phase=plan.name,
                    data={
                        "kind": plan.kind.value,
                        "step": plan.step,
                        "num_slots": plan.num_slots,
                        "start_slot": clock.now - plan.num_slots,
                        "newly_informed": len(result.newly_informed),
                        "informed_total": state.informed_count(),
                        "frontier": state.active_informed_count(),
                        "active_uninformed": state.active_uninformed_count(),
                        "terminated_informed": state.terminated_informed_count(),
                        "terminated_uninformed": state.terminated_uninformed_count(),
                        "jammed_slots": result.jammed_slots,
                        "busy_slots": result.busy_slots,
                        "delivery_slots": result.delivery_slots,
                        "spoofed_transmissions": result.spoofed_transmissions,
                        "adversary_spend": result.adversary_spend,
                        "alice_cost": alice_delta,
                        "nodes_cost": nodes_delta,
                        "alice_noisy_heard": result.alice_noisy_heard,
                        "request_noisy_total": float(sum(result.node_noisy_heard.values())),
                    },
                )
            )
        return result

    def _apply_result(
        self,
        plan: PhasePlan,
        roles: PhaseRoles,
        result: PhaseResult,
        state: ProtocolState,
        round_index: int,
        clock: SlotClock,
    ) -> None:
        """Apply protocol state transitions implied by a phase result."""

        if result.newly_informed:
            state.mark_informed(result.newly_informed, slot=clock.now)

        if plan.kind is PhaseKind.PROPAGATION:
            # Relays transmitted during this step and terminate at its end.
            state.terminate_informed(roles.relay_ids, round_index)
            if plan.step >= self.params.k - 1:
                # Final propagation step of the round: nodes informed during it
                # hold the message and have no further role, so they terminate
                # too (§2.1: keeping S_i around is wasteful).
                state.terminate_informed(state.active_informed_array(), round_index)

        if plan.kind is PhaseKind.REQUEST:
            # Informed-but-active nodes can only exist here if the round had no
            # propagation step (k = 2 always has one); terminate them first so
            # the delivery accounting stays exact.
            leftovers = state.active_informed_array()
            if leftovers.size:
                state.terminate_informed(leftovers, round_index)
            apply_request_phase(
                state,
                result,
                self.alice_policy,
                self.receiver_policy,
                round_index,
            )

    def _finalize_at_cap(self, state: ProtocolState, max_round: int) -> None:
        """Force-terminate every remaining participant at the safety cap."""

        if self.recorder.enabled:
            self.recorder.record(
                TraceEvent(
                    kind="cap",
                    round_index=max_round,
                    data={
                        "active_informed": state.active_informed_count(),
                        "active_uninformed": state.active_uninformed_count(),
                        "alice_active": not state.alice_terminated,
                    },
                )
            )
        state.terminate_informed(state.active_informed_array(), max_round)
        state.terminate_uninformed(state.active_uninformed_array(), max_round)
        state.terminate_alice(max_round)

    # ------------------------------------------------------------------ #
    # Outcome assembly                                                    #
    # ------------------------------------------------------------------ #

    def _build_outcome(
        self,
        state: ProtocolState,
        clock: SlotClock,
        log: EventLog,
        terminated_by_cap: bool,
    ) -> BroadcastOutcome:
        informed = state.informed_count()
        delivery = DeliveryStats(
            n=self.config.n,
            informed=informed,
            terminated_informed=state.terminated_informed_count(),
            terminated_uninformed=state.terminated_uninformed_count(),
            slots_elapsed=clock.now,
            rounds_executed=log.rounds_executed(),
            alice_terminated=state.alice_terminated,
        )
        costs = CostBreakdown.from_snapshot(
            self.network.cost_snapshot(), per_node=self.network.node_costs()
        )
        extra = {}
        if state.alice_terminated_at_round is not None:
            extra["alice_terminated_round"] = float(state.alice_terminated_at_round)
        return BroadcastOutcome(
            protocol=self.protocol_name,
            adversary=getattr(self.adversary, "name", type(self.adversary).__name__),
            config=self.config,
            delivery=delivery,
            costs=costs,
            events=log if self.record_events else None,
            terminated_by_cap=terminated_by_cap,
            extra=extra,
        )


class MultiHopBroadcast(EpsilonBroadcast):
    """ε-Broadcast with a multi-hop relay layer for spatial topologies.

    The paper's protocol assumes one shared channel: a node informed in round
    ``i`` relays during the next propagation step and then terminates, because
    a single relay step already reaches everyone.  Over a spatial
    :class:`~repro.simulation.topology.Topology` that is no longer true — the
    message must travel hop by hop — so this variant changes exactly one rule:

    * an informed node keeps its relay role (re-running the propagation step
      of every subsequent round towards its own neighbourhood) until **no
      active uninformed neighbour remains**, and only then terminates.

    Within one round the propagation steps chain hops: nodes informed in
    step ``h`` relay in step ``h + 1``.  With **pipelining** (the default)
    the round does not stop after the scheduled ``k - 1`` steps — while the
    previous step informed at least one new node and both a relay frontier
    and an uninformed audience remain, the orchestrator appends further
    propagation steps, so multiple overlapping frontiers stay in flight and
    one round can carry the message across the whole component diameter
    instead of ``k - 1`` hops.  ``pipeline=False`` restores the sequential
    one-wave-per-round schedule.

    The request-phase quiet rule retires uninformed nodes whose budgets run
    out; nodes the rule keeps alive indefinitely (infinite budgets, e.g. a
    super-critical neighbourhood in an Alice-less component) are handled by
    **cap-aware truncation**: after every request phase the orchestrator
    checks, with one masked BFS from the live message holders, whether such
    a node can still be reached by ``m`` through active nodes.  Once every
    path is severed by terminated nodes the stall is unfixable — no future
    phase can change the node's state before the round cap — so it is
    terminated immediately and the schedule truncates as soon as every
    component has either delivered or provably stalled, instead of running
    to the cap.  Rules that use the paper's channel-quiet test
    (``channel_quiet_test=True``) are exempt: their run-to-the-cap blowup
    is protocol behaviour the experiments measure, not a harness artefact.

    On a single-hop topology every rule above degenerates to the base
    protocol (a clique relay retires after one step because every neighbour
    is informed), and this class defers to :class:`EpsilonBroadcast` outright
    to keep outcomes bit-identical — the quiet rule is never consulted there.

    Parameters
    ----------
    quiet_rule:
        The request-phase termination policy for uninformed nodes — a
        :class:`~repro.core.quietrule.QuietRule`, a rule name (``"paper"``,
        ``"constant"``, ``"degree-aware"``), or ``None`` for the default
        :class:`~repro.core.quietrule.DegreeAwareQuietRule`.  The paper's
        channel-quiet test was calibrated for one shared channel and misfires
        in both directions on sparse topologies (early give-up inside Alice's
        component, run-to-the-cap mutual sustain in Alice-less components);
        see :mod:`repro.core.quietrule` for the policy catalogue.
    max_quiet_retries:
        Deprecated alias for
        ``quiet_rule=ConstantQuietRule(retries=max_quiet_retries)`` — the
        paper's rule plus a uniform budget of that many request phases,
        bit-identical to the old run-level retry cap.  Cannot be combined
        with an explicit ``quiet_rule``.  Deprecated: passing it emits a
        ``DeprecationWarning``.
    pipeline:
        Keep appending propagation steps to a round while the frontier
        advances (see the class docstring).  ``False`` restores the
        sequential schedule — one relay wave per scheduled step — which the
        equivalence tests use as the reference behaviour.
    """

    protocol_name = "multihop-epsilon-broadcast"

    def __init__(
        self,
        *args: object,
        quiet_rule: Optional[QuietRule | str] = None,
        max_quiet_retries: Optional[int] = None,
        pipeline: bool = True,
        **kwargs: object,
    ) -> None:
        self.quiet_rule = resolve_quiet_rule(quiet_rule, max_quiet_retries)
        self.max_quiet_retries = max_quiet_retries
        self.pipeline = pipeline
        # Budgets are a pure function of the realised topology (fixed for the
        # orchestrator's lifetime); resolved lazily so single-hop runs — which
        # never consult the rule — skip the neighbourhood statistics.
        self._quiet_budgets: Optional[np.ndarray] = None
        # Pipelined steps beyond the scheduled k - 1 are built on demand and
        # memoised like the static per-round plans.
        self._extra_step_cache: Dict[tuple, PhasePlan] = {}
        super().__init__(*args, **kwargs)

    def _run_start_data(self) -> Dict[str, object]:
        data = super()._run_start_data()
        data["pipeline"] = self.pipeline
        data["quiet_rule"] = type(self.quiet_rule).__name__
        return data

    def _iter_round_phases(self, round_index: int, state: ProtocolState) -> Iterator[PhasePlan]:
        """The multi-hop round schedule, extended while frontiers are in flight.

        Yields the static schedule (inform, propagation steps ``1..k-1``,
        request) and — when pipelining is on and the topology is multi-hop —
        keeps yielding further propagation steps between the scheduled ones
        and the request phase, as long as the previous step informed at
        least one new node and both an active relay frontier and an active
        uninformed audience remain.  The generator inspects the mutated
        ``state`` between yields, so the decision to extend uses exactly the
        protocol-visible information both engines agree on.
        """

        static = self._round_phases(round_index)
        if self.network.topology.is_single_hop or not self.pipeline:
            yield from static
            return
        yield static[0]  # inform
        informed_before = state.informed_count()
        step = 0
        for plan in static[1:-1]:  # scheduled propagation steps 1..k-1
            step = plan.step
            yield plan
        while True:
            informed_after = state.informed_count()
            progressed = informed_after > informed_before
            informed_before = informed_after
            if (
                not progressed
                or state.active_informed_count() == 0
                or state.active_uninformed_count() == 0
            ):
                break
            step += 1
            yield self._extra_propagation_step(round_index, step)
        yield static[-1]  # request

    def _extra_propagation_step(self, round_index: int, step: int) -> PhasePlan:
        key = (round_index, step)
        plan = self._extra_step_cache.get(key)
        if plan is None:
            plan = self._extra_step_cache[key] = self.schedule.propagation_step(
                round_index, step
            )
        return plan

    def _apply_result(
        self,
        plan: PhasePlan,
        roles: PhaseRoles,
        result: PhaseResult,
        state: ProtocolState,
        round_index: int,
        clock: SlotClock,
    ) -> None:
        if self.network.topology.is_single_hop:
            super()._apply_result(plan, roles, result, state, round_index, clock)
            return

        if result.newly_informed:
            state.mark_informed(result.newly_informed, slot=clock.now)

        if plan.kind is PhaseKind.REQUEST:
            apply_request_phase(
                state,
                result,
                self.alice_policy,
                self.receiver_policy,
                round_index,
                node_channel_test=self.quiet_rule.channel_quiet_test,
            )
            self._apply_quiet_rule(state, round_index)
            self._truncate_stalled(state, round_index)

        if plan.kind in (PhaseKind.PROPAGATION, PhaseKind.REQUEST):
            # Multi-hop relay retirement: a relay stays active while it still
            # has an active uninformed neighbour to serve (request phases can
            # retire relays too — their last neighbours may just have given
            # up).
            self._retire_satisfied_relays(state, round_index)

    def _quiet_rule_budgets(self) -> np.ndarray:
        if self._quiet_budgets is None:
            self._quiet_budgets = self.quiet_rule.budgets(self.network.topology)
        return self._quiet_budgets

    def _apply_quiet_rule(self, state: ProtocolState, round_index: int) -> None:
        """Give up once a node's quiet/nack-only streak exhausts its budget.

        Every request phase an uninformed node completes is quiet or
        nack-only (the message never travels in a request phase), so the
        per-node streak in :class:`~repro.core.state.ProtocolState` counts
        exactly the futile phases the node has sat through.  Budgets come
        from the configured :class:`~repro.core.quietrule.QuietRule` —
        vectorised over the whole cohort via the topology's cached
        degree/neighbourhood arrays, and evaluated after the channel-quiet
        test so a constant budget reproduces the old retry cap bit for bit.
        The counters live on the per-run state, so a reused orchestrator
        starts every run from a zero streak.  A rule with no finite budget
        anywhere (e.g. the paper rule) skips the bookkeeping entirely — the
        streaks stay zero and the per-phase cohort scan is never paid.
        """

        budgets = self._quiet_rule_budgets()
        if not np.isfinite(budgets).any():
            return
        active = state.active_uninformed_array()
        if active.size == 0:
            return
        streaks = state.record_unserved_request_phase(active)
        exhausted = active[streaks[active] >= budgets[active]]
        if exhausted.size:
            state.terminate_uninformed(exhausted, round_index)
            if self.recorder.enabled:
                self.recorder.record(
                    TraceEvent(
                        kind="quiet-expire",
                        round_index=round_index,
                        phase="request",
                        data={
                            "count": int(exhausted.size),
                            "rule": type(self.quiet_rule).__name__,
                        },
                    )
                )

    def _truncate_stalled(self, state: ProtocolState, round_index: int) -> None:
        """Cap-aware schedule truncation: give up on provably unreachable nodes.

        Budget-based quiet rules (``channel_quiet_test=False``) grant some
        nodes an *infinite* streak budget — e.g. the degree-aware rule's
        super-critical neighbourhoods — on the grounds that the relay
        frontier should reach them.  When such a node sits in a component
        the frontier can no longer enter (every path from a live message
        holder is severed by already-terminated nodes), no future phase can
        change its state: it would sit out every remaining round and be
        force-terminated at the cap, holding the channel the whole time.
        One masked BFS from Alice (if active) and the active relays over the
        still-active nodes detects exactly this, and the stalled nodes
        terminate now instead — the run's delivery, per-node transmissions,
        and informed set are untouched; only the schedule truncates.

        Channel-quiet rules (the paper's) are exempt: their run-to-the-cap
        behaviour on sparse topologies is measured protocol behaviour, and
        finite-budget nodes keep their exact streak semantics (a constant
        budget still reproduces the old retry cap bit for bit).
        """

        if self.quiet_rule.channel_quiet_test:
            return
        budgets = self._quiet_rule_budgets()
        if not np.isinf(budgets).any():
            return
        active = state.active_uninformed_array()
        if active.size == 0:
            return
        stuck = active[np.isinf(budgets[active])]
        if stuck.size == 0:
            return
        topology = self.network.topology
        passable = np.zeros(topology.n, dtype=bool)
        passable[active] = True
        holders = [state.active_informed_array()]
        if not state.alice_terminated:
            holders.append(np.array([topology.n], dtype=np.int64))
        reached = topology.frontier_reachable(np.concatenate(holders), passable)
        doomed = stuck[~reached[stuck]]
        if doomed.size:
            state.terminate_uninformed(doomed, round_index)
            if self.recorder.enabled:
                self.recorder.record(
                    TraceEvent(
                        kind="truncate",
                        round_index=round_index,
                        phase="request",
                        data={
                            "count": int(doomed.size),
                            "still_stuck": int(stuck.size - doomed.size),
                        },
                    )
                )

    def _retire_satisfied_relays(self, state: ProtocolState, round_index: int) -> None:
        relays = state.active_informed_array()
        if relays.size == 0:
            return
        # One CSR neighbourhood slice answers "does any active uninformed
        # neighbour remain?" for the whole frontier at once — O(sum of relay
        # degrees) instead of per-relay Python set intersections, which is
        # what keeps the relay layer viable at n >> 10^4.  Both cohorts are
        # the state's cached arrays: no sets are materialised or sorted here.
        still_needed = self.network.topology.any_neighbor_in(
            relays, state.active_uninformed_array()
        )
        satisfied = relays[~still_needed]
        if satisfied.size:
            state.terminate_informed(satisfied, round_index)
