"""Rule framework for the determinism linter.

The moving parts, smallest first:

* :class:`Violation` — one finding: rule id, location, message, and whether
  a ``# repro-lint: disable=<rule> -- <reason>`` comment suppressed it.
* :class:`FileContext` — the parsed file handed to every rule: source,
  physical lines, and an import-alias resolver so rules can match calls by
  *canonical* dotted name (``np.random.seed`` and
  ``from numpy import random; random.seed`` both resolve to
  ``numpy.random.seed``).
* :class:`LintRule` — an ``ast.NodeVisitor`` with class/function stacks
  maintained for free.  A new rule subclasses it, sets ``rule_id`` /
  ``title`` / ``rationale``, implements ``visit_*`` hooks that call
  :meth:`LintRule.report`, and registers itself with :func:`register_rule`
  — about 30 lines all in.
* :class:`LintConfig` — enabled-rule selection plus per-rule path
  exemptions, parsed from a ``[repro-lint]`` / ``[repro-lint.exempt]`` ini
  block (this repo keeps it in ``setup.cfg``).
* :func:`lint_source` / :func:`lint_path` / :func:`lint_paths` — the
  engine: parse once, run every enabled rule, then fold in suppression
  comments (tokenize-based, so strings that merely *mention* the marker are
  ignored).

Suppressions are deliberately strict: the reason after ``--`` is mandatory.
A bare ``disable`` both fails to suppress and is reported under the ``SUP``
pseudo-rule, so the tree cannot accumulate unexplained escape hatches.
"""

from __future__ import annotations

import ast
import configparser
import fnmatch
import io
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    ClassVar,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

__all__ = [
    "FileContext",
    "LintConfig",
    "LintRule",
    "Violation",
    "lint_path",
    "lint_paths",
    "lint_source",
    "register_rule",
    "registered_rules",
    "report_json",
]

#: Pseudo-rule ids emitted by the framework itself (not registered visitors).
SUPPRESSION_RULE = "SUP"
PARSE_RULE = "PARSE"

_RULE_ID_RE = re.compile(r"^[A-Z][A-Z0-9]{0,15}$")
_DISABLE_RE = re.compile(
    r"repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)


@dataclass(frozen=True)
class Violation:
    """One linter finding, suppressed or not."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    reason: str = ""

    def format(self) -> str:
        """The canonical one-line human rendering."""

        tag = " (suppressed: {})".format(self.reason) if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{tag}"


class FileContext:
    """Everything a rule may need about the file under lint."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.aliases = _collect_import_aliases(tree)

    def dotted_name(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted name of a ``Name``/``Attribute`` chain, or None.

        The chain's root is resolved through the file's import aliases, so
        ``np.random.seed`` yields ``numpy.random.seed`` and a bare ``time``
        imported via ``from time import time`` yields ``time.time``.  Chains
        not rooted at a plain name (calls, subscripts) resolve to None.
        """

        parts: List[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        root = self.aliases.get(cursor.id, cursor.id)
        parts.append(root)
        return ".".join(reversed(parts))


def _collect_import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map in-scope names to the dotted origin they were imported as."""

    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                bound = item.asname or item.name.split(".")[0]
                aliases[bound] = item.name if item.asname else item.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports stay project-local
            for item in node.names:
                if item.name == "*":
                    continue
                bound = item.asname or item.name
                aliases[bound] = f"{node.module}.{item.name}"
    return aliases


class LintRule(ast.NodeVisitor):
    """Base class for one lint rule.

    Subclasses set the three class attributes, implement ``visit_*``
    methods, and call :meth:`report`.  Class and function nesting stacks
    are maintained by the base class; to hook class/function definitions a
    rule overrides :meth:`handle_class` / :meth:`handle_function` instead
    of ``visit_ClassDef`` / ``visit_FunctionDef`` (the base visitors manage
    the stacks and recursion).
    """

    #: Short stable id, e.g. ``"R3"``.  Uppercase alphanumeric.
    rule_id: ClassVar[str] = ""
    #: One-line human title shown by ``--list-rules``.
    title: ClassVar[str] = ""
    #: The invariant this rule protects and the past bug motivating it.
    rationale: ClassVar[str] = ""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.violations: List[Violation] = []
        self.class_stack: List[ast.ClassDef] = []
        self.function_stack: List[ast.AST] = []

    # -- stack management ------------------------------------------------ #

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.handle_class(node)
        self.class_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self.class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node: ast.AST) -> None:
        self.handle_function(node)
        self.function_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self.function_stack.pop()

    def handle_class(self, node: ast.ClassDef) -> None:
        """Hook called on every class definition (before descending)."""

    def handle_function(self, node: ast.AST) -> None:
        """Hook called on every function definition (before descending)."""

    # -- conveniences ---------------------------------------------------- #

    @property
    def current_function_name(self) -> Optional[str]:
        if not self.function_stack:
            return None
        return getattr(self.function_stack[-1], "name", None)

    def report(self, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                rule=self.rule_id,
                path=self.ctx.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def run(self) -> List[Violation]:
        self.visit(self.ctx.tree)
        return self.violations


# ---------------------------------------------------------------------- #
# Registry                                                                #
# ---------------------------------------------------------------------- #

_REGISTRY: Dict[str, Type[LintRule]] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a :class:`LintRule` to the global registry.

    Rule ids must be unique and match ``[A-Z][A-Z0-9]*``; the framework's
    pseudo-ids (``SUP``, ``PARSE``) are reserved.
    """

    rule_id = cls.rule_id
    if not _RULE_ID_RE.match(rule_id or ""):
        raise ValueError(f"invalid rule id {rule_id!r} on {cls.__name__}")
    if rule_id in (SUPPRESSION_RULE, PARSE_RULE):
        raise ValueError(f"rule id {rule_id!r} is reserved by the framework")
    if rule_id in _REGISTRY and _REGISTRY[rule_id] is not cls:
        raise ValueError(
            f"duplicate rule id {rule_id!r}: {cls.__name__} vs {_REGISTRY[rule_id].__name__}"
        )
    if not cls.title:
        raise ValueError(f"rule {rule_id} needs a title")
    _REGISTRY[rule_id] = cls
    return cls


def registered_rules() -> Dict[str, Type[LintRule]]:
    """The registered rules, keyed and ordered by rule id."""

    return dict(sorted(_REGISTRY.items()))


# ---------------------------------------------------------------------- #
# Configuration                                                           #
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class LintConfig:
    """Rule selection and per-rule path exemptions.

    ``select`` of None means "every registered rule".  ``exempt`` maps a
    rule id to path globs for which the rule is silenced wholesale — the
    escape hatch for modules whose *job* is the banned behaviour (the
    observability clock shim may read the clock).  ``exclude`` drops whole
    files from linting.
    """

    select: Optional[FrozenSet[str]] = None
    exempt: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    exclude: Tuple[str, ...] = ()

    @staticmethod
    def from_ini(path: Path) -> "LintConfig":
        """Parse ``[repro-lint]`` / ``[repro-lint.exempt]`` from an ini file."""

        parser = configparser.ConfigParser()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                parser.read_file(handle)
        except (OSError, configparser.Error) as exc:
            raise ValueError(f"cannot read lint config {path}: {exc}") from None
        select: Optional[FrozenSet[str]] = None
        exclude: Tuple[str, ...] = ()
        if parser.has_section("repro-lint"):
            raw_select = parser.get("repro-lint", "select", fallback="").split()
            if raw_select:
                select = frozenset(raw_select)
            exclude = tuple(parser.get("repro-lint", "exclude", fallback="").split())
        exempt: Dict[str, Tuple[str, ...]] = {}
        if parser.has_section("repro-lint.exempt"):
            for rule_id, raw in parser.items("repro-lint.exempt"):
                exempt[rule_id.upper()] = tuple(raw.split())
        return LintConfig(select=select, exempt=exempt, exclude=exclude)

    @staticmethod
    def discover(start: Path) -> "LintConfig":
        """Walk up from ``start`` looking for a ``setup.cfg``/``repro-lint.ini``.

        Returns the default (everything enabled, nothing exempt) when no
        config block is found — the linter must be usable on a bare tree.
        """

        cursor = start.resolve()
        if cursor.is_file():
            cursor = cursor.parent
        for directory in [cursor, *cursor.parents]:
            for name in ("setup.cfg", "repro-lint.ini"):
                candidate = directory / name
                if candidate.is_file():
                    try:
                        config = LintConfig.from_ini(candidate)
                    except ValueError:
                        continue
                    if config != LintConfig():
                        return config
        return LintConfig()

    def enabled_rules(self) -> Dict[str, Type[LintRule]]:
        rules = registered_rules()
        if self.select is None:
            return rules
        return {rid: cls for rid, cls in rules.items() if rid in self.select}

    def is_exempt(self, rule_id: str, path: str) -> bool:
        return any(_path_matches(path, glob) for glob in self.exempt.get(rule_id, ()))

    def is_excluded(self, path: str) -> bool:
        return any(_path_matches(path, glob) for glob in self.exclude)


def _path_matches(path: str, glob: str) -> bool:
    """Suffix-tolerant glob match, so configs work from any invocation dir."""

    posix = Path(path).as_posix()
    glob = glob.strip()
    if not glob:
        return False
    return fnmatch.fnmatch(posix, glob) or fnmatch.fnmatch(posix, "*/" + glob)


# ---------------------------------------------------------------------- #
# Suppression comments                                                    #
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class _Suppression:
    line: int
    col: int
    rules: FrozenSet[str]
    reason: str

    def covers(self, rule_id: str) -> bool:
        return "all" in self.rules or rule_id in self.rules


def _parse_suppressions(source: str, path: str) -> Tuple[Dict[int, _Suppression], List[Violation]]:
    """Extract ``# repro-lint: disable=...`` comments (comments only).

    Returns the line-indexed suppression table plus one ``SUP`` violation
    per reasonless disable — those comments suppress nothing.
    """

    table: Dict[int, _Suppression] = {}
    bad: List[Violation] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return table, bad
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DISABLE_RE.search(token.string)
        if match is None:
            continue
        line, col = token.start
        rules = frozenset(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        reason = (match.group("reason") or "").strip()
        if not reason:
            bad.append(
                Violation(
                    rule=SUPPRESSION_RULE,
                    path=path,
                    line=line,
                    col=col,
                    message=(
                        "suppression without a reason: write "
                        "'# repro-lint: disable=<rule> -- <why this is safe>'"
                    ),
                )
            )
            continue
        table[line] = _Suppression(line=line, col=col, rules=rules, reason=reason)
    return table, bad


def _apply_suppressions(
    violations: List[Violation], table: Dict[int, _Suppression]
) -> List[Violation]:
    """Mark violations covered by a same-line or preceding-line disable."""

    out: List[Violation] = []
    for violation in violations:
        hit: Optional[_Suppression] = None
        for line in (violation.line, violation.line - 1):
            candidate = table.get(line)
            if candidate is not None and candidate.covers(violation.rule):
                hit = candidate
                break
        if hit is None:
            out.append(violation)
        else:
            out.append(replace(violation, suppressed=True, reason=hit.reason))
    return out


# ---------------------------------------------------------------------- #
# Engine                                                                  #
# ---------------------------------------------------------------------- #


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Type[LintRule]]] = None,
) -> List[Violation]:
    """Lint one source string; returns violations sorted by position.

    Suppressed violations are *included* (with ``suppressed=True``) so
    reports and the JSON output can audit every escape hatch; callers
    gate on the unsuppressed subset.
    """

    config = config or LintConfig()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Violation(
                rule=PARSE_RULE,
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = FileContext(path=path, source=source, tree=tree)
    selected: Iterable[Type[LintRule]]
    if rules is not None:
        selected = rules
    else:
        selected = config.enabled_rules().values()
    found: List[Violation] = []
    for rule_cls in selected:
        if config.is_exempt(rule_cls.rule_id, path):
            continue
        found.extend(rule_cls(ctx).run())
    table, reasonless = _parse_suppressions(source, path)
    found = _apply_suppressions(found, table)
    found.extend(reasonless)
    found.sort(key=lambda v: (v.line, v.col, v.rule))
    return found


def lint_path(path: Path, config: Optional[LintConfig] = None) -> List[Violation]:
    """Lint one file (non-Python paths return no violations)."""

    config = config or LintConfig()
    posix = Path(path).as_posix()
    if not posix.endswith(".py") or config.is_excluded(posix):
        return []
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, path=posix, config=config)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield ``*.py`` files under ``paths`` in sorted, deterministic order."""

    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[Path], config: Optional[LintConfig] = None
) -> Tuple[List[Violation], int]:
    """Lint files/directories; returns (violations, files_checked)."""

    config = config or LintConfig()
    violations: List[Violation] = []
    checked = 0
    for file_path in iter_python_files(paths):
        if config.is_excluded(file_path.as_posix()):
            continue
        violations.extend(lint_path(file_path, config))
        checked += 1
    return violations, checked


def report_json(violations: Sequence[Violation], files_checked: int) -> Dict[str, object]:
    """The machine-readable report shape (stable: version bumps on change)."""

    counts: Dict[str, int] = {}
    for violation in violations:
        if not violation.suppressed:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
    return {
        "version": 1,
        "files_checked": files_checked,
        "unsuppressed": sum(counts.values()),
        "suppressed": sum(1 for v in violations if v.suppressed),
        "counts": dict(sorted(counts.items())),
        "violations": [
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
                "suppressed": v.suppressed,
                "reason": v.reason,
            }
            for v in violations
        ],
    }
