"""The built-in rule catalogue.

Each rule encodes one invariant the reproduction actually depends on, and
each was motivated by a bug class this repo has already paid for (the
``rationale`` strings name the PR).  Rules are deliberately *syntactic*:
they match what the AST can prove, route judgment calls through
``# repro-lint: disable=<rule> -- <reason>`` suppressions, and prefer a
false negative over drowning the tree in noise — the regression tests
remain the backstop for what static analysis cannot see.

Adding a rule: subclass :class:`~repro.lint.framework.LintRule`, set
``rule_id``/``title``/``rationale``, implement ``visit_*`` hooks calling
``self.report(node, message)``, and decorate with ``@register_rule``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .framework import FileContext, LintRule, register_rule

__all__ = [
    "AmbientNondeterminismRule",
    "UnstableHashRule",
    "UnorderedIterationRule",
    "UnpicklableTrialRule",
    "UnguardedTraceEmitRule",
    "TunableContractRule",
    "FrozenMutationRule",
    "NoPrintRule",
]


def _call_name(rule: LintRule, node: ast.Call) -> Optional[str]:
    return rule.ctx.dotted_name(node.func)


@register_rule
class AmbientNondeterminismRule(LintRule):
    """R1: no ambient entropy — clocks, pids, uuids, global RNG."""

    rule_id = "R1"
    title = "ambient nondeterminism (clock / pid / uuid / global RNG)"
    rationale = (
        "Runs must be pure functions of (labels, trial): all randomness flows "
        "through repro.simulation.rng.RandomSource and all timing through the "
        "observability clock shims.  One time.time() feeding a seed breaks the "
        "parallel-equals-serial bit-identity PR 4 guarantees."
    )

    #: Exact canonical call names that read ambient state.
    BANNED_CALLS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "time.process_time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
            "os.getpid",
            "os.urandom",
            "os.getrandom",
            "uuid.uuid1",
            "uuid.uuid4",
        }
    )
    #: Module prefixes banned wholesale (every attribute draws global state).
    BANNED_PREFIXES = ("random.", "secrets.")
    #: numpy.random members that are *seeded* constructions, not global draws.
    NUMPY_ALLOWED = frozenset(
        {
            "numpy.random.SeedSequence",
            "numpy.random.Generator",
            "numpy.random.BitGenerator",
            "numpy.random.default_rng",  # bare (no-arg) calls are re-checked below
            "numpy.random.PCG64",
            "numpy.random.PCG64DXSM",
            "numpy.random.Philox",
            "numpy.random.SFC64",
            "numpy.random.MT19937",
        }
    )

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(self, node)
        if name is not None:
            if name in self.BANNED_CALLS:
                self.report(node, f"call to {name}() reads ambient state")
            elif name.startswith(self.BANNED_PREFIXES):
                self.report(
                    node,
                    f"module-level RNG {name}() is process-global; draw from a "
                    "repro.simulation.rng.RandomSource substream instead",
                )
            elif name.startswith("numpy.random."):
                if name not in self.NUMPY_ALLOWED:
                    self.report(
                        node,
                        f"{name}() uses numpy's global RNG; draw from a "
                        "RandomSource substream instead",
                    )
                elif name == "numpy.random.default_rng" and not node.args:
                    self.report(
                        node,
                        "bare default_rng() seeds from the OS; pass an explicit "
                        "seed or SeedSequence",
                    )
        self.generic_visit(node)


@register_rule
class UnstableHashRule(LintRule):
    """R2: no builtin hash()/id() feeding keys, seeds, or ordering."""

    rule_id = "R2"
    title = "builtin hash()/id() (process-salted / address-dependent)"
    rationale = (
        "str hashes are salted per process (PYTHONHASHSEED) and id() is an "
        "address, so neither may feed seeds, cache keys, or orderings that "
        "must agree across worker processes.  PR 1 fixed exactly this by "
        "moving rng stream hashing to CRC-32 (_stable_label_hash)."
    )

    #: hash() delegation inside __hash__ is the normal in-process idiom.
    ALLOWED_IN = frozenset({"__hash__"})

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(self, node)
        if name in ("hash", "id"):
            enclosing = {
                getattr(fn, "name", None) for fn in self.function_stack
            }
            if not (enclosing & self.ALLOWED_IN):
                self.report(
                    node,
                    f"builtin {name}() is not process-stable; use the CRC-32 "
                    "helpers (repro.simulation.rng._stable_label_hash) or an "
                    "explicit key",
                )
        self.generic_visit(node)


class _SetTracker(ast.NodeVisitor):
    """Collect names bound to set-typed expressions within one scope."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value, self.set_names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.set_names.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and _is_set_expr(node.value, self.set_names):
            if isinstance(node.target, ast.Name):
                self.set_names.add(node.target.id)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scopes are analysed separately

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        return _is_set_expr(node.left, set_names) or _is_set_expr(node.right, set_names)
    return False


@register_rule
class UnorderedIterationRule(LintRule):
    """R3: no order-sensitive iteration over set/frozenset values."""

    rule_id = "R3"
    title = "order-sensitive iteration over a set/frozenset"
    rationale = (
        "set iteration order depends on element hashes, which are salted per "
        "process for str and layout-dependent in general, so a set feeding "
        "records, schedules, or cache keys must pass through sorted() first.  "
        "PR 6 removed frozenset ordering from both engines' hot paths for "
        "exactly this reason."
    )

    #: Call heads whose argument order is observable in the result.
    ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "iter", "enumerate"})
    #: Order-insensitive reducers — sorted() is the sanctioned fix and the
    #: others fold commutatively; none are flagged.

    def _check_scope(self, scope: ast.AST, body: Sequence[ast.stmt]) -> None:
        tracker = _SetTracker()
        for stmt in body:
            tracker.visit(stmt)
        set_names = tracker.set_names
        for stmt in body:
            for node in _walk_same_scope(stmt):
                self._check_node(node, set_names)

    def _check_node(self, node: ast.AST, set_names: Set[str]) -> None:
        if isinstance(node, ast.For):
            if _is_set_expr(node.iter, set_names):
                self.report(node.iter, "for-loop over a set has no stable order; wrap in sorted()")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            # SetComp over a set is order-insensitive and stays allowed.
            for comp in node.generators:
                if _is_set_expr(comp.iter, set_names):
                    self.report(
                        comp.iter,
                        "comprehension over a set has no stable order; wrap in sorted()",
                    )
        elif isinstance(node, ast.Call):
            name = self.ctx.dotted_name(node.func)
            if name in self.ORDER_SENSITIVE_CALLS and node.args:
                if _is_set_expr(node.args[0], set_names):
                    self.report(
                        node,
                        f"{name}() materialises set order; wrap the set in sorted()",
                    )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
                and _is_set_expr(node.args[0], set_names)
            ):
                self.report(node, "str.join over a set has no stable order; wrap in sorted()")

    def visit_Module(self, node: ast.Module) -> None:
        self._check_scope(node, node.body)
        for fn in ast.walk(node):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_scope(fn, fn.body)


def _walk_same_scope(stmt: ast.stmt) -> Iterator[ast.AST]:
    """ast.walk that does not descend into nested function definitions."""

    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


@register_rule
class UnpicklableTrialRule(LintRule):
    """R4: trial functions handed to the parallel runner must be top-level."""

    rule_id = "R4"
    title = "closure/lambda handed to the parallel trial runner"
    rationale = (
        "run_sweep ships trial functions to worker processes by pickled "
        "reference (module + qualname), so a lambda or nested function fails "
        "only at fan-out time — and only when jobs > 1, which is how such "
        "bugs slip past a serial test run.  PR 4 made every exp_*.py _trial "
        "top-level for exactly this reason."
    )

    #: Call heads whose first/`trial_fn` argument crosses a process boundary.
    SINKS = frozenset({"TrialSpec", "TrialSpec.point", "run_point"})

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._nested_fns: Set[str] = set()
        for outer in ast.walk(ctx.tree):
            if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(outer):
                    if inner is not outer and isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._nested_fns.add(inner.name)

    def visit_Call(self, node: ast.Call) -> None:
        name = self.ctx.dotted_name(node.func)
        is_sink = name is not None and (
            name.split(".")[-1] in {"TrialSpec", "run_point"}
            or ".".join(name.split(".")[-2:]) == "TrialSpec.point"
        )
        if is_sink:
            candidate: Optional[ast.expr] = None
            if node.args:
                candidate = node.args[0]
            for keyword in node.keywords:
                if keyword.arg == "trial_fn":
                    candidate = keyword.value
            if candidate is not None:
                self._check_fn_arg(candidate)
        self.generic_visit(node)

    def _check_fn_arg(self, candidate: ast.expr) -> None:
        if isinstance(candidate, ast.Lambda):
            self.report(candidate, "lambda cannot cross the worker process boundary")
        elif isinstance(candidate, ast.Name) and candidate.id in self._nested_fns:
            self.report(
                candidate,
                f"nested function {candidate.id!r} is not picklable; define the "
                "trial function at module top level",
            )
        elif (
            isinstance(candidate, ast.Call)
            and self.ctx.dotted_name(candidate.func) in ("functools.partial", "partial")
            and candidate.args
        ):
            self._check_fn_arg(candidate.args[0])


@register_rule
class UnguardedTraceEmitRule(LintRule):
    """R5: every recorder emit sits behind a ``recorder.enabled`` check."""

    rule_id = "R5"
    title = "recorder.record() without a recorder.enabled guard"
    rationale = (
        "The telemetry layer's contract (PR 8) is near-zero cost when off: "
        "emit sites read already-computed values behind one `.enabled` check, "
        "which is also what keeps traced runs bit-identical to untraced.  An "
        "unguarded record() builds event payloads on every hot-path phase."
    )

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._if_guards: List[Tuple[str, bool]] = []  # (test source, in-body)
        self._early_guards: Dict[int, List[Tuple[str, int]]] = {}  # fn id -> (base, line)

    def handle_function(self, node: ast.AST) -> None:
        guards: List[Tuple[str, int]] = []
        for stmt in getattr(node, "body", []):
            for inner in _walk_same_scope(stmt):
                if not isinstance(inner, ast.If):
                    continue
                test = inner.test
                if (
                    isinstance(test, ast.UnaryOp)
                    and isinstance(test.op, ast.Not)
                    and isinstance(test.operand, ast.Attribute)
                    and test.operand.attr == "enabled"
                    and any(isinstance(s, (ast.Return, ast.Continue, ast.Raise)) for s in inner.body)
                ):
                    guards.append((ast.unparse(test.operand.value), inner.lineno))
        # repro-lint: disable=R2 -- AST-node identity key within one in-process walk; never serialised or ordered
        self._early_guards[id(node)] = guards

    def visit_If(self, node: ast.If) -> None:
        test_src = ast.unparse(node.test)
        self._if_guards.append((test_src, True))
        for stmt in node.body:
            self.visit(stmt)
        self._if_guards.pop()
        self._if_guards.append((test_src, False))
        for stmt in node.orelse:
            self.visit(stmt)
        self._if_guards.pop()

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "record":
            base_src = ast.unparse(func.value)
            if "recorder" in base_src.lower() and not self._is_guarded(node, base_src):
                self.report(
                    node,
                    f"{base_src}.record(...) must sit behind an "
                    f"`if {base_src}.enabled:` guard",
                )
        self.generic_visit(node)

    def _is_guarded(self, node: ast.Call, base_src: str) -> bool:
        needle = f"{base_src}.enabled"
        for test_src, in_body in self._if_guards:
            if in_body and needle in test_src:
                return True
        if self.function_stack:
            # repro-lint: disable=R2 -- AST-node identity key within one in-process walk; never serialised or ordered
            guards = self._early_guards.get(id(self.function_stack[-1]), ())
            for guard_base, guard_line in guards:
                if guard_base == base_src and guard_line < node.lineno:
                    return True
        return False


@register_rule
class TunableContractRule(LintRule):
    """R6: ``tunable`` ParamSpec declarations match real instance state."""

    rule_id = "R6"
    title = "tunable ParamSpec declaration out of sync with the class"
    rationale = (
        "The tournament optimiser (PR 7) drives with_parameters() purely off "
        "the class-level `tunable` declaration; a spec naming a non-existent "
        "attribute only fails deep inside a sweep.  Declarations must be "
        "literal tuples whose names are backed by __init__ state or a "
        "_set_parameter override."
    )

    def handle_class(self, node: ast.ClassDef) -> None:
        declaration = self._tunable_declaration(node)
        method_names = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if declaration is None:
            for hook in ("_set_parameter", "_validate_parameters"):
                if hook in method_names and "tunable_parameters" not in method_names:
                    self.report(
                        node,
                        f"{node.name} overrides {hook}() but declares no "
                        "`tunable` parameters (dead hook, or a missing declaration)",
                    )
            return
        value, names = declaration
        if isinstance(value, ast.List):
            self.report(value, "declare `tunable` as a tuple, not a mutable list")
        if "_set_parameter" in method_names or "tunable_parameters" in method_names:
            return  # derived-state classes route assignment themselves
        backing = self._self_assigned_names(node) | self._init_params(node)
        for name_node, name in names:
            if name is None:
                self.report(
                    name_node,
                    "ParamSpec name must be a string literal so the linter "
                    "(and the optimiser) can see it",
                )
            elif name not in backing:
                self.report(
                    name_node,
                    f"tunable parameter {name!r} has no backing attribute: "
                    f"assign self.{name} in __init__ or override _set_parameter",
                )
        seen: Set[str] = set()
        for name_node, name in names:
            if name is not None:
                if name in seen:
                    self.report(name_node, f"duplicate tunable parameter {name!r}")
                seen.add(name)

    @staticmethod
    def _tunable_declaration(
        node: ast.ClassDef,
    ) -> Optional[Tuple[ast.expr, List[Tuple[ast.expr, Optional[str]]]]]:
        for stmt in node.body:
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                if any(isinstance(t, ast.Name) and t.id == "tunable" for t in stmt.targets):
                    value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.target.id == "tunable":
                    value = stmt.value
            if value is None:
                continue
            names: List[Tuple[ast.expr, Optional[str]]] = []
            elements = value.elts if isinstance(value, (ast.Tuple, ast.List)) else []
            for element in elements:
                if not (
                    isinstance(element, ast.Call)
                    and isinstance(element.func, ast.Name)
                    and element.func.id == "ParamSpec"
                ):
                    continue
                name: Optional[ast.expr] = element.args[0] if element.args else None
                for keyword in element.keywords:
                    if keyword.arg == "name":
                        name = keyword.value
                if isinstance(name, ast.Constant) and isinstance(name.value, str):
                    names.append((element, name.value))
                else:
                    names.append((element, None))
            return value, names
        return None

    @staticmethod
    def _self_assigned_names(node: ast.ClassDef) -> Set[str]:
        assigned: Set[str] = set()
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(stmt):
                targets: List[ast.expr] = []
                if isinstance(inner, ast.Assign):
                    targets = inner.targets
                elif isinstance(inner, (ast.AnnAssign, ast.AugAssign)):
                    targets = [inner.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        assigned.add(target.attr)
        return assigned

    @staticmethod
    def _init_params(node: ast.ClassDef) -> Set[str]:
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
                args = stmt.args
                names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
                return set(names) - {"self"}
        return set()


@register_rule
class FrozenMutationRule(LintRule):
    """R7: no frozen-dataclass mutation outside construction."""

    rule_id = "R7"
    title = "object.__setattr__ outside __init__/__post_init__"
    rationale = (
        "Frozen dataclasses are shared across threads, cached by identity, "
        "and hashed into cache keys; mutating one after construction "
        "invalidates all three.  Lazy caches on frozen instances are the one "
        "sanctioned exception and must carry a suppression explaining why "
        "the cached value is a pure function of the frozen fields."
    )

    ALLOWED_IN = frozenset({"__init__", "__post_init__", "__setstate__", "__new__"})

    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.dotted_name(node.func) == "object.__setattr__":
            enclosing = {getattr(fn, "name", None) for fn in self.function_stack}
            if not (enclosing & self.ALLOWED_IN):
                where = self.current_function_name or "<module>"
                self.report(
                    node,
                    f"object.__setattr__ in {where}() mutates a frozen instance "
                    "after construction",
                )
        self.generic_visit(node)


@register_rule
class NoPrintRule(LintRule):
    """R8: no stdout print() in library code."""

    rule_id = "R8"
    title = "print() to stdout in library code"
    rationale = (
        "Generated documents (EXPERIMENTS.md, LEADERBOARD.md) must stay "
        "byte-identical, and several tools compose output on stdout; stray "
        "library prints corrupt both.  Diagnostics go to stderr "
        "(file=sys.stderr) or through the observability renderers."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.dotted_name(node.func) == "print":
            to_stderr = any(
                keyword.arg == "file" and ast.unparse(keyword.value).endswith("stderr")
                for keyword in node.keywords
            )
            if not to_stderr:
                self.report(
                    node,
                    "print() writes to stdout; route diagnostics to stderr "
                    "(file=sys.stderr) or an observability renderer",
                )
        self.generic_visit(node)
