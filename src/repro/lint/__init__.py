"""``repro.lint`` — an AST-based determinism & invariant linter.

Every load-bearing guarantee this reproduction makes — parallel sweeps
bit-identical to serial, retries consuming no RNG, traced runs identical to
untraced, byte-identical generated documents, process-stable trajectories —
ultimately reduces to a handful of *source-level* invariants: seeds are pure
functions of ``(labels, trial)``, nothing reads ambient entropy, nothing
orders records by a process-salted hash, every telemetry emit is guarded.
This package encodes those invariants as machine-checked rules over Python's
``ast`` so they are enforced at diff time instead of discovered by a flaky
golden test three PRs later.

The public surface:

* :func:`lint_source` / :func:`lint_path` / :func:`lint_paths` — run the
  enabled rules over source text or files and return
  :class:`~repro.lint.framework.Violation` records.
* :class:`~repro.lint.framework.LintConfig` — rule selection and per-rule
  path exemptions, loaded from a ``[repro-lint]`` ini block
  (``setup.cfg`` in this repository).
* :func:`~repro.lint.framework.register_rule` — the registry hook future
  PRs use to add a rule in ~30 lines (subclass
  :class:`~repro.lint.framework.LintRule`, decorate, done).
* :func:`~repro.lint.framework.report_json` — machine-readable output for
  CI annotation tooling.

Per-line suppressions use ``# repro-lint: disable=R5 -- <reason>`` and the
reason is mandatory: a bare ``disable`` does not suppress and is itself
reported (rule ``SUP``), so every escape hatch in the tree documents why it
is safe.  See the "Static analysis" section of ``docs/architecture.md`` for
the rule catalogue and the historical bug each rule pins down.
"""

from __future__ import annotations

from .framework import (
    FileContext,
    LintConfig,
    LintRule,
    Violation,
    lint_path,
    lint_paths,
    lint_source,
    register_rule,
    registered_rules,
    report_json,
)
from . import rules as _rules  # noqa: F401  - importing registers the built-in rules

__all__ = [
    "FileContext",
    "LintConfig",
    "LintRule",
    "Violation",
    "lint_path",
    "lint_paths",
    "lint_source",
    "register_rule",
    "registered_rules",
    "report_json",
]
