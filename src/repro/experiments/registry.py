"""Experiment registry.

Maps experiment ids (E1 … E14) to their runner functions so the benchmark
harness, the examples, and EXPERIMENTS.md generation can iterate over every
reproduced claim uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from . import (
    exp_adversary_ablation,
    exp_baseline_compare,
    exp_cost_scaling,
    exp_delivery,
    exp_general_k,
    exp_latency,
    exp_load_balance,
    exp_mobile_jammer,
    exp_multihop,
    exp_quiet_rule,
    exp_reactive,
    exp_size_estimate,
    exp_spoofing,
    exp_tournament,
)
from .harness import ExperimentResult, ExperimentSettings

__all__ = ["ExperimentSpec", "EXPERIMENTS", "run_experiment", "run_all", "experiment_ids"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Metadata and runner for one registered experiment."""

    experiment_id: str
    title: str
    claim: str
    runner: Callable[[ExperimentSettings], ExperimentResult]


_MODULES = [
    exp_cost_scaling,
    exp_delivery,
    exp_latency,
    exp_load_balance,
    exp_baseline_compare,
    exp_general_k,
    exp_reactive,
    exp_size_estimate,
    exp_adversary_ablation,
    exp_spoofing,
    exp_multihop,
    exp_mobile_jammer,
    exp_quiet_rule,
    exp_tournament,
]

EXPERIMENTS: Dict[str, ExperimentSpec] = {
    module.EXPERIMENT_ID: ExperimentSpec(
        experiment_id=module.EXPERIMENT_ID,
        title=module.TITLE,
        claim=module.CLAIM,
        runner=module.run,
    )
    for module in _MODULES
}


def experiment_ids() -> List[str]:
    """All registered experiment ids, in numeric order."""

    return sorted(EXPERIMENTS, key=lambda eid: int(eid.lstrip("E")))


def run_experiment(experiment_id: str, settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Run one experiment by id."""

    if experiment_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; available: {experiment_ids()}")
    settings = settings if settings is not None else ExperimentSettings()
    return EXPERIMENTS[experiment_id].runner(settings)


def run_all(settings: ExperimentSettings | None = None) -> List[ExperimentResult]:
    """Run every registered experiment and return the results in order."""

    settings = settings if settings is not None else ExperimentSettings()
    return [run_experiment(eid, settings) for eid in experiment_ids()]
