"""E2 — delivery guarantee: at least (1-ε)n nodes receive m (Theorem 1, Lemma 8).

Carol's strongest tool for leaving nodes uninformed is her n-uniform targeting
(§2.3): block payload phases *for a chosen victim set only* so that the rest
of the network terminates happily while the victims starve.  The experiment
runs that splitter for a range of victim-set sizes and measures (a) how many
nodes actually end up uninformed, and (b) what the attack costs Carol.  The
paper's claim has two halves: absent such an attack everyone is informed, and
even with it the uninformed fraction is bounded by a constant tied to ε'
while Carol must spend a constant fraction of her entire budget.
"""

from __future__ import annotations

from ..analysis.stats import aggregate_records
from ..core.api import run_broadcast
from ..simulation.config import SimulationConfig
from .harness import ExperimentResult, ExperimentSettings
from .runner import TrialSpec, run_sweep
from .workloads import blocking_adversary, splitting_adversary

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "CLAIM"]

EXPERIMENT_ID = "E2"
TITLE = "Delivery fraction under worst-case n-uniform attacks"
CLAIM = "At least (1-ε)n correct nodes receive m w.h.p.; stranding even an ε-fraction costs Carol a constant fraction of her total budget"


def _trial(seed: int, n: int, engine: str, attack: str, victims: int) -> dict:
    """One E2 trial; ``attack`` picks the adversary family, ``victims`` its size."""

    if attack == "none":
        adversary = "none"
    elif attack == "blocker":
        adversary = blocking_adversary(None)
    else:
        adversary = splitting_adversary(victims)
    outcome = run_broadcast(
        n=n,
        k=2,
        f=1.0,
        seed=seed,
        adversary=adversary,
        engine=engine,
    )
    record = outcome.as_record()
    record["uninformed"] = float(outcome.config.n - outcome.delivery.informed)
    record["budget_fraction"] = (
        outcome.adversary_spend / outcome.config.adversary_total_budget
    )
    record["meets"] = float(outcome.meets_delivery_target())
    return record


def run(settings: ExperimentSettings) -> ExperimentResult:
    config = SimulationConfig(n=settings.n, k=2, f=1.0, seed=settings.seed)
    n = settings.n

    scenarios = [
        ("no attack", "none", 0),
        ("blocker (full budget)", "blocker", 0),
        ("split 2% of n", "split", max(1, n // 50)),
        ("split 10% of n", "split", n // 10),
        ("split 25% of n", "split", n // 4),
    ]
    if settings.quick:
        scenarios = scenarios[:4]

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "scenario",
            "target_uninformed",
            "delivery_fraction",
            "uninformed",
            "carol_spend",
            "carol_budget_fraction",
            "meets_1_minus_eps",
        ],
    )

    specs = [
        TrialSpec.point(
            _trial,
            EXPERIMENT_ID,
            label,
            n=settings.n,
            engine=settings.engine,
            attack=attack,
            victims=victims,
        )
        for label, attack, victims in scenarios
    ]
    per_point = run_sweep(specs, settings)

    for (label, _attack, target), records in zip(scenarios, per_point):
        summary = aggregate_records(records)
        result.add_row(
            scenario=label,
            target_uninformed=target,
            delivery_fraction=summary["delivery_fraction"].mean,
            uninformed=summary["uninformed"].mean,
            carol_spend=summary["adversary_spend"].mean,
            carol_budget_fraction=summary["budget_fraction"].mean,
            meets_1_minus_eps=summary["meets"].mean,
        )

    result.add_note(
        "The splitter scenarios show the ε-loss mechanism of §2.3: victims can be stranded "
        "only by jamming them in every payload phase until they give up, which consumes "
        "most of Carol's aggregate budget regardless of how few victims she picks."
    )
    result.add_note(
        "With ε' = 1/64 (the laptop-scale constant, see DESIGN.md) the strandable fraction "
        "is larger than the paper's asymptotic ε but still bounded and paid for at full price."
    )
    return result
