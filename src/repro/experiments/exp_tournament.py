"""E14 — the adversary–protocol tournament's competitiveness exponents.

The E-numbered experiments each pit one hand-picked adversary against one
protocol; E14 runs the round-robin grid of :mod:`repro.tournament` —
every roster adversary × every compatible protocol variant × a topology
grid straddling the Gilbert connectivity threshold — at matched budget
fractions, and fits each cell's resource-competitiveness exponent
(``node cost ≈ c · T^ρ``) with a confidence interval or a flagged
degenerate-cell sentinel.

Theorem 1 predicts ``ρ ≤ 1/(k+1) = 1/3`` for ε-Broadcast on the shared
channel up to polylog factors; the tournament measures where each attack
actually lands, which adversary drives the steepest growth per protocol,
and how the multi-hop quiet-rule variants shift the picture.  The full
grid (204 cells) is the LEADERBOARD.md sweep
(``tools/generate_leaderboard_md.py``); quick mode runs a representative
sub-grid so the registry stays cheap.
"""

from __future__ import annotations

import math

from ..tournament import run_tournament, tournament_cells
from .harness import ExperimentResult, ExperimentSettings

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "CLAIM", "quick_grid"]

EXPERIMENT_ID = "E14"
TITLE = "Adversary-protocol tournament: fitted competitiveness exponents per cell"
CLAIM = (
    "Across the round-robin adversary x protocol x topology grid at matched budget "
    "fractions, every cell's fitted cost exponent (or flagged degenerate sentinel) "
    "stays consistent with Theorem 1's T^{1/(k+1)} resource-competitiveness bound, "
    "and the worst observed adversary per protocol is identified by exponent, not by "
    "hand-picking"
)

QUICK_FRACTIONS = (0.1, 0.4, 0.9)
"""Quick-mode spend sweep: 9x dynamic range in three points."""


def _num(value: float):
    """A finite float, or an em-dash placeholder for flagged cells.

    Rows must never carry NaN: the registry-wide golden tests compare rows
    with ``==``, and ``nan != nan`` would make bit-identical runs diverge.
    """

    return value if math.isfinite(value) else "—"


def quick_grid():
    """The representative sub-grid quick mode runs.

    One channel-attack column on the shared channel, the full default
    multi-hop variant on a near-threshold Gilbert graph — the two regimes
    the paper's claims (single-hop Theorem 1, multi-hop delivery) live in.
    """

    single_hop = tournament_cells(
        adversaries=["budget_blocker", "bursty", "request_spoofer"],
        protocols=["eps-broadcast"],
        topologies=["single-hop"],
    )
    spatial = tournament_cells(
        adversaries=["budget_blocker", "bursty", "request_spoofer", "reactive_disk"],
        protocols=["mh-degree-aware"],
        topologies=["gilbert-near"],
    )
    return single_hop + spatial


def run(settings: ExperimentSettings) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "adversary",
            "protocol",
            "topology",
            "node_exponent",
            "ci_low",
            "ci_high",
            "r_squared",
            "flag",
            "carol_spend_max",
            "node_max_cost",
            "delivery_min",
        ],
    )

    if settings.quick:
        cells = quick_grid()
        fractions = QUICK_FRACTIONS
    else:
        from ..tournament import SPEND_FRACTIONS

        cells = tournament_cells()
        fractions = SPEND_FRACTIONS

    tournament = run_tournament(
        settings, cells=cells, spend_fractions=fractions, label=EXPERIMENT_ID
    )

    for cell_result in tournament.cells:
        fit = cell_result.node_fit
        result.add_row(
            adversary=cell_result.cell.adversary,
            protocol=cell_result.cell.protocol,
            topology=cell_result.cell.topology,
            node_exponent=_num(fit.exponent),
            ci_low=_num(fit.ci_low),
            ci_high=_num(fit.ci_high),
            r_squared=_num(fit.r_squared),
            flag=fit.reason if fit.flagged else "ok",
            carol_spend_max=max(cell_result.spends),
            node_max_cost=max(cell_result.node_max_costs),
            delivery_min=cell_result.delivery_min,
        )

    for protocol, worst in sorted(tournament.worst_per_protocol().items()):
        fit = worst.node_fit
        exponent = f"rho={fit.exponent:.3f}" if fit.ok else f"flagged ({fit.reason})"
        result.add_note(
            f"worst observed adversary for {protocol}: {worst.cell.adversary} "
            f"on {worst.cell.topology} ({exponent})"
        )
    result.add_note(
        "Budgets are matched as fractions of Carol's aggregate ledger budget; each cell "
        "fits max per-node cost against realised spend in log-log space, and degenerate "
        "cells (saturated spend, flat cost, zero cost) carry a flagged sentinel instead "
        "of a spurious exponent."
    )
    result.add_note(
        "The full 204-cell grid with per-protocol rankings and the worst-case parameter "
        "search is LEADERBOARD.md (tools/generate_leaderboard_md.py); quick mode runs the "
        "representative single-hop and near-threshold columns."
    )
    return result
