"""E3 — latency scaling: termination within O(n^{1+1/k}) slots (Theorem 1, Corollary 1).

Against a maximal jammer the protocol cannot finish before Carol's
``Θ(n^{1+1/k})`` budget is gone (she can silence the channel for that long),
and the theorem says it finishes within a constant factor of that — i.e. the
latency is asymptotically optimal.  The experiment sweeps ``n`` against a
full-budget continuous jammer, fits ``slots = c·n^α``, and checks ``α`` lands
near ``1 + 1/k = 1.5`` for ``k = 2``; the unjammed latency (a much smaller
polylog-driven quantity) is reported alongside for contrast.
"""

from __future__ import annotations

from ..adversary import ContinuousJammer
from ..analysis.fitting import fit_power_law
from ..analysis.stats import aggregate_records
from ..core.api import run_broadcast
from .harness import ExperimentResult, ExperimentSettings
from .runner import TrialSpec, run_sweep

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "CLAIM"]

EXPERIMENT_ID = "E3"
TITLE = "Latency vs network size under maximal jamming"
CLAIM = "All correct participants terminate within O(n^{1+1/k}) slots, which is asymptotically optimal (Corollary 1)"


def _trial(seed: int, n: int, engine: str) -> dict:
    """One E3 trial: a jammed and an unjammed run of the same size ``n``."""

    jammed = run_broadcast(
        n=n,
        k=2,
        f=1.0,
        seed=seed,
        adversary=ContinuousJammer(),
        engine=engine,
    )
    clean = run_broadcast(n=n, k=2, f=1.0, seed=seed + 1, adversary="none", engine=engine)
    return {
        "slots_jammed": float(jammed.slots_elapsed),
        "slots_clean": float(clean.slots_elapsed),
        "delivery": jammed.delivery_fraction,
    }


def run(settings: ExperimentSettings) -> ExperimentResult:
    sizes = [128, 256, 512, 1024]
    if settings.quick:
        sizes = [128, 256, 512]

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "n",
            "slots_jammed_run",
            "slots_unjammed_run",
            "n_pow_1_5",
            "slots_over_bound",
            "delivery_fraction",
        ],
    )

    specs = [
        TrialSpec.point(_trial, EXPERIMENT_ID, n, n=n, engine=settings.engine)
        for n in sizes
    ]
    per_point = run_sweep(specs, settings)

    jammed_latencies = []
    for n, records in zip(sizes, per_point):
        summary = aggregate_records(records)
        bound = float(n) ** 1.5
        jammed_latencies.append((n, summary["slots_jammed"].mean))
        result.add_row(
            n=n,
            slots_jammed_run=summary["slots_jammed"].mean,
            slots_unjammed_run=summary["slots_clean"].mean,
            n_pow_1_5=bound,
            slots_over_bound=summary["slots_jammed"].mean / bound,
            delivery_fraction=summary["delivery"].mean,
        )

    fit = fit_power_law([n for n, _ in jammed_latencies], [s for _, s in jammed_latencies])
    result.summaries["latency_exponent"] = fit.exponent
    result.summaries["predicted_exponent"] = 1.5
    result.add_note(
        f"Fitted latency exponent {fit.exponent:.3f} vs predicted 1 + 1/k = 1.5 "
        f"(fit: {fit})."
    )
    result.add_note(
        "The jammed-run latency tracks Carol's Θ(n^{3/2}) aggregate budget, the unjammed "
        "latency is dominated by the fixed 3·lg ln n warm-up rounds — both as the paper predicts."
    )
    return result
