"""E11 — multi-hop broadcast over Gilbert graphs across the connectivity threshold.

The paper's game is single-hop: one shared channel, every transmission
audible everywhere.  Its motivating scenario — a dense sensor network over an
area — is multi-hop: radios have range ``r``, the deployment is a Gilbert
random geometric graph, and the message must travel hop by hop via informed
relays.  This experiment runs the :class:`~repro.core.broadcast.MultiHopBroadcast`
variant while sweeping the radio radius across the Gilbert connectivity
threshold ``r_c = sqrt(ln n / (π n))`` (arXiv:1312.4861), plus one
heavy-tailed :class:`~repro.simulation.topology.ScaleFreeGilbert` point, and
measures three things:

* **delivery tracks the giant component** — below the threshold the graph is
  fragmented and only Alice's component can be informed; above it delivery
  approaches 1.  The informative quantity is delivery *relative to* the
  fraction of nodes reachable from Alice.
* **multi-hop costs** — relays re-spend energy per hop, so node costs rise
  with hop count relative to the single-hop game.
* **spatial jamming** — a disk-jamming Carol (the geometric analogue of the
  paper's n-uniform splitter) delays or strands the disk only while her
  budget lasts.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.stats import aggregate_records
from ..core.broadcast import MultiHopBroadcast
from ..simulation.config import SimulationConfig
from ..simulation.topology import TopologySpec, gilbert_connectivity_radius
from .harness import ExperimentResult, ExperimentSettings
from .runner import TrialSpec, run_sweep
from .workloads import spatial_adversary

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "CLAIM"]

EXPERIMENT_ID = "E11"
TITLE = "Multi-hop delivery over Gilbert graphs across the connectivity threshold"
CLAIM = (
    "With hop-by-hop relaying, delivery tracks the fraction of nodes reachable from Alice: "
    "it collapses below the Gilbert connectivity radius, saturates above it, and a "
    "disk-jamming Carol can only delay her disk while her budget lasts"
)


def _scenarios(settings: ExperimentSettings):
    multipliers = [0.6, 0.9, 1.3, 2.0, 3.0]
    if settings.quick:
        multipliers = [0.6, 1.3, 2.5]
    scenarios = [(f"gilbert r={m:g}·r_c", "gilbert", m, None) for m in multipliers]
    scenarios.append(("scale-free (α=2.5)", "scale_free", None, None))
    jam_multiplier = multipliers[-1]
    scenarios.append(
        (f"gilbert r={jam_multiplier:g}·r_c + disk jam", "gilbert", jam_multiplier, "spatial")
    )
    return scenarios


def _trial(
    seed: int,
    n: int,
    engine: str,
    kind: str,
    radius: Optional[float],
    attack: Optional[str],
) -> dict:
    """One E11 trial: multi-hop relaying over the scenario's topology."""

    if kind == "gilbert":
        spec = TopologySpec.gilbert(radius=radius)
    else:
        spec = TopologySpec.scale_free(alpha=2.5)
    config = SimulationConfig(n=n, k=2, f=1.0, seed=seed, topology=spec)
    adversary = spatial_adversary() if attack == "spatial" else None
    protocol = MultiHopBroadcast(
        config,
        adversary=adversary,
        engine=engine,
    )
    outcome = protocol.run()
    topology = protocol.network.topology
    reachable = len(topology.reachable_from_alice())
    record = outcome.as_record()
    record["reachable_fraction"] = reachable / n
    record["delivery_vs_reachable"] = (
        outcome.delivery.informed / reachable if reachable else 1.0
    )
    return record


def run(settings: ExperimentSettings) -> ExperimentResult:
    n = settings.n
    r_c = gilbert_connectivity_radius(n)

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "scenario",
            "radius",
            "reachable_fraction",
            "delivery_fraction",
            "delivery_vs_reachable",
            "mean_node_cost",
            "alice_cost",
            "carol_spend",
            "slots",
        ],
    )

    scenarios = _scenarios(settings)
    specs = [
        TrialSpec.point(
            _trial,
            EXPERIMENT_ID,
            label,
            n=n,
            engine=settings.engine,
            kind=kind,
            radius=(multiplier * r_c if multiplier is not None else None),
            attack=attack,
        )
        for label, kind, multiplier, attack in scenarios
    ]
    per_point = run_sweep(specs, settings)

    for (label, kind, multiplier, attack), records in zip(scenarios, per_point):
        summary = aggregate_records(records)
        result.add_row(
            scenario=label,
            radius=(round(multiplier * r_c, 4) if multiplier is not None else "pareto"),
            reachable_fraction=summary["reachable_fraction"].mean,
            delivery_fraction=summary["delivery_fraction"].mean,
            delivery_vs_reachable=summary["delivery_vs_reachable"].mean,
            mean_node_cost=summary["node_mean_cost"].mean,
            alice_cost=summary["alice_cost"].mean,
            carol_spend=summary["adversary_spend"].mean,
            slots=summary["slots"].mean,
        )

    result.add_note(
        "Below the connectivity threshold the Gilbert graph fragments; delivery then tracks "
        "the reachable (Alice-component) fraction, which is the correct yardstick — the "
        "protocol cannot inform nodes no radio path reaches."
    )
    result.add_note(
        "Runs use the default degree-aware quiet rule (repro.core.quietrule): per-node "
        "request-phase budgets from the three-hop neighbourhood size replace the paper's "
        "global channel-quiet test, fixing its two sparse-topology misfires — the "
        "near-threshold delivery_vs_reachable dip (locally quiet nodes no longer give up "
        "ahead of the relay frontier) and the sub-threshold mean_node_cost blowup "
        "(Alice-less components stop on their budgets instead of running to the round cap).  "
        "E13 is the rule ablation.  Sub-threshold stragglers with super-critical "
        "neighbourhoods no longer hold the channel to the round cap: once no live message "
        "holder can reach them the orchestrator truncates the schedule (the slots column "
        "stays orders of magnitude below the cap)."
    )
    result.add_note(
        "The disk jammer is the geometric analogue of §2.3's n-uniform splitter: she pays "
        "full price per jammed payload phase and only postpones her disk until broke."
    )
    return result
