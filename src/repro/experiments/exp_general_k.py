"""E6 — the general-k protocol: exponent 1/(k+1), Θ(k) latency overhead (§3, §3.2).

Raising ``k`` buys a better resource-competitive exponent — ``T^{1/(k+1)}``
instead of ``T^{1/3}`` — at the price of ``k - 1`` propagation steps per round
(a ``Θ(k)`` factor in latency and in the no-jamming cost), and §3.2 shows the
trade stops working for ``k = ω(1)``.  The experiment runs ``k ∈ {2, 3, 4}``
through the same spend sweep, fits the per-k cost exponents, and reports the
per-k round length to exhibit the Θ(k) overhead.
"""

from __future__ import annotations

from ..analysis.bounds import cost_exponent
from ..analysis.fitting import fit_power_law_with_offset
from ..analysis.stats import aggregate_records
from ..core.api import run_broadcast
from ..simulation.config import SimulationConfig
from .harness import ExperimentResult, ExperimentSettings
from .runner import TrialSpec, run_sweep
from .workloads import blocking_adversary, saturation_spend, spend_sweep

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "CLAIM"]

EXPERIMENT_ID = "E6"
TITLE = "General k: cost exponent 1/(k+1) and Θ(k) latency overhead"
CLAIM = "For budget exponent k the per-device cost is Õ(T^{1/(k+1)}) while latency and overall cost grow by a Θ(k) factor (§3, §3.2)"


def _trial(seed: int, n: int, engine: str, k: int, cap: float) -> dict:
    """One E6 trial: the general-k variant against a capped phase blocker."""

    outcome = run_broadcast(
        n=n,
        k=k,
        f=1.0,
        seed=seed,
        variant="general-k",
        adversary=blocking_adversary(cap),
        engine=engine,
    )
    return outcome.as_record()


def run(settings: ExperimentSettings) -> ExperimentResult:
    ks = [2, 3, 4]
    if settings.quick:
        ks = [2, 3]

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "k",
            "T_spent",
            "node_max_cost",
            "alice_cost",
            "slots",
            "delivery_fraction",
            "predicted_exponent",
        ],
    )

    sweeps = {
        k: spend_sweep(
            SimulationConfig(n=settings.n, k=k, f=1.0, seed=settings.seed),
            points=4,
            quick=settings.quick,
        )
        for k in ks
    }
    points = [(k, cap) for k in ks for cap in sweeps[k]]
    specs = [
        TrialSpec.point(
            _trial, EXPERIMENT_ID, k, cap, n=settings.n, engine=settings.engine, k=k, cap=cap
        )
        for k, cap in points
    ]
    records_by_point = dict(zip(points, run_sweep(specs, settings)))

    for k in ks:
        config = SimulationConfig(n=settings.n, k=k, f=1.0, seed=settings.seed)
        sweep = sweeps[k]
        spends, node_costs, alice_costs = [], [], []
        for cap in sweep:
            records = records_by_point[(k, cap)]
            summary = aggregate_records(records)
            spends.append(summary["adversary_spend"].mean)
            node_costs.append(summary["node_max_cost"].mean)
            alice_costs.append(summary["alice_cost"].mean)
            result.add_row(
                k=k,
                T_spent=summary["adversary_spend"].mean,
                node_max_cost=summary["node_max_cost"].mean,
                alice_cost=summary["alice_cost"].mean,
                slots=summary["slots"].mean,
                delivery_fraction=summary["delivery_fraction"].mean,
                predicted_exponent=cost_exponent(k),
            )
        # Fit only over spends past the finite-n saturation boundary, where
        # the asymptotic shape is observable (see workloads.saturation_spend).
        threshold = saturation_spend(config)
        filtered = [(s, c) for s, c in zip(spends, node_costs) if s >= threshold]
        if len(filtered) < 2:
            filtered = list(zip(spends, node_costs))
        if len(filtered) >= 2:
            fit = fit_power_law_with_offset([s for s, _ in filtered], [c for _, c in filtered])
            result.summaries[f"k{k}_node_exponent"] = fit.exponent
            result.summaries[f"k{k}_predicted"] = cost_exponent(k)

    result.add_note(
        "Larger k should yield a smaller fitted node-cost exponent (1/3, 1/4, 1/5 for k = 2, 3, 4); "
        "at laptop-scale n the separation is modest because budgets — and hence the reachable T range — "
        "shrink as n^{1/k}."
    )
    result.add_note(
        "The per-round slot counts grow by the extra propagation steps, the Θ(k) overhead of §3.2."
    )
    return result
