"""Experiment harness.

Every experiment in :mod:`repro.experiments` produces an
:class:`ExperimentResult`: a titled table of rows (one per configuration or
sweep point) plus free-form notes comparing the measurement against the
paper's claim.  :class:`ExperimentSettings` centralises the knobs that every
experiment shares — network size, number of repeated trials, base seed, and a
``quick`` flag used by the pytest-benchmark harness to keep runtimes sensible.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from numbers import Integral
from typing import Callable, Dict, List, Optional, Sequence

from ..simulation.errors import ConfigurationError
from ..simulation.rng import derive_seed
from .faults import DEFAULT_FAULT_POLICY, FaultInjector, FaultPolicy

__all__ = ["ExperimentSettings", "ExperimentResult", "run_trials", "VALID_ENGINES"]

VALID_ENGINES = ("fast", "slot")
"""Engine names the experiments accept (see ``repro.core.broadcast``)."""


@dataclass(frozen=True)
class ExperimentSettings:
    """Shared experiment knobs.

    Attributes
    ----------
    n:
        Number of correct nodes in each simulated network.
    trials:
        Number of independent seeds per sweep point.
    seed:
        Base seed; per-trial seeds are derived deterministically from it.
    quick:
        When ``True``, experiments shrink their sweeps (fewer points, smaller
        ``n``) so that the full benchmark suite completes in minutes.  The
        reproduced *shape* is unchanged; only statistical resolution drops.
    engine:
        Execution engine passed to the protocols (``"fast"`` or ``"slot"``).
        Validated on construction: a typo would otherwise only surface deep
        inside the first protocol run of a sweep.
    jobs:
        Worker-process count for the trial runner
        (:func:`repro.experiments.runner.run_sweep`).  ``None`` defers to the
        ``REPRO_JOBS`` environment variable, and absent that to ``1`` (the
        serial fallback).  Parallel runs are bit-identical to serial ones —
        seeds are derived per (labels, trial index), never per worker.
    cache_dir:
        Directory of the content-addressed trial store
        (:class:`repro.experiments.cache.TrialCache`).  ``None`` defers to
        ``REPRO_CACHE_DIR``; no directory from either source disables
        caching, as does the explicit empty string ``""`` (which also masks
        the environment variable).
    fault_policy:
        How the trial runner treats failing work
        (:class:`repro.experiments.faults.FaultPolicy`: chunk timeouts,
        retry/backoff budgets, quarantine vs strict).  ``None`` defers to the
        ``REPRO_TRIAL_TIMEOUT_S`` / ``REPRO_TRIAL_RETRIES`` /
        ``REPRO_STRICT_FAULTS`` environment variables layered over
        :data:`repro.experiments.faults.DEFAULT_FAULT_POLICY`.
    fault_injector:
        Optional deterministic chaos harness
        (:class:`repro.experiments.faults.FaultInjector`) used by tests and
        ``benchmarks/bench_fault_tolerance.py`` to crash workers, hang
        chunks, and corrupt cache entries at chosen coordinates.  ``None``
        (the default, and the only sensible production value) injects
        nothing.
    """

    n: int = 512
    trials: int = 3
    seed: int = 2012
    quick: bool = True
    engine: str = "fast"
    jobs: Optional[int] = None
    cache_dir: Optional[str] = None
    fault_policy: Optional[FaultPolicy] = None
    fault_injector: Optional[FaultInjector] = None

    def __post_init__(self) -> None:
        # Validation failures name the offending field and echo the received
        # value: a typo'd sweep setting would otherwise only surface deep
        # inside the first protocol run, far from the call that caused it.
        if self.engine not in VALID_ENGINES:
            raise ConfigurationError(
                f"ExperimentSettings.engine must be one of {list(VALID_ENGINES)}, "
                f"got {self.engine!r}"
            )
        if not isinstance(self.n, Integral) or self.n < 2:
            raise ConfigurationError(
                f"ExperimentSettings.n must be an integer >= 2, got {self.n!r}"
            )
        if not isinstance(self.trials, Integral) or self.trials < 1:
            raise ConfigurationError(
                f"ExperimentSettings.trials must be an integer >= 1, got {self.trials!r}"
            )
        if not isinstance(self.seed, Integral):
            raise ConfigurationError(
                f"ExperimentSettings.seed must be an integer, got {self.seed!r}"
            )
        if self.jobs is not None and (
            not isinstance(self.jobs, Integral) or self.jobs < 1
        ):
            raise ConfigurationError(
                f"ExperimentSettings.jobs must be a positive integer or None, "
                f"got {self.jobs!r}"
            )
        if self.cache_dir is not None and not isinstance(self.cache_dir, (str, os.PathLike)):
            raise ConfigurationError(
                f"ExperimentSettings.cache_dir must be a path or None, got {self.cache_dir!r}"
            )
        if self.fault_policy is not None and not isinstance(self.fault_policy, FaultPolicy):
            raise ConfigurationError(
                f"ExperimentSettings.fault_policy must be a FaultPolicy or None, "
                f"got {self.fault_policy!r}"
            )
        if self.fault_injector is not None and not isinstance(self.fault_injector, FaultInjector):
            raise ConfigurationError(
                f"ExperimentSettings.fault_injector must be a FaultInjector or None, "
                f"got {self.fault_injector!r}"
            )

    @property
    def resolved_jobs(self) -> int:
        """The effective worker count: explicit ``jobs``, else ``REPRO_JOBS``, else 1.

        The environment value is validated here, when it is actually consulted
        — a bad ``REPRO_JOBS`` names itself instead of surfacing as a cryptic
        pool failure mid-sweep.
        """

        if self.jobs is not None:
            return int(self.jobs)
        env = os.environ.get("REPRO_JOBS")
        if env is None or env.strip() == "":
            return 1
        try:
            value = int(env)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_JOBS must be a positive integer, got {env!r}"
            ) from None
        if value < 1:
            raise ConfigurationError(f"REPRO_JOBS must be a positive integer, got {env!r}")
        return value

    @property
    def resolved_cache_dir(self) -> Optional[str]:
        """The effective trial-store directory, or ``None`` when caching is off.

        The empty string is "explicitly disabled": it wins over a
        ``REPRO_CACHE_DIR`` set in the environment.
        """

        if self.cache_dir is not None:
            value = os.fspath(self.cache_dir)
            return value if value else None
        env = os.environ.get("REPRO_CACHE_DIR")
        if env is None or env.strip() == "":
            return None
        return env

    @property
    def resolved_fault_policy(self) -> FaultPolicy:
        """The effective fault policy: explicit ``fault_policy``, else env overrides.

        Like ``resolved_jobs``, environment values are validated when they are
        consulted and each failure names the variable it came from:

        * ``REPRO_TRIAL_TIMEOUT_S`` — positive float; per-chunk watchdog.
        * ``REPRO_TRIAL_RETRIES`` — non-negative integer; retry budget.
        * ``REPRO_STRICT_FAULTS`` — ``1/true/yes/on`` or ``0/false/no/off``;
          quarantine (default) vs re-raise.
        """

        if self.fault_policy is not None:
            return self.fault_policy
        changes: Dict[str, object] = {}
        env = os.environ.get("REPRO_TRIAL_TIMEOUT_S")
        if env is not None and env.strip() != "":
            try:
                timeout = float(env)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_TRIAL_TIMEOUT_S must be a positive number, got {env!r}"
                ) from None
            if timeout <= 0:
                raise ConfigurationError(
                    f"REPRO_TRIAL_TIMEOUT_S must be a positive number, got {env!r}"
                )
            changes["timeout_s"] = timeout
        env = os.environ.get("REPRO_TRIAL_RETRIES")
        if env is not None and env.strip() != "":
            try:
                retries = int(env)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_TRIAL_RETRIES must be a non-negative integer, got {env!r}"
                ) from None
            if retries < 0:
                raise ConfigurationError(
                    f"REPRO_TRIAL_RETRIES must be a non-negative integer, got {env!r}"
                )
            changes["max_retries"] = retries
        env = os.environ.get("REPRO_STRICT_FAULTS")
        if env is not None and env.strip() != "":
            lowered = env.strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                changes["strict"] = True
            elif lowered in ("0", "false", "no", "off"):
                changes["strict"] = False
            else:
                raise ConfigurationError(
                    f"REPRO_STRICT_FAULTS must be a boolean flag "
                    f"(1/true/yes/on or 0/false/no/off), got {env!r}"
                )
        if not changes:
            return DEFAULT_FAULT_POLICY
        return replace(DEFAULT_FAULT_POLICY, **changes)

    def trial_seed(self, *labels: object) -> int:
        """A deterministic seed for one trial of one sweep point."""

        return derive_seed(self.seed, *labels)

    def with_(self, **changes: object) -> "ExperimentSettings":
        return replace(self, **changes)


@dataclass
class ExperimentResult:
    """The output of one experiment: a table plus interpretation notes."""

    experiment_id: str
    title: str
    claim: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    summaries: Dict[str, float] = field(default_factory=dict)
    # Lazily-built numeric column index: (row count it was built at, values by
    # column).  Excluded from comparison/repr — it is a pure read cache.
    _numeric_index: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    def add_row(self, **values: object) -> None:
        self.rows.append(dict(values))
        self._numeric_index = None

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column_values(self, column: str) -> List[float]:
        """All numeric values recorded for a column, in row order.

        The numeric index over every column is built once per result (and
        rebuilt whenever the row count changes), so repeated lookups cost
        O(1) per column instead of rescanning all rows on every call.

        ``rows`` is treated as **append-only**: adding rows (via ``add_row``
        or appending to the list directly) invalidates the index, but
        mutating an existing row's cells in place would not be noticed —
        append a corrected row instead of editing one.
        """

        if self._numeric_index is None or self._numeric_index[0] != len(self.rows):
            index: Dict[str, List[float]] = {}
            for row in self.rows:
                for key, value in row.items():
                    if isinstance(value, (int, float)):
                        index.setdefault(key, []).append(float(value))
            self._numeric_index = (len(self.rows), index)
        return list(self._numeric_index[1].get(column, ()))


def run_trials(
    trial_fn: Callable[[int], Dict[str, float]],
    settings: ExperimentSettings,
    *labels: object,
) -> List[Dict[str, float]]:
    """Run ``trial_fn`` once per trial with deterministic per-trial seeds.

    ``trial_fn`` receives the seed for that trial and returns a flat record;
    the list of records (one per trial) is returned for aggregation.

    This is the serial, in-process primitive (it accepts closures and
    lambdas).  The registered experiments route their sweeps through
    :func:`repro.experiments.runner.run_sweep` instead, which fans the whole
    (sweep point × trial) grid across worker processes and the trial cache
    while deriving seeds identically — records are bit-identical to this
    loop's.
    """

    records: List[Dict[str, float]] = []
    for trial_index in range(settings.trials):
        seed = settings.trial_seed(*labels, trial_index)
        records.append(trial_fn(seed))
    return records
