"""Experiment harness.

Every experiment in :mod:`repro.experiments` produces an
:class:`ExperimentResult`: a titled table of rows (one per configuration or
sweep point) plus free-form notes comparing the measurement against the
paper's claim.  :class:`ExperimentSettings` centralises the knobs that every
experiment shares — network size, number of repeated trials, base seed, and a
``quick`` flag used by the pytest-benchmark harness to keep runtimes sensible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from numbers import Integral
from typing import Callable, Dict, List, Optional, Sequence

from ..simulation.errors import ConfigurationError
from ..simulation.rng import derive_seed

__all__ = ["ExperimentSettings", "ExperimentResult", "run_trials", "VALID_ENGINES"]

VALID_ENGINES = ("fast", "slot")
"""Engine names the experiments accept (see ``repro.core.broadcast``)."""


@dataclass(frozen=True)
class ExperimentSettings:
    """Shared experiment knobs.

    Attributes
    ----------
    n:
        Number of correct nodes in each simulated network.
    trials:
        Number of independent seeds per sweep point.
    seed:
        Base seed; per-trial seeds are derived deterministically from it.
    quick:
        When ``True``, experiments shrink their sweeps (fewer points, smaller
        ``n``) so that the full benchmark suite completes in minutes.  The
        reproduced *shape* is unchanged; only statistical resolution drops.
    engine:
        Execution engine passed to the protocols (``"fast"`` or ``"slot"``).
        Validated on construction: a typo would otherwise only surface deep
        inside the first protocol run of a sweep.
    """

    n: int = 512
    trials: int = 3
    seed: int = 2012
    quick: bool = True
    engine: str = "fast"

    def __post_init__(self) -> None:
        # Validation failures name the offending field and echo the received
        # value: a typo'd sweep setting would otherwise only surface deep
        # inside the first protocol run, far from the call that caused it.
        if self.engine not in VALID_ENGINES:
            raise ConfigurationError(
                f"ExperimentSettings.engine must be one of {list(VALID_ENGINES)}, "
                f"got {self.engine!r}"
            )
        if not isinstance(self.n, Integral) or self.n < 2:
            raise ConfigurationError(
                f"ExperimentSettings.n must be an integer >= 2, got {self.n!r}"
            )
        if not isinstance(self.trials, Integral) or self.trials < 1:
            raise ConfigurationError(
                f"ExperimentSettings.trials must be an integer >= 1, got {self.trials!r}"
            )
        if not isinstance(self.seed, Integral):
            raise ConfigurationError(
                f"ExperimentSettings.seed must be an integer, got {self.seed!r}"
            )

    def trial_seed(self, *labels: object) -> int:
        """A deterministic seed for one trial of one sweep point."""

        return derive_seed(self.seed, *labels)

    def with_(self, **changes: object) -> "ExperimentSettings":
        return replace(self, **changes)


@dataclass
class ExperimentResult:
    """The output of one experiment: a table plus interpretation notes."""

    experiment_id: str
    title: str
    claim: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    summaries: Dict[str, float] = field(default_factory=dict)

    def add_row(self, **values: object) -> None:
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column_values(self, column: str) -> List[float]:
        """All numeric values recorded for a column, in row order."""

        values: List[float] = []
        for row in self.rows:
            value = row.get(column)
            if isinstance(value, (int, float)):
                values.append(float(value))
        return values


def run_trials(
    trial_fn: Callable[[int], Dict[str, float]],
    settings: ExperimentSettings,
    *labels: object,
) -> List[Dict[str, float]]:
    """Run ``trial_fn`` once per trial with deterministic per-trial seeds.

    ``trial_fn`` receives the seed for that trial and returns a flat record;
    the list of records (one per trial) is returned for aggregation.
    """

    records: List[Dict[str, float]] = []
    for trial_index in range(settings.trials):
        seed = settings.trial_seed(*labels, trial_index)
        records.append(trial_fn(seed))
    return records
