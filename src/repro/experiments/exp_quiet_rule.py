"""E13 — quiet-rule ablation: termination policies on sparse Gilbert graphs.

The request-phase quiet rule of §2.2 was calibrated for one shared channel
and misfires in both directions on sparse topologies (the E11 findings): near
the connectivity threshold, locally quiet nodes inside Alice's component give
up before the relay frontier reaches them, while below it, Alice-less
components sustain each other's nacks all the way to the round cap.  This
experiment runs the same near- and sub-threshold Gilbert profiles under every
termination policy in :mod:`repro.core.quietrule` — the unmodified paper
rule, the uniform ``ConstantQuietRule`` retry cap, the plain-degree
(``hops=1``) budget form, and the default three-hop
:class:`~repro.core.quietrule.DegreeAwareQuietRule` — and quantifies the
trade every rule strikes between the two misfire directions.

Seeds are derived per scenario only (not per rule), so every rule runs on
the *same* realised graphs: the comparison is paired.
"""

from __future__ import annotations

from ..analysis.stats import aggregate_records
from ..core.broadcast import MultiHopBroadcast
from ..core.quietrule import ConstantQuietRule, DegreeAwareQuietRule, PaperQuietRule, QuietRule
from ..simulation.config import SimulationConfig
from ..simulation.topology import TopologySpec, gilbert_connectivity_radius
from .harness import ExperimentResult, ExperimentSettings
from .runner import TrialSpec, run_sweep

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "CLAIM", "BASELINE_RETRIES"]

EXPERIMENT_ID = "E13"
TITLE = "Quiet-rule ablation: request-phase termination policies on sparse Gilbert graphs"
CLAIM = (
    "A per-node, degree-aware termination budget fixes both quiet-rule misfires at once: "
    "sub-threshold cost collapses to within ~2x of a uniform retry cap while near-threshold "
    "delivery_vs_reachable returns to ~1, which neither the paper rule nor any single "
    "global constant achieves"
)

BASELINE_RETRIES = 6
"""The reference ``ConstantQuietRule`` horizon (the repo's E12 convention)."""


def _rules() -> "list[tuple[str, QuietRule]]":
    return [
        ("paper", PaperQuietRule()),
        (f"constant R={BASELINE_RETRIES}", ConstantQuietRule(retries=BASELINE_RETRIES)),
        ("degree hops=1", DegreeAwareQuietRule(hops=1)),
        ("degree-aware (default)", DegreeAwareQuietRule()),
    ]


def _trial(seed: int, n: int, engine: str, radius: float, quiet_rule: QuietRule) -> dict:
    """One E13 trial: a multi-hop run under one termination policy."""

    config = SimulationConfig(
        n=n, k=2, f=1.0, seed=seed, topology=TopologySpec.gilbert(radius=radius)
    )
    protocol = MultiHopBroadcast(config, engine=engine, quiet_rule=quiet_rule)
    outcome = protocol.run()
    reachable = len(protocol.network.topology.reachable_from_alice())
    record = outcome.as_record()
    record["reachable_fraction"] = reachable / n
    record["delivery_vs_reachable"] = (
        outcome.delivery.informed / reachable if reachable else 1.0
    )
    return record


def run(settings: ExperimentSettings) -> ExperimentResult:
    n = settings.n
    r_c = gilbert_connectivity_radius(n)
    scenarios = [("sub-threshold 0.6·r_c", 0.6), ("near-threshold 1.3·r_c", 1.3)]
    rules = _rules()

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "scenario",
            "rule",
            "reachable_fraction",
            "delivery_vs_reachable",
            "mean_node_cost",
            "slots",
        ],
    )

    # Seeds are derived from (experiment, scenario, trial) only — the rule is
    # a param, not a label — so all rules see identical realised graphs.
    specs = [
        TrialSpec.point(
            _trial,
            EXPERIMENT_ID,
            scenario_label,
            n=n,
            engine=settings.engine,
            radius=multiplier * r_c,
            quiet_rule=rule,
        )
        for scenario_label, multiplier in scenarios
        for _, rule in rules
    ]
    per_point = run_sweep(specs, settings)

    cost = {}
    dvr = {}
    index = 0
    for scenario_label, _ in scenarios:
        for rule_label, _rule in rules:
            summary = aggregate_records(per_point[index])
            index += 1
            cost[(scenario_label, rule_label)] = summary["node_mean_cost"].mean
            dvr[(scenario_label, rule_label)] = summary["delivery_vs_reachable"].mean
            result.add_row(
                scenario=scenario_label,
                rule=rule_label,
                reachable_fraction=summary["reachable_fraction"].mean,
                delivery_vs_reachable=summary["delivery_vs_reachable"].mean,
                mean_node_cost=summary["node_mean_cost"].mean,
                slots=summary["slots"].mean,
            )

    sub, near = scenarios[0][0], scenarios[1][0]
    constant_label = f"constant R={BASELINE_RETRIES}"
    degree_label = "degree-aware (default)"
    result.summaries["sub_cost_degree_vs_constant"] = (
        cost[(sub, degree_label)] / cost[(sub, constant_label)]
    )
    result.summaries["sub_cost_paper_vs_degree"] = (
        cost[(sub, "paper")] / cost[(sub, degree_label)]
    )
    result.summaries["near_dvr_paper"] = dvr[(near, "paper")]
    result.summaries["near_dvr_constant"] = dvr[(near, constant_label)]
    result.summaries["near_dvr_degree"] = dvr[(near, degree_label)]

    result.add_note(
        "Both misfire directions, one table: the paper rule pays the sub-threshold blowup "
        "(Alice-less components run to the round cap) and still dips below 1 near the "
        "threshold (locally quiet nodes give up at the earliest reliable round, ahead of the "
        "relay frontier); the uniform retry cap fixes the cost but leaves near-threshold "
        "delivery short of 1 (pipelined relay rounds shrank this deficit — fewer request "
        "phases elapse before the frontier arrives — but the cap still strands whoever it "
        "binds on); the degree-aware budgets fix the cost to within ~2x of the cap while "
        "returning delivery_vs_reachable to ~1."
    )
    result.add_note(
        "The hops=1 (plain-degree) budget row is why the rule derives budgets from the "
        "three-hop ball instead: sub- and near-threshold degree distributions overlap, so a "
        "budget keyed on degree alone must strand giant-component fringe nodes or overspend "
        "in sub-threshold fragments.  The three-hop ball separates the regimes — bounded by "
        "the component in a sub-critical fragment, ≈ deg × mean-deg² in the giant component "
        "(the local neighbourhood-count concentration of arXiv:1312.4861)."
    )
    result.add_note(
        "The residual sub-1 sliver near the threshold is the locally-undecidable class: a "
        "pendant chain of the giant component and the fringe of a large sub-critical "
        "fragment present identical local views, so every local rule prices one against "
        "the other."
    )
    return result
