"""E4 — load balance: Alice and the nodes pay asymptotically equal costs (§1, Lemma 11).

One of the two design goals (alongside resource competitiveness) is that no
participant — in particular not Alice — carries a disproportionate share of
the cost: the derivation ``a = 1/k``, ``b = 1`` equalises the worst-case
exponents so Alice's cost exceeds a node's by at most polylogarithmic factors.
The experiment measures the Alice/mean-node and Alice/max-node cost ratios
across attack scenarios and checks they stay within a polylog envelope, in
contrast to the KSY-style baseline where receivers pay polynomially more than
the sender.
"""

from __future__ import annotations

import math

from typing import Optional

from ..analysis.stats import aggregate_records
from ..baselines import KSYStyleBroadcast
from ..core.api import run_broadcast
from ..simulation.config import SimulationConfig
from .harness import ExperimentResult, ExperimentSettings
from .runner import TrialSpec, run_sweep
from .workloads import blocking_adversary

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "CLAIM"]

EXPERIMENT_ID = "E4"
TITLE = "Load balance: Alice cost vs per-node cost"
CLAIM = "Alice and each correct node incur asymptotically equal costs, up to logarithmic factors (load balancing, §1 / Lemma 11)"


def _trial(seed: int, n: int, engine: str, cap: Optional[float]) -> dict:
    """One ε-Broadcast E4 trial against a blocker capped at ``cap`` (None = no attack)."""

    adversary = blocking_adversary(cap) if cap is not None else "none"
    outcome = run_broadcast(n=n, k=2, f=1.0, seed=seed, adversary=adversary, engine=engine)
    return outcome.as_record()


def _ksy_trial(seed: int, n: int, engine: str, cap: float) -> dict:
    """The KSY-style contrast run: explicitly *not* load balanced."""

    config_trial = SimulationConfig(n=n, k=2, f=1.0, seed=seed)
    outcome = KSYStyleBroadcast(
        config_trial, adversary=blocking_adversary(cap), engine=engine
    ).run()
    return outcome.as_record()


def run(settings: ExperimentSettings) -> ExperimentResult:
    config = SimulationConfig(n=settings.n, k=2, f=1.0, seed=settings.seed)
    budget = config.adversary_total_budget
    scenarios = [
        ("no jamming", None),
        ("blocker T≈budget/8", budget / 8.0),
        ("blocker T≈budget/2", budget / 2.0),
    ]
    if settings.quick:
        scenarios = scenarios[:3]

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "scenario",
            "protocol",
            "alice_cost",
            "node_mean_cost",
            "node_max_cost",
            "alice_over_mean",
            "alice_over_max",
        ],
    )

    polylog_envelope = math.log(settings.n) ** 3

    specs = [
        TrialSpec.point(
            _trial, EXPERIMENT_ID, label, n=settings.n, engine=settings.engine, cap=cap
        )
        for label, cap in scenarios
    ]
    specs.append(
        TrialSpec.point(
            _ksy_trial,
            EXPERIMENT_ID,
            "ksy",
            n=settings.n,
            engine=settings.engine,
            cap=budget / 2.0,
        )
    )
    per_point = run_sweep(specs, settings)

    for (label, _cap), records in zip(scenarios, per_point):
        summary = aggregate_records(records)
        alice = summary["alice_cost"].mean
        mean_cost = summary["node_mean_cost"].mean
        max_cost = summary["node_max_cost"].mean
        result.add_row(
            scenario=label,
            protocol="epsilon-broadcast",
            alice_cost=alice,
            node_mean_cost=mean_cost,
            node_max_cost=max_cost,
            alice_over_mean=alice / mean_cost if mean_cost else float("inf"),
            alice_over_max=alice / max_cost if max_cost else float("inf"),
        )

    # Contrast: the KSY-style baseline is explicitly *not* load balanced.
    summary = aggregate_records(per_point[-1])
    alice = summary["alice_cost"].mean
    mean_cost = summary["node_mean_cost"].mean
    max_cost = summary["node_max_cost"].mean
    result.add_row(
        scenario="blocker T≈budget/2",
        protocol="ksy-style baseline",
        alice_cost=alice,
        node_mean_cost=mean_cost,
        node_max_cost=max_cost,
        alice_over_mean=alice / mean_cost if mean_cost else float("inf"),
        alice_over_max=alice / max_cost if max_cost else float("inf"),
    )

    result.summaries["polylog_envelope_log3n"] = polylog_envelope
    result.add_note(
        "For ε-Broadcast under jamming the Alice/node ratios stay within a polylog envelope "
        "(and usually below 1: nodes shoulder the listening); the KSY-style baseline shows the "
        "opposite imbalance the paper criticises — receivers pay Θ(T) while the sender pays T^0.62."
    )
    result.add_note(
        "The unjammed row shows Alice paying more than the (tiny) node costs because she alone "
        "must keep executing until her termination round — the polylog-vs-polylog regime of Lemma 9."
    )
    return result
