"""E10 — request-phase spoofing / termination-delay attacks (§2.2, Lemmas 4-7).

Correct nodes cannot be authenticated, so Carol can inject spoofed nacks (or
jam) during the request phase to make the network sound busier than it is and
keep Alice — and the terminated-but-still-listening nodes — executing the
protocol.  Lemmas 4-7 bound the damage: delaying termination by one more round
costs Carol ``Ω(2^{(b/2+1)i})`` (geometric in the round index) while the extra
cost she inflicts grows only sub-linearly in her spend, and she can never
cause *premature* termination because silence cannot be forged.  The
experiment sweeps the spoofer's budget and measures Alice's extra cost and the
extra rounds bought per unit of Carol's spend.
"""

from __future__ import annotations

from ..analysis.fitting import fit_power_law_with_offset
from ..analysis.stats import aggregate_records
from ..core.api import run_broadcast
from ..simulation.config import SimulationConfig
from .harness import ExperimentResult, ExperimentSettings
from .runner import TrialSpec, run_sweep
from .workloads import spoofing_adversary

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "CLAIM"]

EXPERIMENT_ID = "E10"
TITLE = "Request-phase spoofing: the price of delaying termination"
CLAIM = "Keeping Alice executing past round i costs Carol Ω(2^{(b/2+1)i}) per extra round, while Alice's extra cost grows only as Õ(T^{a/(b/2+1)}) (§2.2, Lemma 10)"


def _trial(seed: int, n: int, engine: str, cap: float) -> dict:
    """One E10 trial: the request-phase spoofer capped at ``cap`` (0 = no attack)."""

    adversary = spoofing_adversary(cap) if cap > 0 else "none"
    outcome = run_broadcast(
        n=n, k=2, f=1.0, seed=seed, adversary=adversary, engine=engine
    )
    record = outcome.as_record()
    record["alice_round"] = record.get("extra_alice_terminated_round", float("nan"))
    return record


def run(settings: ExperimentSettings) -> ExperimentResult:
    config = SimulationConfig(n=settings.n, k=2, f=1.0, seed=settings.seed)
    budget = config.adversary_total_budget
    fractions = [0.0, 0.05, 0.2, 0.5, 0.9]
    if settings.quick:
        fractions = [0.0, 0.1, 0.5]

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "spoof_budget",
            "T_spent",
            "alice_terminated_round",
            "alice_cost",
            "delivery_fraction",
            "slots",
        ],
    )

    specs = [
        TrialSpec.point(
            _trial,
            EXPERIMENT_ID,
            fraction,
            n=settings.n,
            engine=settings.engine,
            cap=fraction * budget,
        )
        for fraction in fractions
    ]
    per_point = run_sweep(specs, settings)

    spends, alice_costs = [], []
    for fraction, records in zip(fractions, per_point):
        cap = fraction * budget
        summary = aggregate_records(records)
        spent = summary["adversary_spend"].mean
        spends.append(spent)
        alice_costs.append(summary["alice_cost"].mean)
        result.add_row(
            spoof_budget=cap,
            T_spent=spent,
            alice_terminated_round=summary["alice_round"].mean if "alice_round" in summary else float("nan"),
            alice_cost=summary["alice_cost"].mean,
            delivery_fraction=summary["delivery_fraction"].mean,
            slots=summary["slots"].mean,
        )

    positive = [(s, a) for s, a in zip(spends, alice_costs) if s > 0]
    if len(positive) >= 2:
        fit = fit_power_law_with_offset([s for s, _ in positive], [a for _, a in positive])
        result.summaries["alice_exponent_vs_spoof_spend"] = fit.exponent
    result.add_note(
        "Every extra round of delay forces Carol to fill a geometrically longer request phase with "
        "spoofed nacks, so alice_terminated_round grows only logarithmically in her spend while her "
        "spend grows geometrically — the cost asymmetry of Lemmas 4-7."
    )
    result.add_note(
        "Delivery stays at 1.0 throughout: spoofing can delay termination but never causes nodes to "
        "miss the message, because silence cannot be forged and m itself is authenticated."
    )
    return result
