"""E1 — per-device cost versus adversary spend (Theorem 1 / Lemmas 10-11, k = 2).

The headline claim: if Carol's side jams for ``T`` slots, Alice and each
correct node spend only ``Õ(T^{1/3} + 1)`` (for ``k = 2``).  The experiment
sweeps Carol's spend cap with the reference phase-blocking attacker, measures
the resulting costs, and fits log-log exponents; the paper's prediction is a
node exponent near ``1/3`` (far below the naive strategy's exponent of 1) and
a sub-linear, roughly matching exponent for Alice (load balance).
"""

from __future__ import annotations

from ..analysis.competitiveness import analyze_outcomes
from ..analysis.stats import aggregate_records
from ..core.api import run_broadcast
from ..simulation.config import SimulationConfig
from .harness import ExperimentResult, ExperimentSettings, run_trials
from .workloads import blocking_adversary, saturation_spend, spend_sweep

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "CLAIM"]

EXPERIMENT_ID = "E1"
TITLE = "Per-device cost vs adversary spend T (k = 2)"
CLAIM = "Alice and each node pay Õ(T^(1/3) + 1) when Carol jams for T slots (Theorem 1, k = 2)"


def run(settings: ExperimentSettings) -> ExperimentResult:
    """Run the E1 sweep and return its table and fitted exponents."""

    config = SimulationConfig(n=settings.n, k=2, f=1.0, seed=settings.seed)
    sweep = spend_sweep(config, points=6, quick=settings.quick)

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "T_cap",
            "T_spent",
            "alice_cost",
            "node_mean_cost",
            "node_max_cost",
            "delivery_fraction",
            "rounds",
        ],
    )

    representative_outcomes = []
    for cap in sweep:
        def trial(seed: int, cap: float = cap) -> dict:
            outcome = run_broadcast(
                n=settings.n,
                k=2,
                f=1.0,
                seed=seed,
                adversary=blocking_adversary(max_total_spend=cap),
                engine=settings.engine,
            )
            record = outcome.as_record()
            record["outcome"] = outcome
            return record

        records = run_trials(trial, settings, EXPERIMENT_ID, cap)
        representative_outcomes.append(records[0]["outcome"])
        numeric = [{k: v for k, v in r.items() if k != "outcome"} for r in records]
        summary = aggregate_records(numeric)
        result.add_row(
            T_cap=cap,
            T_spent=summary["adversary_spend"].mean,
            alice_cost=summary["alice_cost"].mean,
            node_mean_cost=summary["node_mean_cost"].mean,
            node_max_cost=summary["node_max_cost"].mean,
            delivery_fraction=summary["delivery_fraction"].mean,
            rounds=summary["rounds"].mean,
        )

    report = analyze_outcomes(representative_outcomes, min_spend=saturation_spend(config))
    if report.alice_fit is not None:
        result.summaries["alice_exponent"] = report.alice_fit.exponent
    if report.node_fit is not None:
        result.summaries["node_exponent"] = report.node_fit.exponent
    result.summaries["predicted_exponent"] = report.predicted_exponent
    result.add_note(
        "Exponents are fitted on costs minus the no-jamming offset, using only spends above the "
        "finite-n saturation boundary (see workloads.saturation_spend); the paper predicts "
        f"1/(k+1) = {report.predicted_exponent:.3f} for both Alice and the nodes."
    )
    for line in report.lines():
        result.add_note(line)
    return result
