"""E1 — per-device cost versus adversary spend (Theorem 1 / Lemmas 10-11, k = 2).

The headline claim: if Carol's side jams for ``T`` slots, Alice and each
correct node spend only ``Õ(T^{1/3} + 1)`` (for ``k = 2``).  The experiment
sweeps Carol's spend cap with the reference phase-blocking attacker, measures
the resulting costs, and fits log-log exponents; the paper's prediction is a
node exponent near ``1/3`` (far below the naive strategy's exponent of 1) and
a sub-linear, roughly matching exponent for Alice (load balance).
"""

from __future__ import annotations

from types import SimpleNamespace

from ..analysis.competitiveness import analyze_outcomes
from ..analysis.stats import aggregate_records
from ..core.api import run_broadcast
from ..simulation.config import SimulationConfig
from .harness import ExperimentResult, ExperimentSettings
from .runner import TrialSpec, run_sweep
from .workloads import blocking_adversary, saturation_spend, spend_sweep

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "CLAIM"]

EXPERIMENT_ID = "E1"
TITLE = "Per-device cost vs adversary spend T (k = 2)"
CLAIM = "Alice and each node pay Õ(T^(1/3) + 1) when Carol jams for T slots (Theorem 1, k = 2)"


def _trial(seed: int, n: int, engine: str, cap: float) -> dict:
    """One E1 trial: ε-Broadcast against a phase blocker capped at ``cap``.

    Returns only the flat record: shipping the full ``BroadcastOutcome``
    (config + per-phase event log) through the runner would bloat worker IPC
    and the trial cache for fields the analysis never reads.
    """

    outcome = run_broadcast(
        n=n,
        k=2,
        f=1.0,
        seed=seed,
        adversary=blocking_adversary(max_total_spend=cap),
        engine=engine,
    )
    return outcome.as_record()


def _fit_point(record: dict) -> SimpleNamespace:
    """The slice of a ``BroadcastOutcome`` that ``analyze_outcomes`` reads,
    rebuilt from a flat trial record (same field sources as ``as_record``)."""

    return SimpleNamespace(
        protocol="epsilon-broadcast",
        config=SimpleNamespace(k=int(record["k"])),
        adversary_spend=record["adversary_spend"],
        alice_cost=record["alice_cost"],
        max_node_cost=record["node_max_cost"],
        mean_node_cost=record["node_mean_cost"],
    )


def run(settings: ExperimentSettings) -> ExperimentResult:
    """Run the E1 sweep and return its table and fitted exponents."""

    config = SimulationConfig(n=settings.n, k=2, f=1.0, seed=settings.seed)
    sweep = spend_sweep(config, points=6, quick=settings.quick)

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "T_cap",
            "T_spent",
            "alice_cost",
            "node_mean_cost",
            "node_max_cost",
            "delivery_fraction",
            "rounds",
        ],
    )

    specs = [
        TrialSpec.point(_trial, EXPERIMENT_ID, cap, n=settings.n, engine=settings.engine, cap=cap)
        for cap in sweep
    ]
    per_point = run_sweep(specs, settings)

    representative_outcomes = []
    for cap, records in zip(sweep, per_point):
        representative_outcomes.append(_fit_point(records[0]))
        summary = aggregate_records(records)
        result.add_row(
            T_cap=cap,
            T_spent=summary["adversary_spend"].mean,
            alice_cost=summary["alice_cost"].mean,
            node_mean_cost=summary["node_mean_cost"].mean,
            node_max_cost=summary["node_max_cost"].mean,
            delivery_fraction=summary["delivery_fraction"].mean,
            rounds=summary["rounds"].mean,
        )

    report = analyze_outcomes(representative_outcomes, min_spend=saturation_spend(config))
    if report.alice_fit is not None:
        result.summaries["alice_exponent"] = report.alice_fit.exponent
    if report.node_fit is not None:
        result.summaries["node_exponent"] = report.node_fit.exponent
    result.summaries["predicted_exponent"] = report.predicted_exponent
    result.add_note(
        "Exponents are fitted on costs minus the no-jamming offset, using only spends above the "
        "finite-n saturation boundary (see workloads.saturation_spend); the paper predicts "
        f"1/(k+1) = {report.predicted_exponent:.3f} for both Alice and the nodes."
    )
    for line in report.lines():
        result.add_note(line)
    return result
