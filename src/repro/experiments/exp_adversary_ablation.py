"""E9 — adversary-strategy ablation (§2 discussion).

Because every correct participant acts independently and uniformly at random
in every slot, knowing the past gives Carol no edge: the protocol's costs
should depend on *how much* she spends, not on *how cleverly* she schedules
it (with the single exception of reactive sensing, handled by E7).  The
ablation gives eight strategies the same spend cap and compares delivery, the
delay they buy, and the per-device costs they force.
"""

from __future__ import annotations

from ..analysis.stats import aggregate_records
from ..core.api import run_broadcast
from ..simulation.config import SimulationConfig
from .harness import ExperimentResult, ExperimentSettings
from .runner import TrialSpec, run_sweep
from .workloads import ablation_roster

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "CLAIM"]

EXPERIMENT_ID = "E9"
TITLE = "Jamming-strategy ablation at equal spend"
CLAIM = "The protocol yields no advantage to adaptive scheduling: at equal spend, all non-reactive strategies force comparable (and bounded) costs, and none defeats delivery"


def _trial(seed: int, n: int, engine: str, strategy: str, spend_cap: float) -> dict:
    """One E9 trial: a fresh roster strategy at the shared spend cap."""

    outcome = run_broadcast(
        n=n,
        k=2,
        f=1.0,
        seed=seed,
        adversary=ablation_roster(spend_cap)[strategy](),
        engine=engine,
    )
    return outcome.as_record()


def run(settings: ExperimentSettings) -> ExperimentResult:
    config = SimulationConfig(n=settings.n, k=2, f=1.0, seed=settings.seed)
    spend_cap = config.adversary_total_budget / 4.0
    roster = ablation_roster(spend_cap)
    if settings.quick:
        keep = ["none", "random", "continuous", "phase_blocker", "request_spoofer", "reactive"]
        roster = {name: factory for name, factory in roster.items() if name in keep}

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "strategy",
            "T_spent",
            "delivery_fraction",
            "slots",
            "alice_cost",
            "node_max_cost",
            "node_ratio",
        ],
    )

    names = list(roster)
    specs = [
        TrialSpec.point(
            _trial,
            EXPERIMENT_ID,
            name,
            n=settings.n,
            engine=settings.engine,
            strategy=name,
            spend_cap=spend_cap,
        )
        for name in names
    ]
    per_point = run_sweep(specs, settings)

    for name, records in zip(names, per_point):
        summary = aggregate_records(records)
        spent = summary["adversary_spend"].mean
        node_max = summary["node_max_cost"].mean
        # The competitive ratio is undefined when the strategy spends nothing
        # (the "none" row); report it as 0 there rather than dropping the row.
        node_ratio = node_max / spent if spent > 0 else 0.0
        result.add_row(
            strategy=name,
            T_spent=spent,
            delivery_fraction=summary["delivery_fraction"].mean,
            slots=summary["slots"].mean,
            alice_cost=summary["alice_cost"].mean,
            node_max_cost=node_max,
            node_ratio=node_ratio,
        )

    result.summaries["spend_cap"] = spend_cap
    result.add_note(
        "Phase blocking is the most slot-efficient way to convert spend into delay (it is the strategy "
        "the analysis budgets for); oblivious strategies (random, bursty) waste energy on empty or "
        "already-lost slots and buy less delay for the same T."
    )
    result.add_note(
        "The reactive row shows why §4.1 exists: against the *plain* protocol reactivity suppresses "
        "delivery at far lower spend — the decoy variant (E7) is the designed response."
    )
    return result
