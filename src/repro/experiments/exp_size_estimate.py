"""E8 — running with only a polynomial overestimate of n (§4.2).

Nodes need ``ln n`` and ``1/n`` to compute their probabilities.  §4.2 claims a
constant-factor approximation costs only a constant factor, and that even a
polynomial overestimate ``ν = n^{c'}`` works if the propagation steps sweep
the sending probability over ``1/2, 1/4, …, 1/ν`` — an ``O(log n)`` factor in
cost and latency.  The experiment compares exact-``n`` runs against
``ν ∈ {2n, n²}`` runs (no jamming and moderate blocking) and reports the
cost/latency inflation factors, which should be ≈ constant for ``ν = 2n`` and
≈ ``lg ν`` for ``ν = n²``.
"""

from __future__ import annotations

import math
from typing import Optional

from ..analysis.stats import aggregate_records
from ..core.api import run_broadcast
from ..simulation.config import SimulationConfig
from .harness import ExperimentResult, ExperimentSettings
from .runner import TrialSpec, run_sweep
from .workloads import blocking_adversary

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "CLAIM"]

EXPERIMENT_ID = "E8"
TITLE = "Unknown n: polynomial overestimates cost only a logarithmic factor"
CLAIM = "ε-Broadcast still works when nodes share only a polynomial overestimate ν of n, at an O(lg ν) factor in cost and latency (§4.2)"


def _trial(
    seed: int, n: int, engine: str, estimate: Optional[int], cap: Optional[float]
) -> dict:
    """One E8 trial: exact-n or size-estimate variant, clean or blocked."""

    adversary = blocking_adversary(cap) if cap is not None else "none"
    if estimate is None:
        outcome = run_broadcast(n=n, k=2, f=1.0, seed=seed, adversary=adversary, engine=engine)
    else:
        outcome = run_broadcast(
            n=n,
            k=2,
            f=1.0,
            seed=seed,
            adversary=adversary,
            variant="size-estimate",
            size_estimate=estimate,
            engine=engine,
        )
    return outcome.as_record()


def run(settings: ExperimentSettings) -> ExperimentResult:
    n = settings.n
    config = SimulationConfig(n=n, k=2, f=1.0, seed=settings.seed)
    moderate_T = config.adversary_total_budget / 8.0

    estimates = [("exact n", None), ("nu = 2n", 2 * n), ("nu = n^2", n * n)]
    attacks = [("no jamming", None)] if settings.quick else [("no jamming", None), ("blocker", moderate_T)]

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "scenario",
            "estimate",
            "delivery_fraction",
            "node_max_cost",
            "alice_cost",
            "slots",
            "latency_inflation",
            "predicted_factor",
        ],
    )

    points = [
        (attack_label, cap, est_label, estimate)
        for attack_label, cap in attacks
        for est_label, estimate in estimates
    ]
    specs = [
        TrialSpec.point(
            _trial,
            EXPERIMENT_ID,
            attack_label,
            est_label,
            n=n,
            engine=settings.engine,
            estimate=estimate,
            cap=cap,
        )
        for attack_label, cap, est_label, estimate in points
    ]
    per_point = iter(run_sweep(specs, settings))

    for attack_label, cap in attacks:
        baseline_slots = None
        for est_label, estimate in estimates:
            records = next(per_point)
            summary = aggregate_records(records)
            slots = summary["slots"].mean
            if baseline_slots is None:
                baseline_slots = max(slots, 1.0)
            # The round grows from k+1 phases to 2 + (k-1)·lg ν phases when the
            # propagation steps are swept over the unknown scale (§4.2).
            k = 2
            predicted = (
                1.0
                if estimate is None
                else (2.0 + (k - 1) * math.ceil(math.log2(estimate))) / (k + 1.0)
            )
            result.add_row(
                scenario=attack_label,
                estimate=est_label,
                delivery_fraction=summary["delivery_fraction"].mean,
                node_max_cost=summary["node_max_cost"].mean,
                alice_cost=summary["alice_cost"].mean,
                slots=slots,
                latency_inflation=slots / baseline_slots,
                predicted_factor=predicted,
            )

    result.add_note(
        "latency_inflation compares each estimate's slots-to-termination against the exact-n run of "
        "the same scenario; §4.2 predicts an O(lg ν) factor, concretely (2 + (k-1)·lg ν)/(k+1) from "
        "the swept propagation repetitions, and a constant factor for constant-factor estimates of ln n."
    )
    result.add_note(
        "Delivery should remain ≈ 1.0 in every row: the sweep guarantees one repetition whose sending "
        "probability is within a factor two of the true 1/n."
    )
    return result
