"""Plain-text rendering of experiment results.

The paper has no numeric tables of its own (it is a theory paper), so the
benchmark harness prints its regenerated claims in a consistent tabular format
that EXPERIMENTS.md mirrors: one table per experiment id, a "claim" line
quoting what the paper predicts, and notes interpreting the measured shape.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .harness import ExperimentResult

__all__ = ["format_value", "render_table", "render_result", "render_results"]


def format_value(value: object) -> str:
    """Format one table cell compactly but readably."""

    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3g}"
        if magnitude >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(columns: Sequence[str], rows: Iterable[dict]) -> str:
    """Render rows as a fixed-width text table with the given column order."""

    rows = list(rows)
    rendered: List[List[str]] = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(cells[idx]) for cells in rendered)) if rendered else len(str(col))
        for idx, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[idx]) for idx, col in enumerate(columns))
    separator = "  ".join("-" * widths[idx] for idx in range(len(columns)))
    body = [
        "  ".join(cells[idx].ljust(widths[idx]) for idx in range(len(columns)))
        for cells in rendered
    ]
    return "\n".join([header, separator, *body])


def render_result(result: ExperimentResult) -> str:
    """Render one experiment result in the EXPERIMENTS.md style."""

    lines = [
        f"=== {result.experiment_id}: {result.title} ===",
        f"paper claim: {result.claim}",
        "",
        render_table(result.columns, result.rows),
    ]
    if result.summaries:
        lines.append("")
        lines.append("summary: " + ", ".join(f"{key}={format_value(value)}" for key, value in sorted(result.summaries.items())))
    if result.notes:
        lines.append("")
        lines.extend(f"note: {note}" for note in result.notes)
    return "\n".join(lines)


def render_results(results: Iterable[ExperimentResult]) -> str:
    """Render several experiment results separated by blank lines."""

    return "\n\n".join(render_result(result) for result in results)
