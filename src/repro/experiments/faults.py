"""Fault tolerance for sweep execution: policy, sentinel records, chaos injection.

The parallel trial runner (:func:`repro.experiments.runner.run_sweep`) fans
embarrassingly parallel Monte-Carlo grids across worker processes.  On a long
sweep, failure is not exceptional — a worker gets OOM-killed, a pathological
configuration hangs, a disk fills mid-run — and before this module existed any
of those killed the *whole* sweep.  This module makes failure a first-class,
deterministic input to the execution layer:

* :class:`FaultPolicy` — the per-sweep knobs: chunk ``timeout_s``,
  ``max_retries`` per trial, seeded-deterministic exponential backoff with
  jitter, the pool-respawn budget before degrading to serial execution, and
  ``strict`` mode (re-raise instead of quarantining).  Threaded through
  :class:`~repro.experiments.harness.ExperimentSettings` with ``REPRO_*``
  environment overrides.
* :class:`TrialFailure` — the quarantine sentinel.  A trial that keeps failing
  past its retry budget lands in the sweep's results as an explicit record of
  *what* failed and *why*, instead of killing the other 10,000 trials.
  Aggregation (:func:`repro.analysis.stats.aggregate_records`) skips these,
  and EXPERIMENTS.md generation surfaces them in an explicit footer note.
* :class:`FaultEvent` / :func:`fault_scope` — the runner publishes one event
  per fault-handling decision (``retry``, ``timeout``, ``worker-death``,
  ``quarantine``, ``cache-disabled``, ``pool-degraded``); scopes collect them
  and :meth:`FaultEvent.as_trace_event` bridges into the
  :mod:`repro.observability` trace machinery.
* :class:`FaultInjector` — the deterministic chaos harness: crash a worker,
  hang a chunk, or corrupt a just-written cache entry at chosen
  ``(labels, trial)`` coordinates.  Injection decisions are pure functions of
  the coordinates and the dispatch attempt (faults fire only on a unit's
  first dispatch by default), so an injected sweep *recovers* and its results
  are bit-identical to a fault-free run — the property
  ``benchmarks/bench_fault_tolerance.py`` gates.

Everything here preserves the runner's core invariant: retries consume no
randomness (seeds are pure functions of ``(labels, trial_index)``), so a
recovered sweep is bit-identical to an undisturbed one.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from numbers import Integral, Real
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

from ..observability.trace import TraceEvent

if TYPE_CHECKING:  # runtime import stays lazy: cache imports faults
    from .cache import TrialCache
from ..simulation.errors import ConfigurationError

__all__ = [
    "FaultPolicy",
    "DEFAULT_FAULT_POLICY",
    "TrialFailure",
    "QuarantineError",
    "FaultEvent",
    "fault_scope",
    "emit_fault",
    "backoff_delay",
    "FaultInjector",
    "quarantine_note",
]


@dataclass(frozen=True)
class FaultPolicy:
    """How one sweep treats failing work.

    Attributes
    ----------
    timeout_s:
        Wall-clock budget for one dispatched chunk of trials.  A chunk that
        exceeds it is presumed hung: the worker pool is torn down (killing
        the hung worker), respawned, and every interrupted chunk is
        re-dispatched.  ``None`` (the default) disables the watchdog.  The
        watchdog needs a pool — the serial ``jobs=1`` path cannot interrupt
        synchronous execution and ignores it.
    max_retries:
        How many times one trial may be *re*-dispatched after its first
        attempt (so a trial runs at most ``max_retries + 1`` times) before it
        is quarantined into a :class:`TrialFailure`.
    backoff_base_s / backoff_factor / backoff_jitter:
        Delay before retry attempt ``a`` (1-based) is
        ``base · factor^(a-1) · (1 + jitter · u)`` where ``u ∈ [0, 1)`` is
        derived from a CRC-32 of the trial's coordinates — deterministic and
        process-stable, like every other random-looking quantity in this
        repository.  Set ``backoff_base_s=0`` to retry immediately.
    max_pool_respawns:
        How many pool breakages (worker death or timeout kill) one sweep
        absorbs before giving up on parallelism: the next breakage degrades
        the rest of the sweep to in-process serial execution with a single
        warning, instead of thrashing a failing machine.
    strict:
        Opt-in fail-fast: the first quarantine raises :class:`QuarantineError`
        instead of recording a sentinel.  The default (``False``) lets the
        sweep complete around the failure.
    """

    timeout_s: Optional[float] = None
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    max_pool_respawns: int = 3
    strict: bool = False

    def __post_init__(self) -> None:
        if self.timeout_s is not None and (
            not isinstance(self.timeout_s, Real)
            or isinstance(self.timeout_s, bool)
            or float(self.timeout_s) <= 0.0
        ):
            raise ConfigurationError(
                f"FaultPolicy.timeout_s must be a positive number or None, "
                f"got {self.timeout_s!r}"
            )
        if not isinstance(self.max_retries, Integral) or self.max_retries < 0:
            raise ConfigurationError(
                f"FaultPolicy.max_retries must be a non-negative integer, "
                f"got {self.max_retries!r}"
            )
        if not isinstance(self.backoff_base_s, Real) or self.backoff_base_s < 0:
            raise ConfigurationError(
                f"FaultPolicy.backoff_base_s must be non-negative, got {self.backoff_base_s!r}"
            )
        if not isinstance(self.backoff_factor, Real) or self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"FaultPolicy.backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if not isinstance(self.backoff_jitter, Real) or self.backoff_jitter < 0:
            raise ConfigurationError(
                f"FaultPolicy.backoff_jitter must be non-negative, got {self.backoff_jitter!r}"
            )
        if not isinstance(self.max_pool_respawns, Integral) or self.max_pool_respawns < 0:
            raise ConfigurationError(
                f"FaultPolicy.max_pool_respawns must be a non-negative integer, "
                f"got {self.max_pool_respawns!r}"
            )
        if not isinstance(self.strict, bool):
            raise ConfigurationError(
                f"FaultPolicy.strict must be a bool, got {self.strict!r}"
            )


DEFAULT_FAULT_POLICY = FaultPolicy()
"""The policy a sweep runs under when none is configured anywhere.

No timeout (a watchdog needs a per-workload budget to be meaningful), two
retries with short jittered backoff, three pool respawns, quarantine instead
of raising.  With no faults occurring this policy is behaviourally invisible:
no clock reads, no extra RNG, bit-identical records.
"""


def backoff_delay(
    policy: FaultPolicy, labels: Sequence[object], trial_index: int, attempt: int
) -> float:
    """Seconds to wait before retry ``attempt`` (1-based) of one trial.

    Deterministic: the jitter term is derived from a CRC-32 of the trial's
    coordinates and the attempt number, never from an RNG stream or the
    clock, so two runs of the same failing sweep back off identically.
    """

    if policy.backoff_base_s <= 0.0:
        return 0.0
    token = f"{tuple(labels)!r}:{int(trial_index)}:{int(attempt)}"
    u = zlib.crc32(token.encode("utf-8")) / 2**32
    return float(
        policy.backoff_base_s
        * policy.backoff_factor ** (attempt - 1)
        * (1.0 + policy.backoff_jitter * u)
    )


@dataclass(frozen=True)
class TrialFailure:
    """Quarantine sentinel: one trial that kept failing past its retry budget.

    Takes the place of the trial's record in ``run_sweep``'s results, so the
    sweep's shape (``results[spec][trial]``) is preserved and the failure is
    inspectable — labels, seed, the exception's type and message, how many
    attempts were burned, and the fault class (``"error"`` for an exception
    raised by the trial, ``"timeout"`` / ``"worker-death"`` when the retry
    budget was exhausted by infrastructure faults).

    Not a mapping on purpose: record aggregation
    (:func:`repro.analysis.stats.aggregate_records`) recognises and skips
    sentinels by exactly that distinction.
    """

    labels: Tuple[object, ...]
    trial_index: int
    seed: int
    kind: str
    error_type: str
    error_message: str
    attempts: int

    def describe(self) -> str:
        return (
            f"trial {self.trial_index} of {self.labels!r} quarantined after "
            f"{self.attempts} attempt(s): [{self.kind}] "
            f"{self.error_type}: {self.error_message}"
        )


class QuarantineError(RuntimeError):
    """Raised (strict mode only) when a trial exhausts its retry budget."""

    def __init__(self, failure: TrialFailure) -> None:
        super().__init__(failure.describe())
        self.failure = failure


@dataclass(frozen=True)
class FaultEvent:
    """One fault-handling decision made by the runner.

    ``kind`` is one of ``"retry"`` (a unit re-dispatched, with its backoff
    delay), ``"timeout"`` (a chunk exceeded ``FaultPolicy.timeout_s`` and its
    pool was killed), ``"worker-death"`` (the process pool broke and was
    respawned), ``"quarantine"`` (a trial exhausted its retries),
    ``"cache-disabled"`` (the trial store hit a write failure and switched
    itself off for the rest of the run), or ``"pool-degraded"`` (breakage
    exceeded the respawn budget; the sweep finished serially).
    """

    kind: str
    labels: Tuple[object, ...] = ()
    trial_index: int = -1
    attempt: int = 0
    detail: str = ""
    delay_s: float = 0.0

    def as_trace_event(self) -> TraceEvent:
        """Bridge into the observability layer: one ``"fault"`` trace event."""

        return TraceEvent(
            kind="fault",
            data={
                "fault": self.kind,
                "labels": repr(self.labels),
                "trial_index": int(self.trial_index),
                "attempt": int(self.attempt),
                "detail": self.detail,
                "delay_s": float(self.delay_s),
            },
        )


_FAULT_SINKS: List[List[FaultEvent]] = []


@contextmanager
def fault_scope() -> Iterator[List[FaultEvent]]:
    """Collect every :class:`FaultEvent` published while the scope is open.

    ::

        with fault_scope() as events:
            run_experiment("E11", settings)
        quarantines = [e for e in events if e.kind == "quarantine"]

    Scopes nest — each open scope receives every event.  With no scope open,
    publishing is a no-op list check, so the fault-free hot path pays nothing.
    """

    events: List[FaultEvent] = []
    _FAULT_SINKS.append(events)
    try:
        yield events
    finally:
        _FAULT_SINKS.remove(events)


def emit_fault(event: FaultEvent) -> None:
    """Publish one event to every open :func:`fault_scope`."""

    for sink in _FAULT_SINKS:
        sink.append(event)


def quarantine_note(events: Sequence[FaultEvent]) -> Optional[str]:
    """A one-line human summary of a scope's quarantines, or ``None`` if clean.

    Used by ``tools/generate_experiments_md.py`` to surface failed trials in
    the generated document explicitly (count + first failing coordinates)
    instead of silently dropping them from the aggregated tables.
    """

    quarantined = [event for event in events if event.kind == "quarantine"]
    if not quarantined:
        return None
    first = quarantined[0]
    return (
        f"{len(quarantined)} trial(s) quarantined; first failure at "
        f"labels={first.labels!r} trial={first.trial_index} ({first.detail})"
    )


def _coordinate_set(
    coordinates: Sequence[Tuple[Sequence[object], int]]
) -> Tuple[Tuple[Tuple[object, ...], int], ...]:
    out = []
    for labels, trial_index in coordinates:
        if isinstance(labels, str):
            labels = (labels,)
        out.append((tuple(labels), int(trial_index)))
    return tuple(out)


@dataclass(frozen=True)
class FaultInjector:
    """Deterministic chaos: crash, hang, or corrupt at chosen coordinates.

    Coordinates are ``(labels, trial_index)`` pairs; ``labels`` may be a
    *prefix* of a spec's label tuple (``("E2",)`` matches every E2 sweep
    point), and a bare string is treated as a one-element prefix.  Crash and
    hang injections fire only while a unit's dispatch-attempt index is below
    ``fire_attempts`` (default: first dispatch only), so the runner's retry
    machinery recovers and the sweep's results remain bit-identical to a
    fault-free run — which is exactly what the chaos tests assert.

    * **crashes** — the worker executing the unit calls ``os._exit``: the
      process dies mid-task and the pool breaks, exactly like an OOM kill.
      Never fires in the coordinating process (serial path ignores it).
    * **hangs** — the worker sleeps ``hang_s`` seconds before computing,
      long enough to trip any sane :attr:`FaultPolicy.timeout_s`.  Also
      worker-only.
    * **corruptions** — after the parent writes the unit's cache entry, the
      entry is truncated to a seed-derived torn prefix: the next warm read
      must degrade to a miss and recompute.

    The injector is plain frozen data: picklable (it crosses the process
    boundary with each chunk) and stable under equality, and every decision
    is a pure function of ``(labels, trial_index, attempt)``.
    """

    seed: int = 0
    crashes: Tuple[Tuple[Tuple[object, ...], int], ...] = ()
    hangs: Tuple[Tuple[Tuple[object, ...], int], ...] = ()
    corruptions: Tuple[Tuple[Tuple[object, ...], int], ...] = ()
    hang_s: float = 60.0
    fire_attempts: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", _coordinate_set(self.crashes))
        object.__setattr__(self, "hangs", _coordinate_set(self.hangs))
        object.__setattr__(self, "corruptions", _coordinate_set(self.corruptions))
        if not isinstance(self.hang_s, Real) or float(self.hang_s) <= 0:
            raise ConfigurationError(
                f"FaultInjector.hang_s must be a positive number, got {self.hang_s!r}"
            )
        if not isinstance(self.fire_attempts, Integral) or self.fire_attempts < 1:
            raise ConfigurationError(
                f"FaultInjector.fire_attempts must be a positive integer, "
                f"got {self.fire_attempts!r}"
            )

    @staticmethod
    def _matches(
        coordinates: Tuple[Tuple[Tuple[object, ...], int], ...],
        labels: Sequence[object],
        trial_index: int,
    ) -> bool:
        labels = tuple(labels)
        for coord_labels, coord_trial in coordinates:
            if coord_trial != trial_index:
                continue
            if len(coord_labels) <= len(labels) and labels[: len(coord_labels)] == coord_labels:
                return True
        return False

    def plans_crash(self, labels: Sequence[object], trial_index: int, attempt: int) -> bool:
        return attempt < self.fire_attempts and self._matches(self.crashes, labels, trial_index)

    def plans_hang(self, labels: Sequence[object], trial_index: int, attempt: int) -> bool:
        return attempt < self.fire_attempts and self._matches(self.hangs, labels, trial_index)

    def corrupts(self, labels: Sequence[object], trial_index: int) -> bool:
        return self._matches(self.corruptions, labels, trial_index)

    def apply_in_worker(self, labels: Sequence[object], trial_index: int, attempt: int) -> None:
        """Execute any planned crash/hang for this unit — worker processes only.

        Guarded on :func:`multiprocessing.parent_process`, so the serial path
        (and the degraded-to-serial path) can never kill or stall the
        coordinating process.
        """

        if multiprocessing.parent_process() is None:
            return
        if self.plans_crash(labels, trial_index, attempt):
            os._exit(86)
        if self.plans_hang(labels, trial_index, attempt):
            time.sleep(float(self.hang_s))

    def corrupt_entry(self, cache: TrialCache, key: str) -> None:
        """Tear a just-written cache entry: keep a seed-derived strict prefix."""

        path = cache.path_for(key)
        try:
            data = path.read_bytes()
            if len(data) < 2:
                return
            keep = 1 + zlib.crc32(f"{self.seed}:{key}".encode("utf-8")) % (len(data) - 1)
            path.write_bytes(data[:keep])
        except OSError:
            pass
