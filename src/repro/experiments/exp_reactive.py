"""E7 — reactive jamming and the decoy-traffic countermeasure (§4.1, Lemma 19).

A reactive Carol senses channel activity within the slot and only jams busy
slots.  Against the unmodified protocol this is devastating *and cheap*: the
only busy inform-phase slots are Alice's transmissions, so Carol kills every
copy of ``m`` while paying no more than Alice does.  §4.1's fix is for correct
nodes to transmit decoys that are indistinguishable at the RSSI level, forcing
Carol to jam a constant fraction of *all* slots.  The experiment runs the
plain and decoy variants against the same reactive jammer (and, for reference,
against no jamming) and reports delivery and the cost Carol had to sink to
have any effect.
"""

from __future__ import annotations

from ..analysis.bounds import reactive_f_threshold
from ..analysis.stats import aggregate_records
from ..core.api import run_broadcast
from .harness import ExperimentResult, ExperimentSettings
from .runner import TrialSpec, run_sweep
from .workloads import reactive_adversary

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "CLAIM"]

EXPERIMENT_ID = "E7"
TITLE = "Reactive jamming vs the decoy-traffic variant"
CLAIM = "With decoy traffic the protocol stays resource-competitive against a reactive adversary for f < 1/24 (Lemma 19); without decoys a reactive jammer blocks m at cost comparable to Alice's"


def _trial(seed: int, n: int, engine: str, variant: str, f: float, attack: bool) -> dict:
    """One E7 trial: ``variant`` at jam-rate ``f``, reactively jammed or clean."""

    outcome = run_broadcast(
        n=n,
        k=2,
        f=f,
        seed=seed,
        variant=variant,
        adversary=reactive_adversary() if attack else "none",
        engine=engine,
    )
    record = outcome.as_record()
    record["carol_over_alice"] = (
        outcome.adversary_spend / outcome.alice_cost if outcome.alice_cost else 0.0
    )
    return record


def run(settings: ExperimentSettings) -> ExperimentResult:
    f_values = [1.0 / 48.0, 1.0 / 24.0]
    if not settings.quick:
        f_values.append(1.0 / 6.0)

    scenarios = []
    for f in f_values:
        scenarios.append(("plain + reactive", "epsilon-broadcast", f, True))
        scenarios.append(("decoy + reactive", "decoy", f, True))
    scenarios.append(("decoy, no attack", "decoy", 1.0 / 24.0, False))

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "scenario",
            "f",
            "delivery_fraction",
            "carol_spend",
            "alice_cost",
            "node_max_cost",
            "carol_over_alice",
        ],
    )

    specs = [
        TrialSpec.point(
            _trial,
            EXPERIMENT_ID,
            label,
            f,
            n=settings.n,
            engine=settings.engine,
            variant=variant,
            f=f,
            attack=attack,
        )
        for label, variant, f, attack in scenarios
    ]
    per_point = run_sweep(specs, settings)

    for (label, _variant, f, _attack), records in zip(scenarios, per_point):
        summary = aggregate_records(records)
        result.add_row(
            scenario=label,
            f=f,
            delivery_fraction=summary["delivery_fraction"].mean,
            carol_spend=summary["adversary_spend"].mean,
            alice_cost=summary["alice_cost"].mean,
            node_max_cost=summary["node_max_cost"].mean,
            carol_over_alice=summary["carol_over_alice"].mean,
        )

    result.summaries["f_threshold"] = reactive_f_threshold()
    result.add_note(
        "Against the plain protocol the reactive jammer suppresses delivery until her budget dies "
        "while spending little per round (carol_over_alice stays small); with decoys she must jam a "
        "constant fraction of all busy slots, so her spend per round of delay explodes and delivery "
        "recovers — the 'make your own noise' effect of §4.1."
    )
    result.add_note(
        f"The paper proves the decoy guarantee for f < 1/24 ≈ {reactive_f_threshold():.4f}; larger f "
        "gives Carol enough aggregate budget to outlast the decoy traffic."
    )
    return result
