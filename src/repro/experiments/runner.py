"""Parallel, cache-aware execution of experiment trials.

The experiments in this package are Monte-Carlo sweeps: a grid of sweep
points, each repeated for ``settings.trials`` independent seeds, every trial a
pure function of its seed and parameters.  That workload is embarrassingly
parallel, and :func:`run_sweep` exploits it: experiments describe their whole
sweep as a list of :class:`TrialSpec` work units, and the runner fans the
``len(specs) × settings.trials`` trials out across ``settings.resolved_jobs``
worker processes (``jobs=1`` is a plain in-process loop — the serial
fallback), consults the content-addressed :class:`~repro.experiments.cache.TrialCache`
for already-computed trials, and returns records grouped per spec in
deterministic submission order.

Three invariants make parallel runs **bit-identical** to serial ones:

* **Seeds are derived exactly as the serial harness derives them** —
  ``settings.trial_seed(*spec.labels, trial_index)`` — so a record's seed does
  not depend on which worker computed it or in what order.
* **Trial functions are top-level module functions** taking
  ``(seed, **params)`` with picklable params.  They carry no shared state, so
  process boundaries cannot perturb them (and closures, which cannot cross a
  process boundary, are rejected by pickling up front).
* **Results are ordered by (spec index, trial index)**, never by completion
  order.

Caching happens in the parent: hits are served before any work is dispatched,
misses are executed (in the pool or inline) and written back afterwards, so
workers never touch the store concurrently.

Observability
-------------

Two opt-in, parent-side instruments ride on the runner without touching the
invariants above:

* **Progress** — with a sink active (:func:`progress_scope`, or the
  ``progress=`` keyword), :func:`run_sweep` emits one
  :class:`~repro.observability.progress.ProgressEvent` per completed work
  unit — cache hits during the scan, computed trials as the streaming
  collection receives them.  Events are emitted in the parent only, and with
  no sink active the runner never even reads the clock, so instrumented and
  plain sweeps produce byte-identical results and documents.
* **Stage spans** — inside a :func:`span_scope`, the :func:`timed_span`
  contextmanager attributes wall-clock to the runner's stages (``schedule``,
  ``fan-out``, ``reassemble``); ``tools/trace_report.py`` renders them.
  With no scope open ``timed_span`` is a no-op that skips the clock.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..observability.progress import ProgressEvent
from .cache import TrialCache, trial_key
from .harness import ExperimentSettings

__all__ = [
    "TrialSpec",
    "ExecutionStats",
    "EXECUTION_STATS",
    "track_stats",
    "TimedSpan",
    "span_scope",
    "timed_span",
    "progress_scope",
    "run_sweep",
    "run_point",
]


@dataclass(frozen=True)
class TrialSpec:
    """One sweep point: a trial function plus its seed labels and parameters.

    Attributes
    ----------
    trial_fn:
        A **top-level** function ``fn(seed, **params) -> dict``.  Top-level
        because workers receive it by pickled reference (module + qualname);
        a closure or lambda would fail to cross the process boundary.
    labels:
        The sweep-point labels fed into ``settings.trial_seed`` — use exactly
        the labels a serial ``run_trials`` call would have used so seeds (and
        therefore records) stay bit-identical.
    params:
        Keyword arguments forwarded to ``trial_fn``.  Must be picklable plain
        data; they are also hashed into the trial's cache key.
    """

    trial_fn: Callable[..., Dict[str, object]]
    labels: Tuple[object, ...]
    params: Mapping[str, object] = field(default_factory=dict)

    @classmethod
    def point(
        cls, trial_fn: Callable[..., Dict[str, object]], *labels: object, **params: object
    ) -> "TrialSpec":
        """Convenience constructor mirroring ``run_trials(fn, settings, *labels)``."""

        return cls(trial_fn=trial_fn, labels=tuple(labels), params=params)


@dataclass
class ExecutionStats:
    """Counters the runner maintains across :func:`run_sweep` calls.

    ``executed`` counts trials actually computed (serially or in a worker);
    ``cache_hits`` / ``cache_misses`` count store lookups when a cache is
    active.  Callers that want per-phase numbers (the EXPERIMENTS.md
    generator, tests probing the cache-warm path) snapshot before and after.
    """

    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def snapshot(self) -> "ExecutionStats":
        return replace(self)

    def since(self, before: "ExecutionStats") -> "ExecutionStats":
        return ExecutionStats(
            executed=self.executed - before.executed,
            cache_hits=self.cache_hits - before.cache_hits,
            cache_misses=self.cache_misses - before.cache_misses,
        )


EXECUTION_STATS = ExecutionStats()
"""Process-global *aggregate* runner counters (incremented in the parent only).

This is the lifetime total across every sweep the process ran.  Because it is
a mutable global, two back-to-back sweeps cannot be told apart through it
without snapshot arithmetic — callers that want the counters of *one* sweep
(or one experiment) should scope them with :func:`track_stats`, which hands
out a fresh per-scope ``ExecutionStats`` and leaves the aggregate intact.
"""

_STATS_SINKS: List[ExecutionStats] = []


@contextmanager
def track_stats() -> Iterator[ExecutionStats]:
    """Scope runner counters: everything run inside accrues to a fresh object.

    ::

        with track_stats() as stats:
            run_experiment("E11", settings)
        print(stats.executed, stats.cache_hits, stats.cache_misses)

    The yielded object starts at zero and only counts trials processed while
    the context is open; the :data:`EXECUTION_STATS` aggregate keeps counting
    globally, so existing snapshot/``since`` consumers are unaffected.
    Scopes nest — each open scope receives every increment.
    """

    stats = ExecutionStats()
    _STATS_SINKS.append(stats)
    try:
        yield stats
    finally:
        _STATS_SINKS.remove(stats)


def _count(field_name: str) -> None:
    """Increment one counter on the aggregate and every open scope."""

    setattr(EXECUTION_STATS, field_name, getattr(EXECUTION_STATS, field_name) + 1)
    for sink in _STATS_SINKS:
        setattr(sink, field_name, getattr(sink, field_name) + 1)


@dataclass(frozen=True)
class TimedSpan:
    """One named wall-clock measurement recorded by :func:`timed_span`."""

    name: str
    seconds: float


_SPAN_SINKS: List[List[TimedSpan]] = []


@contextmanager
def span_scope() -> Iterator[List[TimedSpan]]:
    """Collect :func:`timed_span` measurements made while the scope is open.

    ::

        with span_scope() as spans:
            run_sweep(specs, settings)
        for span in spans:
            print(span.name, span.seconds)

    Scopes nest — each open scope receives every span.  Convert the collected
    list with :func:`repro.observability.report.span_events` to store it in a
    JSONL trace alongside run events.
    """

    spans: List[TimedSpan] = []
    _SPAN_SINKS.append(spans)
    try:
        yield spans
    finally:
        _SPAN_SINKS.remove(spans)


@contextmanager
def timed_span(name: str) -> Iterator[None]:
    """Attribute the wall-clock of the enclosed block to ``name``.

    A profiling primitive, not a profiler: with no :func:`span_scope` open it
    yields immediately without reading the clock, so permanently-wrapped code
    (the runner's stages) costs one list check per span when unobserved.
    """

    if not _SPAN_SINKS:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        span = TimedSpan(name=name, seconds=time.perf_counter() - start)
        for sink in _SPAN_SINKS:
            sink.append(span)


_PROGRESS_SINKS: List[Callable[[ProgressEvent], None]] = []


@contextmanager
def progress_scope(sink: Callable[[ProgressEvent], None]) -> Iterator[Callable[[ProgressEvent], None]]:
    """Register ``sink`` to receive one event per work unit of enclosed sweeps.

    ::

        renderer = CliProgressRenderer(label="E11")
        with progress_scope(renderer):
            run_experiment("E11", settings)
        renderer.finish()

    The scoped registration means registered experiments need no signature
    changes to become followable; the ``progress=`` keyword of
    :func:`run_sweep` covers direct calls.  Scopes nest — every open sink
    receives every event.
    """

    _PROGRESS_SINKS.append(sink)
    try:
        yield sink
    finally:
        _PROGRESS_SINKS.remove(sink)


def _run_unit(unit: Tuple[Callable[..., Dict[str, object]], int, Dict[str, object]]):
    """Execute one (function, seed, params) work unit; the pool's map target."""

    trial_fn, seed, params = unit
    return trial_fn(seed, **params)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` where available: cheapest start-up, inherits sys.path."""

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _chunksize(pending: int, jobs: int) -> int:
    """Batch units per pool task: ~4 chunks per worker amortises IPC without
    starving the tail (one giant chunk per worker would serialise stragglers)."""

    return max(1, pending // (jobs * 4))


def run_sweep(
    specs: Sequence[TrialSpec],
    settings: ExperimentSettings,
    *,
    jobs: Optional[int] = None,
    cache: Optional[TrialCache] = None,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
) -> List[List[Dict[str, object]]]:
    """Run every spec's trials, parallel and cache-aware; records per spec, in order.

    Parameters
    ----------
    specs:
        The sweep, one :class:`TrialSpec` per point.
    settings:
        Supplies ``trials``, the seed derivation, and — unless overridden by
        the explicit keyword arguments — ``resolved_jobs`` and
        ``resolved_cache_dir``.
    jobs:
        Worker-process count override; ``None`` defers to the settings/env.
    cache:
        Trial-store override; ``None`` defers to the settings/env (and no
        configured directory means caching is off).
    progress:
        Extra progress sink for this call, on top of any open
        :func:`progress_scope`.  One event fires per completed work unit,
        from the parent process only; with no sink anywhere the runner never
        reads the clock.

    Returns
    -------
    ``results[i][t]`` is the record of trial ``t`` of ``specs[i]``, identical
    field-for-field to what a serial loop would have produced.
    """

    jobs = settings.resolved_jobs if jobs is None else int(jobs)
    if jobs < 1:
        jobs = 1
    if cache is None:
        cache_dir = settings.resolved_cache_dir
        cache = TrialCache(cache_dir) if cache_dir is not None else None

    sinks: List[Callable[[ProgressEvent], None]] = list(_PROGRESS_SINKS)
    if progress is not None:
        sinks.append(progress)
    total = len(specs) * settings.trials
    completed = 0
    sweep_start = time.perf_counter() if sinks else 0.0

    def emit(labels: Tuple[object, ...], trial_index: int, cache_hit: bool) -> None:
        event = ProgressEvent(
            labels=labels,
            trial_index=trial_index,
            cache_hit=cache_hit,
            completed=completed,
            total=total,
            elapsed=time.perf_counter() - sweep_start,
        )
        for sink in sinks:
            sink(event)

    results: List[List[Optional[Dict[str, object]]]] = [
        [None] * settings.trials for _ in specs
    ]
    # (spec index, trial index, cache key or None, work unit) for every trial
    # the cache could not serve, in deterministic submission order.
    pending: List[Tuple[int, int, Optional[str], Tuple]] = []
    with timed_span("schedule"):
        for spec_index, spec in enumerate(specs):
            for trial_index in range(settings.trials):
                seed = settings.trial_seed(*spec.labels, trial_index)
                key: Optional[str] = None
                if cache is not None:
                    key = trial_key(spec.trial_fn, spec.labels, seed, spec.params)
                    record = cache.get(key)
                    if record is not None:
                        _count("cache_hits")
                        # Refresh the entry's mtime so prune()'s LRU order keeps
                        # recently *served* records, not just recently written ones.
                        cache.touch(key)
                        results[spec_index][trial_index] = record
                        if sinks:
                            completed += 1
                            emit(spec.labels, trial_index, True)
                        continue
                    _count("cache_misses")
                pending.append(
                    (spec_index, trial_index, key, (spec.trial_fn, seed, dict(spec.params)))
                )

    if pending:
        workers = min(jobs, len(pending))

        def collect(records) -> None:
            # Count, store, and cache each record as it arrives (pool.map
            # yields in submission order as chunks complete), so an
            # interrupted sweep keeps — and counts — exactly the trials that
            # finished before the interruption: the "resume an interrupted
            # sweep" promise of the trial cache, with `executed` staying
            # truthful for stats consumers that span a failed run.
            nonlocal completed
            for (spec_index, trial_index, key, _), record in zip(pending, records):
                _count("executed")
                results[spec_index][trial_index] = record
                if cache is not None and key is not None:
                    cache.put(key, record)
                if sinks:
                    completed += 1
                    emit(specs[spec_index].labels, trial_index, False)

        with timed_span("fan-out"):
            if workers <= 1:
                collect(_run_unit(unit) for _, _, _, unit in pending)
            else:
                with ProcessPoolExecutor(
                    max_workers=workers, mp_context=_pool_context()
                ) as pool:
                    collect(
                        pool.map(
                            _run_unit,
                            [unit for _, _, _, unit in pending],
                            chunksize=_chunksize(len(pending), workers),
                        )
                    )

    with timed_span("reassemble"):
        out: List[List[Dict[str, object]]] = []
        for spec_index, records in enumerate(results):
            if any(record is None for record in records):  # pragma: no cover - invariant
                raise RuntimeError(
                    f"sweep left unfilled trials for spec {spec_index} "
                    f"({specs[spec_index].labels!r})"
                )
            out.append(records)  # type: ignore[arg-type] - checked above
    return out


def run_point(
    trial_fn: Callable[..., Dict[str, object]],
    settings: ExperimentSettings,
    *labels: object,
    **params: object,
) -> List[Dict[str, object]]:
    """Run one sweep point's trials through the runner (drop-in for ``run_trials``)."""

    return run_sweep([TrialSpec.point(trial_fn, *labels, **params)], settings)[0]
