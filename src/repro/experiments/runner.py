"""Parallel, cache-aware, fault-tolerant execution of experiment trials.

The experiments in this package are Monte-Carlo sweeps: a grid of sweep
points, each repeated for ``settings.trials`` independent seeds, every trial a
pure function of its seed and parameters.  That workload is embarrassingly
parallel, and :func:`run_sweep` exploits it: experiments describe their whole
sweep as a list of :class:`TrialSpec` work units, and the runner fans the
``len(specs) × settings.trials`` trials out across ``settings.resolved_jobs``
worker processes (``jobs=1`` is a plain in-process loop — the serial
fallback), consults the content-addressed :class:`~repro.experiments.cache.TrialCache`
for already-computed trials, and returns records grouped per spec in
deterministic submission order.

Three invariants make parallel runs **bit-identical** to serial ones:

* **Seeds are derived exactly as the serial harness derives them** —
  ``settings.trial_seed(*spec.labels, trial_index)`` — so a record's seed does
  not depend on which worker computed it or in what order.
* **Trial functions are top-level module functions** taking
  ``(seed, **params)`` with picklable params.  They carry no shared state, so
  process boundaries cannot perturb them (and closures, which cannot cross a
  process boundary, are rejected by pickling up front).
* **Results are ordered by (spec index, trial index)**, never by completion
  order.

Caching happens in the parent: hits are served before any work is dispatched,
misses are executed (in the pool or inline) and written back afterwards, so
workers never touch the store concurrently.

Fault tolerance
---------------

Failure is an ordinary input to the execution layer, governed by the sweep's
:class:`~repro.experiments.faults.FaultPolicy` (from ``settings`` or the
``policy=`` keyword):

* a **dead worker** (``BrokenProcessPool``) breaks only the chunks that were
  in flight: the pool is respawned and those units are re-dispatched;
* a **hung chunk** that exceeds ``timeout_s`` is killed with its pool and
  re-dispatched the same way;
* a unit that keeps failing is retried up to ``max_retries`` times with
  seeded-deterministic backoff, then **quarantined** into an explicit
  :class:`~repro.experiments.faults.TrialFailure` sentinel in the results
  (``strict=True`` raises :class:`~repro.experiments.faults.QuarantineError`
  instead), so one poisoned configuration cannot kill a 10,000-trial grid;
* once pool breakage exceeds ``max_pool_respawns`` the sweep **degrades to
  serial** in-process execution with a single warning.

Retries consume no RNG — a unit's seed is a pure function of
``(labels, trial_index)`` — so a sweep that recovered from faults is
bit-identical to an undisturbed one.  Each handling decision is published as
a :class:`~repro.experiments.faults.FaultEvent` (collect with
:func:`~repro.experiments.faults.fault_scope`, or pass ``recorder=`` to store
``"fault"`` trace events), and counted on :class:`ExecutionStats`.

Observability
-------------

Two opt-in, parent-side instruments ride on the runner without touching the
invariants above:

* **Progress** — with a sink active (:func:`progress_scope`, or the
  ``progress=`` keyword), :func:`run_sweep` emits one
  :class:`~repro.observability.progress.ProgressEvent` per completed work
  unit — cache hits during the scan, computed trials as the streaming
  collection receives them.  Events are emitted in the parent only, and with
  no sink active (and no fault handling under way) the runner never even
  reads the clock, so instrumented and plain sweeps produce byte-identical
  results and documents.
* **Stage spans** — inside a :func:`span_scope`, the :func:`timed_span`
  contextmanager attributes wall-clock to the runner's stages (``schedule``,
  ``fan-out``, ``reassemble``); ``tools/trace_report.py`` renders them.
  With no scope open ``timed_span`` is a no-op that skips the clock.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..observability.progress import ProgressEvent
from ..observability.trace import NULL_RECORDER, TraceRecorder
from .cache import TrialCache, trial_key
from .faults import (
    FaultEvent,
    FaultInjector,
    FaultPolicy,
    QuarantineError,
    TrialFailure,
    backoff_delay,
    emit_fault,
)
from .harness import ExperimentSettings

__all__ = [
    "TrialSpec",
    "ExecutionStats",
    "EXECUTION_STATS",
    "track_stats",
    "TimedSpan",
    "span_scope",
    "timed_span",
    "progress_scope",
    "run_sweep",
    "run_point",
]


@dataclass(frozen=True)
class TrialSpec:
    """One sweep point: a trial function plus its seed labels and parameters.

    Attributes
    ----------
    trial_fn:
        A **top-level** function ``fn(seed, **params) -> dict``.  Top-level
        because workers receive it by pickled reference (module + qualname);
        a closure or lambda would fail to cross the process boundary.
    labels:
        The sweep-point labels fed into ``settings.trial_seed`` — use exactly
        the labels a serial ``run_trials`` call would have used so seeds (and
        therefore records) stay bit-identical.
    params:
        Keyword arguments forwarded to ``trial_fn``.  Must be picklable plain
        data; they are also hashed into the trial's cache key.
    """

    trial_fn: Callable[..., Dict[str, object]]
    labels: Tuple[object, ...]
    params: Mapping[str, object] = field(default_factory=dict)

    @classmethod
    def point(
        cls, trial_fn: Callable[..., Dict[str, object]], *labels: object, **params: object
    ) -> "TrialSpec":
        """Convenience constructor mirroring ``run_trials(fn, settings, *labels)``."""

        return cls(trial_fn=trial_fn, labels=tuple(labels), params=params)


@dataclass
class ExecutionStats:
    """Counters the runner maintains across :func:`run_sweep` calls.

    ``executed`` counts trials actually computed (serially or in a worker);
    ``cache_hits`` / ``cache_misses`` count store lookups when a cache is
    active.  The fault counters record handling *incidents*: ``retries`` is
    unit re-dispatches (whatever the cause), ``timeouts`` and
    ``worker_deaths`` are pool-level kill/respawn incidents, ``quarantined``
    counts trials given up on, and ``cache_disabled`` counts stores that shut
    themselves off mid-run.  Callers that want per-phase numbers (the
    EXPERIMENTS.md generator, tests probing the cache-warm path) snapshot
    before and after.
    """

    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    quarantined: int = 0
    cache_disabled: int = 0

    def snapshot(self) -> "ExecutionStats":
        return replace(self)

    def since(self, before: "ExecutionStats") -> "ExecutionStats":
        return ExecutionStats(
            **{
                f.name: getattr(self, f.name) - getattr(before, f.name)
                for f in dataclass_fields(self)
            }
        )


EXECUTION_STATS = ExecutionStats()
"""Process-global *aggregate* runner counters (incremented in the parent only).

This is the lifetime total across every sweep the process ran.  Because it is
a mutable global, two back-to-back sweeps cannot be told apart through it
without snapshot arithmetic — callers that want the counters of *one* sweep
(or one experiment) should scope them with :func:`track_stats`, which hands
out a fresh per-scope ``ExecutionStats`` and leaves the aggregate intact.
"""

_STATS_SINKS: List[ExecutionStats] = []


@contextmanager
def track_stats() -> Iterator[ExecutionStats]:
    """Scope runner counters: everything run inside accrues to a fresh object.

    ::

        with track_stats() as stats:
            run_experiment("E11", settings)
        print(stats.executed, stats.cache_hits, stats.cache_misses)

    The yielded object starts at zero and only counts trials processed while
    the context is open; the :data:`EXECUTION_STATS` aggregate keeps counting
    globally, so existing snapshot/``since`` consumers are unaffected.
    Scopes nest — each open scope receives every increment.
    """

    stats = ExecutionStats()
    _STATS_SINKS.append(stats)
    try:
        yield stats
    finally:
        _STATS_SINKS.remove(stats)


def _count(field_name: str) -> None:
    """Increment one counter on the aggregate and every open scope."""

    setattr(EXECUTION_STATS, field_name, getattr(EXECUTION_STATS, field_name) + 1)
    for sink in _STATS_SINKS:
        setattr(sink, field_name, getattr(sink, field_name) + 1)


@dataclass(frozen=True)
class TimedSpan:
    """One named wall-clock measurement recorded by :func:`timed_span`."""

    name: str
    seconds: float


_SPAN_SINKS: List[List[TimedSpan]] = []


@contextmanager
def span_scope() -> Iterator[List[TimedSpan]]:
    """Collect :func:`timed_span` measurements made while the scope is open.

    ::

        with span_scope() as spans:
            run_sweep(specs, settings)
        for span in spans:
            print(span.name, span.seconds)

    Scopes nest — each open scope receives every span.  Convert the collected
    list with :func:`repro.observability.report.span_events` to store it in a
    JSONL trace alongside run events.
    """

    spans: List[TimedSpan] = []
    _SPAN_SINKS.append(spans)
    try:
        yield spans
    finally:
        _SPAN_SINKS.remove(spans)


@contextmanager
def timed_span(name: str) -> Iterator[None]:
    """Attribute the wall-clock of the enclosed block to ``name``.

    A profiling primitive, not a profiler: with no :func:`span_scope` open it
    yields immediately without reading the clock, so permanently-wrapped code
    (the runner's stages) costs one list check per span when unobserved.
    """

    if not _SPAN_SINKS:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        span = TimedSpan(name=name, seconds=time.perf_counter() - start)
        for sink in _SPAN_SINKS:
            sink.append(span)


_PROGRESS_SINKS: List[Callable[[ProgressEvent], None]] = []


@contextmanager
def progress_scope(sink: Callable[[ProgressEvent], None]) -> Iterator[Callable[[ProgressEvent], None]]:
    """Register ``sink`` to receive one event per work unit of enclosed sweeps.

    ::

        renderer = CliProgressRenderer(label="E11")
        with progress_scope(renderer):
            run_experiment("E11", settings)
        renderer.finish()

    The scoped registration means registered experiments need no signature
    changes to become followable; the ``progress=`` keyword of
    :func:`run_sweep` covers direct calls.  Scopes nest — every open sink
    receives every event.
    """

    _PROGRESS_SINKS.append(sink)
    try:
        yield sink
    finally:
        _PROGRESS_SINKS.remove(sink)


@dataclass
class _Unit:
    """One trial's mutable dispatch state inside a single :func:`run_sweep` call."""

    spec_index: int
    trial_index: int
    labels: Tuple[object, ...]
    seed: int
    key: Optional[str]
    trial_fn: Callable[..., Dict[str, object]]
    params: Dict[str, object]
    attempts: int = 0  # dispatches so far; the Nth dispatch carries attempt=N-1


@dataclass
class _Chunk:
    """A batch of units dispatched to one pool task."""

    units: List[_Unit]
    not_before: float = 0.0  # monotonic time before which this chunk must wait
    deadline: float = 0.0  # monotonic dispatch deadline (0 = no watchdog)


def _run_chunk(
    items: List[Tuple], injector: Optional[FaultInjector]
) -> List[Tuple[object, ...]]:
    """Execute one batch of work units inside a worker; the pool's task target.

    Returns one outcome per item, aligned by position: ``("ok", record)`` or
    ``("error", type_name, message)``.  Per-unit exceptions are captured here
    (not raised) so one failing trial cannot discard its chunk-mates' finished
    work; ``KeyboardInterrupt`` still propagates so Ctrl-C tears workers down.
    """

    outcomes: List[Tuple] = []
    for labels, trial_index, attempt, trial_fn, seed, params in items:
        if injector is not None:
            injector.apply_in_worker(labels, trial_index, attempt)
        try:
            outcomes.append(("ok", trial_fn(seed, **params)))
        except KeyboardInterrupt:
            raise
        except BaseException as exc:  # noqa: BLE001 - converted to data, not swallowed
            outcomes.append(("error", type(exc).__name__, str(exc)))
    return outcomes


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` where available: cheapest start-up, inherits sys.path."""

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _chunksize(pending: int, jobs: int) -> int:
    """Batch units per pool task: ~4 chunks per worker amortises IPC without
    starving the tail (one giant chunk per worker would serialise stragglers)."""

    return max(1, pending // (jobs * 4))


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*: cancel queued work, kill workers, reap them.

    ``shutdown(wait=True)`` would block forever behind a hung worker, and
    ``shutdown(wait=False)`` alone would orphan it — so the worker processes
    are terminated explicitly and joined with a bound.
    """

    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-reaped race
            pass
    for process in processes:
        try:
            process.join(timeout=2.0)
        except Exception:  # pragma: no cover - already-reaped race
            pass


def run_sweep(
    specs: Sequence[TrialSpec],
    settings: ExperimentSettings,
    *,
    jobs: Optional[int] = None,
    cache: Optional[TrialCache] = None,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    policy: Optional[FaultPolicy] = None,
    injector: Optional[FaultInjector] = None,
    recorder: Optional[TraceRecorder] = None,
) -> List[List[Dict[str, object]]]:
    """Run every spec's trials, parallel and cache-aware; records per spec, in order.

    Parameters
    ----------
    specs:
        The sweep, one :class:`TrialSpec` per point.
    settings:
        Supplies ``trials``, the seed derivation, and — unless overridden by
        the explicit keyword arguments — ``resolved_jobs``,
        ``resolved_cache_dir``, ``resolved_fault_policy``, and
        ``fault_injector``.
    jobs:
        Worker-process count override; ``None`` defers to the settings/env.
    cache:
        Trial-store override; ``None`` defers to the settings/env (and no
        configured directory means caching is off).
    progress:
        Extra progress sink for this call, on top of any open
        :func:`progress_scope`.  One event fires per completed work unit,
        from the parent process only; with no sink anywhere the runner never
        reads the clock.
    policy:
        Fault-handling override (:class:`~repro.experiments.faults.FaultPolicy`);
        ``None`` defers to ``settings.resolved_fault_policy``.
    injector:
        Deterministic chaos override
        (:class:`~repro.experiments.faults.FaultInjector`); ``None`` defers
        to ``settings.fault_injector`` (normally: no injection).
    recorder:
        Optional :class:`~repro.observability.trace.TraceRecorder`; when
        enabled, every fault-handling decision is stored as a ``"fault"``
        trace event alongside whatever else the recorder collects.

    Returns
    -------
    ``results[i][t]`` is the record of trial ``t`` of ``specs[i]``, identical
    field-for-field to what a serial loop would have produced — except that a
    trial quarantined under the fault policy yields a
    :class:`~repro.experiments.faults.TrialFailure` sentinel in its slot.

    Raises
    ------
    QuarantineError
        Only with ``policy.strict``: the first trial to exhaust its retry
        budget aborts the sweep.
    KeyboardInterrupt
        Re-raised after a clean teardown: workers are terminated (never
        orphaned), every trial that finished before the interrupt has been
        written to the cache, and a one-line partial-progress summary is
        printed to stderr — re-running the same sweep resumes warm.
    """

    jobs = settings.resolved_jobs if jobs is None else int(jobs)
    if jobs < 1:
        jobs = 1
    if policy is None:
        policy = settings.resolved_fault_policy
    if injector is None:
        injector = settings.fault_injector
    if recorder is None:
        recorder = NULL_RECORDER
    if cache is None:
        cache_dir = settings.resolved_cache_dir
        cache = TrialCache(cache_dir) if cache_dir is not None else None

    def publish(event: FaultEvent) -> None:
        emit_fault(event)
        if recorder.enabled:
            recorder.record(event.as_trace_event())

    cache_disabled_noted = False

    def note_cache_disabled() -> None:
        # The store warns (once) when it disables itself; the runner's job is
        # to make that visible to stats/trace consumers, also exactly once.
        nonlocal cache_disabled_noted
        if cache is not None and cache.disabled and not cache_disabled_noted:
            cache_disabled_noted = True
            _count("cache_disabled")
            publish(
                FaultEvent(kind="cache-disabled", detail=cache.disabled_reason or "")
            )

    note_cache_disabled()

    sinks: List[Callable[[ProgressEvent], None]] = list(_PROGRESS_SINKS)
    if progress is not None:
        sinks.append(progress)
    total = len(specs) * settings.trials
    completed = 0
    sweep_start = time.perf_counter() if sinks else 0.0

    def emit(labels: Tuple[object, ...], trial_index: int, cache_hit: bool) -> None:
        event = ProgressEvent(
            labels=labels,
            trial_index=trial_index,
            cache_hit=cache_hit,
            completed=completed,
            total=total,
            elapsed=time.perf_counter() - sweep_start,
        )
        for sink in sinks:
            sink(event)

    results: List[List[Optional[Dict[str, object]]]] = [
        [None] * settings.trials for _ in specs
    ]

    pending: List[_Unit] = []
    with timed_span("schedule"):
        for spec_index, spec in enumerate(specs):
            for trial_index in range(settings.trials):
                seed = settings.trial_seed(*spec.labels, trial_index)
                key: Optional[str] = None
                if cache is not None:
                    key = trial_key(spec.trial_fn, spec.labels, seed, spec.params)
                    record = cache.get(key)
                    if record is not None:
                        _count("cache_hits")
                        # Refresh the entry's mtime so prune()'s LRU order keeps
                        # recently *served* records, not just recently written ones.
                        cache.touch(key)
                        results[spec_index][trial_index] = record
                        if sinks:
                            completed += 1
                            emit(spec.labels, trial_index, True)
                        continue
                    _count("cache_misses")
                pending.append(
                    _Unit(
                        spec_index=spec_index,
                        trial_index=trial_index,
                        labels=spec.labels,
                        seed=seed,
                        key=key,
                        trial_fn=spec.trial_fn,
                        params=dict(spec.params),
                    )
                )

    def complete(unit: _Unit, record: Dict[str, object]) -> None:
        """Count, store, cache (and maybe chaos-corrupt) one computed record."""

        nonlocal completed
        _count("executed")
        results[unit.spec_index][unit.trial_index] = record
        if cache is not None and unit.key is not None:
            cache.put(unit.key, record)
            if injector is not None and injector.corrupts(unit.labels, unit.trial_index):
                injector.corrupt_entry(cache, unit.key)
            note_cache_disabled()
        if sinks:
            completed += 1
            emit(unit.labels, unit.trial_index, False)

    def quarantine(unit: _Unit, kind: str, error_type: str, message: str) -> None:
        """Give up on one unit: sentinel in its slot, or raise under strict."""

        nonlocal completed
        failure = TrialFailure(
            labels=unit.labels,
            trial_index=unit.trial_index,
            seed=unit.seed,
            kind=kind,
            error_type=error_type,
            error_message=message,
            attempts=unit.attempts,
        )
        _count("quarantined")
        publish(
            FaultEvent(
                kind="quarantine",
                labels=unit.labels,
                trial_index=unit.trial_index,
                attempt=unit.attempts,
                detail=f"[{kind}] {error_type}: {message}",
            )
        )
        if policy.strict:
            raise QuarantineError(failure)
        results[unit.spec_index][unit.trial_index] = failure
        if sinks:
            completed += 1
            emit(unit.labels, unit.trial_index, False)

    def retry_delay(unit: _Unit, kind: str, detail: str) -> Optional[float]:
        """Burn one failure: the backoff delay before re-dispatch, or ``None``
        when the unit's budget is exhausted (it has been quarantined)."""

        if unit.attempts <= policy.max_retries:
            delay = backoff_delay(policy, unit.labels, unit.trial_index, unit.attempts)
            _count("retries")
            publish(
                FaultEvent(
                    kind="retry",
                    labels=unit.labels,
                    trial_index=unit.trial_index,
                    attempt=unit.attempts,
                    detail=detail,
                    delay_s=delay,
                )
            )
            return delay
        error_type, _, message = detail.partition(": ")
        quarantine(unit, kind, error_type or kind, message)
        return None

    def run_serially(units: Sequence[_Unit]) -> None:
        """The in-process path: ``jobs=1`` and the degraded-pool fallback.

        Retries and quarantines apply exactly as in the pooled path; injected
        crashes and hangs are inert here by construction
        (:meth:`FaultInjector.apply_in_worker` refuses to fire outside a
        worker process), so degradation always makes forward progress.
        """

        for unit in units:
            while True:
                unit.attempts += 1
                if injector is not None:
                    injector.apply_in_worker(unit.labels, unit.trial_index, unit.attempts - 1)
                try:
                    record = unit.trial_fn(unit.seed, **unit.params)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    delay = retry_delay(unit, "error", f"{type(exc).__name__}: {exc}")
                    if delay is None:
                        break
                    if delay > 0:
                        time.sleep(delay)
                    continue
                complete(unit, record)
                break

    def run_pooled(units: Sequence[_Unit], workers: int) -> None:
        queue: List[_Chunk] = []
        size = _chunksize(len(units), workers)
        block: List[_Unit] = []
        for unit in units:
            block.append(unit)
            if len(block) == size:
                queue.append(_Chunk(units=block))
                block = []
        if block:
            queue.append(_Chunk(units=block))

        breakages = 0
        degraded = False
        inflight: Dict[object, _Chunk] = {}
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context())

        def requeue(chunk_units: Sequence[_Unit], kind: str, detail: str) -> None:
            # Victims of a pool-level incident: each surviving unit becomes
            # its own single-unit chunk, so a poisoned unit retries alone and
            # its innocent former chunk-mates cannot be taken down with it
            # again.  Backoff rides on the chunk's not-before time.
            for unit in chunk_units:
                delay = retry_delay(unit, kind, detail)
                if delay is None:
                    continue
                not_before = time.monotonic() + delay if delay > 0 else 0.0
                queue.append(_Chunk(units=[unit], not_before=not_before))

        def breakage(kind: str, detail: str, victims: List[_Unit]) -> None:
            nonlocal pool, breakages, degraded
            breakages += 1
            _count("worker_deaths" if kind == "worker-death" else "timeouts")
            first = victims[0] if victims else None
            publish(
                FaultEvent(
                    kind=kind,
                    labels=first.labels if first else (),
                    trial_index=first.trial_index if first else -1,
                    attempt=first.attempts if first else 0,
                    detail=detail,
                )
            )
            _terminate_pool(pool)
            for chunk in inflight.values():
                victims.extend(chunk.units)
            inflight.clear()
            requeue(victims, kind, detail)
            if breakages > policy.max_pool_respawns:
                degraded = True
                publish(
                    FaultEvent(
                        kind="pool-degraded",
                        detail=f"{breakages} pool breakages exceed "
                        f"max_pool_respawns={policy.max_pool_respawns}",
                    )
                )
                warnings.warn(
                    f"parallel sweep degraded to serial execution after "
                    f"{breakages} worker-pool breakages (last: {detail})",
                    RuntimeWarning,
                    stacklevel=3,
                )
            else:
                pool = ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context())

        try:
            while queue or inflight:
                if degraded:
                    break
                # Dispatch every ready chunk that fits in the worker budget.
                submitted = True
                while submitted and queue and len(inflight) < workers:
                    submitted = False
                    now: Optional[float] = None
                    for index, chunk in enumerate(queue):
                        if chunk.not_before > 0.0:
                            if now is None:
                                now = time.monotonic()
                            if chunk.not_before > now:
                                continue
                        queue.pop(index)
                        items = []
                        for unit in chunk.units:
                            items.append(
                                (
                                    unit.labels,
                                    unit.trial_index,
                                    unit.attempts,
                                    unit.trial_fn,
                                    unit.seed,
                                    unit.params,
                                )
                            )
                            unit.attempts += 1
                        if policy.timeout_s is not None:
                            chunk.deadline = time.monotonic() + policy.timeout_s
                        try:
                            future = pool.submit(_run_chunk, items, injector)
                        except BrokenProcessPool as exc:
                            breakage(
                                "worker-death",
                                str(exc) or "pool broken at submit",
                                list(chunk.units),
                            )
                            submitted = True
                            break
                        inflight[future] = chunk
                        submitted = True
                        break
                if degraded:
                    break
                if not inflight:
                    if queue:
                        # Everything left is backing off: sleep to the
                        # earliest release instead of spinning.
                        pause = min(c.not_before for c in queue) - time.monotonic()
                        if pause > 0:
                            time.sleep(pause)
                    continue

                timeout: Optional[float] = None
                wake_at: Optional[float] = None
                if policy.timeout_s is not None:
                    wake_at = min(chunk.deadline for chunk in inflight.values())
                if queue and len(inflight) < workers:
                    backing_off = [c.not_before for c in queue if c.not_before > 0.0]
                    if backing_off:
                        soonest = min(backing_off)
                        wake_at = soonest if wake_at is None else min(wake_at, soonest)
                if wake_at is not None:
                    timeout = max(0.0, wake_at - time.monotonic())
                done, _ = wait(set(inflight), timeout=timeout, return_when=FIRST_COMPLETED)

                if not done:
                    if policy.timeout_s is None:
                        continue
                    now = time.monotonic()
                    expired: List[_Unit] = []
                    for future, chunk in list(inflight.items()):
                        if chunk.deadline and chunk.deadline <= now:
                            expired.extend(chunk.units)
                            del inflight[future]
                    if expired:
                        breakage(
                            "timeout",
                            f"chunk exceeded timeout_s={policy.timeout_s}",
                            expired,
                        )
                    continue

                broken_victims: List[_Unit] = []
                broken_detail = ""
                for future in done:
                    chunk = inflight.pop(future)
                    try:
                        outcomes = future.result()
                    except BrokenProcessPool as exc:
                        broken_victims.extend(chunk.units)
                        broken_detail = str(exc) or type(exc).__name__
                        continue
                    for unit, outcome in zip(chunk.units, outcomes):
                        if outcome[0] == "ok":
                            complete(unit, outcome[1])
                        else:
                            delay = retry_delay(
                                unit, "error", f"{outcome[1]}: {outcome[2]}"
                            )
                            if delay is not None:
                                not_before = (
                                    time.monotonic() + delay if delay > 0 else 0.0
                                )
                                queue.append(_Chunk(units=[unit], not_before=not_before))
                if broken_victims:
                    breakage(
                        "worker-death",
                        broken_detail or "worker process died",
                        broken_victims,
                    )
            # Exited the loop: normal completion (empty queue) or degradation.
            remaining = [unit for chunk in queue for unit in chunk.units]
        except BaseException:
            _terminate_pool(pool)
            raise
        if degraded:
            _terminate_pool(pool)
            run_serially(remaining)
        else:
            pool.shutdown(wait=True)

    if pending:
        workers = min(jobs, len(pending))
        try:
            with timed_span("fan-out"):
                if workers <= 1:
                    run_serially(pending)
                else:
                    run_pooled(pending, workers)
        except KeyboardInterrupt:
            finished = sum(
                1 for spec_rows in results for record in spec_rows if record is not None
            )
            flushed = " and flushed to the trial cache" if cache is not None else ""
            print(
                f"run_sweep interrupted: {finished}/{total} trials finished{flushed}; "
                f"re-running the sweep resumes from there",
                file=sys.stderr,
            )
            raise

    with timed_span("reassemble"):
        out: List[List[Dict[str, object]]] = []
        for spec_index, records in enumerate(results):
            if any(record is None for record in records):  # pragma: no cover - invariant
                raise RuntimeError(
                    f"sweep left unfilled trials for spec {spec_index} "
                    f"({specs[spec_index].labels!r})"
                )
            out.append(records)  # type: ignore[arg-type] - checked above
    return out


def run_point(
    trial_fn: Callable[..., Dict[str, object]],
    settings: ExperimentSettings,
    *labels: object,
    **params: object,
) -> List[Dict[str, object]]:
    """Run one sweep point's trials through the runner (drop-in for ``run_trials``)."""

    return run_sweep([TrialSpec.point(trial_fn, *labels, **params)], settings)[0]
