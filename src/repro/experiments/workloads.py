"""Adversary scenario catalogue shared by the experiments.

Each experiment needs adversaries configured consistently — in particular the
cost-scaling experiments sweep "Carol spends (up to) T" scenarios, and the
ablation experiment needs a roster of strategies normalised to the same spend
cap.  Centralising the constructors here keeps experiment modules small and
guarantees that two experiments asking for "a phase blocker with budget T"
really get the same attacker.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from ..adversary import (
    Adversary,
    BurstyJammer,
    ContinuousJammer,
    NullAdversary,
    NUniformSplitAdversary,
    PhaseBlockingAdversary,
    RandomJammer,
    ReactiveJammer,
    RequestSpoofingAdversary,
    SpatialJammer,
    SpoofingAdversary,
)
from ..simulation.config import SimulationConfig
from ..simulation.phaseplan import PhaseKind

__all__ = [
    "spend_sweep",
    "saturation_spend",
    "blocking_adversary",
    "ablation_roster",
    "splitting_adversary",
    "reactive_adversary",
    "spatial_adversary",
    "spoofing_adversary",
]


def saturation_spend(config: SimulationConfig) -> float:
    """Adversary spend below which the protocol is still in its saturated regime.

    In the first rounds the nodes' listening probability ``2/(ε'·2^i)`` clips
    at one, so per-node cost simply tracks elapsed slots and the asymptotic
    ``T^{1/(k+1)}`` shape is not yet visible.  Saturation ends once
    ``2^i > 2/ε'``, i.e. once a blocked phase costs Carol about
    ``(2/ε')^{1+1/k}`` slots; exponent fits should use spends above this
    point.
    """

    return (2.0 / config.eps_prime) ** (1.0 + 1.0 / config.k)


def spend_sweep(config: SimulationConfig, points: int = 5, quick: bool = True) -> List[float]:
    """A geometric sweep of adversary spend caps ``T`` for a configuration.

    The sweep spans from just below the saturation boundary (so the crossover
    is visible) up to (most of) Carol's aggregate budget, which is the regime
    where Theorem 1's ``T^{1/(k+1)}`` scaling is observable.
    """

    budget = config.adversary_total_budget
    low = min(max(64.0, saturation_spend(config) / 2.0), budget / 8.0)
    high = 0.9 * budget
    if high <= low:
        high = 2.0 * low
    if quick:
        points = min(points, 5)
    if points < 2:
        return [high]
    ratio = (high / low) ** (1.0 / (points - 1))
    return [low * ratio ** index for index in range(points)]


def blocking_adversary(max_total_spend: Optional[float] = None) -> PhaseBlockingAdversary:
    """The reference attacker of Lemma 10: block inform phases until broke."""

    return PhaseBlockingAdversary(
        kinds={PhaseKind.INFORM},
        fraction=1.0,
        max_total_spend=max_total_spend,
    )


def splitting_adversary(target_uninformed: int, max_total_spend: Optional[float] = None) -> NUniformSplitAdversary:
    """The n-uniform splitter used by the delivery experiments (E2)."""

    return NUniformSplitAdversary(
        target_uninformed=target_uninformed,
        max_total_spend=max_total_spend,
    )


def reactive_adversary(max_total_spend: Optional[float] = None) -> ReactiveJammer:
    """A reactive jammer that drains its budget on payload-carrying phases."""

    return ReactiveJammer(phase_budget_fraction=0.5, max_total_spend=max_total_spend)


def spatial_adversary(
    center: tuple = (0.25, 0.25),
    radius: float = 0.25,
    max_total_spend: Optional[float] = None,
) -> SpatialJammer:
    """A disk jammer for the multi-hop experiments (E11).

    The off-centre default disk avoids Alice's default centre position, so the
    attack targets relay traffic rather than silencing the source outright.
    """

    return SpatialJammer(center=center, radius=radius, max_total_spend=max_total_spend)


def spoofing_adversary(max_total_spend: Optional[float] = None) -> RequestSpoofingAdversary:
    """The request-phase spoofer of §2.2 (E10)."""

    return RequestSpoofingAdversary(
        fraction=1.0,
        use_spoofed_nacks=True,
        max_total_spend=max_total_spend,
    )


def ablation_roster(max_total_spend: float) -> Dict[str, Callable[[], Adversary]]:
    """Strategy roster for the adversary-ablation experiment (E9).

    Every entry is a zero-argument factory so each trial gets a fresh strategy
    with the same spend cap.
    """

    return {
        "none": lambda: NullAdversary(),
        "random": lambda: RandomJammer(rate=0.5, max_total_spend=max_total_spend),
        "bursty": lambda: BurstyJammer(burst_length=64, period=128, max_total_spend=max_total_spend),
        "continuous": lambda: ContinuousJammer(max_total_spend=max_total_spend),
        "phase_blocker": lambda: blocking_adversary(max_total_spend),
        "request_spoofer": lambda: spoofing_adversary(max_total_spend),
        "spoofing": lambda: SpoofingAdversary(max_total_spend=max_total_spend),
        "reactive": lambda: reactive_adversary(max_total_spend),
    }
