"""Content-addressed on-disk store for completed experiment trials.

Every trial an experiment runs is a pure function of a small, explicit input
tuple: the (picklable, top-level) trial function, the sweep-point labels the
per-trial seed was derived from, the derived seed itself, and the keyword
parameters the experiment passed.  :func:`trial_key` hashes that tuple — plus
a package-level :data:`CACHE_VERSION` salt — into a stable content address,
and :class:`TrialCache` maps addresses to pickled trial records on disk.

Warm re-runs of a sweep (EXPERIMENTS.md regeneration, benchmark repeats,
interrupted sweeps resumed) therefore skip every trial they have already
computed, and a change to the simulation's semantics is published by bumping
:data:`CACHE_VERSION`, which invalidates every existing entry at once.

Two properties the runner relies on:

* **Hits are bit-identical to recomputation.**  Trials are deterministic in
  their inputs, and the key covers every input, so serving the pickled record
  is indistinguishable from re-running the trial.
* **Corruption degrades to a miss.**  A truncated or unreadable entry (e.g. a
  killed writer) is treated as absent and recomputed; writes go through a
  temporary file and an atomic :func:`os.replace` so readers never observe a
  partial entry.
* **Write failure degrades to no-cache.**  A store that cannot accept writes
  (disk full, read-only mount, permission error, a file squatting where a
  shard directory belongs) disables itself for the rest of the run with a
  single :class:`RuntimeWarning` instead of aborting the sweep — the cache is
  an accelerator, never a correctness dependency.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import shutil
import tempfile
import time
import warnings
from pathlib import Path
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

__all__ = ["CACHE_VERSION", "stable_token", "trial_key", "TrialCache", "PruneStats"]

CACHE_VERSION = 3
"""Salt mixed into every trial key.

Bump this whenever a change alters what any trial computes (engine semantics,
protocol rules, record contents) without necessarily changing the trial
function's signature; existing stores then read as empty instead of serving
stale records.

Version history: 2 — the multi-hop request-phase quiet rule became per-node
and degree-aware by default (E11/E13 trial records changed).
"""


def stable_token(value: object) -> str:
    """A canonical, process-independent string encoding of a cache-key input.

    Supports the value shapes experiments actually pass as labels/params —
    ``None``, booleans, numbers, strings, sequences, mappings, sets, and
    (frozen) dataclasses.  Anything else raises ``TypeError`` rather than
    falling back to ``repr``, whose output may embed memory addresses and
    silently produce unstable keys.
    """

    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    if isinstance(value, float):
        # repr of a float is shortest-round-trip and stable across processes.
        return repr(value)
    if isinstance(value, bytes):
        return f"bytes:{value.hex()}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{f.name}={stable_token(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__module__}.{type(value).__qualname__}({fields})"
    if isinstance(value, (tuple, list)):
        return "[" + ",".join(stable_token(item) for item in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(stable_token(item) for item in value)) + "}"
    if isinstance(value, Mapping):
        items = sorted((stable_token(k), stable_token(v)) for k, v in value.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    raise TypeError(
        f"cannot build a stable cache token for {type(value).__qualname__!r} "
        f"({value!r}); pass plain data (numbers, strings, sequences, dataclasses) "
        "as trial labels/params"
    )


def trial_key(
    trial_fn: Callable[..., object],
    labels: Sequence[object],
    seed: int,
    params: Mapping[str, object],
) -> str:
    """The content address of one trial: sha-256 over every input that shapes it."""

    payload = "\n".join(
        [
            f"cache-version={CACHE_VERSION}",
            f"fn={trial_fn.__module__}:{trial_fn.__qualname__}",
            f"labels={stable_token(tuple(labels))}",
            f"seed={int(seed)}",
            f"params={stable_token(dict(params))}",
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class TrialCache:
    """A directory of pickled trial records, addressed by :func:`trial_key`.

    Layout is ``<root>/<first two hex chars>/<key>.pkl`` so that very large
    stores do not degrade into one directory with millions of entries.  The
    store is safe to share between concurrent runs: writes are atomic renames
    and a lost race simply overwrites one deterministic record with an
    identical one.

    The store degrades rather than aborts: the first unrecoverable write
    failure (disk full, read-only filesystem, permission denied) flips
    :attr:`disabled` for the rest of the run — reads return misses, writes
    become no-ops — and emits one :class:`RuntimeWarning` naming the cause.
    The sweep itself continues, merely uncached.

    ``torn_write_bytes`` is a chaos knob for tests: when set, every completed
    write is truncated to that many bytes, simulating a writer killed between
    ``write`` and ``fsync`` on a filesystem that tore the page — the next read
    of such an entry must degrade to a miss, never an exception.
    """

    def __init__(
        self, root: os.PathLike | str, *, torn_write_bytes: Optional[int] = None
    ) -> None:
        self.root = Path(root)
        self.torn_write_bytes = torn_write_bytes
        self.disabled = False
        self.disabled_reason: Optional[str] = None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            self._disable(f"cannot create cache root {str(self.root)!r}: {exc}")

    def _disable(self, reason: str) -> None:
        """Switch the store off for the rest of the run, warning exactly once."""

        if self.disabled:
            return
        self.disabled = True
        self.disabled_reason = reason
        warnings.warn(
            f"trial cache disabled for the rest of this run: {reason}",
            RuntimeWarning,
            stacklevel=3,
        )

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored record for ``key``, or ``None`` on a miss (or corruption)."""

        if self.disabled:
            return None
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:
            # Unpickling corrupt bytes can raise nearly anything (ValueError,
            # UnpicklingError, EOFError, ImportError, ...); every failure mode
            # means the same thing here — treat the entry as absent.
            return None

    def put(self, key: str, record: Mapping[str, object]) -> None:
        """Store ``record`` under ``key``, or disable the store if it cannot.

        The write itself is atomic (temp file + :func:`os.replace`), so
        readers never observe a partial entry.  A write that fails with an
        :class:`OSError` (disk full, read-only mount, permission denied)
        disables the cache for the rest of the run instead of raising — with
        one special case: a *directory* squatting on the entry's path (e.g. a
        bad extraction) is removed and the write retried once, because that is
        local damage, not a failing filesystem.
        """

        if self.disabled:
            return
        try:
            self._write(key, record)
        except OSError as exc:
            path = self.path_for(key)
            if path.is_dir():
                try:
                    shutil.rmtree(path)
                    self._write(key, record)
                    return
                except OSError as retry_exc:
                    exc = retry_exc
            self._disable(f"write failed for {str(path)!r}: {exc}")

    def _write(self, key: str, record: Mapping[str, object]) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(dict(record), handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if self.torn_write_bytes is not None:
            # Chaos mode: tear the entry we just published, as a crashed
            # writer on a non-atomic filesystem would have.
            with path.open("r+b") as handle:
                handle.truncate(int(self.torn_write_bytes))

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_age_days: Optional[float] = None,
    ) -> "PruneStats":
        """Evict entries so the store stops growing without bound.

        Two independent criteria, either or both of which may be given:

        * ``max_age_days`` — entries whose mtime is older than this are
          removed outright (a record that has not been touched in weeks
          belongs to a sweep nobody re-runs);
        * ``max_bytes`` — after the age pass, entries are kept newest-mtime
          first until the byte budget is exhausted and the rest are evicted
          (LRU by mtime: :meth:`get` hits refresh an entry's mtime, so
          recently *served* records survive, not just recently written ones).

        Eviction is best-effort and concurrency-safe: an entry that vanishes
        mid-scan (another pruner, a writer's rename) is simply skipped, and
        losing a race deletes at worst one reproducible record.  Empty shard
        directories are removed.  Returns a :class:`PruneStats` summary.
        """

        if max_bytes is None and max_age_days is None:
            raise ValueError("prune needs max_bytes and/or max_age_days")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        if max_age_days is not None and max_age_days < 0:
            raise ValueError(f"max_age_days must be non-negative, got {max_age_days}")

        entries = []
        for path in self.root.glob("*/*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        scanned = len(entries)
        scanned_bytes = sum(size for _, size, _ in entries)

        doomed = []
        if max_age_days is not None:
            # repro-lint: disable=R1 -- age-based pruning is wall-clock store policy; it never feeds a trial result or seed
            horizon = time.time() - max_age_days * 86400.0
            doomed = [entry for entry in entries if entry[0] < horizon]
            entries = [entry for entry in entries if entry[0] >= horizon]
        if max_bytes is not None:
            entries.sort(key=lambda entry: entry[0], reverse=True)  # newest first
            kept_bytes = 0
            for index, (mtime, size, path) in enumerate(entries):
                if kept_bytes + size > max_bytes:
                    doomed.extend(entries[index:])
                    entries = entries[:index]
                    break
                kept_bytes += size

        removed = removed_bytes = 0
        for _, size, path in doomed:
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            removed_bytes += size
        for shard in self.root.iterdir():
            if shard.is_dir():
                try:
                    shard.rmdir()  # only succeeds when empty
                except OSError:
                    pass
        return PruneStats(
            scanned=scanned,
            scanned_bytes=scanned_bytes,
            removed=removed,
            removed_bytes=removed_bytes,
        )

    def touch(self, key: str) -> None:
        """Refresh an entry's mtime (called by cache hits to keep LRU honest).

        Silent when the entry has vanished (a concurrent :meth:`prune`, or a
        just-pruned key being touched by a hit served moments earlier): the
        record was already served from the bytes read, so there is nothing to
        refresh and nothing to report.
        """

        if self.disabled:
            return
        try:
            os.utime(self.path_for(key))
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrialCache(root={str(self.root)!r})"


@dataclasses.dataclass(frozen=True)
class PruneStats:
    """Summary of one :meth:`TrialCache.prune` pass."""

    scanned: int
    scanned_bytes: int
    removed: int
    removed_bytes: int

    @property
    def kept(self) -> int:
        return self.scanned - self.removed

    @property
    def kept_bytes(self) -> int:
        return self.scanned_bytes - self.removed_bytes

    def describe(self) -> str:
        return (
            f"pruned {self.removed}/{self.scanned} entries "
            f"({self.removed_bytes} of {self.scanned_bytes} bytes); "
            f"{self.kept} entries ({self.kept_bytes} bytes) kept"
        )
