"""E5 — ε-Broadcast versus the prior art and the naive strategy (§1, §1.2).

The paper motivates itself against two reference points: the naive
keep-retransmitting strategy, whose per-device cost tracks Carol's spend
one-for-one, and the King–Saia–Young protocol, which achieves ``O(T^{0.62})``
for the sender but leaves each receiver paying ``Θ(T)`` (and is therefore not
load balanced).  The experiment runs all four protocols — naive, KSY-style,
a balanced epoch-backoff strawman, and ε-Broadcast — against the same
phase-blocking attacker at increasing spend caps, and reports per-device costs
and fitted exponents.  The expected ordering of node-cost exponents is
``naive ≈ ksy ≈ 1 > backoff ≈ 0.5 > ε-broadcast ≈ 1/3``.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.fitting import fit_power_law_with_offset
from ..analysis.stats import aggregate_records
from ..baselines import BalancedBackoffBroadcast, KSYStyleBroadcast, NaiveBroadcast
from ..core.api import run_broadcast
from ..simulation.config import SimulationConfig
from .harness import ExperimentResult, ExperimentSettings
from .runner import TrialSpec, run_sweep
from .workloads import blocking_adversary, spend_sweep

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "CLAIM"]

EXPERIMENT_ID = "E5"
TITLE = "ε-Broadcast vs naive, KSY-style, and balanced-backoff baselines"
CLAIM = "ε-Broadcast's per-device cost exponent (≈1/3 for k=2) beats the naive Θ(T) strategy and the KSY receiver cost Θ(T); its sender cost also beats KSY's T^0.62"

_BASELINES = {
    "naive": NaiveBroadcast,
    "ksy": KSYStyleBroadcast,
    "balanced-backoff": BalancedBackoffBroadcast,
}

PROTOCOLS = ("epsilon-broadcast", "naive", "ksy", "balanced-backoff")


def _trial(seed: int, n: int, engine: str, protocol: str, cap: float) -> dict:
    """One E5 trial: ``protocol`` against a fresh blocker with spend cap ``cap``."""

    if protocol == "epsilon-broadcast":
        outcome = run_broadcast(
            n=n,
            k=2,
            f=1.0,
            seed=seed,
            adversary=blocking_adversary(cap),
            engine=engine,
        )
    else:
        config = SimulationConfig(n=n, k=2, f=1.0, seed=seed)
        outcome = _BASELINES[protocol](
            config, adversary=blocking_adversary(cap), engine=engine
        ).run()
    return outcome.as_record()


def run(settings: ExperimentSettings) -> ExperimentResult:
    config = SimulationConfig(n=settings.n, k=2, f=1.0, seed=settings.seed)
    sweep = spend_sweep(config, points=4, quick=settings.quick)

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "protocol",
            "T_spent",
            "alice_cost",
            "node_mean_cost",
            "node_max_cost",
            "delivery_fraction",
        ],
    )

    points = [(cap, name) for cap in sweep for name in PROTOCOLS]
    specs = [
        TrialSpec.point(
            _trial,
            EXPERIMENT_ID,
            name,
            cap,
            n=settings.n,
            engine=settings.engine,
            protocol=name,
            cap=cap,
        )
        for cap, name in points
    ]
    per_point = run_sweep(specs, settings)

    series: Dict[str, Dict[str, list]] = {name: {"T": [], "alice": [], "node": []} for name in PROTOCOLS}
    for (cap, name), records in zip(points, per_point):
        summary = aggregate_records(records)
        spent = summary["adversary_spend"].mean
        series[name]["T"].append(spent)
        series[name]["alice"].append(summary["alice_cost"].mean)
        series[name]["node"].append(summary["node_max_cost"].mean)
        result.add_row(
            protocol=name,
            T_spent=spent,
            alice_cost=summary["alice_cost"].mean,
            node_mean_cost=summary["node_mean_cost"].mean,
            node_max_cost=summary["node_max_cost"].mean,
            delivery_fraction=summary["delivery_fraction"].mean,
        )

    for name, data in series.items():
        if len(data["T"]) >= 2:
            node_fit = fit_power_law_with_offset(data["T"], data["node"])
            alice_fit = fit_power_law_with_offset(data["T"], data["alice"])
            result.summaries[f"{name}_node_exponent"] = node_fit.exponent
            result.summaries[f"{name}_alice_exponent"] = alice_fit.exponent

    result.add_note(
        "Expected node-cost exponents: naive ≈ 1, ksy ≈ 1, balanced-backoff ≈ 0.5, "
        "epsilon-broadcast ≈ 1/3; expected Alice exponents: naive ≈ 1, ksy ≈ 0.62, "
        "balanced-backoff ≈ 0.5, epsilon-broadcast ≈ 1/3."
    )
    result.add_note(
        "Absolute costs are not comparable to the paper's testbed-free theory; the ordering "
        "and the crossovers (who wins as T grows) are the reproduced quantities."
    )
    return result
