"""E12 — mobile and adaptive spatial adversaries over Gilbert graphs.

E11 gave Carol a *static* disk: she blankets one region and can only delay it
while her budget lasts.  Real spatial denial is mobile — a jammer patrols,
orbits, splits into several emitters, or chases the traffic.  This experiment
runs the :mod:`repro.adversary.mobility` roster against
:class:`~repro.core.broadcast.MultiHopBroadcast` on a (CSR-backed) Gilbert
graph at equal spend caps and measures where the budget goes:

* **static disk** — the E11 reference (:class:`~repro.adversary.spatial.SpatialJammer`);
* **patrol / orbit / random walk** — oblivious mobility
  (:class:`~repro.adversary.mobility.MobileJammer`): the disk moves, the
  victim set is re-resolved every phase, coverage grows with speed;
* **multi-disk** — one budget split across ``k`` disks
  (:class:`~repro.adversary.mobility.MultiDiskJammer`);
* **reactive disk** — the adaptive pursuit strategy
  (:class:`~repro.adversary.mobility.ReactiveDiskJammer`) re-centring each
  phase on the densest cluster of active uninformed listeners.

Runs use a fixed ``ConstantQuietRule`` horizon (the ``max_quiet_retries``
spelling) so they end while jamming still binds (otherwise every scenario
trivially ends at full delivery once the budget dies and the metrics cannot
discriminate).  Two headline metrics at equal spend caps:

* ``delivery_per_mspend`` — the victimised network's delivery fraction per
  thousand units of Carol's spend.  Disk jamming is full-phase denial, so a
  jammer's current victims are silenced outright while the budget lasts; the
  strategies differ in *which and how many* listeners they silence.  The
  reactive disk always parks on the densest active uninformed cluster, so at
  equal spend it suppresses strictly more delivery — the network's delivery
  per unit adversary budget is strictly lower than under the static disk.
* ``stranded_per_mspend`` — listeners it actually jammed that end the run
  uninformed, per thousand units of spend: the reactive disk strands
  strictly more victims per unit budget than the static disk.

Oblivious mobility (patrol/orbit/walk) shows the opposite trade: coverage
grows with speed but each victim is jammed only in passing, so victim
delivery stays high — movement without state knowledge buys breadth, not
damage.
"""

from __future__ import annotations

from typing import Optional

from ..adversary import (
    MobileJammer,
    MultiDiskJammer,
    Orbit,
    RandomWalk,
    ReactiveDiskJammer,
    SpatialJammer,
    WaypointPatrol,
)
from ..analysis.stats import aggregate_records
from ..core.broadcast import MultiHopBroadcast
from ..core.quietrule import ConstantQuietRule
from ..simulation.config import SimulationConfig
from ..simulation.topology import TopologySpec, gilbert_connectivity_radius
from .harness import ExperimentResult, ExperimentSettings
from .runner import TrialSpec, run_sweep

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "CLAIM", "scenario_roster"]

EXPERIMENT_ID = "E12"
TITLE = "Mobile and adaptive spatial adversaries over Gilbert graphs"
CLAIM = (
    "A mobile disk jammer trades denial depth for coverage; an adaptive (reactive) disk that "
    "chases the densest cluster of active uninformed listeners strands more victims per unit "
    "budget and drives the victimised network's delivery per unit budget strictly below the "
    "static disk's at equal radius and spend cap"
)

QUIET_RETRIES = 6
"""Request-phase retry horizon used by every E12 run (a uniform
``ConstantQuietRule``): ends the run while jamming still binds, so the
delivery metrics can discriminate between strategies over one bounded
window.  A fixed horizon — not the degree-aware default — keeps every
scenario's window identical."""

JAM_RADIUS = 0.25
"""Disk radius shared by every scenario (the E11 default)."""

PATROL_SPEED = 0.04
"""Patrol distance per phase for the waypoint scenario."""


def scenario_roster(spend_cap: Optional[float], seed: int = 0):
    """Fresh equal-budget adversaries, one factory per scenario.

    Shared between the experiment and ``benchmarks/bench_mobile_jammer.py``
    so the two always measure the same attackers.
    """

    corners = [(0.25, 0.25), (0.75, 0.25), (0.75, 0.75), (0.25, 0.75)]
    return {
        "static disk": lambda: SpatialJammer(
            center=(0.25, 0.25), radius=JAM_RADIUS, max_total_spend=spend_cap
        ),
        "patrol": lambda: MobileJammer(
            WaypointPatrol(corners, speed=PATROL_SPEED),
            radius=JAM_RADIUS,
            max_total_spend=spend_cap,
        ),
        "orbit": lambda: MobileJammer(
            Orbit(center=(0.5, 0.5), orbit_radius=0.25, angular_speed=0.15),
            radius=JAM_RADIUS,
            max_total_spend=spend_cap,
        ),
        "random walk": lambda: MobileJammer(
            RandomWalk(start=(0.25, 0.25), step=0.05, seed=seed),
            radius=JAM_RADIUS,
            max_total_spend=spend_cap,
        ),
        "multi-disk k=3": lambda: MultiDiskJammer(
            centers=[(0.2, 0.2), (0.8, 0.2), (0.5, 0.8)],
            radius=JAM_RADIUS / (3 ** 0.5),  # equal total area to one disk
            max_total_spend=spend_cap,
        ),
        "reactive disk": lambda: ReactiveDiskJammer(
            radius=JAM_RADIUS, max_total_spend=spend_cap
        ),
    }


def victim_metrics(protocol, outcome, adversary, n: int) -> dict:
    """Coverage, stranding, and per-budget statistics for one finished run.

    ``coverage`` is the union of every victim set the adversary actually
    jammed (for a static disk: the disk); ``victim_delivery`` is the fraction
    of covered *nodes* informed at the end, read from the orchestrator's
    ``final_state``; ``stranded`` are covered nodes that finished without the
    message.  The ``*_per_mspend`` columns divide by Carol's spend in
    thousands, making the equal-budget scenarios directly comparable.
    """

    covered = sorted(v for v in adversary.coverage if v >= 0)
    informed = {
        node_id
        for node_id, status in protocol.final_state.statuses.items()
        if status.is_informed
    }
    stranded = sum(1 for node in covered if node not in informed)
    victim_delivery = (
        (len(covered) - stranded) / len(covered) if covered else 1.0
    )
    mspend = max(outcome.adversary_spend, 1.0) / 1000.0
    return {
        "coverage_fraction": len(covered) / n,
        "victim_delivery": victim_delivery,
        "stranded_per_mspend": stranded / mspend,
        "delivery_per_mspend": outcome.delivery_fraction / mspend,
    }


def _trial(seed: int, n: int, engine: str, scenario: str, roster_seed: int) -> dict:
    """One E12 trial: the named roster scenario at half of Carol's budget.

    ``roster_seed`` seeds the roster's random-walk trajectory exactly as the
    experiment's ``settings.seed`` did when the roster was built inline.
    """

    radius = 2.0 * gilbert_connectivity_radius(n)
    # Force the CSR backend: every E12 run exercises the same sparse
    # nodes_in_disk / event-driven engine paths the large-n acceptance uses.
    spec = TopologySpec.gilbert(radius=radius, sparse=True)
    config = SimulationConfig(n=n, k=2, f=1.0, seed=seed, topology=spec)
    adversary = scenario_roster(None, seed=roster_seed)[scenario]()
    adversary.max_total_spend = 0.5 * config.adversary_total_budget
    # Sequential schedule (no pipelining): the equal-budget comparison needs
    # Carol's spend cap to bind, which requires the fixed-length relay
    # schedule — pipelined runs deliver before the budget is exhausted and
    # the scenarios would no longer be compared at equal spend.
    protocol = MultiHopBroadcast(
        config,
        adversary=adversary,
        engine=engine,
        quiet_rule=ConstantQuietRule(retries=QUIET_RETRIES),
        pipeline=False,
    )
    outcome = protocol.run()
    record = outcome.as_record()
    record.update(victim_metrics(protocol, outcome, adversary, n))
    return record


def run(settings: ExperimentSettings) -> ExperimentResult:
    n = settings.n

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "scenario",
            "delivery_fraction",
            "delivery_per_mspend",
            "coverage_fraction",
            "victim_delivery",
            "stranded_per_mspend",
            "carol_spend",
            "mean_node_cost",
            "slots",
        ],
    )

    labels = list(scenario_roster(None, seed=settings.seed))
    specs = [
        TrialSpec.point(
            _trial,
            EXPERIMENT_ID,
            label,
            n=n,
            engine=settings.engine,
            scenario=label,
            roster_seed=settings.seed,
        )
        for label in labels
    ]
    per_point = run_sweep(specs, settings)

    for label, records in zip(labels, per_point):
        summary = aggregate_records(records)
        result.add_row(
            scenario=label,
            delivery_fraction=summary["delivery_fraction"].mean,
            delivery_per_mspend=summary["delivery_per_mspend"].mean,
            coverage_fraction=summary["coverage_fraction"].mean,
            victim_delivery=summary["victim_delivery"].mean,
            stranded_per_mspend=summary["stranded_per_mspend"].mean,
            carol_spend=summary["adversary_spend"].mean,
            mean_node_cost=summary["node_mean_cost"].mean,
            slots=summary["slots"].mean,
        )

    result.add_note(
        "All scenarios share one spend cap (half of Carol's aggregate budget) and one total "
        "disk area, and run under a constant quiet-retry horizon so the protocol ends while jamming still "
        "binds; only the adversary moves — victim sets are re-resolved from the topology "
        "every phase through grid-accelerated disk queries."
    )
    result.add_note(
        "The reactive disk chases the densest cluster of active uninformed listeners "
        "(knowledge-of-state, like the paper's adaptive Carol): at equal budget it strands "
        "more listeners per unit spend than the blind disk and holds the network's delivery "
        "per unit budget strictly below the static disk — the pursuit half of a "
        "pursuit/evasion scenario no static adversary can express."
    )
    result.add_note(
        "Oblivious mobility buys breadth, not damage: patrol/orbit cover 2-4x more nodes "
        "than the static disk but jam each only in passing, so their victims mostly catch up "
        "(high victim_delivery) — movement without state knowledge spreads the same budget "
        "thinner."
    )
    return result
