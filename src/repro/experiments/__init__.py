"""The benchmark harness: one experiment per quantitative claim of the paper."""

from .cache import CACHE_VERSION, TrialCache, trial_key
from .faults import (
    DEFAULT_FAULT_POLICY,
    FaultEvent,
    FaultInjector,
    FaultPolicy,
    QuarantineError,
    TrialFailure,
    fault_scope,
)
from .harness import ExperimentResult, ExperimentSettings, run_trials
from .reporting import render_result, render_results, render_table
from .runner import TrialSpec, run_point, run_sweep

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_FAULT_POLICY",
    "ExperimentResult",
    "ExperimentSettings",
    "FaultEvent",
    "FaultInjector",
    "FaultPolicy",
    "QuarantineError",
    "TrialCache",
    "TrialFailure",
    "TrialSpec",
    "fault_scope",
    "render_result",
    "render_results",
    "render_table",
    "run_point",
    "run_sweep",
    "run_trials",
    "trial_key",
]


def run_experiment(experiment_id, settings=None):
    """Run a registered experiment by id (lazy import to avoid cycles)."""

    from .registry import run_experiment as _run

    return _run(experiment_id, settings)


def run_all(settings=None):
    """Run every registered experiment (lazy import to avoid cycles)."""

    from .registry import run_all as _run_all

    return _run_all(settings)
