"""Tournament rosters: adversaries, protocol variants, and the topology grid.

Everything here is resolvable *by name* from a module-level registry, so the
tournament's trial function can rebuild any cell inside a worker process (the
parallel runner pickles only the names and numbers, never live strategy
objects) and the :class:`~repro.experiments.cache.TrialCache` can key on the
same names.

The adversary entries reuse the hand-picked configurations of the E-numbered
experiments — E1/E9's blockers, E10's spoofers, E12's disk family — so a
tournament cell's default parameters are exactly the settings those
experiments ship, and the optimiser's "beats the hand-picked configuration"
comparison is meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from ..adversary import (
    Adversary,
    BurstyJammer,
    CompositeAdversary,
    MobileJammer,
    MultiDiskJammer,
    PhaseBlockingAdversary,
    ReactiveDiskJammer,
    ReactiveJammer,
    RequestSpoofingAdversary,
    RoundSwitchingAdversary,
    SpatialJammer,
    SpoofingAdversary,
    WaypointPatrol,
)
from ..baselines import BalancedBackoffBroadcast, KSYStyleBroadcast, NaiveBroadcast
from ..baselines.base import EpochBaseline
from ..core.broadcast import EngineSpec, EpsilonBroadcast, MultiHopBroadcast
from ..core.quietrule import ConstantQuietRule
from ..simulation.config import SimulationConfig
from ..simulation.errors import ConfigurationError
from ..simulation.phaseplan import PhaseKind
from ..simulation.topology import TopologySpec, gilbert_connectivity_radius

__all__ = [
    "JAM_RADIUS",
    "ProtocolEntry",
    "TopologyEntry",
    "adversary_roster",
    "adversary_supports_topology",
    "build_adversary",
    "build_protocol",
    "build_topology_spec",
    "protocol_roster",
    "topology_grid",
]

JAM_RADIUS = 0.25
"""Disk radius shared by the spatial entries — the hand-picked E11/E12 value."""

PATROL_SPEED = 0.04
"""Patrol distance per phase for the mobile entry (the E12 value)."""

QUIET_RETRIES = 6
"""Retry horizon of the ``mh-constant`` variant (the E12/E13 uniform cap)."""


# --------------------------------------------------------------------- #
# Adversaries                                                           #
# --------------------------------------------------------------------- #

# Disk strategies resolve victims from node positions, which only spatial
# topologies realise; everything else attacks the channel and runs anywhere.
_SPATIAL_ONLY = frozenset(
    {"static_disk", "mobile_disk", "multi_disk", "reactive_disk"}
)


def adversary_roster() -> Dict[str, Callable[[Optional[float]], Adversary]]:
    """Every tournament adversary: name → factory(spend_cap) → fresh strategy.

    Factories return *unbound* strategies at their hand-picked (E-numbered
    experiment) parameters; the tournament applies ``with_parameters`` before
    binding when a cell overrides them.
    """

    corners = [(0.25, 0.25), (0.75, 0.25), (0.75, 0.75), (0.25, 0.75)]
    return {
        # The reference budget attacker of Lemma 10 (E1/E9).
        "budget_blocker": lambda cap: PhaseBlockingAdversary(
            kinds={PhaseKind.INFORM}, fraction=1.0, max_total_spend=cap
        ),
        # Oblivious duty-cycle jamming (E9's comparator).
        "bursty": lambda cap: BurstyJammer(
            burst_length=64, period=128, max_total_spend=cap
        ),
        # Listens first, jams payload-carrying phases (E7).
        "reactive": lambda cap: ReactiveJammer(
            phase_budget_fraction=0.5, max_total_spend=cap
        ),
        # Fake payloads + fake nacks (the sybil-flavoured spoofer, E9).
        "sybil": lambda cap: SpoofingAdversary(
            payload_fraction=0.5, nack_fraction=0.5, max_total_spend=cap
        ),
        # Request-phase spoofing: delay termination (E10).
        "request_spoofer": lambda cap: RequestSpoofingAdversary(
            fraction=1.0, use_spoofed_nacks=True, max_total_spend=cap
        ),
        # The spatial family at the shared E12 radius and budget discipline.
        "static_disk": lambda cap: SpatialJammer(
            center=(0.25, 0.25), radius=JAM_RADIUS, max_total_spend=cap
        ),
        "mobile_disk": lambda cap: MobileJammer(
            WaypointPatrol(corners, speed=PATROL_SPEED),
            radius=JAM_RADIUS,
            max_total_spend=cap,
        ),
        "multi_disk": lambda cap: MultiDiskJammer(
            centers=[(0.2, 0.2), (0.8, 0.2), (0.5, 0.8)],
            radius=JAM_RADIUS / math.sqrt(3.0),  # equal total area to one disk
            max_total_spend=cap,
        ),
        "reactive_disk": lambda cap: ReactiveDiskJammer(
            radius=JAM_RADIUS, max_total_spend=cap
        ),
        # Combining strategies — in the roster so the conformance contract
        # (every enumerable adversary exposes its tunables) covers them.
        "composite": lambda cap: CompositeAdversary(
            [
                PhaseBlockingAdversary(kinds={PhaseKind.INFORM}, fraction=1.0),
                RequestSpoofingAdversary(fraction=1.0),
            ],
            max_total_spend=cap,
        ),
        "round_switch": lambda cap: RoundSwitchingAdversary(
            early=PhaseBlockingAdversary(kinds={PhaseKind.INFORM}, fraction=1.0),
            late=RequestSpoofingAdversary(fraction=1.0),
            switch_round=4,
            max_total_spend=cap,
        ),
    }


def build_adversary(
    name: str,
    spend_cap: Optional[float],
    params: Tuple[Tuple[str, float], ...] = (),
) -> Adversary:
    """Build (and optionally re-parameterise) one roster adversary by name."""

    roster = adversary_roster()
    if name not in roster:
        raise ConfigurationError(
            f"unknown tournament adversary {name!r} (known: {', '.join(sorted(roster))})"
        )
    adversary = roster[name](spend_cap)
    if params:
        adversary = adversary.with_parameters(**dict(params))
    return adversary


# --------------------------------------------------------------------- #
# Protocol variants                                                     #
# --------------------------------------------------------------------- #


#: Any runnable protocol object the tournament can drive: the paper
#: protocol family or one of the epoch baselines (same duck-typed surface:
#: ``run()`` + ``final_state``).
ProtocolVariant = Union[EpsilonBroadcast, EpochBaseline]
ProtocolBuilder = Callable[[SimulationConfig, Adversary, EngineSpec], ProtocolVariant]


@dataclass(frozen=True)
class ProtocolEntry:
    """One protocol variant: a builder plus the topology kinds it runs on."""

    name: str
    builder: ProtocolBuilder
    topology_kinds: Tuple[str, ...]
    description: str = ""

    def build(
        self, config: SimulationConfig, adversary: Adversary, engine: EngineSpec
    ) -> ProtocolVariant:
        return self.builder(config, adversary, engine)


def _build_eps(
    config: SimulationConfig, adversary: Adversary, engine: EngineSpec
) -> EpsilonBroadcast:
    return EpsilonBroadcast(config, adversary=adversary, engine=engine)


def _build_naive(
    config: SimulationConfig, adversary: Adversary, engine: EngineSpec
) -> NaiveBroadcast:
    return NaiveBroadcast(config, adversary=adversary, engine=engine)


def _build_ksy(
    config: SimulationConfig, adversary: Adversary, engine: EngineSpec
) -> KSYStyleBroadcast:
    return KSYStyleBroadcast(config, adversary=adversary, engine=engine)


def _build_backoff(
    config: SimulationConfig, adversary: Adversary, engine: EngineSpec
) -> BalancedBackoffBroadcast:
    return BalancedBackoffBroadcast(config, adversary=adversary, engine=engine)


def _build_mh_paper(
    config: SimulationConfig, adversary: Adversary, engine: EngineSpec
) -> MultiHopBroadcast:
    return MultiHopBroadcast(config, adversary=adversary, engine=engine, quiet_rule="paper")


def _build_mh_constant(
    config: SimulationConfig, adversary: Adversary, engine: EngineSpec
) -> MultiHopBroadcast:
    return MultiHopBroadcast(
        config,
        adversary=adversary,
        engine=engine,
        quiet_rule=ConstantQuietRule(retries=QUIET_RETRIES),
    )


def _build_mh_degree_aware(
    config: SimulationConfig, adversary: Adversary, engine: EngineSpec
) -> MultiHopBroadcast:
    return MultiHopBroadcast(config, adversary=adversary, engine=engine)


def _build_mh_sequential(
    config: SimulationConfig, adversary: Adversary, engine: EngineSpec
) -> MultiHopBroadcast:
    return MultiHopBroadcast(config, adversary=adversary, engine=engine, pipeline=False)


_SINGLE_HOP = ("single_hop",)
_SPATIAL = ("gilbert", "scale_free")


def protocol_roster() -> Dict[str, ProtocolEntry]:
    """Every tournament protocol variant, keyed by name."""

    entries = (
        ProtocolEntry("eps-broadcast", _build_eps, _SINGLE_HOP,
                      "the paper's single-hop protocol (k = 2)"),
        ProtocolEntry("naive", _build_naive, _SINGLE_HOP,
                      "always-on baseline"),
        ProtocolEntry("ksy", _build_ksy, _SINGLE_HOP,
                      "KSY-style epoch baseline"),
        ProtocolEntry("backoff", _build_backoff, _SINGLE_HOP,
                      "balanced-backoff epoch baseline"),
        ProtocolEntry("mh-paper", _build_mh_paper, _SPATIAL,
                      "multi-hop, §2.2 channel-quiet rule, pipelined"),
        ProtocolEntry("mh-constant", _build_mh_constant, _SPATIAL,
                      f"multi-hop, uniform {QUIET_RETRIES}-retry cap, pipelined"),
        ProtocolEntry("mh-degree-aware", _build_mh_degree_aware, _SPATIAL,
                      "multi-hop, degree-aware quiet rule, pipelined (default)"),
        ProtocolEntry("mh-sequential", _build_mh_sequential, _SPATIAL,
                      "multi-hop, degree-aware quiet rule, pipelining off"),
    )
    return {entry.name: entry for entry in entries}


def build_protocol(
    name: str, config: SimulationConfig, adversary: Adversary, engine: EngineSpec
) -> ProtocolVariant:
    roster = protocol_roster()
    if name not in roster:
        raise ConfigurationError(
            f"unknown tournament protocol {name!r} (known: {', '.join(sorted(roster))})"
        )
    return roster[name].build(config, adversary, engine)


# --------------------------------------------------------------------- #
# Topology grid                                                         #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class TopologyEntry:
    """One topology grid point; Gilbert radii scale with ``n`` at build time."""

    name: str
    kind: str  # "single_hop" | "gilbert" | "scale_free"
    radius_multiplier: Optional[float] = None
    description: str = ""


def topology_grid() -> Dict[str, TopologyEntry]:
    """The principled grid points: sub-/near-/super-threshold Gilbert radii.

    The multiples of the connectivity radius ``sqrt(ln n / (π n))`` are the
    E11 grid — below, at, and above the percolation threshold
    (arXiv:1004.1596) — so each cell's exponent fit sits in one known
    connectivity regime rather than straddling the transition.
    """

    entries = (
        TopologyEntry("single-hop", "single_hop",
                      description="the paper's shared channel"),
        TopologyEntry("gilbert-sub", "gilbert", 0.6,
                      description="sub-threshold Gilbert (fragmented)"),
        TopologyEntry("gilbert-near", "gilbert", 1.3,
                      description="near-threshold Gilbert (giant component)"),
        TopologyEntry("gilbert-super", "gilbert", 2.5,
                      description="super-threshold Gilbert (dense)"),
        TopologyEntry("scale-free", "scale_free",
                      description="heavy-tailed radii (ScaleFreeGilbert, α = 2.5)"),
    )
    return {entry.name: entry for entry in entries}


def build_topology_spec(name: str, n: int) -> TopologySpec:
    grid = topology_grid()
    if name not in grid:
        raise ConfigurationError(
            f"unknown tournament topology {name!r} (known: {', '.join(sorted(grid))})"
        )
    entry = grid[name]
    if entry.kind == "single_hop":
        return TopologySpec.single_hop()
    if entry.kind == "gilbert":
        radius = entry.radius_multiplier * gilbert_connectivity_radius(n)
        return TopologySpec.gilbert(radius=radius, sparse=True)
    return TopologySpec.scale_free(alpha=2.5, sparse=True)


def adversary_supports_topology(adversary: str, topology_kind: str) -> bool:
    """Disk strategies need realised positions; channel attacks run anywhere."""

    if adversary in _SPATIAL_ONLY:
        return topology_kind != "single_hop"
    return True
