"""Adversary–protocol tournament: round-robin grid, exponent fits, search.

The tournament answers the question the scattered E-numbered experiments
only sample: *which* adversary drives each protocol variant's cost growth
hardest, measured by the fitted resource-competitiveness exponent per
(adversary × protocol × topology) cell at matched budgets.  See
``tools/generate_leaderboard_md.py`` for the rendered LEADERBOARD.md.
"""

from .harness import (
    SPEND_FRACTIONS,
    CellResult,
    TournamentCell,
    TournamentResult,
    run_tournament,
    tournament_cells,
    tournament_trial,
)
from .optimize import OptimisationResult, cell_score, optimise_cell
from .roster import (
    JAM_RADIUS,
    ProtocolEntry,
    TopologyEntry,
    adversary_roster,
    adversary_supports_topology,
    build_adversary,
    build_protocol,
    build_topology_spec,
    protocol_roster,
    topology_grid,
)

__all__ = [
    "JAM_RADIUS",
    "SPEND_FRACTIONS",
    "CellResult",
    "OptimisationResult",
    "ProtocolEntry",
    "TopologyEntry",
    "TournamentCell",
    "TournamentResult",
    "adversary_roster",
    "adversary_supports_topology",
    "build_adversary",
    "build_protocol",
    "build_topology_spec",
    "cell_score",
    "optimise_cell",
    "protocol_roster",
    "run_tournament",
    "topology_grid",
    "tournament_cells",
    "tournament_trial",
]
