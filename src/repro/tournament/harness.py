"""The round-robin adversary–protocol tournament.

One call to :func:`run_tournament` expands a set of
(adversary × protocol × topology) cells into a flat list of
:class:`~repro.experiments.runner.TrialSpec` sweep points — one per
(cell × spend fraction) — and routes *all* of them through one
:func:`~repro.experiments.runner.run_sweep` call, so the whole grid shares
the process pool and the content-addressed trial cache.  Each cell's
aggregated cost-versus-spend series then gets a resource-competitiveness
exponent fit (:func:`~repro.analysis.competitiveness.fit_cell_exponent`),
flagged-sentinel semantics included: a degenerate cell never aborts the
tournament.

Budgets are matched across cells by expressing Carol's self-imposed spend
cap as a *fraction of her aggregate ledger budget* — the same
``config.adversary_total_budget`` scale every E-numbered experiment sweeps —
so "bursty at 40%" and "reactive disk at 40%" are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..analysis.competitiveness import ExponentFit, fit_cell_exponent

if TYPE_CHECKING:  # runtime import stays lazy: experiments imports tournament
    from ..experiments.harness import ExperimentSettings
from ..simulation.config import SimulationConfig
from .roster import (
    adversary_roster,
    adversary_supports_topology,
    build_adversary,
    build_protocol,
    build_topology_spec,
    protocol_roster,
    topology_grid,
)

__all__ = [
    "SPEND_FRACTIONS",
    "CellResult",
    "TournamentCell",
    "TournamentResult",
    "run_tournament",
    "tournament_cells",
]

SPEND_FRACTIONS: Tuple[float, ...] = (0.05, 0.15, 0.4, 0.9)
"""Default spend sweep, as fractions of Carol's aggregate budget.

Geometric-ish spacing with an 18× dynamic range: wide enough that the
log–log slope is an exponent, not noise (see ``fit_cell_exponent``'s
``degenerate-spend-range`` sentinel)."""


@dataclass(frozen=True)
class TournamentCell:
    """One (adversary, protocol, topology) combination."""

    adversary: str
    protocol: str
    topology: str

    @property
    def key(self) -> str:
        return f"{self.adversary}|{self.protocol}|{self.topology}"


@dataclass(frozen=True)
class CellResult:
    """One cell's aggregated sweep series and fitted exponents.

    The per-fraction tuples are trial means, ordered by ``spend_fractions``.
    ``node_fit`` is the headline resource-competitiveness exponent (max
    per-node cost versus realised spend, the quantity Theorem 1 bounds by
    ``T^{1/(k+1)}``); ``alice_fit`` is the sender-side analogue.
    """

    cell: TournamentCell
    spend_fractions: Tuple[float, ...]
    spends: Tuple[float, ...]
    node_max_costs: Tuple[float, ...]
    node_mean_costs: Tuple[float, ...]
    alice_costs: Tuple[float, ...]
    delivery_min: float
    node_fit: ExponentFit
    alice_fit: ExponentFit
    params: Tuple[Tuple[str, float], ...] = ()

    def as_record(self) -> dict:
        record = {
            "adversary": self.cell.adversary,
            "protocol": self.cell.protocol,
            "topology": self.cell.topology,
            "delivery_min": self.delivery_min,
            "max_spend": max(self.spends) if self.spends else 0.0,
            "max_node_cost": max(self.node_max_costs) if self.node_max_costs else 0.0,
        }
        record.update({f"node_{k}": v for k, v in self.node_fit.as_record().items()})
        record.update({f"alice_{k}": v for k, v in self.alice_fit.as_record().items()})
        return record


@dataclass(frozen=True)
class TournamentResult:
    """All cell results of one tournament run, in grid order."""

    cells: Tuple[CellResult, ...]

    def by_protocol(self) -> Dict[str, List[CellResult]]:
        """Cells grouped by protocol, each group ranked worst-first.

        Within a protocol, cells sort by descending fitted node exponent —
        the adversary that drives the steepest cost growth ranks first;
        flagged cells sink to the bottom (tie-broken by observed damage).
        """

        grouped: Dict[str, List[CellResult]] = {}
        for result in self.cells:
            grouped.setdefault(result.cell.protocol, []).append(result)
        for results in grouped.values():
            results.sort(key=_rank_key)
        return grouped

    def worst_per_protocol(self) -> Dict[str, CellResult]:
        """The single worst observed (adversary, topology) cell per protocol."""

        return {protocol: results[0] for protocol, results in self.by_protocol().items()}

    def get(self, cell: TournamentCell) -> Optional[CellResult]:
        for result in self.cells:
            if result.cell == cell:
                return result
        return None


def _rank_key(result: CellResult) -> Tuple[float, float, str]:
    fit = result.node_fit
    exponent = fit.exponent if fit.ok else float("-inf")
    # Flagged ties fall back to raw damage so "worst observed" is still
    # defined on an all-flagged protocol column.
    return (-exponent, -max(result.node_max_costs, default=0.0), result.cell.key)


def tournament_cells(
    adversaries: Optional[Sequence[str]] = None,
    protocols: Optional[Sequence[str]] = None,
    topologies: Optional[Sequence[str]] = None,
) -> List[TournamentCell]:
    """The compatibility-filtered round-robin grid, in deterministic order.

    ``None`` selects the full roster.  Two filters apply: a protocol only
    runs on its declared topology kinds (single-hop protocols on the shared
    channel, multi-hop variants on spatial graphs), and disk adversaries
    skip the positionless single-hop channel.
    """

    adversary_names = list(adversaries) if adversaries is not None else sorted(adversary_roster())
    protocol_entries = protocol_roster()
    protocol_names = list(protocols) if protocols is not None else sorted(protocol_entries)
    grid = topology_grid()
    topology_names = list(topologies) if topologies is not None else sorted(grid)

    cells: List[TournamentCell] = []
    for topology in topology_names:
        kind = grid[topology].kind
        for protocol in protocol_names:
            if kind not in protocol_entries[protocol].topology_kinds:
                continue
            for adversary in adversary_names:
                if not adversary_supports_topology(adversary, kind):
                    continue
                cells.append(TournamentCell(adversary, protocol, topology))
    return cells


def tournament_trial(
    seed: int,
    n: int,
    engine: str,
    adversary: str,
    protocol: str,
    topology: str,
    spend_fraction: float,
    adversary_params: Tuple[Tuple[str, float], ...] = (),
) -> dict:
    """One tournament trial (top-level so the process pool can pickle it).

    The cell is rebuilt from roster names inside the worker; Carol's spend
    cap is ``spend_fraction`` of her aggregate budget for this ``(n, k)``.
    """

    spec = build_topology_spec(topology, n)
    config = SimulationConfig(n=n, k=2, f=1.0, seed=seed, topology=spec)
    cap = spend_fraction * config.adversary_total_budget
    strategy = build_adversary(adversary, cap, adversary_params)
    orchestrator = build_protocol(protocol, config, strategy, engine)
    outcome = orchestrator.run()
    record = outcome.as_record()
    record["spend_fraction"] = spend_fraction
    record["spend_cap"] = cap
    return record


def run_tournament(
    settings: ExperimentSettings,
    *,
    cells: Optional[Sequence[TournamentCell]] = None,
    spend_fractions: Sequence[float] = SPEND_FRACTIONS,
    adversary_params: Optional[Mapping[str, Mapping[str, float]]] = None,
    label: str = "T",
) -> TournamentResult:
    """Run the grid through one ``run_sweep`` call and fit every cell.

    Parameters
    ----------
    settings:
        An :class:`~repro.experiments.harness.ExperimentSettings`; supplies
        ``n``, trials, seeds, the engine, and the jobs/cache knobs.
    cells:
        Grid to run; defaults to the full :func:`tournament_cells` grid.
    spend_fractions:
        Carol's spend caps as fractions of her aggregate budget.
    adversary_params:
        Optional per-adversary parameter overrides (``name → {param: value}``),
        e.g. an optimiser's winning configuration.
    label:
        Leading seed/cache label; distinct labels give distinct trial seeds.
    """

    from ..experiments.runner import TrialSpec, run_sweep

    if cells is None:
        cells = tournament_cells()
    cells = list(cells)
    fractions = [float(f) for f in spend_fractions]
    overrides = adversary_params or {}

    specs = []
    for cell in cells:
        params = _frozen_params(overrides.get(cell.adversary, ()))
        for fraction in fractions:
            specs.append(
                TrialSpec.point(
                    tournament_trial,
                    label,
                    cell.adversary,
                    cell.protocol,
                    cell.topology,
                    f"{fraction:g}",
                    n=settings.n,
                    engine=settings.engine,
                    adversary=cell.adversary,
                    protocol=cell.protocol,
                    topology=cell.topology,
                    spend_fraction=fraction,
                    adversary_params=params,
                )
            )
    per_point = run_sweep(specs, settings)

    results: List[CellResult] = []
    for index, cell in enumerate(cells):
        point_records = per_point[index * len(fractions) : (index + 1) * len(fractions)]
        results.append(
            _fit_cell(cell, fractions, point_records, _frozen_params(overrides.get(cell.adversary, ())))
        )
    return TournamentResult(cells=tuple(results))


def _frozen_params(
    params: Optional[Mapping[str, float]]
) -> Tuple[Tuple[str, float], ...]:
    """Overrides as a sorted tuple of pairs: picklable, cache-tokenisable."""

    if not params:
        return ()
    items = dict(params).items()
    return tuple(sorted((str(name), value) for name, value in items))


def _fit_cell(
    cell: TournamentCell,
    fractions: Sequence[float],
    point_records: Sequence[Sequence[dict]],
    params: Tuple[Tuple[str, float], ...],
) -> CellResult:
    spends = tuple(_mean(records, "adversary_spend") for records in point_records)
    node_max = tuple(_mean(records, "node_max_cost") for records in point_records)
    node_mean = tuple(_mean(records, "node_mean_cost") for records in point_records)
    alice = tuple(_mean(records, "alice_cost") for records in point_records)
    delivery_min = min(
        (record["delivery_fraction"] for records in point_records for record in records),
        default=float("nan"),
    )
    return CellResult(
        cell=cell,
        spend_fractions=tuple(fractions),
        spends=spends,
        node_max_costs=node_max,
        node_mean_costs=node_mean,
        alice_costs=alice,
        delivery_min=delivery_min,
        node_fit=fit_cell_exponent(spends, node_max),
        alice_fit=fit_cell_exponent(spends, alice),
        params=params,
    )


def _mean(records: Sequence[dict], key: str) -> float:
    if not records:
        return float("nan")
    return float(np.mean([record[key] for record in records]))
