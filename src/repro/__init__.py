"""repro — a full reproduction of "Making Evildoers Pay: Resource-Competitive
Broadcast in Sensor Networks" (Gilbert & Young, PODC 2012).

The package is organised in four layers:

* :mod:`repro.simulation` — the slotted, single-channel, energy-budgeted WSN
  substrate the paper's model assumes;
* :mod:`repro.adversary` — the catalogue of jamming / spoofing strategies
  Carol can play;
* :mod:`repro.core` — the ε-Broadcast protocol (k = 2, general k, decoy
  traffic, unknown n) and the high-level :func:`repro.run_broadcast` API;
* :mod:`repro.baselines`, :mod:`repro.analysis`, :mod:`repro.experiments` —
  the comparators, theory utilities, and the benchmark harness that
  regenerates every quantitative claim of the paper.
"""

from .core.api import make_adversary, run_broadcast
from .core.broadcast import EpsilonBroadcast, MultiHopBroadcast
from .core.decoy import DecoyBroadcast
from .core.estimation import SizeEstimateBroadcast
from .core.general_k import GeneralKBroadcast
from .core.outcome import BroadcastOutcome
from .core.params import ProtocolParameters
from .core.quietrule import ConstantQuietRule, DegreeAwareQuietRule, PaperQuietRule, QuietRule
from .simulation.config import SimulationConfig

__version__ = "1.0.0"

__all__ = [
    "BroadcastOutcome",
    "ConstantQuietRule",
    "DecoyBroadcast",
    "DegreeAwareQuietRule",
    "EpsilonBroadcast",
    "GeneralKBroadcast",
    "make_adversary",
    "MultiHopBroadcast",
    "PaperQuietRule",
    "ProtocolParameters",
    "QuietRule",
    "run_broadcast",
    "SimulationConfig",
    "SizeEstimateBroadcast",
    "__version__",
]
