"""The wireless-sensor-network simulation substrate.

This subpackage implements the slotted, single-channel, energy-budgeted
network model of Gilbert & Young (PODC 2012): devices, the collision/jamming
channel with n-uniform targeting, energy ledgers, deterministic randomness,
and two interchangeable phase-execution engines (slot-faithful and
vectorised).
"""

from .auth import ALICE_ID, Authenticator
from .channel import Channel, JamMode, JamTargeting, SlotResolution
from .clock import PhaseWindow, SlotClock
from .config import SimulationConfig
from .energy import BudgetPolicy, EnergyLedger, EnergyOperation, LedgerArray, LedgerView
from .engine import SlotEngine
from .errors import (
    AuthenticationError,
    BudgetExceededError,
    ConfigurationError,
    ProtocolViolationError,
    ReproError,
    SimulationError,
)
from .events import EventLog, PhaseRecord, SlotEvent
from .fastengine import PhaseEngine
from .messages import Message, MessageKind, make_decoy, make_nack, make_payload, make_spoof
from .metrics import CostBreakdown, DeliveryStats, resource_competitive_ratio
from .network import Network
from .node import ActionKind, Device, Role, SlotAction
from .observation import ChannelState, Observation
from .phaseplan import (
    AdversaryStrategy,
    JamPlan,
    PhaseContext,
    PhaseKind,
    PhasePlan,
    PhaseResult,
    PhaseRoles,
    clip_probability,
)
from .rng import RandomSource, derive_seed
from .topology import (
    SPARSE_NODE_THRESHOLD,
    GilbertGraph,
    NeighborCSR,
    ScaleFreeGilbert,
    SingleHop,
    Topology,
    TopologySpec,
    build_topology,
    gilbert_connectivity_radius,
)

__all__ = [
    "ALICE_ID",
    "ActionKind",
    "AdversaryStrategy",
    "AuthenticationError",
    "Authenticator",
    "BudgetExceededError",
    "BudgetPolicy",
    "Channel",
    "ChannelState",
    "clip_probability",
    "ConfigurationError",
    "CostBreakdown",
    "DeliveryStats",
    "derive_seed",
    "Device",
    "EnergyLedger",
    "EnergyOperation",
    "LedgerArray",
    "LedgerView",
    "EventLog",
    "GilbertGraph",
    "NeighborCSR",
    "JamMode",
    "JamPlan",
    "JamTargeting",
    "Message",
    "MessageKind",
    "make_decoy",
    "make_nack",
    "make_payload",
    "make_spoof",
    "Network",
    "Observation",
    "PhaseContext",
    "PhaseEngine",
    "PhaseKind",
    "PhasePlan",
    "PhaseRecord",
    "PhaseResult",
    "PhaseRoles",
    "PhaseWindow",
    "ProtocolViolationError",
    "RandomSource",
    "ReproError",
    "resource_competitive_ratio",
    "Role",
    "ScaleFreeGilbert",
    "SimulationConfig",
    "SimulationError",
    "SPARSE_NODE_THRESHOLD",
    "SingleHop",
    "SlotAction",
    "SlotClock",
    "SlotEngine",
    "SlotEvent",
    "SlotResolution",
    "Topology",
    "TopologySpec",
    "build_topology",
    "gilbert_connectivity_radius",
]
