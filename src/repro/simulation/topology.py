"""Spatial network topologies: single-hop, Gilbert graphs, and scale-free variants.

The paper's game is played on a *single shared channel* — every transmission
is audible to every listener.  Its motivating setting, however, is a dense
sensor network deployed over an area, where radios have limited range and the
message must travel multiple hops.  This module supplies the spatial layer:

* :class:`SingleHop` — the seed model.  Every device hears every other
  device; the topology layer is a no-op and both engines take exactly the
  code paths they took before topologies existed (bit-identical outcomes).
* :class:`GilbertGraph` — the classical random geometric graph of Gilbert
  (1961): ``n`` points placed uniformly at random in the unit square, with an
  edge between two devices iff their Euclidean distance is at most a radius
  ``r``.  The connectivity threshold sits at ``r_c = sqrt(ln n / (π n))``
  (see "Limit theory for the Gilbert graph", arXiv:1312.4861): below it the
  graph shatters into components, above it it is connected w.h.p.
* :class:`ScaleFreeGilbert` — a heavy-tailed variant in the spirit of "From
  heavy-tailed Boolean models to scale-free Gilbert graphs"
  (arXiv:1411.6824): each device draws its own radio radius from a Pareto
  distribution, and ``u ~ v`` iff ``dist(u, v) <= max(r_u, r_v)``.  Nodes
  with large radii become hubs, producing a power-law degree tail.

Model notes and deliberate approximations
-----------------------------------------

* Radio links are **symmetric**: ``u`` hears ``v`` iff ``v`` hears ``u``.
  For :class:`ScaleFreeGilbert` this means the *stronger* radio of a pair
  carries the link both ways (the undirected ``max`` convention; the cited
  paper also studies directed and ``min`` variants).
* Alice is a device with a position like any other; by default she is placed
  at the centre of the unit square so radius sweeps are comparable across
  seeds (``alice_placement="random"`` samples her position instead).
* Byzantine/spoofed transmitters (synthetic sender ids ``<= -2``) are
  assumed audible everywhere: Carol controls ``f·n`` devices and the model
  grants her one wherever it hurts most.  Jamming, by contrast, can be made
  *spatial* via :meth:`Topology.nodes_in_disk`, which resolves a disk of the
  deployment area into the listener set for
  :class:`~repro.simulation.channel.JamTargeting`.
* Topology generation draws from the dedicated ``"topology"`` substream of
  the network's :class:`~repro.simulation.rng.RandomSource`, so enabling a
  spatial topology never perturbs the engines' random streams.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .auth import ALICE_ID
from .errors import ConfigurationError

__all__ = [
    "Topology",
    "SingleHop",
    "GilbertGraph",
    "ScaleFreeGilbert",
    "TopologySpec",
    "build_topology",
    "gilbert_connectivity_radius",
]


def gilbert_connectivity_radius(n: int) -> float:
    """The Gilbert-graph connectivity threshold ``sqrt(ln n / (π n))``.

    For uniform points in the unit square the graph is connected w.h.p. when
    the radius exceeds this value by any constant factor, and disconnected
    below it (Penrose; see arXiv:1312.4861 for the sparse-regime limit
    theory).  Experiments sweep multiples of this radius to cross the
    threshold.
    """

    if n < 2:
        raise ConfigurationError(f"connectivity radius needs n >= 2, got {n}")
    return math.sqrt(math.log(n) / (math.pi * n))


@dataclass(frozen=True)
class TopologySpec:
    """Declarative description of a topology, carried by ``SimulationConfig``.

    Keeping the *spec* (not the realised graph) on the configuration keeps
    configurations hashable, comparable, and serialisable; the
    :class:`~repro.simulation.network.Network` realises the spec
    deterministically from its own seeded random source.

    Attributes
    ----------
    kind:
        ``"single_hop"``, ``"gilbert"``, or ``"scale_free"``.
    radius:
        Connection radius for ``"gilbert"``; defaults to twice the
        connectivity threshold (comfortably connected).
    alpha:
        Pareto tail exponent for ``"scale_free"`` radii (smaller = heavier
        tail = more pronounced hubs).
    min_radius:
        Pareto scale (minimum radius) for ``"scale_free"``; defaults to the
        connectivity-threshold radius.
    alice_placement:
        ``"center"`` (default) pins Alice to (0.5, 0.5); ``"random"`` samples
        her position like any node.
    """

    kind: str = "single_hop"
    radius: Optional[float] = None
    alpha: float = 2.5
    min_radius: Optional[float] = None
    alice_placement: str = "center"

    def __post_init__(self) -> None:
        if self.kind not in ("single_hop", "gilbert", "scale_free"):
            raise ConfigurationError(
                f"topology kind must be one of 'single_hop', 'gilbert', 'scale_free'; "
                f"got {self.kind!r}"
            )
        if self.radius is not None and self.radius <= 0:
            raise ConfigurationError(f"radius must be positive, got {self.radius}")
        if self.alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {self.alpha}")
        if self.min_radius is not None and self.min_radius <= 0:
            raise ConfigurationError(f"min_radius must be positive, got {self.min_radius}")
        if self.alice_placement not in ("center", "random"):
            raise ConfigurationError(
                f"alice_placement must be 'center' or 'random', got {self.alice_placement!r}"
            )

    @staticmethod
    def single_hop() -> "TopologySpec":
        return TopologySpec(kind="single_hop")

    @staticmethod
    def gilbert(radius: Optional[float] = None, alice_placement: str = "center") -> "TopologySpec":
        return TopologySpec(kind="gilbert", radius=radius, alice_placement=alice_placement)

    @staticmethod
    def scale_free(
        alpha: float = 2.5,
        min_radius: Optional[float] = None,
        alice_placement: str = "center",
    ) -> "TopologySpec":
        return TopologySpec(
            kind="scale_free", alpha=alpha, min_radius=min_radius, alice_placement=alice_placement
        )


class Topology(abc.ABC):
    """Who can hear whom.

    Device addressing follows the rest of the simulator: correct nodes are
    ``0 .. n-1`` and Alice is :data:`~repro.simulation.auth.ALICE_ID` (-1).
    Synthetic adversarial sender ids (``<= -2``) are audible everywhere.
    """

    name: str = "topology"

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"topology needs at least one node, got n={n}")
        self.n = n

    # ------------------------------------------------------------------ #
    # Core audibility interface                                           #
    # ------------------------------------------------------------------ #

    @property
    def is_single_hop(self) -> bool:
        """Whether every device hears every other device (the seed model)."""

        return False

    def _index(self, device_id: int) -> int:
        """Map a device id to its row in the adjacency matrix (Alice last)."""

        if device_id == ALICE_ID:
            return self.n
        if 0 <= device_id < self.n:
            return device_id
        raise ConfigurationError(f"unknown device id {device_id} for topology over n={self.n}")

    @abc.abstractmethod
    def can_hear(self, listener_id: int, sender_id: int) -> bool:
        """Whether ``listener_id`` receives a transmission by ``sender_id``."""

    @abc.abstractmethod
    def reach_matrix(self, listener_ids: Sequence[int], sender_ids: Sequence[int]) -> np.ndarray:
        """Boolean matrix ``M[i, j]`` = listener ``i`` hears sender ``j``.

        Self-pairs are always ``False`` (a radio never hears itself).
        Synthetic Byzantine sender ids (``<= -2``) yield all-``True`` columns:
        the model grants Carol a transmitter wherever it hurts most.
        """

    def reach_matrix_f32(
        self, listener_ids: Sequence[int], sender_ids: Sequence[int]
    ) -> np.ndarray:
        """``reach_matrix`` as float32, ready for matmul accumulation.

        Spatial subclasses slice a cached float32 cast of the adjacency so
        vectorised engines do not re-convert the immutable graph every phase.
        """

        return self.reach_matrix(listener_ids, sender_ids).astype(np.float32)

    @abc.abstractmethod
    def neighbors(self, device_id: int) -> FrozenSet[int]:
        """All device ids audible from ``device_id`` (may include Alice)."""

    def node_neighbors(self, device_id: int) -> FrozenSet[int]:
        """Correct-node neighbours only (Alice excluded)."""

        return frozenset(v for v in self.neighbors(device_id) if v != ALICE_ID)

    # ------------------------------------------------------------------ #
    # Spatial queries (used by spatial jamming and experiments)           #
    # ------------------------------------------------------------------ #

    def position(self, device_id: int) -> Optional[Tuple[float, float]]:
        """The device's position in the unit square, or ``None`` if aspatial."""

        return None

    def nodes_in_disk(self, center: Tuple[float, float], radius: float) -> FrozenSet[int]:
        """Device ids (nodes, plus Alice if she is inside) within a disk.

        This is how a *spatial* Carol targets her jamming: instead of the
        paper's global channel blast, she blankets a disk of the deployment
        area, and only listeners inside it perceive noise.  Aspatial
        topologies return every device (a disk over a clique is the clique).
        """

        return frozenset(range(self.n)) | {ALICE_ID}

    # ------------------------------------------------------------------ #
    # Graph statistics (used by property tests and experiments)           #
    # ------------------------------------------------------------------ #

    def degrees(self) -> np.ndarray:
        """Per-node degree counting correct-node neighbours only."""

        return np.array([len(self.node_neighbors(u)) for u in range(self.n)], dtype=np.int64)

    def connected_components(self) -> List[FrozenSet[int]]:
        """Connected components of the node-node graph (Alice excluded)."""

        seen = [False] * self.n
        components: List[FrozenSet[int]] = []
        for start in range(self.n):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            component = {start}
            while stack:
                u = stack.pop()
                for v in self.node_neighbors(u):
                    if not seen[v]:
                        seen[v] = True
                        component.add(v)
                        stack.append(v)
            components.append(frozenset(component))
        return components

    def largest_component_fraction(self) -> float:
        """Size of the largest node component as a fraction of ``n``."""

        if self.n == 0:
            return 0.0
        return max(len(c) for c in self.connected_components()) / self.n

    def reachable_from_alice(self) -> FrozenSet[int]:
        """Node ids connected to Alice through the radio graph.

        An upper bound on who can ever be informed: the message spreads only
        along edges, so nodes outside Alice's component are unreachable no
        matter how many hops relays provide.
        """

        frontier = [v for v in self.neighbors(ALICE_ID) if v != ALICE_ID]
        seen = set(frontier)
        while frontier:
            u = frontier.pop()
            for v in self.node_neighbors(u):
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return frozenset(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self.n})"


class SingleHop(Topology):
    """The seed model: one shared channel, everyone hears everyone.

    This class exists so the rest of the stack can treat topology uniformly;
    both engines and the channel check :attr:`is_single_hop` and take their
    original code paths, keeping seed outcomes bit-identical.
    """

    name = "single_hop"

    @property
    def is_single_hop(self) -> bool:
        return True

    def can_hear(self, listener_id: int, sender_id: int) -> bool:
        return listener_id != sender_id

    def reach_matrix(self, listener_ids: Sequence[int], sender_ids: Sequence[int]) -> np.ndarray:
        listeners = np.asarray(list(listener_ids), dtype=np.int64)
        senders = np.asarray(list(sender_ids), dtype=np.int64)
        return listeners[:, None] != senders[None, :]

    def neighbors(self, device_id: int) -> FrozenSet[int]:
        self._index(device_id)
        everyone = set(range(self.n)) | {ALICE_ID}
        everyone.discard(device_id)
        return frozenset(everyone)


class _SpatialTopology(Topology):
    """Shared implementation for position-based topologies.

    Subclasses provide positions (rows ``0..n-1`` for nodes, row ``n`` for
    Alice) and a symmetric boolean adjacency with a zero diagonal.
    """

    def __init__(self, positions: np.ndarray, adjacency: np.ndarray) -> None:
        n = positions.shape[0] - 1
        super().__init__(n)
        if positions.shape != (n + 1, 2):
            raise ConfigurationError(f"positions must have shape (n+1, 2), got {positions.shape}")
        if adjacency.shape != (n + 1, n + 1):
            raise ConfigurationError(f"adjacency must have shape (n+1, n+1), got {adjacency.shape}")
        self._positions = positions
        self._adjacency = adjacency
        # The graph is immutable after construction, and the multi-hop relay
        # layer asks for the same neighbourhoods every phase — memoise them,
        # along with the float32 cast the vectorised engine matmuls against.
        self._neighbor_cache: dict = {}
        self._node_neighbor_cache: dict = {}
        self._adjacency_f32: Optional[np.ndarray] = None

    @property
    def positions(self) -> np.ndarray:
        """Copy of all positions; row ``n`` is Alice."""

        return self._positions.copy()

    @property
    def adjacency(self) -> np.ndarray:
        """Copy of the full (n+1)×(n+1) boolean adjacency; row ``n`` is Alice."""

        return self._adjacency.copy()

    def can_hear(self, listener_id: int, sender_id: int) -> bool:
        if sender_id <= -2:  # synthetic Byzantine transmitter: audible everywhere
            return True
        return bool(self._adjacency[self._index(listener_id), self._index(sender_id)])

    def _reach_from(
        self, matrix: np.ndarray, listener_ids: Sequence[int], sender_ids: Sequence[int]
    ) -> np.ndarray:
        l_idx = np.array([self._index(d) for d in listener_ids], dtype=np.int64)
        senders = np.asarray(list(sender_ids), dtype=np.int64)
        out = np.zeros((l_idx.size, senders.size), dtype=matrix.dtype)
        if l_idx.size == 0 or senders.size == 0:
            return out
        byzantine = senders <= -2  # synthetic transmitters: audible everywhere
        out[:, byzantine] = 1
        real = ~byzantine
        if real.any():
            s_idx = np.array([self._index(int(d)) for d in senders[real]], dtype=np.int64)
            out[:, real] = matrix[np.ix_(l_idx, s_idx)]
        return out

    def reach_matrix(self, listener_ids: Sequence[int], sender_ids: Sequence[int]) -> np.ndarray:
        return self._reach_from(self._adjacency, listener_ids, sender_ids)

    def reach_matrix_f32(
        self, listener_ids: Sequence[int], sender_ids: Sequence[int]
    ) -> np.ndarray:
        if self._adjacency_f32 is None:
            self._adjacency_f32 = self._adjacency.astype(np.float32)
        return self._reach_from(self._adjacency_f32, listener_ids, sender_ids)

    def neighbors(self, device_id: int) -> FrozenSet[int]:
        cached = self._neighbor_cache.get(device_id)
        if cached is None:
            row = self._adjacency[self._index(device_id)]
            ids = np.flatnonzero(row)
            cached = frozenset(ALICE_ID if int(i) == self.n else int(i) for i in ids)
            self._neighbor_cache[device_id] = cached
        return cached

    def node_neighbors(self, device_id: int) -> FrozenSet[int]:
        cached = self._node_neighbor_cache.get(device_id)
        if cached is None:
            cached = frozenset(v for v in self.neighbors(device_id) if v != ALICE_ID)
            self._node_neighbor_cache[device_id] = cached
        return cached

    def position(self, device_id: int) -> Tuple[float, float]:
        x, y = self._positions[self._index(device_id)]
        return (float(x), float(y))

    def nodes_in_disk(self, center: Tuple[float, float], radius: float) -> FrozenSet[int]:
        if radius < 0:
            raise ConfigurationError(f"disk radius must be non-negative, got {radius}")
        deltas = self._positions - np.asarray(center, dtype=float)[None, :]
        inside = np.flatnonzero((deltas ** 2).sum(axis=1) <= radius ** 2)
        return frozenset(ALICE_ID if int(i) == self.n else int(i) for i in inside)

    def degrees(self) -> np.ndarray:
        return self._adjacency[: self.n, : self.n].sum(axis=1).astype(np.int64)


def _sample_positions(n: int, rng: np.random.Generator, alice_placement: str) -> np.ndarray:
    positions = np.empty((n + 1, 2), dtype=float)
    positions[:n] = rng.random((n, 2))
    if alice_placement == "center":
        positions[n] = (0.5, 0.5)
    else:
        positions[n] = rng.random(2)
    return positions


class GilbertGraph(_SpatialTopology):
    """Random geometric (Gilbert) graph over the unit square.

    ``u ~ v`` iff ``dist(u, v) <= radius``; positions are uniform i.i.d.
    Use :meth:`sample` to build one deterministically from a generator.
    """

    name = "gilbert"

    def __init__(self, positions: np.ndarray, radius: float) -> None:
        if radius <= 0:
            raise ConfigurationError(f"radius must be positive, got {radius}")
        distances_sq = _pairwise_sq_distances(positions)
        adjacency = distances_sq <= radius ** 2
        np.fill_diagonal(adjacency, False)
        super().__init__(positions, adjacency)
        self.radius = radius

    @classmethod
    def sample(
        cls,
        n: int,
        radius: float,
        rng: np.random.Generator,
        alice_placement: str = "center",
    ) -> "GilbertGraph":
        return cls(_sample_positions(n, rng, alice_placement), radius)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GilbertGraph(n={self.n}, radius={self.radius:.4f})"


class ScaleFreeGilbert(_SpatialTopology):
    """Heavy-tailed Gilbert graph: per-device Pareto radii, ``max`` linkage.

    Each device ``u`` draws ``r_u = min_radius · U^(-1/alpha)`` (Pareto with
    scale ``min_radius`` and tail index ``alpha``); ``u ~ v`` iff
    ``dist(u, v) <= max(r_u, r_v)``.  A device whose radius covers area ``A``
    links to roughly ``n·A`` others, so Pareto radii translate into a
    power-law degree tail — the scale-free Gilbert construction of
    arXiv:1411.6824 (undirected ``max`` convention; radii are truncated at
    ``sqrt(2)``, the diameter of the unit square, which only affects the
    extreme tail).
    """

    name = "scale_free"

    def __init__(self, positions: np.ndarray, radii: np.ndarray, alpha: float, min_radius: float) -> None:
        if radii.shape[0] != positions.shape[0]:
            raise ConfigurationError("one radius per device (including Alice) is required")
        distances_sq = _pairwise_sq_distances(positions)
        link_radius = np.maximum(radii[:, None], radii[None, :])
        adjacency = distances_sq <= link_radius ** 2
        np.fill_diagonal(adjacency, False)
        super().__init__(positions, adjacency)
        self.alpha = alpha
        self.min_radius = min_radius
        self.radii = radii

    @classmethod
    def sample(
        cls,
        n: int,
        alpha: float,
        min_radius: float,
        rng: np.random.Generator,
        alice_placement: str = "center",
    ) -> "ScaleFreeGilbert":
        positions = _sample_positions(n, rng, alice_placement)
        uniforms = rng.random(n + 1)
        radii = np.minimum(min_radius * uniforms ** (-1.0 / alpha), math.sqrt(2.0))
        return cls(positions, radii, alpha, min_radius)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScaleFreeGilbert(n={self.n}, alpha={self.alpha:g}, min_radius={self.min_radius:.4f})"
        )


def _pairwise_sq_distances(positions: np.ndarray) -> np.ndarray:
    deltas = positions[:, None, :] - positions[None, :, :]
    return (deltas ** 2).sum(axis=-1)


def build_topology(
    spec: Optional[TopologySpec],
    n: int,
    random_source,
) -> Topology:
    """Realise a :class:`TopologySpec` into a concrete :class:`Topology`.

    ``random_source`` is the network's :class:`~repro.simulation.rng.RandomSource`;
    spatial topologies draw from its dedicated ``"topology"`` substream, so a
    single-hop build touches no random state at all (preserving seed-for-seed
    compatibility with pre-topology code).
    """

    if spec is None or spec.kind == "single_hop":
        return SingleHop(n)
    rng = random_source.stream("topology")
    if spec.kind == "gilbert":
        radius = spec.radius if spec.radius is not None else 2.0 * gilbert_connectivity_radius(n)
        return GilbertGraph.sample(n, radius, rng, alice_placement=spec.alice_placement)
    if spec.kind == "scale_free":
        min_radius = (
            spec.min_radius if spec.min_radius is not None else gilbert_connectivity_radius(n)
        )
        return ScaleFreeGilbert.sample(
            n, spec.alpha, min_radius, rng, alice_placement=spec.alice_placement
        )
    raise ConfigurationError(f"unknown topology kind {spec.kind!r}")  # pragma: no cover
