"""Spatial network topologies: single-hop, Gilbert graphs, and scale-free variants.

The paper's game is played on a *single shared channel* — every transmission
is audible to every listener.  Its motivating setting, however, is a dense
sensor network deployed over an area, where radios have limited range and the
message must travel multiple hops.  This module supplies the spatial layer:

* :class:`SingleHop` — the seed model.  Every device hears every other
  device; the topology layer is a no-op and both engines take exactly the
  code paths they took before topologies existed (bit-identical outcomes).
* :class:`GilbertGraph` — the classical random geometric graph of Gilbert
  (1961): ``n`` points placed uniformly at random in the unit square, with an
  edge between two devices iff their Euclidean distance is at most a radius
  ``r``.  The connectivity threshold sits at ``r_c = sqrt(ln n / (π n))``
  (see "Limit theory for the Gilbert graph", arXiv:1312.4861): below it the
  graph shatters into components, above it it is connected w.h.p.
* :class:`ScaleFreeGilbert` — a heavy-tailed variant in the spirit of "From
  heavy-tailed Boolean models to scale-free Gilbert graphs"
  (arXiv:1411.6824): each device draws its own radio radius from a Pareto
  distribution, and ``u ~ v`` iff ``dist(u, v) <= max(r_u, r_v)``.  Nodes
  with large radii become hubs, producing a power-law degree tail.

Dense and sparse adjacency backends
-----------------------------------

Spatial topologies keep the realised radio graph in one of two backends:

* **dense** — the original (n+1)×(n+1) boolean adjacency matrix, built from
  all-pairs distances.  Exact, simple, and the right choice up to a few
  thousand devices, but both its construction time and its memory are
  Θ(n²): at ``n = 10⁵`` the matrix alone would need ~10 GiB.
* **sparse** — a :class:`NeighborCSR` compressed-sparse-row neighbour list
  built with a uniform-grid cell index: points are bucketed into cells of
  the connection radius, and only points in adjacent cells are compared, so
  construction is ``O(n · E[deg])`` and memory is ``O(n + |edges|)``.  This
  is what lets :class:`~repro.simulation.fastengine.PhaseEngine` scale into
  the ``n ≫ 10⁴`` regime where the Gilbert-graph asymptotics of
  arXiv:1312.4861 / arXiv:1411.6824 actually bite.

Both backends realise the *same* graph for the same positions (the edge
predicate is evaluated with identical float arithmetic), so the choice is an
implementation detail.  It is made automatically at construction: networks
with more than :data:`SPARSE_NODE_THRESHOLD` devices go sparse, smaller ones
stay dense; ``TopologySpec(sparse=True/False)`` (or the ``sparse=`` keyword
of the topology constructors) overrides the crossover in either direction.
:attr:`Topology.backend` reports which representation a realised topology
uses, and :meth:`Topology.memory_bytes` its adjacency footprint.

Model notes and deliberate approximations
-----------------------------------------

* Radio links are **symmetric**: ``u`` hears ``v`` iff ``v`` hears ``u``.
  For :class:`ScaleFreeGilbert` this means the *stronger* radio of a pair
  carries the link both ways (the undirected ``max`` convention; the cited
  paper also studies directed and ``min`` variants).
* Alice is a device with a position like any other; by default she is placed
  at the centre of the unit square so radius sweeps are comparable across
  seeds (``alice_placement="random"`` samples her position instead).
* Byzantine/spoofed transmitters (synthetic sender ids ``<= -2``) are
  assumed audible everywhere: Carol controls ``f·n`` devices and the model
  grants her one wherever it hurts most.  Jamming, by contrast, can be made
  *spatial* via :meth:`Topology.nodes_in_disk`, which resolves a disk of the
  deployment area into the listener set for
  :class:`~repro.simulation.channel.JamTargeting`.
* Topology generation draws from the dedicated ``"topology"`` substream of
  the network's :class:`~repro.simulation.rng.RandomSource`, so enabling a
  spatial topology never perturbs the engines' random streams.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .auth import ALICE_ID
from .errors import ConfigurationError

__all__ = [
    "Topology",
    "SingleHop",
    "GilbertGraph",
    "ScaleFreeGilbert",
    "TopologySpec",
    "NeighborCSR",
    "build_topology",
    "gilbert_connectivity_radius",
    "SPARSE_NODE_THRESHOLD",
]


SPARSE_NODE_THRESHOLD = 4096
"""Device count (``n + 1``, nodes plus Alice) above which spatial topologies
default to the sparse CSR backend.  At the threshold the dense boolean
adjacency is ~16 MiB; one step past it the quadratic growth starts to crowd
out the engines, while the CSR representation stays linear in the edge
count."""


def gilbert_connectivity_radius(n: int) -> float:
    """The Gilbert-graph connectivity threshold ``sqrt(ln n / (π n))``.

    For uniform points in the unit square the graph is connected w.h.p. when
    the radius exceeds this value by any constant factor, and disconnected
    below it (Penrose; see arXiv:1312.4861 for the sparse-regime limit
    theory).  Experiments sweep multiples of this radius to cross the
    threshold.
    """

    if n < 2:
        raise ConfigurationError(f"connectivity radius needs n >= 2, got {n}")
    return math.sqrt(math.log(n) / (math.pi * n))


# --------------------------------------------------------------------------- #
# Compressed-sparse-row neighbourhoods                                        #
# --------------------------------------------------------------------------- #


def _gather_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[start, start + count)`` index ranges, vectorised.

    The workhorse behind every CSR multi-row slice: given per-row start
    offsets and lengths it returns the flat index array selecting all of the
    rows' entries at once, without a Python loop.
    """

    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(np.asarray(starts, dtype=np.int64), counts) + offsets


@dataclass(frozen=True)
class NeighborCSR:
    """Compressed-sparse-row adjacency over device *rows*.

    Row indexing follows the adjacency-matrix convention used throughout the
    topology layer: rows ``0 .. n-1`` are the correct nodes (row = node id)
    and row ``n`` is Alice.  Synthetic Byzantine sender ids (``<= -2``) have
    no row — they are audible everywhere by model fiat and are handled by the
    callers, not the graph.

    Attributes
    ----------
    indptr:
        ``int64`` array of shape ``(num_rows + 1,)``; row ``r``'s neighbours
        live at ``indices[indptr[r]:indptr[r+1]]``.
    indices:
        ``int32`` array of shape ``(nnz,)`` holding neighbour *rows*, sorted
        ascending within each row.  Symmetric (``v in row(u)`` iff
        ``u in row(v)``) with an empty diagonal (no self-loops).
    """

    indptr: np.ndarray
    indices: np.ndarray

    @property
    def num_rows(self) -> int:
        return int(self.indptr.size - 1)

    @property
    def nnz(self) -> int:
        """Number of stored directed edges (twice the undirected edge count)."""

        return int(self.indices.size)

    def row(self, row_index: int) -> np.ndarray:
        """Neighbour rows of ``row_index`` (a sorted ``int32`` view, not a copy)."""

        return self.indices[self.indptr[row_index] : self.indptr[row_index + 1]]

    def degrees(self) -> np.ndarray:
        """Per-row neighbour counts, shape ``(num_rows,)``, dtype ``int64``."""

        return np.diff(self.indptr)

    def contains(self, row_index: int, neighbor_row: int) -> bool:
        """Whether ``neighbor_row`` appears in ``row_index``'s neighbour list."""

        row = self.row(row_index)
        pos = np.searchsorted(row, neighbor_row)
        return bool(pos < row.size and row[pos] == neighbor_row)

    def expand(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Slice many rows at once: the per-listener/per-sender bulk primitive.

        Returns ``(origins, neighbors)`` where ``origins[i]`` indexes into the
        input ``rows`` array and ``neighbors[i]`` is one neighbour row of
        ``rows[origins[i]]``.  Cost is ``O(sum of the rows' degrees)`` — this
        is what the vectorised engine uses to resolve audibility over only the
        currently-active device sets.
        """

        rows = np.asarray(rows, dtype=np.int64)
        counts = self.indptr[rows + 1] - self.indptr[rows]
        origins = np.repeat(np.arange(rows.size, dtype=np.int64), counts)
        flat = _gather_ranges(self.indptr[rows], counts)
        return origins, self.indices[flat].astype(np.int64, copy=False)

    def to_dense(self) -> np.ndarray:
        """Materialise the boolean adjacency matrix (Θ(num_rows²) memory)."""

        m = self.num_rows
        dense = np.zeros((m, m), dtype=bool)
        rows = np.repeat(np.arange(m, dtype=np.int64), self.degrees())
        dense[rows, self.indices.astype(np.int64, copy=False)] = True
        return dense

    def memory_bytes(self) -> int:
        """Bytes held by the CSR arrays."""

        return int(self.indptr.nbytes + self.indices.nbytes)


def _edges_to_csr(us: np.ndarray, vs: np.ndarray, num_rows: int) -> NeighborCSR:
    """Build a symmetric :class:`NeighborCSR` from unordered edge endpoints.

    ``(us[i], vs[i])`` are undirected edges with ``us[i] != vs[i]``, each
    unordered pair appearing exactly once.
    """

    rows = np.concatenate([us, vs])
    cols = np.concatenate([vs, us])
    order = np.lexsort((cols, rows))
    rows = rows[order]
    cols = cols[order]
    counts = np.bincount(rows, minlength=num_rows)
    indptr = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)])
    return NeighborCSR(indptr=indptr, indices=cols.astype(np.int32))


def _directed_edges_to_csr(us: np.ndarray, vs: np.ndarray, num_rows: int) -> NeighborCSR:
    """Symmetrise a *directed* edge list (possibly with duplicates) into CSR."""

    m = np.int64(num_rows)
    keys = np.concatenate([us * m + vs, vs * m + us])
    keys = np.unique(keys)
    rows = keys // m
    cols = keys % m
    counts = np.bincount(rows, minlength=num_rows)
    indptr = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)])
    return NeighborCSR(indptr=indptr, indices=cols.astype(np.int32))


# --------------------------------------------------------------------------- #
# Grid-index edge construction                                                #
# --------------------------------------------------------------------------- #


class _CellGrid:
    """Uniform-grid spatial index over points in the unit square.

    Buckets the ``m`` points into square cells of side ``cell`` and exposes
    the occupied cells as contiguous runs of a sorted point permutation, so
    neighbourhood queries touch only nearby buckets.  Construction is
    ``O(m log m)``; memory is ``O(m)`` regardless of the grid resolution
    (empty cells are never materialised).
    """

    def __init__(self, positions: np.ndarray, cell: float) -> None:
        self.cell = cell
        self.grid_dim = max(1, int(math.ceil(1.0 / cell)))
        coords = np.clip((positions / cell).astype(np.int64), 0, self.grid_dim - 1)
        self.coords = coords
        self.cell_ids = coords[:, 0] * self.grid_dim + coords[:, 1]
        self.order = np.argsort(self.cell_ids, kind="stable")
        sorted_ids = self.cell_ids[self.order]
        self.occupied, self.starts, self.counts = np.unique(
            sorted_ids, return_index=True, return_counts=True
        )

    def lookup(self, cell_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Map cell ids to ``(slot, found)`` in the occupied-cell table."""

        slot = np.searchsorted(self.occupied, cell_ids)
        slot_clipped = np.minimum(slot, self.occupied.size - 1)
        found = (slot < self.occupied.size) & (self.occupied[slot_clipped] == cell_ids)
        return slot_clipped, found


def _cross_pairs(
    a_starts: np.ndarray, a_counts: np.ndarray, b_starts: np.ndarray, b_counts: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """All (a, b) index pairs between matched bucket runs, vectorised."""

    a_counts = np.asarray(a_counts, dtype=np.int64)
    b_counts = np.asarray(b_counts, dtype=np.int64)
    rep = a_counts * b_counts
    total = int(rep.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    pair_bucket = np.repeat(np.arange(rep.size, dtype=np.int64), rep)
    within = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(rep) - rep, rep)
    bc = b_counts[pair_bucket]
    ai = within // bc
    bi = within % bc
    return a_starts[pair_bucket] + ai, b_starts[pair_bucket] + bi


# Offsets covering each unordered pair of adjacent cells exactly once
# (the standard half-neighbourhood sweep for symmetric predicates).
_HALF_OFFSETS = ((0, 0), (0, 1), (1, -1), (1, 0), (1, 1))


def _gilbert_edges_grid(positions: np.ndarray, radius: float) -> Tuple[np.ndarray, np.ndarray]:
    """Edge list of the Gilbert graph via a uniform grid: ``O(m · E[deg])``.

    Cells have side ``radius``, so every edge joins points in the same or
    adjacent cells; only those candidate pairs are distance-checked.  The
    predicate (``dist² <= radius²`` on the same float operations) matches the
    dense all-pairs construction bit for bit, so both backends realise the
    identical graph.
    """

    grid = _CellGrid(positions, min(radius, 1.0))
    g = grid.grid_dim
    r2 = radius * radius
    cx = grid.occupied // g
    cy = grid.occupied % g
    us: List[np.ndarray] = []
    vs: List[np.ndarray] = []
    for dx, dy in _HALF_OFFSETS:
        if dx == 0 and dy == 0:
            busy = np.flatnonzero(grid.counts > 1)
            a_pos, b_pos = _cross_pairs(
                grid.starts[busy], grid.counts[busy], grid.starts[busy], grid.counts[busy]
            )
            keep = a_pos < b_pos
            a_pos, b_pos = a_pos[keep], b_pos[keep]
        else:
            nx, ny = cx + dx, cy + dy
            valid = (nx < g) & (ny >= 0) & (ny < g)
            a_slots = np.flatnonzero(valid)
            slot, found = grid.lookup(nx[valid] * g + ny[valid])
            a_slots, b_slots = a_slots[found], slot[found]
            a_pos, b_pos = _cross_pairs(
                grid.starts[a_slots],
                grid.counts[a_slots],
                grid.starts[b_slots],
                grid.counts[b_slots],
            )
        if a_pos.size == 0:
            continue
        u = grid.order[a_pos]
        v = grid.order[b_pos]
        deltas = positions[u] - positions[v]
        close = (deltas ** 2).sum(axis=1) <= r2
        us.append(u[close])
        vs.append(v[close])
    if not us:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(us), np.concatenate(vs)


_SCALE_FREE_GRID_BANDS = 8
"""Radius bands (in cell units) resolved through the grid; devices with even
larger radii are hubs that genuinely reach a large fraction of the square, so
they fall back to a direct distance sweep."""


def _scale_free_edges_grid(
    positions: np.ndarray, radii: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Directed edge list ``u -> v`` with ``dist(u, v) <= r_u`` via the grid.

    Symmetrising the result yields the undirected ``max``-linkage graph:
    ``dist <= max(r_u, r_v)`` iff ``dist <= r_u`` or ``dist <= r_v``.  Each
    device scans the ``(2k+1)²`` cell window covering its own radius
    (``k = ceil(r_u / cell)``), so work is proportional to its true degree;
    the few heavy-tailed hubs whose window would exceed
    :data:`_SCALE_FREE_GRID_BANDS` bands are resolved against all points
    directly (they connect to a large fraction of them anyway).
    """

    m = positions.shape[0]
    cell = min(max(float(np.median(radii)), 1e-6), 1.0)
    grid = _CellGrid(positions, cell)
    g = grid.grid_dim
    bands = np.maximum(np.ceil(radii / cell).astype(np.int64), 1)
    grid_devices = bands <= _SCALE_FREE_GRID_BANDS
    us: List[np.ndarray] = []
    vs: List[np.ndarray] = []

    for k in np.unique(bands[grid_devices]):
        group = np.flatnonzero(grid_devices & (bands == k))
        gx = grid.coords[group, 0]
        gy = grid.coords[group, 1]
        for dx in range(-int(k), int(k) + 1):
            for dy in range(-int(k), int(k) + 1):
                nx, ny = gx + dx, gy + dy
                valid = (nx >= 0) & (nx < g) & (ny >= 0) & (ny < g)
                srcs = group[valid]
                slot, found = grid.lookup(nx[valid] * g + ny[valid])
                srcs, slots = srcs[found], slot[found]
                if srcs.size == 0:
                    continue
                rep = grid.counts[slots]
                u = np.repeat(srcs, rep)
                v = grid.order[_gather_ranges(grid.starts[slots], rep)]
                deltas = positions[u] - positions[v]
                close = ((deltas ** 2).sum(axis=1) <= radii[u] ** 2) & (u != v)
                us.append(u[close])
                vs.append(v[close])

    hubs = np.flatnonzero(~grid_devices)
    for start in range(0, hubs.size, 64):
        chunk = hubs[start : start + 64]
        deltas = positions[chunk][:, None, :] - positions[None, :, :]
        close = (deltas ** 2).sum(axis=-1) <= radii[chunk][:, None] ** 2
        u_idx, v_idx = np.nonzero(close)
        u = chunk[u_idx]
        v = v_idx.astype(np.int64)
        keep = u != v
        us.append(u[keep])
        vs.append(v[keep])

    if not us:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(us), np.concatenate(vs)


def _resolve_sparse(num_devices: int, sparse: Optional[bool]) -> bool:
    """Apply the dense/sparse crossover: explicit override, else by size."""

    if sparse is not None:
        return bool(sparse)
    return num_devices > SPARSE_NODE_THRESHOLD


# --------------------------------------------------------------------------- #
# Topology specification                                                      #
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class TopologySpec:
    """Declarative description of a topology, carried by ``SimulationConfig``.

    Keeping the *spec* (not the realised graph) on the configuration keeps
    configurations hashable, comparable, and serialisable; the
    :class:`~repro.simulation.network.Network` realises the spec
    deterministically from its own seeded random source.

    Attributes
    ----------
    kind:
        ``"single_hop"``, ``"gilbert"``, or ``"scale_free"``.
    radius:
        Connection radius for ``"gilbert"``; defaults to twice the
        connectivity threshold (comfortably connected).
    alpha:
        Pareto tail exponent for ``"scale_free"`` radii (smaller = heavier
        tail = more pronounced hubs).
    min_radius:
        Pareto scale (minimum radius) for ``"scale_free"``; defaults to the
        connectivity-threshold radius.
    alice_placement:
        ``"center"`` (default) pins Alice to (0.5, 0.5); ``"random"`` samples
        her position like any node.
    sparse:
        Adjacency backend override: ``True`` forces the CSR representation,
        ``False`` forces the dense matrix, ``None`` (default) crosses over
        automatically at :data:`SPARSE_NODE_THRESHOLD` devices.  Both
        backends realise the identical graph; this knob trades memory/speed
        only.  Ignored by ``"single_hop"`` (which stores no adjacency).
    """

    kind: str = "single_hop"
    radius: Optional[float] = None
    alpha: float = 2.5
    min_radius: Optional[float] = None
    alice_placement: str = "center"
    sparse: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.kind not in ("single_hop", "gilbert", "scale_free"):
            raise ConfigurationError(
                f"topology kind must be one of 'single_hop', 'gilbert', 'scale_free'; "
                f"got {self.kind!r}"
            )
        if self.radius is not None and self.radius <= 0:
            raise ConfigurationError(f"radius must be positive, got {self.radius}")
        if self.alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {self.alpha}")
        if self.min_radius is not None and self.min_radius <= 0:
            raise ConfigurationError(f"min_radius must be positive, got {self.min_radius}")
        if self.alice_placement not in ("center", "random"):
            raise ConfigurationError(
                f"alice_placement must be 'center' or 'random', got {self.alice_placement!r}"
            )
        if self.sparse is not None and not isinstance(self.sparse, bool):
            raise ConfigurationError(
                f"sparse must be True, False, or None (auto), got {self.sparse!r}"
            )

    @staticmethod
    def single_hop() -> "TopologySpec":
        return TopologySpec(kind="single_hop")

    @staticmethod
    def gilbert(
        radius: Optional[float] = None,
        alice_placement: str = "center",
        sparse: Optional[bool] = None,
    ) -> "TopologySpec":
        return TopologySpec(
            kind="gilbert", radius=radius, alice_placement=alice_placement, sparse=sparse
        )

    @staticmethod
    def scale_free(
        alpha: float = 2.5,
        min_radius: Optional[float] = None,
        alice_placement: str = "center",
        sparse: Optional[bool] = None,
    ) -> "TopologySpec":
        return TopologySpec(
            kind="scale_free",
            alpha=alpha,
            min_radius=min_radius,
            alice_placement=alice_placement,
            sparse=sparse,
        )


# --------------------------------------------------------------------------- #
# Topology base class                                                         #
# --------------------------------------------------------------------------- #


class Topology(abc.ABC):
    """Who can hear whom.

    Device addressing follows the rest of the simulator: correct nodes are
    ``0 .. n-1`` and Alice is :data:`~repro.simulation.auth.ALICE_ID` (-1).
    Synthetic adversarial sender ids (``<= -2``) are audible everywhere.

    Internally every concrete topology indexes devices by *row*: node ``i``
    is row ``i`` and Alice is row ``n`` (the **Alice-last convention**).
    The public query API speaks device ids; only :meth:`neighbor_csr` (the
    bulk interface consumed by the vectorised engine) exposes rows directly.
    """

    name: str = "topology"

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"topology needs at least one node, got n={n}")
        self.n = n
        # Degree/neighbourhood statistics are pure functions of the immutable
        # realised graph, and the termination rules consult them once per
        # request phase — memoise them (read-only, so a cached array cannot
        # be corrupted through an aliased reference).
        self._degrees_cache: Optional[np.ndarray] = None
        self._neighborhood_size_cache: dict = {}
        self._alice_within_cache: dict = {}

    # ------------------------------------------------------------------ #
    # Core audibility interface                                           #
    # ------------------------------------------------------------------ #

    @property
    def is_single_hop(self) -> bool:
        """Whether every device hears every other device (the seed model)."""

        return False

    @property
    def backend(self) -> str:
        """Adjacency representation: ``"dense"``, ``"sparse"``, or ``"implicit"``.

        ``"implicit"`` means no adjacency is stored at all (single-hop: the
        graph is a clique by definition).  The engines dispatch on this — the
        sparse backend routes :class:`~repro.simulation.fastengine.PhaseEngine`
        through its event-driven CSR path.
        """

        return "implicit"

    def _index(self, device_id: int) -> int:
        """Map a device id to its row (Alice last: nodes ``0..n-1``, Alice ``n``)."""

        if device_id == ALICE_ID:
            return self.n
        if 0 <= device_id < self.n:
            return device_id
        raise ConfigurationError(f"unknown device id {device_id} for topology over n={self.n}")

    def _device_id(self, row: int) -> int:
        """Inverse of :meth:`_index`."""

        return ALICE_ID if row == self.n else int(row)

    @abc.abstractmethod
    def can_hear(self, listener_id: int, sender_id: int) -> bool:
        """Whether ``listener_id`` receives a transmission by ``sender_id``."""

    @abc.abstractmethod
    def reach_matrix(self, listener_ids: Sequence[int], sender_ids: Sequence[int]) -> np.ndarray:
        """Boolean matrix ``M[i, j]`` = listener ``i`` hears sender ``j``.

        Parameters
        ----------
        listener_ids:
            Device ids (``0..n-1`` or :data:`~repro.simulation.auth.ALICE_ID`)
            selecting the rows of the result, in order.
        sender_ids:
            Device ids selecting the columns.  May include synthetic
            Byzantine sender ids (``<= -2``), which yield all-``True``
            columns: the model grants Carol a transmitter wherever it hurts
            most.

        Returns
        -------
        numpy.ndarray
            Shape ``(len(listener_ids), len(sender_ids))``, dtype ``bool``.
            Self-pairs are always ``False`` (a radio never hears itself).
        """

    def reach_matrix_f32(
        self, listener_ids: Sequence[int], sender_ids: Sequence[int]
    ) -> np.ndarray:
        """:meth:`reach_matrix` as ``float32``, ready for matmul accumulation.

        Same shape and semantics as :meth:`reach_matrix`; dense spatial
        backends slice a cached float32 cast of the adjacency so vectorised
        engines do not re-convert the immutable graph every phase.
        """

        return self.reach_matrix(listener_ids, sender_ids).astype(np.float32)

    @abc.abstractmethod
    def neighbor_csr(self) -> NeighborCSR:
        """The adjacency as a :class:`NeighborCSR` over device rows.

        Rows are Alice-last (``0..n-1`` nodes, ``n`` Alice); the result is
        symmetric with an empty diagonal and is cached on first call.  This
        is the bulk neighbourhood interface the vectorised engine slices per
        phase.  For :class:`SingleHop` the clique CSR is Θ(n²) — call it only
        at small ``n`` (the engines never do; they special-case single-hop).
        """

    def neighbor_slice(self, device_id: int) -> np.ndarray:
        """Device ids audible from ``device_id`` as a sorted ``int64`` array.

        The array view of :meth:`neighbors`: node ids ascending, with
        :data:`~repro.simulation.auth.ALICE_ID` (-1) *first* when Alice is in
        range (ids are returned in device-id order, and Alice's id is -1).
        """

        csr = self.neighbor_csr()
        rows = csr.row(self._index(device_id)).astype(np.int64, copy=True)
        out = np.where(rows == self.n, ALICE_ID, rows)
        out.sort()
        return out

    def neighbors(self, device_id: int) -> FrozenSet[int]:
        """All device ids audible from ``device_id`` (may include Alice)."""

        csr = self.neighbor_csr()
        row = csr.row(self._index(device_id))
        return frozenset(self._device_id(int(r)) for r in row)

    def node_neighbors(self, device_id: int) -> FrozenSet[int]:
        """Correct-node neighbours only (Alice excluded)."""

        return frozenset(v for v in self.neighbors(device_id) if v != ALICE_ID)

    def any_neighbor_in(
        self, device_ids: Sequence[int], member_ids: Iterable[int]
    ) -> np.ndarray:
        """For each device, whether any of its neighbours is in ``member_ids``.

        Returns a boolean array aligned with ``device_ids``.  This is the
        multi-hop frontier primitive: :class:`~repro.core.broadcast.MultiHopBroadcast`
        retires a relay exactly when it has no active uninformed neighbour
        left.  Cost is ``O(sum of the devices' degrees)`` via one CSR slice.
        """

        if isinstance(device_ids, np.ndarray):
            # Fast path: an int array of node ids *is* its own row vector
            # (nodes 0..n-1 are rows 0..n-1) — no per-element Python mapping.
            rows = device_ids.astype(np.int64, copy=False)
        else:
            rows = np.array([self._index(int(d)) for d in device_ids], dtype=np.int64)
        out = np.zeros(rows.size, dtype=bool)
        if rows.size == 0:
            return out
        member_mask = np.zeros(self.n + 1, dtype=bool)
        if isinstance(member_ids, np.ndarray):
            member_mask[member_ids.astype(np.int64, copy=False)] = True
        else:
            for member in member_ids:
                member_mask[self._index(int(member))] = True
        if not member_mask.any():
            return out
        csr = self.neighbor_csr()
        origins, nbrs = csr.expand(rows)
        out[origins[member_mask[nbrs]]] = True
        return out

    def frontier_reachable(self, source_rows: np.ndarray, passable: np.ndarray) -> np.ndarray:
        """Passable nodes reachable from ``source_rows`` through passable nodes.

        ``source_rows`` are adjacency rows (node rows or Alice's row ``n``);
        ``passable`` is a boolean mask over nodes.  The BFS expands only
        through nodes the mask admits, which is exactly the multi-hop
        message-flow question: a node outside the returned mask cannot ever
        receive ``m`` from the given sources, because every path to it is
        severed by a non-passable (terminated) node.  Cost is ``O(edges
        touched)`` via chunked CSR expansion — no per-node Python loop.
        """

        reached = np.zeros(self.n, dtype=bool)
        if source_rows.size == 0:
            return reached
        csr = self.neighbor_csr()
        _, nbrs = csr.expand(source_rows.astype(np.int64, copy=False))
        nbrs = nbrs[nbrs < self.n]
        frontier = np.unique(nbrs[passable[nbrs]])
        reached[frontier] = True
        while frontier.size:
            _, nbrs = csr.expand(frontier)
            nbrs = nbrs[nbrs < self.n]
            nbrs = np.unique(nbrs)
            new = nbrs[passable[nbrs] & ~reached[nbrs]]
            reached[new] = True
            frontier = new
        return reached

    def memory_bytes(self) -> int:
        """Bytes held by the realised adjacency (0 for implicit topologies)."""

        return 0

    # ------------------------------------------------------------------ #
    # Spatial queries (used by spatial jamming and experiments)           #
    # ------------------------------------------------------------------ #

    def position(self, device_id: int) -> Optional[Tuple[float, float]]:
        """The device's position in the unit square, or ``None`` if aspatial."""

        return None

    def nodes_in_disk(self, center: Tuple[float, float], radius: float) -> FrozenSet[int]:
        """Device ids (nodes, plus Alice if she is inside) within a disk.

        This is how a *spatial* Carol targets her jamming: instead of the
        paper's global channel blast, she blankets a disk of the deployment
        area, and only listeners inside it perceive noise.  Aspatial
        topologies return every device (a disk over a clique is the clique).
        """

        return frozenset(range(self.n)) | {ALICE_ID}

    # ------------------------------------------------------------------ #
    # Graph statistics (used by property tests and experiments)           #
    # ------------------------------------------------------------------ #

    def degrees(self) -> np.ndarray:
        """Per-node degree counting correct-node neighbours only.

        Shape ``(n,)``, dtype ``int64``, indexed by node id; Alice's row is
        excluded from the output and her column from every count (the
        **Alice-exclusion convention** shared by the component statistics).
        Cached on first call (the graph is immutable); the returned array is
        read-only.
        """

        if self._degrees_cache is None:
            degrees = self._compute_degrees()
            degrees.setflags(write=False)
            self._degrees_cache = degrees
        return self._degrees_cache

    def _compute_degrees(self) -> np.ndarray:
        csr = self.neighbor_csr()
        node_edge = csr.indices < self.n
        cumulative = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(node_edge, dtype=np.int64)]
        )
        return cumulative[csr.indptr[1 : self.n + 1]] - cumulative[csr.indptr[: self.n]]

    def neighborhood_sizes(self, hops: int = 1, cap: Optional[int] = None) -> np.ndarray:
        """Number of devices within ``hops`` edges of each node (self excluded).

        Shape ``(n,)``, dtype ``int64``, indexed by node id.  Unlike
        :meth:`degrees`, **Alice counts as a device** here: this statistic
        feeds the degree-aware termination rules, and a node whose only radio
        neighbour is Alice has a live neighbourhood, not an empty one.

        ``hops=1`` is the device degree; larger ``hops`` give the size of the
        hop-ball, the locally-observable quantity that separates a
        sub-critical component (ball bounded by the component) from the giant
        component (ball ≈ degree × mean degree per extra hop) in the
        Gilbert-graph sparse regime of arXiv:1312.4861.  Computed by chunked
        CSR neighbourhood expansion — no Python loop per node — and cached
        per ``(hops, cap)``.

        ``cap`` saturates the count: values below ``cap`` are exact, values
        at or above ``cap`` only promise "at least ``cap``" (the true ball
        may be larger).  Callers that merely threshold the ball — the
        degree-aware quiet rule's super-critical cut — pass their threshold
        here, which lets nodes stop expanding the moment they clear it and
        keeps the large-``n`` cost at ``O(n · cap · E[deg])`` instead of
        walking every giant-component ball to completion.
        """

        if hops < 1:
            raise ConfigurationError(f"neighborhood_sizes needs hops >= 1, got {hops}")
        if cap is not None and cap < 1:
            raise ConfigurationError(f"neighborhood_sizes cap must be >= 1, got {cap}")
        key = (hops, cap)
        cached = self._neighborhood_size_cache.get(key)
        if cached is None:
            cached = self._compute_neighborhood_sizes(hops, cap)
            cached.setflags(write=False)
            self._neighborhood_size_cache[key] = cached
        return cached

    def alice_within(self, hops: int = 1) -> np.ndarray:
        """Per-node boolean: is Alice within ``hops`` edges of the node?

        Shape ``(n,)``, dtype ``bool``, cached per ``hops``.  One BFS from
        Alice's row answers the query for every node at once — O(edges within
        ``hops`` of Alice) regardless of how large other neighbourhoods are.
        The degree-aware termination rules treat a neighbourhood containing
        the source as super-critical regardless of size: a node that knows
        Alice is ``hops`` edges away is reachable by construction and must
        not give up while the relay frontier closes those last hops.
        """

        if hops < 1:
            raise ConfigurationError(f"alice_within needs hops >= 1, got {hops}")
        cached = self._alice_within_cache.get(hops)
        if cached is None:
            cached = self._compute_alice_within(hops)
            cached.setflags(write=False)
            self._alice_within_cache[hops] = cached
        return cached

    def _compute_alice_within(self, hops: int) -> np.ndarray:
        csr = self.neighbor_csr()
        within = np.zeros(self.n, dtype=bool)
        frontier = csr.row(self.n).astype(np.int64, copy=False)
        frontier = frontier[frontier < self.n]
        for _ in range(hops):
            frontier = frontier[~within[frontier]]
            if frontier.size == 0:
                break
            within[frontier] = True
            _, nbrs = csr.expand(frontier)
            frontier = np.unique(nbrs[nbrs < self.n])
        return within

    def _compute_neighborhood_sizes(self, hops: int, cap: Optional[int] = None) -> np.ndarray:
        csr = self.neighbor_csr()
        m = self.n + 1
        degrees = np.diff(csr.indptr)[: self.n].astype(np.int64, copy=True)
        if hops == 1:
            return degrees
        if cap is None:
            pending = np.arange(self.n, dtype=np.int64)
        else:
            # One hop already proves `degree` members: only nodes still below
            # the cap need deeper expansion.  In a super-critical graph this
            # prunes almost everyone after the degree check alone.
            pending = np.flatnonzero(degrees < cap)
        sizes = degrees
        # Per-chunk boolean membership masks sidestep any sorting: marking a
        # candidate is a fancy-index write and the next frontier falls out of
        # an xor against the pre-expansion mask.  The chunk size caps the
        # mask at ~2^25 cells, so memory stays ~32 MiB however large n gets.
        chunk = max(64, min(2048, (1 << 25) // m))
        for start in range(0, pending.size, chunk):
            rows = pending[start : start + chunk]
            size = rows.size
            ball = np.zeros((size, m), dtype=bool)
            ball[np.arange(size), rows] = True  # {self}; excluded at the end
            frontier_origin = np.arange(size, dtype=np.int64)
            frontier_row = rows
            for hop in range(hops):
                origins, nbrs = csr.expand(frontier_row)
                origins = frontier_origin[origins]
                before = ball.copy()
                ball[origins, nbrs] = True
                frontier_origin, frontier_row = np.nonzero(ball & ~before)
                if frontier_origin.size == 0:
                    break
                if cap is not None and hop + 1 < hops:
                    # Origins that already cleared the cap stop expanding:
                    # their reported size saturates at "at least cap".
                    counts = ball.sum(axis=1, dtype=np.int64) - 1
                    active = counts[frontier_origin] < cap
                    frontier_origin = frontier_origin[active]
                    frontier_row = frontier_row[active]
                    if frontier_origin.size == 0:
                        break
            # Minus one per origin: the node itself is not its own neighbour.
            sizes[rows] = ball.sum(axis=1, dtype=np.int64) - 1
        return sizes

    def _node_frontier_bfs(self, start_rows: np.ndarray, seen: np.ndarray) -> np.ndarray:
        """Rows of nodes reachable from ``start_rows`` over node-node edges."""

        csr = self.neighbor_csr()
        members = [start_rows]
        frontier = start_rows
        while frontier.size:
            _, nbrs = csr.expand(frontier)
            nbrs = nbrs[nbrs < self.n]
            nbrs = np.unique(nbrs)
            new = nbrs[~seen[nbrs]]
            seen[new] = True
            members.append(new)
            frontier = new
        return np.concatenate(members)

    def connected_components(self) -> List[FrozenSet[int]]:
        """Connected components of the node-node graph (Alice excluded)."""

        seen = np.zeros(self.n, dtype=bool)
        components: List[FrozenSet[int]] = []
        for start in range(self.n):
            if seen[start]:
                continue
            seen[start] = True
            rows = self._node_frontier_bfs(np.array([start], dtype=np.int64), seen)
            components.append(frozenset(int(r) for r in rows))
        return components

    def largest_component_fraction(self) -> float:
        """Size of the largest node component as a fraction of ``n``."""

        if self.n == 0:
            return 0.0
        return max(len(c) for c in self.connected_components()) / self.n

    def reachable_from_alice(self) -> FrozenSet[int]:
        """Node ids connected to Alice through the radio graph.

        An upper bound on who can ever be informed: the message spreads only
        along edges, so nodes outside Alice's component are unreachable no
        matter how many hops relays provide.
        """

        csr = self.neighbor_csr()
        alice_nbrs = csr.row(self.n).astype(np.int64, copy=False)
        alice_nbrs = alice_nbrs[alice_nbrs < self.n]
        if alice_nbrs.size == 0:
            return frozenset()
        seen = np.zeros(self.n, dtype=bool)
        seen[alice_nbrs] = True
        rows = self._node_frontier_bfs(alice_nbrs, seen)
        return frozenset(int(r) for r in rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self.n})"


class SingleHop(Topology):
    """The seed model: one shared channel, everyone hears everyone.

    This class exists so the rest of the stack can treat topology uniformly;
    both engines and the channel check :attr:`is_single_hop` and take their
    original code paths, keeping seed outcomes bit-identical.  No adjacency
    is stored (:attr:`backend` is ``"implicit"``); :meth:`neighbor_csr`
    materialises the clique on demand and is intended for small-``n``
    diagnostics only.
    """

    name = "single_hop"

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._csr: Optional[NeighborCSR] = None

    @property
    def is_single_hop(self) -> bool:
        return True

    def can_hear(self, listener_id: int, sender_id: int) -> bool:
        return listener_id != sender_id

    def reach_matrix(self, listener_ids: Sequence[int], sender_ids: Sequence[int]) -> np.ndarray:
        listeners = np.asarray(list(listener_ids), dtype=np.int64)
        senders = np.asarray(list(sender_ids), dtype=np.int64)
        return listeners[:, None] != senders[None, :]

    def neighbor_csr(self) -> NeighborCSR:
        if self._csr is None:
            m = self.n + 1
            indptr = np.arange(m + 1, dtype=np.int64) * (m - 1)
            grid = np.broadcast_to(np.arange(m, dtype=np.int32), (m, m))
            indices = grid[~np.eye(m, dtype=bool)]
            self._csr = NeighborCSR(indptr=indptr, indices=np.ascontiguousarray(indices))
        return self._csr

    def neighbors(self, device_id: int) -> FrozenSet[int]:
        self._index(device_id)
        everyone = set(range(self.n)) | {ALICE_ID}
        everyone.discard(device_id)
        return frozenset(everyone)

    def any_neighbor_in(
        self, device_ids: Sequence[int], member_ids: Iterable[int]
    ) -> np.ndarray:
        members = {self._index(int(m)) for m in member_ids}
        return np.array(
            [bool(members - {self._index(int(d))}) for d in device_ids], dtype=bool
        )

    def _compute_degrees(self) -> np.ndarray:
        return np.full(self.n, self.n - 1, dtype=np.int64)

    def _compute_neighborhood_sizes(self, hops: int, cap: Optional[int] = None) -> np.ndarray:
        # Every other device (n - 1 nodes plus Alice) is one hop away; no
        # need to materialise the Θ(n²) clique CSR to know that.
        return np.full(self.n, self.n, dtype=np.int64)

    def _compute_alice_within(self, hops: int) -> np.ndarray:
        return np.ones(self.n, dtype=bool)

    def connected_components(self) -> List[FrozenSet[int]]:
        return [frozenset(range(self.n))]

    def reachable_from_alice(self) -> FrozenSet[int]:
        return frozenset(range(self.n))


class _SpatialTopology(Topology):
    """Shared implementation for position-based topologies.

    Subclasses provide positions (rows ``0..n-1`` for nodes, row ``n`` for
    Alice) and the realised symmetric adjacency in exactly one backend:
    either a dense boolean matrix with a zero diagonal, or a
    :class:`NeighborCSR`.  Queries work identically against both; the dense
    matrix (and its cached float32 cast) exists only below the memory
    crossover, the CSR only above it unless forced.
    """

    def __init__(
        self,
        positions: np.ndarray,
        adjacency: Optional[np.ndarray] = None,
        csr: Optional[NeighborCSR] = None,
    ) -> None:
        n = positions.shape[0] - 1
        super().__init__(n)
        if positions.shape != (n + 1, 2):
            raise ConfigurationError(f"positions must have shape (n+1, 2), got {positions.shape}")
        if (adjacency is None) == (csr is None):
            raise ConfigurationError(
                "exactly one adjacency backend (dense matrix or CSR) is required"
            )
        if adjacency is not None and adjacency.shape != (n + 1, n + 1):
            raise ConfigurationError(f"adjacency must have shape (n+1, n+1), got {adjacency.shape}")
        if csr is not None and csr.num_rows != n + 1:
            raise ConfigurationError(
                f"CSR adjacency must have {n + 1} rows, got {csr.num_rows}"
            )
        self._positions = positions
        self._adjacency = adjacency
        self._csr = csr
        # The graph is immutable after construction, and the multi-hop relay
        # layer asks for the same neighbourhoods every phase — memoise them,
        # along with the float32 cast the vectorised engine matmuls against.
        self._neighbor_cache: dict = {}
        self._node_neighbor_cache: dict = {}
        self._adjacency_f32: Optional[np.ndarray] = None
        # Point index for disk queries: built lazily on the first
        # nodes_in_disk call above the sparse crossover (mobile jammers query
        # a disk every phase; the dense scan is O(n) per call).
        self._disk_grid: Optional[_CellGrid] = None

    @property
    def backend(self) -> str:
        return "dense" if self._adjacency is not None else "sparse"

    @property
    def positions(self) -> np.ndarray:
        """Copy of all positions: shape ``(n+1, 2)`` float64, row ``n`` is Alice."""

        return self._positions.copy()

    @property
    def adjacency(self) -> np.ndarray:
        """Copy of the full (n+1)×(n+1) boolean adjacency; row ``n`` is Alice.

        On the sparse backend this *materialises* the dense matrix — Θ(n²)
        memory — and is meant for tests and small-n diagnostics; large-n
        code paths should slice :meth:`neighbor_csr` instead.
        """

        if self._adjacency is not None:
            return self._adjacency.copy()
        return self._csr.to_dense()

    def neighbor_csr(self) -> NeighborCSR:
        if self._csr is None:
            dense = self._adjacency
            counts = dense.sum(axis=1, dtype=np.int64)
            indptr = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
            indices = np.nonzero(dense)[1].astype(np.int32)
            self._csr = NeighborCSR(indptr=indptr, indices=indices)
        return self._csr

    def memory_bytes(self) -> int:
        total = 0
        if self._adjacency is not None:
            total += int(self._adjacency.nbytes)
        if self._adjacency_f32 is not None:
            total += int(self._adjacency_f32.nbytes)
        if self._csr is not None:
            total += self._csr.memory_bytes()
        return total

    def can_hear(self, listener_id: int, sender_id: int) -> bool:
        if sender_id <= -2:  # synthetic Byzantine transmitter: audible everywhere
            return True
        listener_row = self._index(listener_id)
        sender_row = self._index(sender_id)
        if self._adjacency is not None:
            return bool(self._adjacency[listener_row, sender_row])
        return self._csr.contains(listener_row, sender_row)

    def _reach_from(
        self, matrix: np.ndarray, listener_ids: Sequence[int], sender_ids: Sequence[int]
    ) -> np.ndarray:
        l_idx = np.array([self._index(d) for d in listener_ids], dtype=np.int64)
        senders = np.asarray(list(sender_ids), dtype=np.int64)
        out = np.zeros((l_idx.size, senders.size), dtype=matrix.dtype)
        if l_idx.size == 0 or senders.size == 0:
            return out
        byzantine = senders <= -2  # synthetic transmitters: audible everywhere
        out[:, byzantine] = 1
        real = ~byzantine
        if real.any():
            s_idx = np.array([self._index(int(d)) for d in senders[real]], dtype=np.int64)
            out[:, real] = matrix[np.ix_(l_idx, s_idx)]
        return out

    def _reach_sparse(
        self, listener_ids: Sequence[int], sender_ids: Sequence[int], dtype
    ) -> np.ndarray:
        l_rows = np.array([self._index(d) for d in listener_ids], dtype=np.int64)
        senders = np.asarray(list(sender_ids), dtype=np.int64)
        out = np.zeros((l_rows.size, senders.size), dtype=dtype)
        if l_rows.size == 0 or senders.size == 0:
            return out
        byzantine = senders <= -2
        out[:, byzantine] = 1
        real_cols = np.flatnonzero(~byzantine)
        if real_cols.size:
            s_rows = np.array(
                [self._index(int(senders[c])) for c in real_cols], dtype=np.int64
            )
            # Deduplicate sender rows before the scatter: a row-to-column map
            # can hold only one column, so repeated sender ids are resolved
            # against the unique rows and broadcast back over the duplicates.
            uniq_rows, inverse = np.unique(s_rows, return_inverse=True)
            sender_pos = np.full(self.n + 1, -1, dtype=np.int64)
            sender_pos[uniq_rows] = np.arange(uniq_rows.size, dtype=np.int64)
            origins, nbrs = self._csr.expand(l_rows)
            cols = sender_pos[nbrs]
            hit = cols >= 0
            reach = np.zeros((l_rows.size, uniq_rows.size), dtype=dtype)
            reach[origins[hit], cols[hit]] = 1
            out[:, real_cols] = reach[:, inverse]
        return out

    def reach_matrix(self, listener_ids: Sequence[int], sender_ids: Sequence[int]) -> np.ndarray:
        if self._adjacency is not None:
            return self._reach_from(self._adjacency, listener_ids, sender_ids)
        return self._reach_sparse(listener_ids, sender_ids, bool)

    def reach_matrix_f32(
        self, listener_ids: Sequence[int], sender_ids: Sequence[int]
    ) -> np.ndarray:
        if self._adjacency is None:
            return self._reach_sparse(listener_ids, sender_ids, np.float32)
        if self._adjacency_f32 is None:
            self._adjacency_f32 = self._adjacency.astype(np.float32)
        return self._reach_from(self._adjacency_f32, listener_ids, sender_ids)

    def neighbors(self, device_id: int) -> FrozenSet[int]:
        cached = self._neighbor_cache.get(device_id)
        if cached is None:
            row = self._index(device_id)
            if self._adjacency is not None:
                ids = np.flatnonzero(self._adjacency[row])
            else:
                ids = self._csr.row(row)
            cached = frozenset(self._device_id(int(i)) for i in ids)
            self._neighbor_cache[device_id] = cached
        return cached

    def node_neighbors(self, device_id: int) -> FrozenSet[int]:
        cached = self._node_neighbor_cache.get(device_id)
        if cached is None:
            cached = frozenset(v for v in self.neighbors(device_id) if v != ALICE_ID)
            self._node_neighbor_cache[device_id] = cached
        return cached

    def position(self, device_id: int) -> Tuple[float, float]:
        x, y = self._positions[self._index(device_id)]
        return (float(x), float(y))

    def nodes_in_disk(self, center: Tuple[float, float], radius: float) -> FrozenSet[int]:
        if radius < 0:
            raise ConfigurationError(f"disk radius must be non-negative, got {radius}")
        if self._positions.shape[0] > SPARSE_NODE_THRESHOLD:
            inside = self._disk_rows_grid(center, radius)
        else:
            inside = self._disk_rows_scan(center, radius)
        return frozenset(self._device_id(int(i)) for i in inside)

    def _disk_rows_scan(self, center: Tuple[float, float], radius: float) -> np.ndarray:
        """Rows inside the disk via the exact all-points distance scan."""

        deltas = self._positions - np.asarray(center, dtype=float)[None, :]
        return np.flatnonzero((deltas ** 2).sum(axis=1) <= radius ** 2)

    def _disk_rows_grid(self, center: Tuple[float, float], radius: float) -> np.ndarray:
        """Rows inside the disk via a cached uniform-grid point index.

        Only cells intersecting the disk's bounding box are inspected, so a
        phase-by-phase mobile jammer pays ``O(points near the disk)`` instead
        of ``O(n)`` per query.  Candidate points go through the *same* float
        distance predicate as :meth:`_disk_rows_scan`, so the two paths select
        identical rows for identical inputs (covered by the sparse/dense disk
        equivalence tests).
        """

        if self._disk_grid is None:
            # ~1 point per cell in expectation: queries touch O(area · n) work.
            cell = 1.0 / max(1, int(math.sqrt(self._positions.shape[0])))
            self._disk_grid = _CellGrid(self._positions, cell)
        grid = self._disk_grid
        g = grid.grid_dim
        cx, cy = float(center[0]), float(center[1])
        x0 = max(int(math.floor((cx - radius) / grid.cell)), 0)
        y0 = max(int(math.floor((cy - radius) / grid.cell)), 0)
        x1 = min(int(math.floor((cx + radius) / grid.cell)), g - 1)
        y1 = min(int(math.floor((cy + radius) / grid.cell)), g - 1)
        if x0 > x1 or y0 > y1:  # disk entirely outside the unit square
            return np.empty(0, dtype=np.int64)
        window_cells = (x1 - x0 + 1) * (y1 - y0 + 1)
        if window_cells <= grid.occupied.size:
            xs = np.arange(x0, x1 + 1, dtype=np.int64)
            ys = np.arange(y0, y1 + 1, dtype=np.int64)
            ids = (xs[:, None] * g + ys[None, :]).ravel()
            slot, found = grid.lookup(ids)
            slots = slot[found]
        else:
            # Huge disk: filtering the occupied-cell table directly is cheaper
            # than enumerating the window.
            occ_x = grid.occupied // g
            occ_y = grid.occupied % g
            slots = np.flatnonzero(
                (occ_x >= x0) & (occ_x <= x1) & (occ_y >= y0) & (occ_y <= y1)
            )
        if slots.size == 0:
            return np.empty(0, dtype=np.int64)
        rows = grid.order[_gather_ranges(grid.starts[slots], grid.counts[slots])]
        deltas = self._positions[rows] - np.asarray(center, dtype=float)[None, :]
        inside = rows[(deltas ** 2).sum(axis=1) <= radius ** 2]
        inside.sort()
        return inside

    def _compute_degrees(self) -> np.ndarray:
        if self._adjacency is not None:
            return self._adjacency[: self.n, : self.n].sum(axis=1).astype(np.int64)
        return super()._compute_degrees()


def _sample_positions(n: int, rng: np.random.Generator, alice_placement: str) -> np.ndarray:
    positions = np.empty((n + 1, 2), dtype=float)
    positions[:n] = rng.random((n, 2))
    if alice_placement == "center":
        positions[n] = (0.5, 0.5)
    else:
        positions[n] = rng.random(2)
    return positions


class GilbertGraph(_SpatialTopology):
    """Random geometric (Gilbert) graph over the unit square.

    ``u ~ v`` iff ``dist(u, v) <= radius``; positions are uniform i.i.d.
    Use :meth:`sample` to build one deterministically from a generator.

    Parameters
    ----------
    positions:
        Float64 array of shape ``(n+1, 2)``; row ``n`` is Alice (Alice-last
        convention).
    radius:
        Connection radius in unit-square coordinates; must be positive.
    sparse:
        Backend override (``True`` CSR, ``False`` dense, ``None`` automatic
        crossover at :data:`SPARSE_NODE_THRESHOLD` devices).  Either backend
        realises the identical edge set.
    """

    name = "gilbert"

    def __init__(
        self, positions: np.ndarray, radius: float, sparse: Optional[bool] = None
    ) -> None:
        if radius <= 0:
            raise ConfigurationError(f"radius must be positive, got {radius}")
        if _resolve_sparse(positions.shape[0], sparse):
            us, vs = _gilbert_edges_grid(positions, radius)
            super().__init__(positions, csr=_edges_to_csr(us, vs, positions.shape[0]))
        else:
            distances_sq = _pairwise_sq_distances(positions)
            adjacency = distances_sq <= radius ** 2
            np.fill_diagonal(adjacency, False)
            super().__init__(positions, adjacency=adjacency)
        self.radius = radius

    @classmethod
    def sample(
        cls,
        n: int,
        radius: float,
        rng: np.random.Generator,
        alice_placement: str = "center",
        sparse: Optional[bool] = None,
    ) -> "GilbertGraph":
        """Sample positions from ``rng`` and realise the graph.

        ``n`` correct nodes plus Alice (pinned to the centre unless
        ``alice_placement="random"``); ``sparse`` is forwarded to the
        constructor's backend crossover.
        """

        return cls(_sample_positions(n, rng, alice_placement), radius, sparse=sparse)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GilbertGraph(n={self.n}, radius={self.radius:.4f}, backend={self.backend})"


class ScaleFreeGilbert(_SpatialTopology):
    """Heavy-tailed Gilbert graph: per-device Pareto radii, ``max`` linkage.

    Each device ``u`` draws ``r_u = min_radius · U^(-1/alpha)`` (Pareto with
    scale ``min_radius`` and tail index ``alpha``); ``u ~ v`` iff
    ``dist(u, v) <= max(r_u, r_v)``.  A device whose radius covers area ``A``
    links to roughly ``n·A`` others, so Pareto radii translate into a
    power-law degree tail — the scale-free Gilbert construction of
    arXiv:1411.6824 (undirected ``max`` convention; radii are truncated at
    ``sqrt(2)``, the diameter of the unit square, which only affects the
    extreme tail).

    Parameters
    ----------
    positions:
        Float64 array of shape ``(n+1, 2)``; row ``n`` is Alice.
    radii:
        Float64 array of shape ``(n+1,)`` — one radio radius per device,
        Alice-last like ``positions``.
    alpha, min_radius:
        The Pareto parameters the radii were drawn with (kept for reporting).
    sparse:
        Backend override; see :class:`GilbertGraph`.
    """

    name = "scale_free"

    def __init__(
        self,
        positions: np.ndarray,
        radii: np.ndarray,
        alpha: float,
        min_radius: float,
        sparse: Optional[bool] = None,
    ) -> None:
        if radii.shape[0] != positions.shape[0]:
            raise ConfigurationError("one radius per device (including Alice) is required")
        if _resolve_sparse(positions.shape[0], sparse):
            us, vs = _scale_free_edges_grid(positions, radii)
            super().__init__(
                positions, csr=_directed_edges_to_csr(us, vs, positions.shape[0])
            )
        else:
            distances_sq = _pairwise_sq_distances(positions)
            link_radius = np.maximum(radii[:, None], radii[None, :])
            adjacency = distances_sq <= link_radius ** 2
            np.fill_diagonal(adjacency, False)
            super().__init__(positions, adjacency=adjacency)
        self.alpha = alpha
        self.min_radius = min_radius
        self.radii = radii

    @classmethod
    def sample(
        cls,
        n: int,
        alpha: float,
        min_radius: float,
        rng: np.random.Generator,
        alice_placement: str = "center",
        sparse: Optional[bool] = None,
    ) -> "ScaleFreeGilbert":
        """Sample positions and Pareto radii from ``rng`` and realise the graph."""

        positions = _sample_positions(n, rng, alice_placement)
        uniforms = rng.random(n + 1)
        radii = np.minimum(min_radius * uniforms ** (-1.0 / alpha), math.sqrt(2.0))
        return cls(positions, radii, alpha, min_radius, sparse=sparse)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScaleFreeGilbert(n={self.n}, alpha={self.alpha:g}, "
            f"min_radius={self.min_radius:.4f}, backend={self.backend})"
        )


def _pairwise_sq_distances(positions: np.ndarray) -> np.ndarray:
    deltas = positions[:, None, :] - positions[None, :, :]
    return (deltas ** 2).sum(axis=-1)


def build_topology(
    spec: Optional[TopologySpec],
    n: int,
    random_source,
) -> Topology:
    """Realise a :class:`TopologySpec` into a concrete :class:`Topology`.

    ``random_source`` is the network's :class:`~repro.simulation.rng.RandomSource`;
    spatial topologies draw from its dedicated ``"topology"`` substream, so a
    single-hop build touches no random state at all (preserving seed-for-seed
    compatibility with pre-topology code).  The spec's ``sparse`` field is
    forwarded to the dense/sparse backend crossover.
    """

    if spec is None or spec.kind == "single_hop":
        return SingleHop(n)
    rng = random_source.stream("topology")
    if spec.kind == "gilbert":
        radius = spec.radius if spec.radius is not None else 2.0 * gilbert_connectivity_radius(n)
        return GilbertGraph.sample(
            n, radius, rng, alice_placement=spec.alice_placement, sparse=spec.sparse
        )
    if spec.kind == "scale_free":
        min_radius = (
            spec.min_radius if spec.min_radius is not None else gilbert_connectivity_radius(n)
        )
        return ScaleFreeGilbert.sample(
            n,
            spec.alpha,
            min_radius,
            rng,
            alice_placement=spec.alice_placement,
            sparse=spec.sparse,
        )
    raise ConfigurationError(f"unknown topology kind {spec.kind!r}")  # pragma: no cover
