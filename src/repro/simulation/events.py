"""Structured trace of a simulation run.

The event log records *phase-level* summaries (always) and optionally
*slot-level* events (bounded, for debugging small runs).  Experiments use the
phase records to reconstruct how a run unfolded — how many slots Carol jammed
in each phase, how many nodes became informed, when Alice terminated — without
paying the memory cost of a full slot trace for million-slot executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["PhaseRecord", "SlotEvent", "EventLog"]


@dataclass(frozen=True)
class SlotEvent:
    """A single slot's channel-level outcome (debug traces only)."""

    slot: int
    round_index: int
    phase_name: str
    transmissions: int
    jammed: bool
    deliveries: int


@dataclass(frozen=True)
class PhaseRecord:
    """Summary of one executed phase."""

    round_index: int
    phase_name: str
    num_slots: int
    start_slot: int
    jammed_slots: int
    adversary_spend: float
    newly_informed: int
    alice_cost: float
    nodes_cost: float
    active_uninformed_after: int
    terminated_after: int
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def jammed_fraction(self) -> float:
        """Fraction of the phase's slots that were jammed."""

        if self.num_slots == 0:
            return 0.0
        return self.jammed_slots / self.num_slots


class EventLog:
    """Collects phase records and (optionally) bounded slot-level events."""

    def __init__(self, record_slots: bool = False, max_slot_events: int = 100_000) -> None:
        self._phases: List[PhaseRecord] = []
        self._slots: List[SlotEvent] = []
        self._record_slots = record_slots
        self._max_slot_events = max_slot_events
        self._dropped_slot_events = 0

    @property
    def phases(self) -> Tuple[PhaseRecord, ...]:
        return tuple(self._phases)

    @property
    def slot_events(self) -> Tuple[SlotEvent, ...]:
        return tuple(self._slots)

    @property
    def dropped_slot_events(self) -> int:
        """Number of slot events discarded because the cap was reached."""

        return self._dropped_slot_events

    def record_phase(self, record: PhaseRecord) -> None:
        self._phases.append(record)

    def record_slot(self, event: SlotEvent) -> None:
        if not self._record_slots:
            return
        if len(self._slots) >= self._max_slot_events:
            self._dropped_slot_events += 1
            return
        self._slots.append(event)

    def phases_in_round(self, round_index: int) -> Tuple[PhaseRecord, ...]:
        return tuple(p for p in self._phases if p.round_index == round_index)

    def last_phase(self) -> Optional[PhaseRecord]:
        return self._phases[-1] if self._phases else None

    def total_jammed_slots(self) -> int:
        return sum(p.jammed_slots for p in self._phases)

    def total_slots(self) -> int:
        return sum(p.num_slots for p in self._phases)

    def rounds_executed(self) -> int:
        return len({p.round_index for p in self._phases})

    def __len__(self) -> int:
        return len(self._phases)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventLog(phases={len(self._phases)}, slots={len(self._slots)})"
