"""Vectorised phase-level execution engine.

:class:`PhaseEngine` executes a phase in bulk with numpy instead of slot by
slot.  It exploits two structural facts about ε-Broadcast (and the baselines):

* within a phase, every device acts independently and identically per slot
  with a fixed probability, and
* the adversary commits to a per-phase :class:`~repro.simulation.phaseplan.JamPlan`.

The engine therefore samples per-slot *aggregate* channel outcomes (how many
transmissions, whether the slot was jammed, whether it delivered the message)
and per-device *aggregate* costs (how many slots each device used) from the
exact distributions the slot-faithful engine induces.  Per-node message
reception is exact: conditioned on the sampled channel outcomes, node ``u``
receives ``m`` with probability ``1 - (1 - p_listen)^{g_u}`` where ``g_u`` is
the number of delivery slots not jammed for ``u``.

Two deliberate, documented approximations (both validated against
:class:`~repro.simulation.engine.SlotEngine` by integration tests):

* per-device cost draws are sampled marginally, so the joint correlation
  between "which slot carried a transmission" and "which device paid for it"
  is not preserved (totals and distributions are);
* a node that becomes informed stops listening at a *sampled* position within
  the phase (a truncated-geometric draw over its delivery opportunities,
  placed proportionally in the phase) rather than at the exact slot the slot
  engine would have chosen.

Spatial topologies
------------------

Over a multi-hop :class:`~repro.simulation.topology.Topology` the aggregate
shortcut above no longer applies — what a listener hears depends on *which*
of its neighbours transmitted.  :meth:`PhaseEngine._run_phase_multihop`
therefore samples per-device send/listen indicator matrices and resolves
audibility with per-node reachability masks (boolean adjacency matmuls), so
delivery, noise, and informed-truncation are computed per listener from its
actual radio neighbourhood.  Memory is ``O(n·slots)``.  Remaining documented
approximations of the multi-hop path (validated statistically against the
slot engine):

* a node informed mid-phase stops listening and nacking immediately (exact),
  but other listeners keep "hearing" its pre-sampled nack/decoy schedule for
  the rest of the phase (in the protocol's schedules nacks and payload never
  share a phase, so this only perturbs decoy-variant noise counts);
* decoy senders that become informed mid-phase keep sending decoys until the
  phase ends (the slot engine mutes them).

Sparse topologies (n ≫ 10⁴)
---------------------------

The indicator-matrix path above is ``O(n·slots)`` in time *and* memory, which
caps it well below the network sizes where Gilbert-graph asymptotics appear.
When the topology reports the CSR backend
(:attr:`~repro.simulation.topology.Topology.backend` == ``"sparse"``),
:meth:`PhaseEngine._run_phase_multihop_sparse` runs instead.  It exploits the
protocol's own sparsity: per-slot action probabilities are ``O(1/n)`` (sends)
or geometrically decaying (listens), so the *events* of a phase — who
transmitted in which slot — number ``O(n)`` rather than ``O(n·slots)``.  The
sparse path:

* samples transmission events exactly (a Bernoulli grid conditioned on its
  binomial count is a uniform subset of device×slot cells),
* expands each event to the sender's CSR neighbourhood restricted to the
  currently-active listener set (``O(events · E[deg])`` pairs),
* resolves delivery per listener from its candidate clean-delivery slots
  (exact: collision, spoof, jamming, and half-duplex rules all applied per
  pair), and
* draws listening costs and request-phase noisy-slot counts as binomials
  over the per-listener slot classification — exact for request phases,
  and the same marginal-truncation approximation as the single-hop path for
  nodes informed mid-phase (listening stops at the delivery slot, but the
  pre-delivery listening cost is drawn marginally).

Both multi-hop paths implement the same phase semantics and are covered by
the same statistical-equivalence suite; which one runs is purely a
memory/speed trade governed by the topology's dense/sparse crossover
(:data:`~repro.simulation.topology.SPARSE_NODE_THRESHOLD`).
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np

from .auth import ALICE_ID
from .channel import JamMode
from .energy import EnergyOperation
from .jamming import materialize_jam_slots, materialize_spoof_slots
from .network import Network
from .phaseplan import JamPlan, PhaseKind, PhasePlan, PhaseResult, PhaseRoles
from ..observability.trace import NULL_RECORDER, TraceRecorder, engine_event

__all__ = ["PhaseEngine"]


def _sample_bernoulli_events(
    rng: np.random.Generator, num: int, s: int, p: float
) -> "tuple[np.ndarray, np.ndarray]":
    """Sample the success cells of a ``num × s`` Bernoulli(``p``) grid.

    Returns ``(idx, slots)`` — the row (device) and column (slot) of every
    success, grouped by row with slots ascending.  Distribution-exact: a
    Bernoulli grid conditioned on its total count ``m ~ Binomial(num·s, p)``
    is a uniform ``m``-subset of the cells, which is drawn by rejection of
    duplicates.  Cost is ``O(m log m)`` — independent of the grid size — so
    phases with millions of slots but thousands of events stay cheap.
    """

    empty = np.empty(0, dtype=np.int64)
    if num <= 0 or s <= 0 or p <= 0.0:
        return empty, empty
    cells = num * s
    if cells <= (1 << 21) or p > 0.25:
        # Small grids (and the clipped-probability early rounds): sampling the
        # grid directly is cheaper than rejection and trivially exact.
        idx, slots = np.nonzero(rng.random((num, s)) < p)
        return idx.astype(np.int64), slots.astype(np.int64)
    m = int(rng.binomial(cells, p))
    if m == 0:
        return empty, empty
    flat = np.unique(rng.integers(0, cells, size=m, dtype=np.int64))
    while flat.size < m:
        extra = rng.integers(0, cells, size=m - flat.size, dtype=np.int64)
        flat = np.unique(np.concatenate([flat, extra]))
    return flat // s, flat % s


class PhaseEngine:
    """Vectorised phase executor, statistically equivalent to :class:`SlotEngine`."""

    name = "phase"

    def __init__(self, network: Network) -> None:
        self.network = network
        self._rng = network.random_source.stream("fastengine")
        # Telemetry sink for channel-level "engine" events.  Strictly
        # read-only: emission happens after all sampling and charging, reads
        # only already-computed tallies, and is skipped entirely while the
        # default null recorder is installed.
        self.recorder: TraceRecorder = NULL_RECORDER

    # ------------------------------------------------------------------ #
    # Public API                                                          #
    # ------------------------------------------------------------------ #

    def run_phase(
        self,
        plan: PhasePlan,
        roles: PhaseRoles,
        jam_plan: JamPlan,
        start_slot: int = 0,
    ) -> PhaseResult:
        """Execute one phase in bulk and return its :class:`PhaseResult`."""

        network = self.network
        rng = self._rng
        s = plan.num_slots
        if s == 0:
            result = PhaseResult(
                plan=plan, newly_informed=frozenset(), jammed_slots=0, adversary_spend=0.0
            )
            if self.recorder.enabled:
                self.recorder.record(engine_event("empty", result))
            return result

        topology = network.topology
        if topology is not None and not topology.is_single_hop:
            if topology.backend == "sparse":
                return self._run_phase_multihop_sparse(plan, roles, jam_plan, start_slot)
            return self._run_phase_multihop(plan, roles, jam_plan, start_slot)

        uninformed = roles.active_uninformed_ids
        relays = roles.relay_ids
        decoys = roles.decoy_ids

        # ------------------------------------------------------------------ #
        # 1. Per-slot correct-side transmission counts                        #
        # ------------------------------------------------------------------ #
        alice_sends = np.zeros(s, dtype=bool)
        if roles.alice_active and plan.alice_send_prob > 0:
            alice_sends = rng.random(s) < plan.alice_send_prob

        relay_counts = np.zeros(s, dtype=np.int64)
        if relays.size and plan.relay_send_prob > 0:
            relay_counts = rng.binomial(relays.size, plan.relay_send_prob, size=s)

        nack_counts = np.zeros(s, dtype=np.int64)
        if uninformed.size and plan.nack_send_prob > 0:
            nack_counts = rng.binomial(uninformed.size, plan.nack_send_prob, size=s)

        decoy_counts = np.zeros(s, dtype=np.int64)
        if decoys.size and plan.decoy_send_prob > 0:
            decoy_counts = rng.binomial(decoys.size, plan.decoy_send_prob, size=s)

        correct_tx = alice_sends.astype(np.int64) + relay_counts + nack_counts + decoy_counts
        correct_activity = correct_tx > 0

        # ------------------------------------------------------------------ #
        # 2. Adversary actions (jamming + spoofed transmissions)              #
        # ------------------------------------------------------------------ #
        (
            jam_mask,
            spoof_counts,
            adversary_spend,
            jammed_slots,
            spoofed_transmissions,
        ) = self._materialize_adversary_actions(jam_plan, s, rng, correct_activity)

        total_tx = correct_tx + spoof_counts
        busy_slots = int(np.count_nonzero((total_tx > 0) | jam_mask))

        # ------------------------------------------------------------------ #
        # 3. Delivery slots: exactly one transmission and it is authentic m   #
        # ------------------------------------------------------------------ #
        one_tx = total_tx == 1
        payload_tx = alice_sends.astype(np.int64) + relay_counts
        delivers = one_tx & (payload_tx == 1)
        jam_affects_listeners = jam_plan.targeting.mode is not JamMode.NONE

        newly_informed: Set[int] = set()
        informed_mask: np.ndarray | None = None
        good_per_node: np.ndarray | None = None
        if plan.carries_payload and uninformed.size:
            good_unjammed = int(np.count_nonzero(delivers))
            good_when_victim = int(np.count_nonzero(delivers & ~jam_mask))
            p_listen = plan.uninformed_listen_prob
            if p_listen > 0:
                victim = self._victim_mask(uninformed, jam_plan) if jam_affects_listeners else np.zeros(
                    uninformed.size, dtype=bool
                )
                good_per_node = np.where(victim, good_when_victim, good_unjammed)
                p_informed = 1.0 - np.power(1.0 - p_listen, good_per_node)
                informed_mask = rng.random(uninformed.size) < p_informed
                newly_informed = set(int(x) for x in uninformed[informed_mask])

        delivery_slots = int(np.count_nonzero(delivers & ~jam_mask)) if jam_affects_listeners else int(
            np.count_nonzero(delivers)
        )

        # ------------------------------------------------------------------ #
        # 4. Costs                                                            #
        # ------------------------------------------------------------------ #
        alice_send_slots = int(np.count_nonzero(alice_sends))
        if alice_send_slots:
            network.alice.ledger.charge_bulk(EnergyOperation.SEND, float(alice_send_slots))

        # Noisy-for-a-listener slots: any transmission, or jamming that hits it.
        noisy_any_tx = total_tx > 0
        noisy_for_victim = int(np.count_nonzero(noisy_any_tx | jam_mask))
        noisy_for_spared = int(np.count_nonzero(noisy_any_tx))

        alice_listen_slots = 0
        alice_noisy = 0
        if roles.alice_active and plan.alice_listen_prob > 0:
            alice_is_victim = jam_plan.targeting.affects(ALICE_ID)
            noisy_for_alice = noisy_for_victim if alice_is_victim else noisy_for_spared
            quiet_for_alice = s - noisy_for_alice
            alice_noisy = int(rng.binomial(noisy_for_alice, plan.alice_listen_prob))
            alice_quiet_listens = int(rng.binomial(max(quiet_for_alice, 0), plan.alice_listen_prob))
            alice_listen_slots = alice_noisy + alice_quiet_listens
            if alice_listen_slots:
                network.alice.ledger.charge_bulk(EnergyOperation.LISTEN, float(alice_listen_slots))

        node_noisy: Dict[int, int] = {}
        jam_victims = 0
        if uninformed.size:
            victim = self._victim_mask(uninformed, jam_plan) if jam_affects_listeners else np.zeros(
                uninformed.size, dtype=bool
            )
            jam_victims = int(victim.sum())
            noisy_per_node = np.where(victim, noisy_for_victim, noisy_for_spared)
            quiet_per_node = s - noisy_per_node

            p_listen = plan.uninformed_listen_prob
            if p_listen > 0:
                heard = rng.binomial(noisy_per_node, p_listen)
                quiet_listens = rng.binomial(quiet_per_node, p_listen)
                listen_cost = heard + quiet_listens
                if informed_mask is not None and informed_mask.any():
                    listen_cost = self._truncate_informed_listening(
                        rng, listen_cost, informed_mask, good_per_node, p_listen, s
                    )
            else:
                heard = np.zeros(uninformed.size, dtype=np.int64)
                listen_cost = np.zeros(uninformed.size, dtype=np.int64)

            nack_cost = (
                rng.binomial(s, plan.nack_send_prob, size=uninformed.size)
                if plan.nack_send_prob > 0
                else np.zeros(uninformed.size, dtype=np.int64)
            )

            # One vector charge per operation over the whole cohort: the
            # array-backed ledger replaces the former ~n-per-phase Python
            # loop of per-node charge_bulk calls.
            network.node_ledgers.charge_bulk_many(EnergyOperation.LISTEN, uninformed, listen_cost)
            network.node_ledgers.charge_bulk_many(EnergyOperation.SEND, uninformed, nack_cost)
            if plan.kind is PhaseKind.REQUEST:
                node_noisy = {
                    int(node_id): int(heard[idx]) for idx, node_id in enumerate(uninformed)
                }

        if relays.size and plan.relay_send_prob > 0:
            relay_cost = rng.binomial(s, plan.relay_send_prob, size=relays.size)
            network.node_ledgers.charge_bulk_many(EnergyOperation.SEND, relays, relay_cost)

        if decoys.size and plan.decoy_send_prob > 0:
            decoy_cost = rng.binomial(s, plan.decoy_send_prob, size=decoys.size)
            network.node_ledgers.charge_bulk_many(EnergyOperation.SEND, decoys, decoy_cost)

        result = PhaseResult(
            plan=plan,
            newly_informed=frozenset(newly_informed),
            jammed_slots=jammed_slots,
            adversary_spend=adversary_spend,
            alice_noisy_heard=alice_noisy,
            node_noisy_heard=node_noisy,
            delivery_slots=delivery_slots,
            busy_slots=busy_slots,
            alice_send_slots=alice_send_slots,
            alice_listen_slots=alice_listen_slots,
            spoofed_transmissions=spoofed_transmissions,
        )
        if self.recorder.enabled:
            self.recorder.record(
                engine_event(
                    "single-hop",
                    result,
                    jam_victims=jam_victims,
                    noisy_for_victim=noisy_for_victim,
                    noisy_for_spared=noisy_for_spared,
                )
            )
        return result

    # ------------------------------------------------------------------ #
    # Multi-hop (spatial-topology) execution                              #
    # ------------------------------------------------------------------ #

    def _run_phase_multihop(
        self,
        plan: PhasePlan,
        roles: PhaseRoles,
        jam_plan: JamPlan,
        start_slot: int = 0,
    ) -> PhaseResult:
        """Vectorised execution over a spatial topology.

        Samples per-device send/listen indicators and resolves per-listener
        audibility through the topology's reachability masks; see the module
        docstring for the (documented) approximations.
        """

        network = self.network
        topology = network.topology
        rng = self._rng
        s = plan.num_slots
        f32 = np.float32

        uninformed = roles.active_uninformed_ids
        relays = roles.relay_ids
        decoys = roles.decoy_ids
        num_u, num_r, num_d = uninformed.size, relays.size, decoys.size

        # ------------------------------------------------------------------ #
        # 1. Per-device send/listen indicator matrices                        #
        # ------------------------------------------------------------------ #
        alice_sends = np.zeros(s, dtype=bool)
        if roles.alice_active and plan.alice_send_prob > 0:
            alice_sends = rng.random(s) < plan.alice_send_prob

        relay_sends = np.zeros((num_r, s), dtype=bool)
        if num_r and plan.relay_send_prob > 0:
            relay_sends = rng.random((num_r, s)) < plan.relay_send_prob

        nack_sends = np.zeros((num_u, s), dtype=bool)
        listen_mask = np.zeros((num_u, s), dtype=bool)
        if num_u:
            if plan.nack_send_prob > 0:
                nack_sends = rng.random((num_u, s)) < plan.nack_send_prob
            if plan.uninformed_listen_prob > 0:
                listen_mask = ~nack_sends & (rng.random((num_u, s)) < plan.uninformed_listen_prob)

        decoy_sends = np.zeros((num_d, s), dtype=bool)
        if num_d and plan.decoy_send_prob > 0:
            decoy_sends = rng.random((num_d, s)) < plan.decoy_send_prob
            if num_u:
                # Half-duplex, mirroring the slot engine: a decoy sender that
                # chose a nack keeps the nack; one that chose to listen
                # transmits the decoy and forfeits the observation (the slot
                # costs one unit either way).
                position = {int(node): idx for idx, node in enumerate(uninformed)}
                shared = [
                    (d_idx, position[int(node)])
                    for d_idx, node in enumerate(decoys)
                    if int(node) in position
                ]
                if shared:
                    d_rows = np.array([d for d, _ in shared], dtype=np.int64)
                    u_rows = np.array([u for _, u in shared], dtype=np.int64)
                    decoy_sends[d_rows] &= ~nack_sends[u_rows]
                    listen_mask[u_rows] &= ~decoy_sends[d_rows]

        # ------------------------------------------------------------------ #
        # 2. Adversary actions (jamming + spoofed transmissions)              #
        # ------------------------------------------------------------------ #
        correct_tx = (
            alice_sends.astype(np.int64)
            + relay_sends.sum(axis=0)
            + nack_sends.sum(axis=0)
            + decoy_sends.sum(axis=0)
        )
        correct_activity = correct_tx > 0

        (
            jam_mask,
            spoof_counts,
            adversary_spend,
            jammed_slots,
            spoofed_transmissions,
        ) = self._materialize_adversary_actions(jam_plan, s, rng, correct_activity)
        busy_slots = int(np.count_nonzero((correct_tx + spoof_counts > 0) | jam_mask))

        # ------------------------------------------------------------------ #
        # 3. Per-listener audibility through reachability masks               #
        # ------------------------------------------------------------------ #
        newly_informed: Set[int] = set()
        node_noisy: Dict[int, int] = {}
        delivery_slots = 0
        jam_victims = 0
        if num_u:
            # Authentic payload copies audible to each listener: Alice's sends
            # if she is in range, plus in-range relays (spoofed "payloads" are
            # unauthenticated and counted as noise below).
            hears_alice = topology.reach_matrix_f32(uninformed, [ALICE_ID])
            payload_heard = hears_alice * alice_sends.astype(f32)[None, :]
            if num_r and plan.relay_send_prob > 0:
                payload_heard += topology.reach_matrix_f32(uninformed, relays) @ relay_sends.astype(
                    f32
                )

            other_heard = np.zeros((num_u, s), dtype=f32)
            if spoofed_transmissions:
                other_heard += spoof_counts.astype(f32)[None, :]
            if plan.nack_send_prob > 0:
                # Zero diagonal in the reach matrix: no one hears its own nack.
                other_heard += topology.reach_matrix_f32(uninformed, uninformed) @ nack_sends.astype(
                    f32
                )
            if num_d and plan.decoy_send_prob > 0:
                other_heard += topology.reach_matrix_f32(uninformed, decoys) @ decoy_sends.astype(
                    f32
                )

            jam_affects_listeners = jam_plan.targeting.mode is not JamMode.NONE
            victim = (
                self._victim_mask(uninformed, jam_plan)
                if jam_affects_listeners
                else np.zeros(num_u, dtype=bool)
            )
            jam_victims = int(victim.sum())
            jam_for_node = jam_mask[None, :] & victim[:, None]

            clean_delivery = (payload_heard == 1) & (other_heard == 0) & ~jam_for_node

            active_until = np.full(num_u, s - 1, dtype=np.int64)
            if plan.carries_payload and plan.uninformed_listen_prob > 0:
                opportunity = listen_mask & clean_delivery
                informed_mask = opportunity.any(axis=1)
                if informed_mask.any():
                    first_slot = opportunity.argmax(axis=1)
                    active_until[informed_mask] = first_slot[informed_mask]
                    newly_informed = set(int(x) for x in uninformed[informed_mask])
                    delivery_slots = int(np.unique(first_slot[informed_mask]).size)

            cols = np.arange(s, dtype=np.int64)
            active = cols[None, :] <= active_until[:, None]

            noisy_slot = jam_for_node | ((payload_heard + other_heard > 0) & ~clean_delivery)
            heard_noisy = (listen_mask & active & noisy_slot).sum(axis=1)
            listen_cost = (listen_mask & active).sum(axis=1)
            nack_cost = (nack_sends & active).sum(axis=1)

            network.node_ledgers.charge_bulk_many(EnergyOperation.LISTEN, uninformed, listen_cost)
            network.node_ledgers.charge_bulk_many(EnergyOperation.SEND, uninformed, nack_cost)
            if plan.kind is PhaseKind.REQUEST:
                node_noisy = {
                    int(uninformed[idx]): int(heard_noisy[idx]) for idx in range(num_u)
                }

        # ------------------------------------------------------------------ #
        # 4. Alice                                                            #
        # ------------------------------------------------------------------ #
        alice_send_slots = int(np.count_nonzero(alice_sends))
        if alice_send_slots:
            network.alice.ledger.charge_bulk(EnergyOperation.SEND, float(alice_send_slots))

        alice_noisy = 0
        alice_listen_slots = 0
        if roles.alice_active and plan.alice_listen_prob > 0:
            alice_listens = (rng.random(s) < plan.alice_listen_prob) & ~alice_sends
            audible_alice = np.zeros(s, dtype=f32)
            if spoofed_transmissions:
                audible_alice += spoof_counts.astype(f32)
            if num_r and plan.relay_send_prob > 0:
                audible_alice += (
                    topology.reach_matrix_f32([ALICE_ID], relays) @ relay_sends.astype(f32)
                )[0]
            if num_u and plan.nack_send_prob > 0:
                audible_alice += (
                    topology.reach_matrix_f32([ALICE_ID], uninformed) @ nack_sends.astype(f32)
                )[0]
            if num_d and plan.decoy_send_prob > 0:
                audible_alice += (
                    topology.reach_matrix_f32([ALICE_ID], decoys) @ decoy_sends.astype(f32)
                )[0]
            jam_for_alice = (
                jam_mask if jam_plan.targeting.affects(ALICE_ID) else np.zeros(s, dtype=bool)
            )
            alice_noisy = int((alice_listens & ((audible_alice > 0) | jam_for_alice)).sum())
            alice_listen_slots = int(alice_listens.sum())
            if alice_listen_slots:
                network.alice.ledger.charge_bulk(EnergyOperation.LISTEN, float(alice_listen_slots))

        # ------------------------------------------------------------------ #
        # 5. Relay and decoy send costs (exact row sums)                      #
        # ------------------------------------------------------------------ #
        if num_r:
            network.node_ledgers.charge_bulk_many(
                EnergyOperation.SEND, relays, relay_sends.sum(axis=1)
            )
        if num_d:
            network.node_ledgers.charge_bulk_many(
                EnergyOperation.SEND, decoys, decoy_sends.sum(axis=1)
            )

        result = PhaseResult(
            plan=plan,
            newly_informed=frozenset(newly_informed),
            jammed_slots=jammed_slots,
            adversary_spend=adversary_spend,
            alice_noisy_heard=alice_noisy,
            node_noisy_heard=node_noisy,
            delivery_slots=delivery_slots,
            busy_slots=busy_slots,
            alice_send_slots=alice_send_slots,
            alice_listen_slots=alice_listen_slots,
            spoofed_transmissions=spoofed_transmissions,
        )
        if self.recorder.enabled:
            self.recorder.record(engine_event("multihop-dense", result, jam_victims=jam_victims))
        return result

    # ------------------------------------------------------------------ #
    # Sparse multi-hop (CSR-topology) execution                           #
    # ------------------------------------------------------------------ #

    def _run_phase_multihop_sparse(
        self,
        plan: PhasePlan,
        roles: PhaseRoles,
        jam_plan: JamPlan,
        start_slot: int = 0,
    ) -> PhaseResult:
        """Event-driven execution over a sparse (CSR-backed) topology.

        Instead of materialising ``(devices × slots)`` indicator matrices, the
        phase is resolved from its transmission *events*: each sampled send is
        expanded through the sender's CSR neighbourhood slice onto only the
        currently-active listeners.  See the module docstring for the exact /
        approximate split; statistical equivalence with the dense multi-hop
        path is covered by the sparse-topology test suite.
        """

        network = self.network
        topology = network.topology
        rng = self._rng
        s = plan.num_slots
        n = topology.n
        csr = topology.neighbor_csr()

        uninformed = roles.active_uninformed_ids
        relays = roles.relay_ids
        decoys = roles.decoy_ids
        num_u, num_r, num_d = uninformed.size, relays.size, decoys.size

        # Listener-position lookup: device row -> index into `uninformed`.
        u_pos = np.full(n + 1, -1, dtype=np.int64)
        u_pos[uninformed] = np.arange(num_u, dtype=np.int64)

        # ------------------------------------------------------------------ #
        # 1. Transmission events                                             #
        # ------------------------------------------------------------------ #
        alice_slots = np.empty(0, dtype=np.int64)
        if roles.alice_active and plan.alice_send_prob > 0:
            _, alice_slots = _sample_bernoulli_events(rng, 1, s, plan.alice_send_prob)

        relay_idx, relay_slots = _sample_bernoulli_events(rng, num_r, s, plan.relay_send_prob)
        nack_idx, nack_slots = _sample_bernoulli_events(rng, num_u, s, plan.nack_send_prob)
        decoy_idx, decoy_slots = _sample_bernoulli_events(rng, num_d, s, plan.decoy_send_prob)

        nack_keys = uninformed[nack_idx] * s + nack_slots
        if decoy_idx.size and nack_keys.size:
            # Half-duplex, mirroring the dense path: a decoy sender that chose
            # a nack in the same slot keeps the nack.
            decoy_device_keys = decoys[decoy_idx] * s + decoy_slots
            keep = ~np.isin(decoy_device_keys, nack_keys)
            decoy_idx, decoy_slots = decoy_idx[keep], decoy_slots[keep]

        # Slots in which each *listener* transmits (it cannot listen there).
        own_parts = []
        if nack_idx.size:
            own_parts.append(u_pos[uninformed[nack_idx]] * s + nack_slots)
        if decoy_idx.size:
            decoy_lpos = u_pos[decoys[decoy_idx]]
            active_decoy = decoy_lpos >= 0
            own_parts.append(decoy_lpos[active_decoy] * s + decoy_slots[active_decoy])
        own_keys = (
            np.unique(np.concatenate(own_parts)) if own_parts else np.empty(0, dtype=np.int64)
        )

        # ------------------------------------------------------------------ #
        # 2. Adversary actions (jamming + spoofed transmissions)             #
        # ------------------------------------------------------------------ #
        correct_activity = np.zeros(s, dtype=bool)
        correct_activity[alice_slots] = True
        correct_activity[relay_slots] = True
        correct_activity[nack_slots] = True
        correct_activity[decoy_slots] = True

        (
            jam_mask,
            spoof_counts,
            adversary_spend,
            jammed_slots,
            spoofed_transmissions,
        ) = self._materialize_adversary_actions(jam_plan, s, rng, correct_activity)
        spoof_busy = spoof_counts > 0
        busy_slots = int(np.count_nonzero(correct_activity | spoof_busy | jam_mask))

        jam_affects_listeners = jam_plan.targeting.mode is not JamMode.NONE
        victim = (
            self._victim_mask(uninformed, jam_plan)
            if jam_affects_listeners
            else np.zeros(num_u, dtype=bool)
        )

        # ------------------------------------------------------------------ #
        # 3. CSR neighbourhood expansion of the events                       #
        # ------------------------------------------------------------------ #
        alice_audible = np.zeros(s, dtype=bool)  # slots in which Alice hears activity

        def expand(sender_rows: np.ndarray, slots: np.ndarray) -> np.ndarray:
            """Listener-position keys ``pos·s + slot`` of all audible pairs."""

            if sender_rows.size == 0:
                return np.empty(0, dtype=np.int64)
            origins, nbrs = csr.expand(sender_rows)
            pair_slots = slots[origins]
            alice_audible[pair_slots[nbrs == n]] = True
            pos = u_pos[nbrs]
            active = pos >= 0
            return pos[active] * s + pair_slots[active]

        payload_parts = [expand(relays[relay_idx], relay_slots)]
        if alice_slots.size:
            alice_nbrs = csr.row(n).astype(np.int64, copy=False)
            pos = u_pos[alice_nbrs]
            pos = pos[pos >= 0]
            payload_parts.append(
                (pos[:, None] * s + alice_slots[None, :]).reshape(-1)
            )
        payload_keys = np.concatenate(payload_parts)
        noise_keys = np.concatenate(
            [
                expand(uninformed[nack_idx], nack_slots),
                expand(decoys[decoy_idx], decoy_slots),
            ]
        )

        # ------------------------------------------------------------------ #
        # 4. Delivery (payload phases)                                       #
        # ------------------------------------------------------------------ #
        newly_informed: Set[int] = set()
        delivery_slots = 0
        informed_at = np.full(num_u, -1, dtype=np.int64)
        clean_keys = np.empty(0, dtype=np.int64)
        p_listen = plan.uninformed_listen_prob
        if plan.carries_payload and num_u and p_listen > 0 and payload_keys.size:
            cand, payload_count = np.unique(payload_keys, return_counts=True)
            clean = payload_count == 1
            if noise_keys.size:
                clean &= ~np.isin(cand, noise_keys)
            if own_keys.size:
                clean &= ~np.isin(cand, own_keys)
            cand_pos = cand // s
            cand_slot = cand % s
            clean &= ~spoof_busy[cand_slot]
            if jam_affects_listeners:
                clean &= ~(jam_mask[cand_slot] & victim[cand_pos])
            clean_keys = cand[clean]
            cand_pos, cand_slot = cand_pos[clean], cand_slot[clean]
            heard = rng.random(cand_pos.size) < p_listen
            heard_pos, heard_slot = cand_pos[heard], cand_slot[heard]
            if heard_pos.size:
                # `cand` was sorted by (listener, slot): the first occurrence
                # of each listener is its earliest heard clean delivery.
                first_pos, first_index = np.unique(heard_pos, return_index=True)
                first_slot = heard_slot[first_index]
                informed_at[first_pos] = first_slot
                newly_informed = set(int(x) for x in uninformed[first_pos])
                delivery_slots = int(np.unique(first_slot).size)

        informed_mask = informed_at >= 0
        # Inclusive active window per listener (mirrors the dense path's
        # `active_until`): a node informed in slot t stops after t.
        cutoff = np.where(informed_mask, informed_at, s - 1)

        # ------------------------------------------------------------------ #
        # 5. Listener costs and request-phase noise counts                   #
        # ------------------------------------------------------------------ #
        node_noisy: Dict[int, int] = {}
        if num_u:
            nack_cost = np.zeros(num_u, dtype=np.int64)
            if nack_idx.size:
                # `nack_idx` already indexes into `uninformed`, i.e. it *is*
                # the listener position of the sender.
                in_window = nack_slots <= cutoff[nack_idx]
                np.add.at(nack_cost, nack_idx[in_window], 1)

            own_sends = np.zeros(num_u, dtype=np.int64)
            if own_keys.size:
                own_pos = own_keys // s
                in_window = (own_keys % s) <= cutoff[own_pos]
                np.add.at(own_sends, own_pos[in_window], 1)

            if p_listen > 0:
                listenable = np.maximum(cutoff + 1 - own_sends, 0)
                # Marginal truncation (documented approximation, as in the
                # single-hop path): an informed node's pre-delivery listening
                # cost is a binomial over its active window, plus the delivery
                # slot it actually heard.
                draw_window = np.where(informed_mask, np.maximum(listenable - 1, 0), listenable)
                listen_cost = rng.binomial(draw_window, p_listen) + informed_mask.astype(np.int64)
            else:
                listen_cost = np.zeros(num_u, dtype=np.int64)

            if plan.kind is PhaseKind.REQUEST and p_listen > 0:
                # Exact per-listener noisy-slot counts within each listener's
                # active window: globally-noisy slots (spoofing, and jamming
                # for victims) plus the listener's own audible slots, minus
                # clean deliveries, overlap, and half-duplex exclusions —
                # mirroring the dense path's
                # `jam | ((payload + other > 0) & ~clean_delivery)` per slot.
                global_noisy_victim = spoof_busy | jam_mask
                victim_cum = np.cumsum(global_noisy_victim)
                spared_cum = np.cumsum(spoof_busy)
                # Count of globally-noisy slots in [0, cutoff], per listener.
                n_noisy = np.where(victim, victim_cum[cutoff], spared_cum[cutoff])

                audible_keys = np.unique(np.concatenate([noise_keys, payload_keys]))
                if clean_keys.size:
                    audible_keys = audible_keys[~np.isin(audible_keys, clean_keys)]
                if audible_keys.size:
                    a_pos = audible_keys // s
                    a_slot = audible_keys % s
                    in_window = a_slot <= cutoff[a_pos]
                    a_pos, a_slot = a_pos[in_window], a_slot[in_window]
                    is_global = np.where(
                        victim[a_pos], global_noisy_victim[a_slot], spoof_busy[a_slot]
                    )
                    n_noisy = n_noisy + np.bincount(a_pos[~is_global], minlength=num_u)
                if own_keys.size:
                    # A transmitting node cannot hear the slot it sends in.
                    own_pos = own_keys // s
                    own_slot = own_keys % s
                    in_window = own_slot <= cutoff[own_pos]
                    own_in, own_pos, own_slot = (
                        own_keys[in_window], own_pos[in_window], own_slot[in_window]
                    )
                    own_noisy = np.where(
                        victim[own_pos], global_noisy_victim[own_slot], spoof_busy[own_slot]
                    )
                    if audible_keys.size:
                        own_noisy |= np.isin(own_in, audible_keys)
                    n_noisy = n_noisy - np.bincount(own_pos[own_noisy], minlength=num_u)
                heard_noisy = rng.binomial(np.maximum(n_noisy, 0), p_listen)
                node_noisy = {
                    int(uninformed[i]): int(heard_noisy[i]) for i in range(num_u)
                }

            network.node_ledgers.charge_bulk_many(EnergyOperation.LISTEN, uninformed, listen_cost)
            network.node_ledgers.charge_bulk_many(EnergyOperation.SEND, uninformed, nack_cost)

        # ------------------------------------------------------------------ #
        # 6. Alice                                                           #
        # ------------------------------------------------------------------ #
        alice_send_slots = int(alice_slots.size)
        if alice_send_slots:
            network.alice.ledger.charge_bulk(EnergyOperation.SEND, float(alice_send_slots))

        alice_noisy = 0
        alice_listen_slots = 0
        if roles.alice_active and plan.alice_listen_prob > 0:
            noisy_for_alice = alice_audible | spoof_busy
            if jam_plan.targeting.affects(ALICE_ID):
                noisy_for_alice = noisy_for_alice | jam_mask
            if alice_send_slots:
                noisy_for_alice[alice_slots] = False  # half-duplex
            n_noisy_alice = int(np.count_nonzero(noisy_for_alice))
            n_quiet_alice = s - alice_send_slots - n_noisy_alice
            alice_noisy = int(rng.binomial(n_noisy_alice, plan.alice_listen_prob))
            alice_listen_slots = alice_noisy + int(
                rng.binomial(max(n_quiet_alice, 0), plan.alice_listen_prob)
            )
            if alice_listen_slots:
                network.alice.ledger.charge_bulk(EnergyOperation.LISTEN, float(alice_listen_slots))

        # ------------------------------------------------------------------ #
        # 7. Relay and decoy send costs (exact event counts)                 #
        # ------------------------------------------------------------------ #
        if relay_idx.size:
            network.node_ledgers.charge_bulk_many(
                EnergyOperation.SEND, relays, np.bincount(relay_idx, minlength=num_r)
            )
        if decoy_idx.size:
            network.node_ledgers.charge_bulk_many(
                EnergyOperation.SEND, decoys, np.bincount(decoy_idx, minlength=num_d)
            )

        result = PhaseResult(
            plan=plan,
            newly_informed=frozenset(newly_informed),
            jammed_slots=jammed_slots,
            adversary_spend=adversary_spend,
            alice_noisy_heard=alice_noisy,
            node_noisy_heard=node_noisy,
            delivery_slots=delivery_slots,
            busy_slots=busy_slots,
            alice_send_slots=alice_send_slots,
            alice_listen_slots=alice_listen_slots,
            spoofed_transmissions=spoofed_transmissions,
        )
        if self.recorder.enabled:
            self.recorder.record(
                engine_event("multihop-sparse", result, jam_victims=int(victim.sum()))
            )
        return result

    # ------------------------------------------------------------------ #
    # Internals                                                           #
    # ------------------------------------------------------------------ #

    def _materialize_adversary_actions(
        self,
        jam_plan: JamPlan,
        s: int,
        rng: np.random.Generator,
        correct_activity: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray, float, int, int]":
        """Materialise jamming and spoofing for one phase under the budget.

        Shared by the single-hop and multi-hop paths so the truncation rules
        (jams charged first; spoof truncation drops nack spoofs before
        payload spoofs — arbitrary but deterministic) cannot diverge.
        Returns ``(jam_mask, spoof_counts, adversary_spend, jammed_slots,
        spoofed_transmissions)``.
        """

        adversary_ledger = self.network.adversary_ledger
        jam_offsets = materialize_jam_slots(jam_plan, s, rng, activity_mask=correct_activity)
        affordable_jams = int(min(len(jam_offsets), np.floor(adversary_ledger.remaining)))
        jam_offsets = jam_offsets[:affordable_jams]
        jam_spend = adversary_ledger.charge_bulk(EnergyOperation.JAM, float(len(jam_offsets)))
        jam_offsets = jam_offsets[: int(jam_spend)]
        jam_mask = np.zeros(s, dtype=bool)
        jam_mask[jam_offsets] = True

        spoof_payload = materialize_spoof_slots(
            jam_plan.spoof_payload_slots, s, rng, exclude=jam_offsets.tolist()
        )
        spoof_nack = materialize_spoof_slots(
            jam_plan.spoof_nack_slots,
            s,
            rng,
            exclude=jam_offsets.tolist() + spoof_payload.tolist(),
        )
        spoof_budget = adversary_ledger.charge_bulk(
            EnergyOperation.SPOOF, float(len(spoof_payload) + len(spoof_nack))
        )
        total_spoofs = int(spoof_budget)
        keep_payload = min(len(spoof_payload), total_spoofs)
        keep_nack = min(len(spoof_nack), total_spoofs - keep_payload)
        spoof_payload = spoof_payload[:keep_payload]
        spoof_nack = spoof_nack[:keep_nack]

        spoof_counts = np.zeros(s, dtype=np.int64)
        if len(spoof_payload):
            spoof_counts[spoof_payload] += 1
        if len(spoof_nack):
            spoof_counts[spoof_nack] += 1

        adversary_spend = float(jam_spend + spoof_budget)
        jammed_slots = int(jam_mask.sum())
        spoofed_transmissions = int(len(spoof_payload) + len(spoof_nack))
        return jam_mask, spoof_counts, adversary_spend, jammed_slots, spoofed_transmissions

    @staticmethod
    def _truncate_informed_listening(
        rng: np.random.Generator,
        listen_cost: np.ndarray,
        informed_mask: np.ndarray,
        good_per_node: np.ndarray,
        p_listen: float,
        num_slots: int,
    ) -> np.ndarray:
        """Stop charging listening once a node has received the message.

        A node that becomes informed stops listening for the remainder of the
        phase (the slot engine models this exactly).  For each informed node
        we sample which of its ``g`` delivery opportunities was the first one
        it actually heard — a geometric draw truncated to ``g`` trials — place
        that opportunity proportionally within the phase (delivery slots are
        spread roughly uniformly), and charge listening only up to that point.
        """

        informed_idx = np.flatnonzero(informed_mask)
        g = np.maximum(good_per_node[informed_idx], 1)
        if p_listen >= 1.0:
            first_success = np.ones(informed_idx.size, dtype=np.int64)
        else:
            q = 1.0 - p_listen
            truncation = 1.0 - np.power(q, g)
            u = rng.random(informed_idx.size) * truncation
            with np.errstate(divide="ignore"):
                first_success = np.ceil(np.log1p(-u) / np.log(q)).astype(np.int64)
            first_success = np.clip(first_success, 1, g)
        # Position of the first-heard delivery opportunity within the phase.
        position = np.minimum(
            np.ceil(first_success / g * num_slots).astype(np.int64), num_slots
        )
        truncated = rng.binomial(np.maximum(position - 1, 0), p_listen) + 1
        result = listen_cost.copy()
        result[informed_idx] = np.minimum(truncated, listen_cost[informed_idx] + 1)
        return result

    @staticmethod
    def _victim_mask(node_ids: np.ndarray, jam_plan: JamPlan) -> np.ndarray:
        """Boolean mask of which nodes are affected by the plan's jamming.

        Recomputed every phase from the plan's (possibly freshly re-targeted)
        :class:`~repro.simulation.channel.JamTargeting` — mobile and reactive
        disk jammers change victims per phase, so nothing here may be cached
        per run — via the targeting's vectorised membership test.
        """

        return jam_plan.targeting.affects_array(node_ids)
