"""Slot-faithful execution engine.

:class:`SlotEngine` executes a phase exactly as the paper describes it: slot
by slot, every participant flips its own coins, the channel resolves
collisions and per-listener jamming, and energy is charged one unit at a time.
It is the reference semantics — the vectorised
:class:`~repro.simulation.fastengine.PhaseEngine` is validated against it — and
it is the engine of choice for unit and property tests at small ``n``.

Spatial topologies need no special handling here: the engine hands every
slot's transmissions and listeners to the network's channel, and a channel
built over a multi-hop :class:`~repro.simulation.topology.Topology` resolves
per-listener audibility (who is in radio range of whom) by itself.  This
keeps the slot engine exact under every topology, which is what the
multi-hop statistical-equivalence tests validate the fast engine against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from .auth import ALICE_ID
from .channel import JamTargeting
from .energy import EnergyOperation
from .errors import SimulationError
from .jamming import materialize_jam_slots, materialize_spoof_slots
from .messages import Message, MessageKind, make_decoy, make_nack, make_payload, make_spoof
from .network import Network
from .phaseplan import JamPlan, PhaseKind, PhasePlan, PhaseResult, PhaseRoles
from ..observability.trace import NULL_RECORDER, TraceRecorder, engine_event

__all__ = ["SlotEngine"]

_BYZANTINE_SENDER_ID = -2
"""Synthetic device id used for Byzantine spoofed transmissions."""


class SlotEngine:
    """Reference (slot-by-slot) phase executor.

    Parameters
    ----------
    network:
        The :class:`~repro.simulation.network.Network` whose devices act and
        whose ledgers are charged.
    """

    name = "slot"

    def __init__(self, network: Network) -> None:
        self.network = network
        self._rng_alice = network.random_source.stream("engine:alice")
        self._rng_nodes = network.random_source.stream("engine:nodes")
        self._rng_adversary = network.random_source.stream("engine:adversary")
        # Telemetry sink for channel-level "engine" events; read-only (emitted
        # after the slot loop, from already-computed tallies) and skipped
        # entirely while the default null recorder is installed.
        self.recorder: TraceRecorder = NULL_RECORDER

    # ------------------------------------------------------------------ #
    # Public API                                                          #
    # ------------------------------------------------------------------ #

    def run_phase(
        self,
        plan: PhasePlan,
        roles: PhaseRoles,
        jam_plan: JamPlan,
        start_slot: int = 0,
    ) -> PhaseResult:
        """Execute one phase and return its :class:`PhaseResult`.

        Energy ledgers of Alice, the correct nodes, and the adversary are
        charged as a side effect.
        """

        network = self.network
        s = plan.num_slots
        if s == 0:
            result = PhaseResult(
                plan=plan, newly_informed=frozenset(), jammed_slots=0, adversary_spend=0.0
            )
            if self.recorder.enabled:
                self.recorder.record(engine_event("empty", result))
            return result

        payload = make_payload(ALICE_ID, network.message_payload, network.message_signature)

        active_uninformed: Set[int] = set(roles.active_uninformed_ids.tolist())
        relays = roles.relay_ids.tolist()
        decoy_senders = roles.decoy_ids.tolist()

        # Pre-materialise non-reactive jamming and spoofing schedules.
        reactive = jam_plan.reactive
        scheduled_jams: Set[int] = set()
        if not reactive:
            scheduled_jams = set(
                int(x) for x in materialize_jam_slots(jam_plan, s, self._rng_adversary)
            )
        spoof_payload_slots = set(
            int(x)
            for x in materialize_spoof_slots(
                jam_plan.spoof_payload_slots, s, self._rng_adversary, exclude=scheduled_jams
            )
        )
        spoof_nack_slots = set(
            int(x)
            for x in materialize_spoof_slots(
                jam_plan.spoof_nack_slots,
                s,
                self._rng_adversary,
                exclude=scheduled_jams | spoof_payload_slots,
            )
        )

        reactive_jams_remaining = jam_plan.num_jam_slots if reactive else 0

        newly_informed: Set[int] = set()
        # Sorted so the mapping's insertion order (observable through
        # PhaseResult.node_noisy_heard and any trace that serialises it) is a
        # function of the cohort's *contents*, not the set's hash layout.
        node_noisy: Dict[int, int] = {u: 0 for u in sorted(active_uninformed)}
        alice_noisy = 0
        alice_send_slots = 0
        alice_listen_slots = 0
        jammed_slots = 0
        adversary_spend = 0.0
        delivery_slots = 0
        busy_slots = 0
        spoofed_transmissions = 0

        alice_ledger = network.alice.ledger
        adversary_ledger = network.adversary_ledger

        for j in range(s):
            transmissions: List[Message] = []
            senders: Set[int] = set()
            sending_nodes: Set[int] = set()

            # -- Alice's transmission ---------------------------------- #
            alice_sending = False
            if roles.alice_active and plan.alice_send_prob > 0:
                if self._rng_alice.random() < plan.alice_send_prob:
                    alice_sending = True
                    transmissions.append(payload)
                    senders.add(ALICE_ID)
                    alice_ledger.charge(EnergyOperation.SEND)
                    alice_send_slots += 1

            # -- Relay transmissions ----------------------------------- #
            if relays and plan.relay_send_prob > 0:
                coins = self._rng_nodes.random(len(relays))
                for idx, relay_id in enumerate(relays):
                    if coins[idx] < plan.relay_send_prob:
                        transmissions.append(
                            make_payload(relay_id, network.message_payload, network.message_signature)
                        )
                        senders.add(relay_id)
                        sending_nodes.add(relay_id)
                        network.nodes[relay_id].ledger.charge(EnergyOperation.SEND)

            # -- Uninformed node actions (nacks + listening) ------------ #
            ordered_uninformed = sorted(active_uninformed)
            listeners: Set[int] = set()
            if ordered_uninformed:
                coins = self._rng_nodes.random((len(ordered_uninformed), 2))
                for idx, node_id in enumerate(ordered_uninformed):
                    if plan.nack_send_prob > 0 and coins[idx, 0] < plan.nack_send_prob:
                        transmissions.append(make_nack(node_id))
                        senders.add(node_id)
                        sending_nodes.add(node_id)
                        network.nodes[node_id].ledger.charge(EnergyOperation.SEND)
                    elif plan.uninformed_listen_prob > 0 and coins[idx, 1] < plan.uninformed_listen_prob:
                        listeners.add(node_id)
                        network.nodes[node_id].ledger.charge(EnergyOperation.LISTEN)

            # -- Decoy traffic (§4.1) ----------------------------------- #
            if decoy_senders and plan.decoy_send_prob > 0:
                coins = self._rng_nodes.random(len(decoy_senders))
                for idx, node_id in enumerate(decoy_senders):
                    if node_id in sending_nodes or node_id in newly_informed:
                        continue
                    if coins[idx] < plan.decoy_send_prob:
                        if node_id in listeners:
                            # Half-duplex: a node that chose to transmit a decoy
                            # gives up its listening slot (cost already charged
                            # for the radio-on slot; do not double charge).
                            listeners.discard(node_id)
                            transmissions.append(make_decoy(node_id))
                            senders.add(node_id)
                            sending_nodes.add(node_id)
                        else:
                            transmissions.append(make_decoy(node_id))
                            senders.add(node_id)
                            sending_nodes.add(node_id)
                            network.nodes[node_id].ledger.charge(EnergyOperation.SEND)

            # -- Byzantine spoofed transmissions ------------------------ #
            if j in spoof_payload_slots:
                if adversary_ledger.charge(EnergyOperation.SPOOF):
                    transmissions.append(make_spoof(_BYZANTINE_SENDER_ID, nack=False))
                    adversary_spend += 1.0
                    spoofed_transmissions += 1
            if j in spoof_nack_slots:
                if adversary_ledger.charge(EnergyOperation.SPOOF):
                    transmissions.append(make_spoof(_BYZANTINE_SENDER_ID, nack=True))
                    adversary_spend += 1.0
                    spoofed_transmissions += 1

            # -- Alice listening (request phase) ------------------------ #
            alice_listening = False
            if (
                roles.alice_active
                and plan.alice_listen_prob > 0
                and not alice_sending
                and self._rng_alice.random() < plan.alice_listen_prob
            ):
                alice_listening = True
                alice_ledger.charge(EnergyOperation.LISTEN)
                alice_listen_slots += 1
                listeners_with_alice = listeners | {ALICE_ID}
            else:
                listeners_with_alice = listeners

            # -- Adversary jamming decision ----------------------------- #
            correct_activity = bool(transmissions)
            jam_this_slot = False
            if reactive:
                if reactive_jams_remaining > 0 and correct_activity:
                    jam_this_slot = True
            else:
                jam_this_slot = j in scheduled_jams

            targeting = JamTargeting.none()
            if jam_this_slot:
                if adversary_ledger.charge(EnergyOperation.JAM):
                    targeting = jam_plan.targeting
                    adversary_spend += 1.0
                    jammed_slots += 1
                    if reactive:
                        reactive_jams_remaining -= 1
                else:
                    jam_this_slot = False

            # -- Channel resolution -------------------------------------- #
            resolution = network.channel.resolve_slot(
                transmissions=transmissions,
                listeners=listeners_with_alice,
                jam=targeting,
                slot=start_slot + j,
                senders=senders,
            )
            if resolution.busy:
                busy_slots += 1

            delivered_this_slot = False
            for listener_id, observation in resolution.observations.items():
                if listener_id == ALICE_ID:
                    if observation.is_noisy:
                        alice_noisy += 1
                    continue
                if observation.state.value == "message":
                    message = observation.message
                    if message is None:
                        raise SimulationError("MESSAGE observation without a message")
                    if message.kind is MessageKind.PAYLOAD and network.authenticator.verify(message):
                        if listener_id in active_uninformed:
                            newly_informed.add(listener_id)
                            active_uninformed.discard(listener_id)
                            delivered_this_slot = True
                        continue
                    # Anything else heard (nacks, decoys, spoofs) counts as a
                    # noisy slot for the request-phase rule.
                    node_noisy[listener_id] = node_noisy.get(listener_id, 0) + 1
                elif observation.is_noisy:
                    node_noisy[listener_id] = node_noisy.get(listener_id, 0) + 1

            if delivered_this_slot:
                delivery_slots += 1

        result = PhaseResult(
            plan=plan,
            newly_informed=frozenset(newly_informed),
            jammed_slots=jammed_slots,
            adversary_spend=adversary_spend,
            alice_noisy_heard=alice_noisy,
            node_noisy_heard=node_noisy,
            delivery_slots=delivery_slots,
            busy_slots=busy_slots,
            alice_send_slots=alice_send_slots,
            alice_listen_slots=alice_listen_slots,
            spoofed_transmissions=spoofed_transmissions,
        )
        if self.recorder.enabled:
            self.recorder.record(engine_event("slot", result))
        return result
