"""Exception hierarchy for the simulation substrate.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers embedding the library can catch library failures with a single
``except`` clause while still distinguishing configuration mistakes from
runtime protocol violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A simulation or protocol configuration is invalid.

    Raised eagerly at construction time (rather than mid-simulation) whenever
    parameters are inconsistent: non-positive network sizes, probabilities
    outside ``[0, 1]``, budgets that cannot cover a single slot, and so on.
    """


class BudgetExceededError(ReproError):
    """A device attempted to spend energy beyond its budget.

    The paper's model gives every participant a hard energy budget; the
    :class:`repro.simulation.energy.EnergyLedger` enforces it.  Correct
    protocol executions should never trigger this error — seeing it in a test
    indicates either a protocol bug or deliberately mis-sized budgets.
    """

    def __init__(self, owner: str, budget: float, attempted: float) -> None:
        self.owner = owner
        self.budget = budget
        self.attempted = attempted
        super().__init__(
            f"device {owner!r} attempted to spend {attempted:g} energy units "
            f"but its budget is {budget:g}"
        )


class ProtocolViolationError(ReproError):
    """A protocol participant performed an action its role does not allow.

    Examples: a terminated node attempting to transmit, a correct node trying
    to forge Alice's authenticated payload, or an adversary attempting to
    forge silence (which the model explicitly forbids).
    """


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent internal state."""


class AuthenticationError(ProtocolViolationError):
    """An entity attempted to produce a signature it does not hold."""
